#!/usr/bin/env python3
"""Atomic-site audit lint for the wcq tree (DESIGN.md §11).

Extracts every atomic operation site in src/ — std::atomic member calls
(load/store/RMW/CAS), fences, __atomic_* builtins and the lock-prefixed
CAS2 inline asm — together with its memory_order, and diffs the result
against the committed manifest tools/atomics_manifest.tsv, where every site
carries a justification tag referencing a DESIGN.md §11 argument id.

The check fails on:
  * a site in the tree that is missing from the manifest      (unlisted)
  * a manifest row whose site no longer exists                (stale)
  * a site whose tag is empty/UNTAGGED                        (unjustified)
  * a tag that names no DESIGN.md §11/§15 argument id         (dangling)
  * more seq_cst sites than the manifest's ratcheted budget   (ratchet)
  * a downgraded site re-strengthened back to seq_cst without
    the manifest being re-argued                              (re-strengthened)
  * a downgraded row whose tag is not a §15 downgrade id      (untracked-downgrade)

Site identity is content-based — sha1(file|receiver|op|orders) plus an
occurrence ordinal — so pure line drift (code added above a site) does not
invalidate the manifest; changing the operation, its operand expression or
its ordering does, which is exactly when the justification must be re-read.

Fence-diet bookkeeping (DESIGN.md §15): each manifest row carries a ninth
`downgraded-from` column ("-" for sites that were never downgraded). A row
with downgraded-from set is a ratchet tooth: its tag must name a §15
argument, and any seq_cst site reappearing at the same (file, receiver, op)
fails the check as re-strengthened rather than merely unlisted.

Modes:
  --check            gate (CI): diff tree against manifest, exit non-zero on
                     any finding; --report FILE writes the diff for artifacts;
                     --budget N additionally fails if the manifest's own
                     budget header exceeds N (the ratchet-down ceiling CI
                     pins, so the header cannot silently regrow)
  --update           rewrite the manifest from the tree, carrying over tags
                     and downgraded-from by site key (new sites get UNTAGGED;
                     a new site whose (file, receiver, op) matches a stale
                     stronger-ordered row inherits downgraded-from=<old
                     order> automatically); --set-budget N moves the seq_cst
                     ratchet (omit to keep, first write defaults to the
                     current count)
  --stats            per-file memory-order histogram (--json for machines)
  --cpp              preprocessor-assisted pass: run each src/ TU through
                     `g++ -E` with the flags from compile_commands.json and
                     report which sites are active in that configuration
                     (informational — the manifest lists *all* sites, both
                     sides of every #if)

No libclang: plain-text extraction over comment-stripped sources, with the
compiler's own preprocessor as the optional assist.
"""

import argparse
import hashlib
import json
import os
import re
import shlex
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
MANIFEST = os.path.join(REPO, "tools", "atomics_manifest.tsv")
DESIGN = os.path.join(REPO, "DESIGN.md")

ATOMIC_OPS = (
    "load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    "compare_exchange_strong|compare_exchange_weak"
)
METHOD_RE = re.compile(r"(?:\.|->)(" + ATOMIC_OPS + r")\s*\(")
FENCE_RE = re.compile(r"\b(?:std::)?atomic_thread_fence\s*\(")
BUILTIN_RE = re.compile(r"\b(__atomic_[a-z_]+)\s*\(")
ASM_RE = re.compile(r"\basm\s+volatile\s*\(")
ORDER_RE = re.compile(
    r"memory_order_(relaxed|consume|acquire|release|acq_rel|seq_cst)"
    r"|__ATOMIC_(RELAXED|CONSUME|ACQUIRE|RELEASE|ACQ_REL|SEQ_CST)"
)

RMW_OPS = {
    "exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor"
}
UNTAGGED = "UNTAGGED"


def strip_comments(text):
    """Blank out comments and string literals, preserving offsets/newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append('"' + " " * (j - i - 2) + '"' if j - i >= 2 else text[i:j])
            i = j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def balanced_args(text, open_paren):
    """Return (argument text, end index) for the paren at `open_paren`."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i], i
    return text[open_paren + 1:], len(text)


def receiver_before(text, dot_pos):
    """Walk backwards from the '.'/'->' to recover the operand expression."""
    i = dot_pos
    depth_sq = depth_par = 0
    while i > 0:
        c = text[i - 1]
        if c in "]":
            depth_sq += 1
        elif c == "[":
            if depth_sq == 0:
                break
            depth_sq -= 1
        elif c == ")":
            depth_par += 1
        elif c == "(":
            if depth_par == 0:
                break
            depth_par -= 1
        elif depth_sq == 0 and depth_par == 0:
            if not (c.isalnum() or c in "_.:" or
                    (c in "->" and i > 1)):
                break
        i -= 1
    recv = re.sub(r"\s+", "", text[i:dot_pos])
    recv = recv.lstrip(".:-><")
    return recv or "<expr>"


def orders_in(arg_text):
    toks = []
    for m in ORDER_RE.finditer(arg_text):
        toks.append((m.group(1) or m.group(2)).lower())
    return "+".join(toks) if toks else "default"


def site_kind(op):
    if op == "load":
        return "load"
    if op == "store":
        return "store"
    if op in RMW_OPS:
        return "rmw"
    if op.startswith("compare_exchange"):
        return "cas"
    if op == "fence":
        return "fence"
    if op.startswith("__atomic"):
        return "builtin"
    return op


def is_seq_cst(order):
    return "seq_cst" in order or order == "default"


ORDER_RANK = {
    "relaxed": 0, "consume": 1, "acquire": 2, "release": 2, "acq_rel": 3,
    "seq_cst": 4, "default": 4,
}


def order_strength(order):
    """Strength of an order column (max over '+'-joined CAS order pairs)."""
    ranks = [ORDER_RANK.get(tok, 4) for tok in order.split("+")]
    return max(ranks) if ranks else 4


NO_DOWNGRADE = "-"


class Site:
    __slots__ = ("file", "line", "kind", "op", "receiver", "order", "key")

    def __init__(self, file, line, kind, op, receiver, order):
        self.file = file
        self.line = line
        self.kind = kind
        self.op = op
        self.receiver = receiver
        self.order = order
        self.key = None  # assigned after per-file ordinal disambiguation


def scan_file(path):
    rel = os.path.relpath(path, REPO)
    raw = open(path, encoding="utf-8").read()
    text = strip_comments(raw)
    sites = []

    for m in METHOD_RE.finditer(text):
        op = m.group(1)
        args, _ = balanced_args(text, m.end() - 1)
        line = text.count("\n", 0, m.start()) + 1
        recv = receiver_before(text, m.start())
        sites.append(Site(rel, line, site_kind(op), op, recv, orders_in(args)))

    for m in FENCE_RE.finditer(text):
        args, _ = balanced_args(text, m.end() - 1)
        line = text.count("\n", 0, m.start()) + 1
        sites.append(
            Site(rel, line, "fence", "fence", "<fence>", orders_in(args)))

    for m in BUILTIN_RE.finditer(text):
        op = m.group(1)
        args, _ = balanced_args(text, m.end() - 1)
        line = text.count("\n", 0, m.start()) + 1
        sites.append(Site(rel, line, "builtin", op, "<builtin>",
                          orders_in(args)))

    for m in ASM_RE.finditer(text):
        args, _ = balanced_args(text, m.end() - 1)
        # Only synchronizing asm counts: the lock-prefixed CAS2 and LL/SC
        # mnemonics. (`asm volatile("yield")` and friends are not atomics.)
        body = raw[m.start():m.start() + len(args) + 64]
        if re.search(r"cmpxchg16b|ldaxp|stlxp|ldxp|stxp|\bcaspa?l?\b|\bclrex\b"
                     r"|\block\b", body):
            line = text.count("\n", 0, m.start()) + 1
            sites.append(Site(rel, line, "asm", "asm", "<asm-cas2>",
                              "asm_lock"))

    sites.sort(key=lambda s: s.line)
    counts = {}
    for s in sites:
        ident = (s.file, s.receiver, s.op, s.order)
        ordinal = counts.get(ident, 0)
        counts[ident] = ordinal + 1
        digest = hashlib.sha1(
            "|".join(ident).encode("utf-8")).hexdigest()[:12]
        s.key = "%s#%d" % (digest, ordinal)
    return sites


def scan_tree():
    sites = []
    for root, _dirs, files in sorted(os.walk(SRC)):
        for name in sorted(files):
            if name.endswith((".hpp", ".cpp", ".h")):
                sites.extend(scan_file(os.path.join(root, name)))
    sites.sort(key=lambda s: (s.file, s.line))
    return sites


def read_manifest(path=MANIFEST):
    tags, budget = {}, None
    downgrades = {}
    if not os.path.exists(path):
        return tags, budget, [], downgrades
    rows = []
    for line in open(path, encoding="utf-8"):
        line = line.rstrip("\n")
        if line.startswith("#"):
            m = re.match(r"#\s*seq_cst_budget:\s*(\d+)", line)
            if m:
                budget = int(m.group(1))
            continue
        if not line.strip():
            continue
        cols = line.split("\t")
        if len(cols) < 8:
            continue
        key, file, line_no, kind, op, receiver, order, tag = cols[:8]
        tags[key] = tag
        # 9th column (downgraded-from) is optional for pre-§15 manifests.
        if len(cols) >= 9 and cols[8] and cols[8] != NO_DOWNGRADE:
            downgrades[key] = cols[8]
        rows.append(cols)
    return tags, budget, rows, downgrades


def write_manifest(sites, tags, budget, downgrades, path=MANIFEST):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# wcq atomics manifest — maintained by tools/atomics_audit.py"
                " (--update)\n")
        f.write("# Every src/ atomic site, keyed by content "
                "(sha1(file|receiver|op|orders)#ordinal), tagged with a\n")
        f.write("# DESIGN.md §11/§15 argument id. `--check` gates CI; the"
                " budget below is the seq_cst ratchet. downgraded-from\n")
        f.write("# records the order a §15 fence-diet site was argued down"
                " from (re-strengthening it fails the check).\n")
        f.write("# seq_cst_budget: %d\n" % budget)
        f.write("# key\tfile\tline\tkind\top\treceiver\torder\ttag"
                "\tdowngraded-from\n")
        for s in sites:
            f.write("\t".join([
                s.key, s.file, str(s.line), s.kind, s.op, s.receiver, s.order,
                tags.get(s.key, UNTAGGED),
                downgrades.get(s.key, NO_DOWNGRADE),
            ]) + "\n")


def design_argument_ids(path=DESIGN):
    """Argument ids from DESIGN.md tables: (all ids, §15-only ids).

    §11 is the general atomic-site argument table; §15 is the fence-diet
    downgrade table — rows whose manifest downgraded-from column is set must
    tag a §15 id specifically.
    """
    ids, s15 = set(), set()
    if not os.path.exists(path):
        return ids, s15
    in_11 = in_15 = False
    for line in open(path, encoding="utf-8"):
        if line.startswith("## "):
            in_11 = line.startswith("## §11")
            in_15 = line.startswith("## §15")
            continue
        if in_11 or in_15:
            m = re.match(r"\s*\|\s*`?([A-Z][A-Z0-9-]{2,})`?\s*\|", line)
            if m:
                ids.add(m.group(1))
                if in_15:
                    s15.add(m.group(1))
    return ids, s15


def seq_cst_count(sites):
    return sum(1 for s in sites if s.kind != "asm" and is_seq_cst(s.order))


def do_check(args):
    sites = scan_tree()
    tags, budget, rows, downgrades = read_manifest()
    ids, s15_ids = design_argument_ids()
    findings = []

    # (file, receiver, op) triples that carry an argued §15 downgrade: a
    # seq_cst site reappearing at one of these is a re-strengthening, not
    # just an ordinary unlisted site.
    dieted = {}
    for cols in rows:
        key = cols[0]
        if key in downgrades:
            dieted[(cols[1], cols[5], cols[4])] = (downgrades[key],
                                                   cols[6], tags.get(key, ""))

    current_keys = {s.key: s for s in sites}
    for s in sites:
        if s.key not in tags:
            triple = (s.file, s.receiver, s.op)
            if is_seq_cst(s.order) and triple in dieted:
                frm, argued, tag = dieted[triple]
                findings.append(
                    "re-strengthened: %s:%d %s.%s is seq_cst again but was "
                    "argued down %s -> %s (§15 %s) — revert, or re-argue and "
                    "drop the downgraded-from row deliberately"
                    % (s.file, s.line, s.receiver, s.op, frm, argued, tag))
            else:
                findings.append(
                    "unlisted: %s:%d %s.%s(%s) [%s] — run --update and "
                    "justify" % (s.file, s.line, s.receiver, s.op, s.order,
                                 s.key))
    for key, tag in tags.items():
        if key not in current_keys:
            findings.append(
                "stale: manifest row %s (tag %s) matches no site — run "
                "--update" % (key, tag))
    for s in sites:
        tag = tags.get(s.key)
        if tag is None:
            continue
        if not tag or tag == UNTAGGED:
            findings.append(
                "unjustified: %s:%d %s.%s [%s] has no §11/§15 tag"
                % (s.file, s.line, s.receiver, s.op, s.key))
        elif ids and tag not in ids:
            findings.append(
                "dangling: %s:%d tag '%s' names no DESIGN.md §11/§15 "
                "argument id" % (s.file, s.line, tag))
        elif s.key in downgrades and s15_ids and tag not in s15_ids:
            findings.append(
                "untracked-downgrade: %s:%d %s.%s was downgraded from %s but "
                "tag '%s' is not a DESIGN.md §15 downgrade argument"
                % (s.file, s.line, s.receiver, s.op, downgrades[s.key], tag))
    if not ids:
        findings.append("dangling: DESIGN.md has no §11 argument-id table")
    if downgrades and not s15_ids:
        findings.append(
            "untracked-downgrade: manifest has downgraded-from rows but "
            "DESIGN.md has no §15 argument-id table")

    count = seq_cst_count(sites)
    if budget is None:
        findings.append("ratchet: manifest has no seq_cst_budget header")
    elif count > budget:
        findings.append(
            "ratchet: %d seq_cst sites exceed the budget of %d — each "
            "new seq_cst site needs its own §11 argument and a deliberate "
            "--set-budget bump" % (count, budget))
    if args.budget is not None:
        if budget is not None and budget > args.budget:
            findings.append(
                "ratchet: manifest budget %d exceeds the CI ceiling of %d — "
                "the seq_cst ratchet only moves down" % (budget, args.budget))
        if count > args.budget:
            findings.append(
                "ratchet: %d seq_cst sites exceed the CI ceiling of %d"
                % (count, args.budget))

    report = []
    report.append("atomics audit: %d sites, %d seq_cst (budget %s), "
                  "%d findings" % (len(sites), count,
                                   budget if budget is not None else "unset",
                                   len(findings)))
    report.extend(findings)
    if budget is not None and count < budget:
        report.append(
            "note: seq_cst count %d is below budget %d — ratchet down with "
            "--update --set-budget %d" % (count, budget, count))
    text = "\n".join(report)
    print(text)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(text + "\n")
    return 1 if findings else 0


def do_update(args):
    sites = scan_tree()
    tags, budget, rows, downgrades = read_manifest()
    count = seq_cst_count(sites)
    if args.set_budget is not None:
        budget = args.set_budget
    elif budget is None:
        budget = count

    # Downgrade inference: a new site (key not in the old manifest) whose
    # (file, receiver, op) matches a stale row with a strictly stronger
    # order inherits downgraded-from=<old order>. The tag is NOT carried —
    # the check then demands a fresh §15 argument for the weakened site.
    current_keys = {s.key for s in sites}
    stale_by_triple = {}
    for cols in rows:
        if cols[0] not in current_keys:
            stale_by_triple.setdefault((cols[1], cols[5], cols[4]),
                                       []).append(cols)
    inferred = 0
    for s in sites:
        if s.key in tags:
            continue
        for cols in stale_by_triple.get((s.file, s.receiver, s.op), []):
            old_order = cols[6]
            if order_strength(old_order) > order_strength(s.order):
                # Preserve an existing downgraded-from chain's origin: a
                # second weakening keeps the original strongest order.
                origin = cols[8] if (len(cols) >= 9 and
                                     cols[8] != NO_DOWNGRADE) else old_order
                downgrades[s.key] = origin
                inferred += 1
                break

    write_manifest(sites, tags, budget, downgrades)
    fresh = sum(1 for s in sites if tags.get(s.key, UNTAGGED) == UNTAGGED)
    print("manifest updated: %d sites (%d seq_cst, budget %d), %d untagged, "
          "%d downgraded (%d newly inferred)"
          % (len(sites), count, budget, fresh,
             sum(1 for s in sites if s.key in downgrades), inferred))
    return 0


def do_stats(args):
    sites = scan_tree()
    buckets = ["seq_cst", "acquire", "release", "acq_rel", "relaxed",
               "consume", "asm"]
    per_file = {}
    for s in sites:
        hist = per_file.setdefault(s.file, {b: 0 for b in buckets})
        if s.kind == "asm":
            hist["asm"] += 1
        elif is_seq_cst(s.order):
            hist["seq_cst"] += 1
        else:
            for b in buckets[1:-1]:
                if b in s.order:
                    hist[b] += 1
                    break
    totals = {b: sum(h[b] for h in per_file.values()) for b in buckets}
    if args.json:
        text = json.dumps({"files": per_file, "totals": totals,
                           "sites": len(sites)}, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(text + "\n")
        print(text)
        return 0
    width = max(len(f) for f in per_file) if per_file else 4
    print("%-*s %8s %8s %8s %8s %8s %8s %5s"
          % (width, "file", "seq_cst", "acquire", "release", "acq_rel",
             "relaxed", "consume", "asm"))
    for f in sorted(per_file):
        h = per_file[f]
        print("%-*s %8d %8d %8d %8d %8d %8d %5d"
              % (width, f, h["seq_cst"], h["acquire"], h["release"],
                 h["acq_rel"], h["relaxed"], h["consume"], h["asm"]))
    print("%-*s %8d %8d %8d %8d %8d %8d %5d"
          % (width, "TOTAL", totals["seq_cst"], totals["acquire"],
             totals["release"], totals["acq_rel"], totals["relaxed"],
             totals["consume"], totals["asm"]))
    return 0


def do_cpp(args):
    """Preprocessor-assisted pass over compile_commands.json."""
    cc_path = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.exists(cc_path):
        print("no %s — configure first (CMAKE_EXPORT_COMPILE_COMMANDS is on "
              "in every preset)" % cc_path, file=sys.stderr)
        return 1
    entries = json.load(open(cc_path, encoding="utf-8"))
    seen = {}
    for e in entries:
        f = os.path.abspath(os.path.join(e["directory"], e["file"]))
        if not f.startswith(SRC + os.sep) or f in seen:
            continue
        cmd = shlex.split(e.get("command", "")) or e.get("arguments", [])
        argv = []
        skip = False
        for a in cmd[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", "-o"):
                skip = a == "-o"
                continue
            argv.append(a)
        argv = [cmd[0]] + argv + ["-E", f]
        try:
            out = subprocess.run(argv, capture_output=True, text=True,
                                 cwd=e["directory"], timeout=120)
        except OSError as exc:
            print("preprocess failed for %s: %s" % (f, exc), file=sys.stderr)
            return 1
        if out.returncode != 0:
            print("preprocess failed for %s:\n%s" % (f, out.stderr),
                  file=sys.stderr)
            return 1
        # Count only tokens in regions that came from src/ (the -E output
        # interleaves <atomic> etc.; GCC line markers name the origin file).
        active, in_src = 0, False
        for ln in out.stdout.splitlines():
            m = re.match(r'#\s+\d+\s+"([^"]+)"', ln)
            if m:
                origin = os.path.abspath(
                    os.path.join(e["directory"], m.group(1)))
                in_src = origin.startswith(SRC + os.sep)
                continue
            if in_src:
                active += len(ORDER_RE.findall(ln))
        seen[f] = active
    print("preprocessor-assisted view (%d TUs from %s):" %
          (len(seen), cc_path))
    for f in sorted(seen):
        print("  %-50s %4d memory_order tokens after -E"
              % (os.path.relpath(f, REPO), seen[f]))
    print("note: the manifest intentionally lists every site in the text, "
          "both sides of each #if; this view shows one configuration.")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true")
    mode.add_argument("--update", action="store_true")
    mode.add_argument("--stats", action="store_true")
    mode.add_argument("--cpp", action="store_true")
    ap.add_argument("--report", metavar="FILE",
                    help="--check: also write the findings to FILE")
    ap.add_argument("--budget", type=int, metavar="N",
                    help="--check: ratchet-down ceiling — fail if the "
                         "manifest budget or the live seq_cst count exceeds N")
    ap.add_argument("--set-budget", type=int, metavar="N",
                    help="--update: move the seq_cst ratchet to N")
    ap.add_argument("--json", action="store_true",
                    help="--stats: machine-readable output")
    ap.add_argument("--out", metavar="FILE",
                    help="--stats --json: also write the JSON to FILE")
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"),
                    help="--cpp: build tree with compile_commands.json")
    args = ap.parse_args()
    if args.check:
        return do_check(args)
    if args.update:
        return do_update(args)
    if args.stats:
        return do_stats(args)
    return do_cpp(args)


if __name__ == "__main__":
    sys.exit(main())
