// Unbounded wait-free-ring queue (paper Appendix A).
//
// The appendix follows LSCQ/LCRQ's recipe: an outer linked list chains
// bounded rings; a ring that fills up is *finalized* (no enqueue can ever
// succeed on it again) and a fresh ring is appended. Outer-list operations
// are rare (once per ring capacity), so their cost is dominated by the
// inner wCQ operations.
//
// Reproduction notes (DESIGN.md §4):
//  * The appendix uses CRTurn as the outer layer to keep the composition
//    wait-free end-to-end. CRTurn's dequeue-side turn protocol is not
//    reconstructible from available material (see baselines/crturn_queue.hpp);
//    the outer list here is Michael&Scott-style (lock-free) with hazard
//    pointers, which preserves the appendix's structure and memory behavior
//    while the inner rings remain wait-free.
//  * Finalization is implemented with a segment-level gate plus an
//    in-flight enqueuer counter instead of the appendix's Tail finalize bit
//    (which lives inside the ring's F&A word): a segment is unlinked only
//    when it is finalized, drained, and free of in-flight enqueuers, which
//    makes "help finalize, then append" (Fig 13 lines 21-22) unnecessary.
//
// Segment recycling (DESIGN.md §8): with Options::recycle (the default), a
// retired segment is reset and parked in a SegmentPool once its hazard
// grace period has passed, and the growth path allocates from the pool
// first — steady-state operation performs zero heap allocations. The queue
// owns a *private* HazardDomain so (a) its contextful retirements (which
// reference the queue's pool) can never outlive the queue, and (b) its
// retire-scan threshold can be small: recycled segments reach the pool
// promptly instead of idling in retire lists while fresh ones are malloc'd.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <optional>
#include <utility>

#include "common/align.hpp"
#include "common/alloc_meter.hpp"
#include "common/backoff.hpp"
#include "common/topology.hpp"
#include "core/bounded_queue.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "reclaim/segment_pool.hpp"
#include "scale/index_magazine.hpp"

namespace wcq {

template <typename T, typename Ring = WCQ>
class UnboundedQueue {
 public:
  // Per-thread session (DESIGN.md §10): the dense tid plus this queue's
  // hazard-slot row for it, resolved once. Segment-level ring/magazine
  // state cannot be cached here — segments come and go — so the handle
  // carries the tid and each segment rebuilds its BoundedQueue view from it
  // by pure arithmetic (zero registry lookups). Owned handles participate
  // in the same lifetime check as BoundedQueue's: destroying the queue with
  // live owned handles aborts with a diagnostic. Unlike BoundedQueue's
  // handle, release does NOT flush segment magazines (that would need a
  // hazard-protected walk of a list the session no longer operates on);
  // segment magazines flush at thread exit via the registry hook, and the
  // full-edge reclaim sweep keeps cached indices from wedging a segment's
  // finalize in the meantime (DESIGN.md §9).
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& o) noexcept
        : q_(o.q_), tid_(o.tid_), hp_row_(o.hp_row_), node_(o.node_),
          owned_(o.owned_) {
      o.q_ = nullptr;
      o.owned_ = false;
    }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        q_ = o.q_;
        tid_ = o.tid_;
        hp_row_ = o.hp_row_;
        node_ = o.node_;
        owned_ = o.owned_;
        o.q_ = nullptr;
        o.owned_ = false;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    unsigned tid() const { return tid_; }

   private:
    friend class UnboundedQueue;
    // Owned sessions resolve their node now (topology cached for the
    // growth path, DESIGN.md §12); the per-op unowned views leave it unset
    // and the growth path — rare, once per 2^order ops — resolves lazily.
    Handle(UnboundedQueue* q, unsigned tid, bool owned)
        : q_(q), tid_(tid), hp_row_(q->hp_.slots_for(tid)),
          node_(owned ? q->topo_->current_node() : Topology::kUnsetNode),
          owned_(owned) {}

    void release() {
      if (owned_ && q_ != nullptr) {
        q_->live_handles_.fetch_sub(1, std::memory_order_acq_rel);
      }
      q_ = nullptr;
      owned_ = false;
    }

    UnboundedQueue* q_ = nullptr;
    unsigned tid_ = 0;
    HazardDomain::ThreadSlots* hp_row_ = nullptr;
    unsigned node_ = Topology::kUnsetNode;
    bool owned_ = false;
  };

  struct Options {
    // Each segment holds 2^segment_order elements (default: 1024).
    unsigned segment_order = 10;
    // Recycle retired segments through the pool (false = malloc/free every
    // segment, the pre-recycling behavior; kept as an A/B toggle for
    // bench_fig10_memory).
    bool recycle = true;
    // Hard ceiling on parked segments; the effective cap also scales with
    // registered threads (SegmentPool::cap).
    std::size_t pool_slots = 64;
    // Per-thread free-index magazines inside each segment (DESIGN.md §9).
    // BoundedQueue clamps the capacity to 2^segment_order / 4, keeping
    // magazines well under the segment size so the finalize-on-full
    // transition stays prompt; the full-edge reclaim sweep recovers cached
    // indices before "full" is reported, so a segment finalizes at its
    // exact capacity up to the same in-flight transients the plain double
    // ring has (a sweep can miss an index mid-flight — DESIGN.md §9), and
    // recycling (and SteadyStateZeroAllocations) is unaffected.
    IndexMagazines::Config magazine{};
    // Placement source for the node-partitioned segment pool (DESIGN.md
    // §12); nullptr means the process topology (Topology::instance()). A
    // segment's home node is the node of the thread that first allocated it
    // (its first-touch node), and it recycles only through that node's pool
    // partition.
    const Topology* topology = nullptr;
  };

  explicit UnboundedQueue(Options opt)
      : opt_(opt),
        topo_(opt.topology != nullptr ? opt.topology
                                      : &Topology::instance()),
        pool_(opt.pool_slots, topo_->node_count()),
        hp_(kRetireScanThreshold) {
    Segment* first = Segment::create(segment_options());
    first->home_node = topo_->current_node();
    head_.value.store(first, std::memory_order_relaxed);
    tail_.value.store(first, std::memory_order_relaxed);
  }

  explicit UnboundedQueue(unsigned segment_order = 10)
      : UnboundedQueue(Options{.segment_order = segment_order}) {}

  ~UnboundedQueue() {
    const int live = live_handles_.load(std::memory_order_acquire);
    if (live != 0) {
      std::fprintf(stderr,
                   "wcq: UnboundedQueue destroyed with %d live session "
                   "handle(s); destroy handles before their queue\n",
                   live);
      std::abort();
    }
    // Quiescent by contract. Flush pending retirements first (they recycle
    // into — or bypass — the pool via recycle_cb, which must still find the
    // queue alive), then free the linked list, then the parked segments.
    hp_.drain();
    Segment* s = head_.value.load(std::memory_order_relaxed);
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      Segment::destroy(s);
      s = next;
    }
    pool_.drain([](Segment* seg) { Segment::destroy(seg); });
  }

  UnboundedQueue(const UnboundedQueue&) = delete;
  UnboundedQueue& operator=(const UnboundedQueue&) = delete;

  // Owned per-thread session (one registry lookup; see Handle).
  Handle acquire() {
    live_handles_.fetch_add(1, std::memory_order_acq_rel);
    return Handle(this, ThreadRegistry::tid(), /*owned=*/true);
  }

  // Unowned per-op view for a known tid (composed layers, implicit path).
  Handle handle_for(unsigned tid) {
    return Handle(this, tid, /*owned=*/false);
  }

  // Never fails (appends a ring when the last one fills/finalizes; the ring
  // comes from the segment pool when one is parked there). The payload moves
  // down the whole chain (Segment::enqueue → BoundedQueue::enqueue_movable):
  // the old const& chain copied it twice per operation.
  bool enqueue(T value) {
    Handle h = handle_for(ThreadRegistry::tid());
    return enqueue(h, std::move(value));
  }

  bool enqueue(Handle& h, T value) {
    for (;;) {
      Segment* ltail = HazardDomain::protect(*h.hp_row_, 0, tail_.value);
      Segment* next = ltail->next.load(std::memory_order_acquire);
      if (next != nullptr) {
        // Outer tail lags; help swing it (Fig 13 lines 24-27).
        tail_.value.compare_exchange_strong(ltail, next,
                                            std::memory_order_seq_cst);
        continue;
      }
      if (ltail->enqueue(h.tid_, value)) {
        HazardDomain::clear(*h.hp_row_, 0);
        return true;
      }
      // Ring full: it is now finalized; append a fresh ring seeded with the
      // value (Fig 13 lines 7-8, 21-23).
      Segment* fresh = acquire_segment(h);
      (void)fresh->enqueue(h.tid_, value);  // empty open ring: cannot fail
      Segment* expected = nullptr;
      if (ltail->next.compare_exchange_strong(expected, fresh,
                                              std::memory_order_seq_cst)) {
        tail_.value.compare_exchange_strong(ltail, fresh,
                                            std::memory_order_seq_cst);
        HazardDomain::clear(*h.hp_row_, 0);
        return true;
      }
      // Somebody appended first; take the seeded element back (we own fresh
      // exclusively, so this dequeue cannot fail) and retry there. With the
      // moving chain the element lives in fresh now — the old copying chain
      // could just drop the segment's copy.
      value = std::move(*fresh->dequeue(h.tid_));
      release_segment(fresh);
    }
  }

  std::optional<T> dequeue() {
    Handle h = handle_for(ThreadRegistry::tid());
    return dequeue(h);
  }

  std::optional<T> dequeue(Handle& h) {
    Backoff bo;
    for (;;) {
      Segment* lhead = HazardDomain::protect(*h.hp_row_, 0, head_.value);
      if (auto v = lhead->dequeue(h.tid_)) {
        HazardDomain::clear(*h.hp_row_, 0);
        return v;
      }
      Segment* next = lhead->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        HazardDomain::clear(*h.hp_row_, 0);
        return std::nullopt;  // no successor: the queue is empty
      }
      // A successor exists, so lhead is finalized. It may only be unlinked
      // once no enqueuer can still complete on it and it is drained.
      if (!lhead->quiescent()) {
        // An in-flight enqueue may still land here; try dequeuing again.
        // The enqueuer holding in_flight may be descheduled, so this wait
        // must back off or it livelocks an oversubscribed host.
        bo.pause();
        continue;
      }
      if (auto v = lhead->dequeue(h.tid_)) {  // drained-check must re-validate
        HazardDomain::clear(*h.hp_row_, 0);
        return v;
      }
      Segment* expected = lhead;
      if (head_.value.compare_exchange_strong(expected, next,
                                              std::memory_order_seq_cst)) {
        HazardDomain::clear(*h.hp_row_, 0);
        hp_.retire(h.tid_, lhead, &UnboundedQueue::recycle_cb, this);
      }
    }
  }

  // Diagnostic: number of linked segments, safe to call concurrently with
  // enqueue/dequeue on other threads.
  //
  // The walk is hazard-protected hand-over-hand (slots 1-3; operations use
  // slot 0). The liveness argument leans on the list's shape: segments are
  // unlinked *only at the head*, so every node reachable from the current
  // head is linked. The walker pins the head it started from in slot 1 for
  // the whole walk; after publishing a hazard on each `next` it re-reads
  // head_ — if head_ still equals the pinned start, no unlink (and hence no
  // retirement) has happened since the walk began, so `next` is linked and
  // now protected. If head_ moved, `next` may already be retired-and-freed
  // (our hazard was published too late to be seen by that scan), so the
  // walk restarts. head_ cannot ABA back to the pinned segment: re-linking
  // requires recycling, which the slot-1 hazard blocks (DESIGN.md §8).
  u64 live_segments() const {
    Backoff bo;
    for (;;) {
      Segment* h0 = hp_.protect(1, head_.value);
      Segment* s = h0;
      u64 n = 1;
      unsigned slot = 2;
      bool restart = false;
      for (;;) {
        Segment* next = s->next.load(std::memory_order_acquire);
        if (next == nullptr) break;
        hp_.set(slot, next);
        if (head_.value.load(std::memory_order_seq_cst) != h0) {
          restart = true;
          break;
        }
        s = next;
        ++n;
        slot = slot == 2 ? 3 : 2;  // keep the previous hop protected
      }
      hp_.clear(1);
      hp_.clear(2);
      hp_.clear(3);
      if (!restart) return n;
      bo.pause();
    }
  }

  // Test hooks.
  std::size_t pooled_segments() const { return pool_.size(); }
  const Options& options() const { return opt_; }
  // Flush this queue's pending retirements (quiescent-only): retired
  // segments move to the pool (or are freed past its cap) immediately
  // instead of at the next scan.
  void reclaim_flush() { hp_.drain(); }

 private:
  // One ring segment: a Fig 2 bounded queue plus finalization state.
  struct Segment {
    using QueueOptions = typename BoundedQueue<T, Ring>::Options;

    explicit Segment(const QueueOptions& opt) : queue(opt) {}

    static Segment* create(const QueueOptions& opt) {
      // The embedded BoundedQueue is cache-line-aligned, so Segment is
      // over-aligned — plain malloc's max_align_t is not enough.
      void* mem = alloc_meter::allocate_aligned(sizeof(Segment),
                                                alignof(Segment));
      return new (mem) Segment(opt);
    }
    static void destroy(Segment* s) {
      s->~Segment();
      alloc_meter::deallocate_aligned(s, sizeof(Segment));
    }

    // Reopen a finalized, drained, quiescent segment (exclusive access; the
    // recycler holds the only reference). Ring/bounded resets rewind the
    // Fig 2 state; clearing `next` detaches it from the dead list tail.
    void reset() {
      assert(in_flight.load(std::memory_order_relaxed) == 0 &&
             "reset of a segment with in-flight enqueuers");
      queue.reset();
      finalized.store(false, std::memory_order_relaxed);
      next.store(nullptr, std::memory_order_relaxed);
    }

    // False once the segment is full: the segment finalizes and no enqueue
    // will ever succeed on it again (so FIFO order across segments holds).
    // On success `v` is moved-from; on failure it is left intact (the
    // enqueue_movable contract), so the caller can retarget it. The caller's
    // session tid threads through: the segment rebuilds its BoundedQueue
    // view from it by arithmetic (DESIGN.md §10), so segment churn costs no
    // registry lookups.
    bool enqueue(unsigned tid, T& v) {
      in_flight.fetch_add(1, std::memory_order_seq_cst);
      if (finalized.load(std::memory_order_seq_cst)) {
        in_flight.fetch_sub(1, std::memory_order_seq_cst);
        return false;
      }
      auto bh = queue.handle_for(tid);
      const bool ok = queue.enqueue_movable(bh, v);
      if (!ok) {
        finalized.store(true, std::memory_order_seq_cst);
      }
      in_flight.fetch_sub(1, std::memory_order_seq_cst);
      return ok;
    }

    std::optional<T> dequeue(unsigned tid) {
      auto bh = queue.handle_for(tid);
      return queue.dequeue(bh);
    }

    // True when no enqueuer can still add an element to this segment.
    bool quiescent() const {
      return finalized.load(std::memory_order_seq_cst) &&
             in_flight.load(std::memory_order_seq_cst) == 0;
    }

    BoundedQueue<T, Ring> queue;
    // Node whose thread first allocated this segment — where first-touch
    // put its pages. Written only under exclusive ownership (creation);
    // recycling keys the pool partition off it so the pages never migrate
    // through the free list (DESIGN.md §12).
    unsigned home_node = 0;
    alignas(kCacheLine) std::atomic<bool> finalized{false};
    alignas(kCacheLine) std::atomic<int> in_flight{0};
    alignas(kCacheLine) std::atomic<Segment*> next{nullptr};
  };

  // Growth path: reuse a parked segment when one is available. A pooled
  // segment was reset by its recycler; the pool's release/acquire hand-off
  // publishes those writes to us, and the list-append CAS publishes them to
  // everyone else (DESIGN.md §8).
  typename Segment::QueueOptions segment_options() const {
    return typename Segment::QueueOptions{opt_.segment_order, opt_.magazine};
  }

  // The session's cached node when it has one (owned handles), else
  // resolved now — once per growth, not per operation.
  Segment* acquire_segment(const Handle& h) {
    const unsigned node = h.node_ != Topology::kUnsetNode
                              ? h.node_
                              : topo_->current_node();
    if (opt_.recycle) {
      // Local partition only: a miss allocates a fresh local segment
      // rather than adopting one whose pages live on another node.
      if (Segment* s = pool_.try_get(node)) return s;
    }
    Segment* s = Segment::create(segment_options());
    s->home_node = node;
    return s;
  }

  // Give back a segment this thread exclusively owns (never published, or
  // publication lost its race). It may hold the one seeded element; reset
  // destroys it along with any other straggler. The segment parks in its
  // *home* node's partition — not the releasing thread's — so its pages
  // stay keyed to where they physically are.
  void release_segment(Segment* s) {
    if (opt_.recycle) {
      s->reset();
      if (pool_.try_put(s->home_node, s)) return;
    }
    Segment::destroy(s);
  }

  // Hazard-domain deleter: runs once no thread can hold a reference to the
  // segment (the grace period), i.e. with exclusive access — the window in
  // which reset() is legal. Same recycle-or-free policy as the lost-race
  // path; past the pool cap the segment is truly freed, preserving the
  // memory bound.
  static void recycle_cb(void* p, void* ctx) {
    static_cast<UnboundedQueue*>(ctx)->release_segment(
        static_cast<Segment*>(p));
  }

  // Retire-list length that triggers a scan in the private domain. Small on
  // purpose: segments must reach the pool promptly or the growth path
  // allocates fresh ones while recyclable segments idle in retire lists
  // (which would re-introduce steady-state allocation). Retirement happens
  // once per 2^segment_order operations, so eager scans are negligible.
  static constexpr std::size_t kRetireScanThreshold = 2;

  Options opt_;
  const Topology* topo_ = nullptr;
  // Declaration order is load-bearing for destruction: hp_ is declared after
  // pool_ so that any late recycle_cb run by a member destructor would still
  // find the pool alive (the destructor body drains both explicitly anyway).
  SegmentPool<Segment> pool_;
  mutable HazardDomain hp_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<Segment*>> head_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<Segment*>> tail_;
  std::atomic<int> live_handles_{0};
};

}  // namespace wcq
