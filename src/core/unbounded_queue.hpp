// Unbounded wait-free-ring queue (paper Appendix A).
//
// The appendix follows LSCQ/LCRQ's recipe: an outer linked list chains
// bounded rings; a ring that fills up is *finalized* (no enqueue can ever
// succeed on it again) and a fresh ring is appended. Outer-list operations
// are rare (once per ring capacity), so their cost is dominated by the
// inner wCQ operations.
//
// Reproduction notes (DESIGN.md §4):
//  * The appendix uses CRTurn as the outer layer to keep the composition
//    wait-free end-to-end. CRTurn's dequeue-side turn protocol is not
//    reconstructible from available material (see baselines/crturn_queue.hpp);
//    the outer list here is Michael&Scott-style (lock-free) with hazard
//    pointers, which preserves the appendix's structure and memory behavior
//    while the inner rings remain wait-free.
//  * Finalization is implemented with a segment-level gate plus an
//    in-flight enqueuer counter instead of the appendix's Tail finalize bit
//    (which lives inside the ring's F&A word): a segment is unlinked only
//    when it is finalized, drained, and free of in-flight enqueuers, which
//    makes "help finalize, then append" (Fig 13 lines 21-22) unnecessary.
#pragma once

#include <atomic>
#include <new>
#include <optional>
#include <utility>

#include "common/align.hpp"
#include "common/alloc_meter.hpp"
#include "common/backoff.hpp"
#include "core/bounded_queue.hpp"
#include "reclaim/hazard_pointers.hpp"

namespace wcq {

template <typename T, typename Ring = WCQ>
class UnboundedQueue {
 public:
  // Each segment holds 2^segment_order elements (default: 1024).
  explicit UnboundedQueue(unsigned segment_order = 10)
      : segment_order_(segment_order) {
    Segment* first = Segment::create(segment_order_);
    head_.value.store(first, std::memory_order_relaxed);
    tail_.value.store(first, std::memory_order_relaxed);
  }

  ~UnboundedQueue() {
    Segment* s = head_.value.load(std::memory_order_relaxed);
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      Segment::destroy(s);
      s = next;
    }
  }

  UnboundedQueue(const UnboundedQueue&) = delete;
  UnboundedQueue& operator=(const UnboundedQueue&) = delete;

  // Never fails (allocates a new ring when the last one fills/finalizes).
  bool enqueue(T value) {
    HazardDomain& hp = HazardDomain::global();
    for (;;) {
      Segment* ltail = hp.protect(0, tail_.value);
      Segment* next = ltail->next.load(std::memory_order_acquire);
      if (next != nullptr) {
        // Outer tail lags; help swing it (Fig 13 lines 24-27).
        tail_.value.compare_exchange_strong(ltail, next,
                                            std::memory_order_seq_cst);
        continue;
      }
      if (ltail->enqueue(value)) {
        hp.clear(0);
        return true;
      }
      // Ring full: it is now finalized; append a fresh ring seeded with the
      // value (Fig 13 lines 7-8, 21-23).
      Segment* fresh = Segment::create(segment_order_);
      (void)fresh->enqueue(value);  // empty open ring: cannot fail
      Segment* expected = nullptr;
      if (ltail->next.compare_exchange_strong(expected, fresh,
                                              std::memory_order_seq_cst)) {
        tail_.value.compare_exchange_strong(ltail, fresh,
                                            std::memory_order_seq_cst);
        hp.clear(0);
        return true;
      }
      Segment::destroy(fresh);  // somebody appended first; retry there
    }
  }

  std::optional<T> dequeue() {
    HazardDomain& hp = HazardDomain::global();
    Backoff bo;
    for (;;) {
      Segment* lhead = hp.protect(0, head_.value);
      if (auto v = lhead->dequeue()) {
        hp.clear(0);
        return v;
      }
      Segment* next = lhead->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        hp.clear(0);
        return std::nullopt;  // no successor: the queue is empty
      }
      // A successor exists, so lhead is finalized. It may only be unlinked
      // once no enqueuer can still complete on it and it is drained.
      if (!lhead->quiescent()) {
        // An in-flight enqueue may still land here; try dequeuing again.
        // The enqueuer holding in_flight may be descheduled, so this wait
        // must back off or it livelocks an oversubscribed host.
        bo.pause();
        continue;
      }
      if (auto v = lhead->dequeue()) {  // drained-check must re-validate
        hp.clear(0);
        return v;
      }
      Segment* expected = lhead;
      if (head_.value.compare_exchange_strong(expected, next,
                                              std::memory_order_seq_cst)) {
        hp.clear(0);
        hp.retire(lhead,
                  [](void* p) { Segment::destroy(static_cast<Segment*>(p)); });
      }
    }
  }

  // Test hook: number of linked segments.
  u64 live_segments() const {
    u64 n = 0;
    for (Segment* s = head_.value.load(std::memory_order_acquire);
         s != nullptr; s = s->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  // One ring segment: a Fig 2 bounded queue plus finalization state.
  struct Segment {
    explicit Segment(unsigned order) : queue(order) {}

    static Segment* create(unsigned order) {
      void* mem = alloc_meter::allocate(sizeof(Segment));
      return new (mem) Segment(order);
    }
    static void destroy(Segment* s) {
      s->~Segment();
      alloc_meter::deallocate(s, sizeof(Segment));
    }

    // False once the segment is full: the segment finalizes and no enqueue
    // will ever succeed on it again (so FIFO order across segments holds).
    bool enqueue(const T& v) {
      in_flight.fetch_add(1, std::memory_order_seq_cst);
      if (finalized.load(std::memory_order_seq_cst)) {
        in_flight.fetch_sub(1, std::memory_order_seq_cst);
        return false;
      }
      const bool ok = queue.enqueue(v);
      if (!ok) {
        finalized.store(true, std::memory_order_seq_cst);
      }
      in_flight.fetch_sub(1, std::memory_order_seq_cst);
      return ok;
    }

    std::optional<T> dequeue() { return queue.dequeue(); }

    // True when no enqueuer can still add an element to this segment.
    bool quiescent() const {
      return finalized.load(std::memory_order_seq_cst) &&
             in_flight.load(std::memory_order_seq_cst) == 0;
    }

    BoundedQueue<T, Ring> queue;
    alignas(kCacheLine) std::atomic<bool> finalized{false};
    alignas(kCacheLine) std::atomic<int> in_flight{0};
    alignas(kCacheLine) std::atomic<Segment*> next{nullptr};
  };

  unsigned segment_order_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<Segment*>> head_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<Segment*>> tail_;
};

}  // namespace wcq
