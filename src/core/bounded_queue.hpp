// BoundedQueue<T> — the paper's Fig 2 indirection pattern.
//
// SCQ/wCQ rings transfer *indices*; real payloads live in a separate data
// array referenced by those indices. Two rings are used: `fq` holds free
// indices (initially full: 0..n-1) and `aq` holds allocated ones. Enqueue =
// take a free index, write the payload, publish the index through aq;
// Dequeue = take an index from aq, read the payload, recycle the index
// through fq. Because at most n indices exist, the rings' "Enqueue never
// checks full" precondition holds by construction, and "queue full" is
// simply "fq empty".
//
// The progress property is inherited from the Ring parameter: wait-free with
// WCQ (default), lock-free with SCQ.
#pragma once

#include <cassert>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/align.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"

namespace wcq {

template <typename T, typename Ring = WCQ>
class BoundedQueue {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "payloads move across threads; moves must not throw");

 public:
  // Capacity = 2^order elements.
  explicit BoundedQueue(unsigned order)
      : aq_(order), fq_(order), data_(aq_.capacity(), kCacheLine) {
    for (u64 i = 0; i < fq_.capacity(); ++i) {
      fq_.enqueue(i);
    }
  }

  ~BoundedQueue() {
    // Destroy any payloads still in flight.
    while (auto idx = aq_.dequeue()) {
      slot(*idx)->~T();
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  u64 capacity() const { return aq_.capacity(); }

  // Returns false when the queue is full.
  bool enqueue(T value) {
    const auto idx = fq_.dequeue();
    if (!idx) return false;
    ::new (static_cast<void*>(slot(*idx))) T(std::move(value));
    aq_.enqueue(*idx);
    return true;
  }

  // Returns nullopt when the queue is empty.
  std::optional<T> dequeue() {
    const auto idx = aq_.dequeue();
    if (!idx) return std::nullopt;
    T* p = slot(*idx);
    std::optional<T> out{std::move(*p)};
    p->~T();
    fq_.enqueue(*idx);
    return out;
  }

  // Ring access for diagnostics (e.g., threshold inspection in tests).
  const Ring& aq() const { return aq_; }
  const Ring& fq() const { return fq_; }

 private:
  struct alignas(alignof(T)) Storage {
    unsigned char bytes[sizeof(T)];
  };

  T* slot(u64 idx) {
    assert(idx < data_.size());
    return std::launder(reinterpret_cast<T*>(data_[idx].bytes));
  }

  Ring aq_;
  Ring fq_;
  AlignedArray<Storage> data_;
};

}  // namespace wcq
