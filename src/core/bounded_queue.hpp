// BoundedQueue<T> — the paper's Fig 2 indirection pattern.
//
// SCQ/wCQ rings transfer *indices*; real payloads live in a separate data
// array referenced by those indices. Two rings are used: `fq` holds free
// indices (initially full: 0..n-1) and `aq` holds allocated ones. Enqueue =
// take a free index, write the payload, publish the index through aq;
// Dequeue = take an index from aq, read the payload, recycle the index
// through fq. Because at most n indices exist, the rings' "Enqueue never
// checks full" precondition holds by construction, and "queue full" is
// simply "fq empty".
//
// Index magazines (DESIGN.md §9): fq is a free list — FIFO order among free
// indices is unobservable — so with Options::magazine (the default) each
// thread caches recently-freed indices in a private magazine
// (scale/index_magazine.hpp) and the fq half of every operation's
// shared-ring cost (seq_cst F&A + threshold traffic) amortizes to one bulk
// refill/spill per half-magazine span. The "full" contract relaxes
// accordingly: an enqueue that finds its magazine and fq empty performs one
// bounded reclaim sweep over all magazines (stealing a cached index) before
// reporting full, so cached-but-unused indices can never wedge the queue and
// UnboundedQueue segments never finalize before their exact capacity is
// live. A thread-exit hook flushes a dying thread's magazine back to fq, so
// no index leaks across thread churn (capacity stays exact).
//
// The progress property is inherited from the Ring parameter: wait-free with
// WCQ (default), lock-free with SCQ. Magazine operations are bounded scans
// and every magazine↔ring interaction uses the existing wait-free paths, so
// the composition's progress class is unchanged.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/align.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "runtime/thread_registry.hpp"
#include "scale/index_magazine.hpp"

namespace wcq {

namespace detail {

// Ring bulk capability: BasicWCQ rings expose {enqueue,dequeue}_bulk
// (DESIGN.md §7); SCQ does not, and falls back to per-op loops below.
template <typename Ring, typename = void>
struct RingHasBulk : std::false_type {};
template <typename Ring>
struct RingHasBulk<
    Ring, std::void_t<decltype(std::declval<Ring&>().enqueue_bulk(
                          static_cast<const u64*>(nullptr), std::size_t{0})),
                      decltype(std::declval<Ring&>().dequeue_bulk(
                          static_cast<u64*>(nullptr), std::size_t{0}))>>
    : std::true_type {};

}  // namespace detail

template <typename T, typename Ring = WCQ>
class BoundedQueue {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "payloads move across threads; moves must not throw");

 public:
  struct Options {
    // Capacity = 2^order elements.
    unsigned order;
    // Per-thread free-index magazines; `magazine.capacity` is clamped to
    // IndexMagazines::kMaxSlots and to capacity/4 (tiny rings get tiny or no
    // magazines, keeping the full/finalize transition prompt). Disabled
    // reproduces the plain Fig 2 double-ring behavior exactly.
    IndexMagazines::Config magazine{};
  };

  explicit BoundedQueue(Options opt)
      : aq_(opt.order),
        fq_(opt.order),
        data_(aq_.capacity(), kCacheLine),
        mags_(effective_magazine_capacity(opt.magazine, aq_.capacity()),
              ThreadRegistry::kMaxThreads) {
    for (u64 i = 0; i < fq_.capacity(); ++i) {
      fq_.enqueue(i);
    }
    if (mags_.enabled()) {
      // A dying thread flushes its cached free indices back to fq; without
      // this an index could only be recovered by a (full-edge) reclaim
      // sweep, and repeated churn would strand capacity in dead magazines.
      hook_handle_ = ThreadRegistry::register_exit_hook(
          &BoundedQueue::exit_hook_cb, this);
    }
  }

  explicit BoundedQueue(unsigned order) : BoundedQueue(Options{order}) {}

  ~BoundedQueue() {
    if (mags_.enabled()) {
      // Blocks until any in-flight exit flush completes; after this no
      // thread can touch fq_/mags_ through the hook path.
      ThreadRegistry::unregister_exit_hook(hook_handle_);
    }
    destroy_stragglers();
  }

  // Re-initialize to the freshly-constructed state: destroy any payloads
  // still in flight, rewind both rings, and refill fq with 0..n-1. Same
  // exclusivity precondition as the rings' reset() — this is the bounded
  // layer of the segment-recycling path (DESIGN.md §8), where the hazard
  // grace period guarantees no thread can still touch this queue... with one
  // exception: a thread-exit hook needs no hazard to flush a magazine, so
  // the magazine/fq rewind serializes with flushes on this queue's flush
  // lock. Either the flush completed first (its indices land in the old fq
  // and are discarded by the rewind) or it runs after (the magazine is
  // already empty — a no-op); both orders preserve the
  // exactly-one-of-each-index invariant (DESIGN.md §9). The lock is
  // per-queue and taken only here and in the exit flush — never by
  // enqueue/dequeue — so operation progress is unaffected and resets of
  // unrelated queues do not serialize.
  void reset() {
    destroy_stragglers();
    aq_.reset();
    if (mags_.enabled()) {
      const std::lock_guard<std::mutex> lk(mag_flush_mu_);
      reset_free_indices();
    } else {
      reset_free_indices();
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  u64 capacity() const { return aq_.capacity(); }

  // Returns false when the queue is full.
  bool enqueue(T value) { return enqueue_movable(value); }

  // Enqueue by reference: on success `value` is moved-from, on failure it is
  // left intact. Callers that retarget a rejected element (ShardedQueue's
  // spill sweep) need the failure case to preserve ownership, which the
  // by-value overload cannot.
  bool enqueue_movable(T& value) {
    u64 idx;
    if (!claim_index(idx)) return false;
    ::new (static_cast<void*>(slot(idx))) T(std::move(value));
    aq_.enqueue(idx);
    return true;
  }

  // Returns nullopt when the queue is empty.
  std::optional<T> dequeue() {
    const auto idx = aq_.dequeue();
    if (!idx) return std::nullopt;
    T* p = slot(*idx);
    std::optional<T> out{std::move(*p)};
    p->~T();
    release_index(*idx);
    return out;
  }

  // Batch insert (DESIGN.md §7): enqueues up to `n` values from `first`,
  // returning how many were taken. Exactly the first `ret` elements are
  // moved-from (a const source is copied instead); partial success means the
  // queue filled up mid-span. Free indices are claimed from the caller's
  // magazine first, then through the rings' bulk paths in chunks, so the
  // per-operation Tail/Head F&A and threshold traffic amortize across the
  // span.
  template <typename U,
            std::enable_if_t<std::is_same_v<std::remove_const_t<U>, T>, int> = 0>
  std::size_t enqueue_bulk(U* first, std::size_t n) {
    std::size_t done = 0;
    u64 idx[kBulkChunk];
    while (done < n) {
      const std::size_t want = std::min(n - done, kBulkChunk);
      const std::size_t got = claim_indices(idx, want);
      if (got == 0) break;  // full
      for (std::size_t k = 0; k < got; ++k) {
        ::new (static_cast<void*>(slot(idx[k]))) T(std::move(first[done + k]));
      }
      if constexpr (detail::RingHasBulk<Ring>::value) {
        aq_.enqueue_bulk(idx, got);
      } else {
        for (std::size_t k = 0; k < got; ++k) aq_.enqueue(idx[k]);
      }
      done += got;
      if (got < want) break;
    }
    return done;
  }

  // Batch remove (DESIGN.md §7): move-assigns up to `n` elements into `out`
  // and returns how many. Fewer than `n` does not prove emptiness (the ring
  // bulk path may cede contended ranks); use dequeue() for an authoritative
  // empty answer.
  std::size_t dequeue_bulk(T* out, std::size_t n) {
    static_assert(std::is_nothrow_move_assignable_v<T>,
                  "dequeue_bulk assigns into caller storage");
    std::size_t done = 0;
    u64 idx[kBulkChunk];
    while (done < n) {
      const std::size_t want = std::min(n - done, kBulkChunk);
      std::size_t got = 0;
      if constexpr (detail::RingHasBulk<Ring>::value) {
        got = aq_.dequeue_bulk(idx, want);
      } else {
        while (got < want) {
          const auto i = aq_.dequeue();
          if (!i) break;
          idx[got++] = *i;
        }
      }
      if (got == 0) break;  // empty (or fully contended)
      for (std::size_t k = 0; k < got; ++k) {
        T* p = slot(idx[k]);
        out[done + k] = std::move(*p);
        p->~T();
      }
      release_indices(idx, got);
      done += got;
      if (got < want) break;
    }
    return done;
  }

  // Ring access for diagnostics (e.g., threshold inspection in tests).
  const Ring& aq() const { return aq_; }
  const Ring& fq() const { return fq_; }
  // Free indices currently cached in magazines (exact at quiescence).
  std::size_t magazine_cached() const { return mags_.cached_total(); }
  std::size_t magazine_capacity() const { return mags_.capacity(); }

 private:
  // Bulk spans are staged through a fixed stack buffer of indices so the
  // batch paths never allocate; larger caller spans just loop chunks.
  static constexpr std::size_t kBulkChunk = 64;

  static std::size_t effective_magazine_capacity(
      const IndexMagazines::Config& cfg, u64 ring_capacity) {
    if (!cfg.enabled) return 0;
    const std::size_t by_ring = static_cast<std::size_t>(ring_capacity / 4);
    return std::min(cfg.capacity, by_ring);
  }

  // --- free-index claim/release (the fq half of Fig 2) ----------------------

  // Claim one free index: magazine, then fq (refilling the magazine through
  // one bulk dequeue), then the reclaim sweep. False = queue full.
  bool claim_index(u64& idx) {
    if (!mags_.enabled()) {
      const auto i = fq_.dequeue();
      if (!i) return false;
      idx = *i;
      return true;
    }
    if (mags_.try_take(idx)) return true;  // steady-state hit: no ring op
    if (refill_claim(idx)) return true;
    return mags_.steal(idx);
  }

  // One bulk fq dequeue refills the magazine and yields the caller's index:
  // the Head F&A and threshold decrement amortize across the span.
  bool refill_claim(u64& idx) {
    u64 buf[IndexMagazines::kMaxSlots + 1];
    const std::size_t want = 1 + mags_.refill_span();
    std::size_t got = 0;
    if constexpr (detail::RingHasBulk<Ring>::value) {
      got = fq_.dequeue_bulk(buf, want);
      if (got == 0) {
        // The bulk path may cede contended ranks without proving emptiness;
        // the single-op dequeue is the authoritative answer (and is an O(1)
        // threshold check when fq is truly empty).
        const auto i = fq_.dequeue();
        if (!i) return false;
        idx = *i;
        return true;
      }
    } else {
      while (got < want) {
        const auto i = fq_.dequeue();
        if (!i) break;
        buf[got++] = *i;
      }
      if (got == 0) return false;
    }
    idx = buf[0];
    for (std::size_t k = 1; k < got; ++k) {
      // Cannot overflow in practice (only the owner puts, and it just saw
      // its magazine empty); the fq fallback keeps a lost index impossible.
      if (!mags_.try_put(buf[k])) fq_.enqueue(buf[k]);
    }
    return true;
  }

  // Claim up to `want` indices for a bulk span: magazine first, fq bulk for
  // the remainder, reclaim sweep before concluding full.
  std::size_t claim_indices(u64* idx, std::size_t want) {
    std::size_t got = 0;
    if (mags_.enabled()) got = mags_.take_some(idx, want);
    if (got < want) {
      if constexpr (detail::RingHasBulk<Ring>::value) {
        got += fq_.dequeue_bulk(idx + got, want - got);
      } else {
        while (got < want) {
          const auto i = fq_.dequeue();
          if (!i) break;
          idx[got++] = *i;
        }
      }
    }
    if (got == 0 && mags_.enabled()) {
      if (const auto i = fq_.dequeue()) {  // authoritative (see refill_claim)
        idx[got++] = *i;
      } else if (u64 s; mags_.steal(s)) {
        idx[got++] = s;
      }
    }
    return got;
  }

  // Recycle one freed index: cache it; when the magazine is past its
  // high-water mark (full), spill half back through one bulk fq enqueue so
  // the Tail F&A and threshold re-arm amortize across the spilled span.
  void release_index(u64 idx) {
    if (!mags_.enabled()) {
      fq_.enqueue(idx);
      return;
    }
    if (mags_.try_put(idx)) return;
    u64 buf[IndexMagazines::kMaxSlots];
    const std::size_t n = mags_.take_some(buf, mags_.spill_span());
    if (n > 0) bulk_release_to_fq(buf, n);
    if (!mags_.try_put(idx)) fq_.enqueue(idx);
  }

  // Recycle a bulk span: top the magazine up, send the rest through one fq
  // bulk enqueue.
  void release_indices(const u64* idx, std::size_t n) {
    std::size_t k = 0;
    if (mags_.enabled()) {
      while (k < n && mags_.try_put(idx[k])) ++k;
    }
    if (k < n) bulk_release_to_fq(idx + k, n - k);
  }

  void bulk_release_to_fq(const u64* idx, std::size_t n) {
    if constexpr (detail::RingHasBulk<Ring>::value) {
      fq_.enqueue_bulk(idx, n);
    } else {
      for (std::size_t k = 0; k < n; ++k) fq_.enqueue(idx[k]);
    }
  }

  // Thread-exit flush: return the dying thread's cached indices to fq. Runs
  // on the exiting thread (its tid is still valid, so the fq enqueue's
  // per-thread record access works), serialized with reset() by this
  // queue's flush lock — a flush landing mid-rewind would duplicate free
  // indices (DESIGN.md §9). Lock order is registry hook lock → flush lock;
  // nothing takes them in the other order.
  static void exit_hook_cb(void* ctx, unsigned tid) {
    auto* self = static_cast<BoundedQueue*>(ctx);
    const std::lock_guard<std::mutex> lk(self->mag_flush_mu_);
    u64 buf[IndexMagazines::kMaxSlots];
    const std::size_t got =
        self->mags_.drain_tid(tid, buf, IndexMagazines::kMaxSlots);
    if (got > 0) self->bulk_release_to_fq(buf, got);
  }

  // Magazine + fq rewind (under the flush lock when magazines are on).
  void reset_free_indices() {
    mags_.clear();
    fq_.reset();
    for (u64 i = 0; i < fq_.capacity(); ++i) {
      fq_.enqueue(i);
    }
  }

  // Destroy any payloads still in flight. Single-threaded drain: successful
  // dequeues never burn threshold, so this loop empties the queue exactly.
  void destroy_stragglers() {
    while (auto idx = aq_.dequeue()) {
      slot(*idx)->~T();
    }
  }

  struct alignas(alignof(T)) Storage {
    unsigned char bytes[sizeof(T)];
  };

  T* slot(u64 idx) {
    assert(idx < data_.size());
    return std::launder(reinterpret_cast<T*>(data_[idx].bytes));
  }

  Ring aq_;
  Ring fq_;
  AlignedArray<Storage> data_;
  IndexMagazines mags_;
  // Serializes exit flushes against reset()'s magazine/fq rewind. Never
  // touched by enqueue/dequeue, so the operations' progress class is
  // untouched; contention is thread-exit × this queue's reset, both rare.
  std::mutex mag_flush_mu_;
  std::uint64_t hook_handle_ = 0;
};

}  // namespace wcq
