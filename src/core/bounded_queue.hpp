// BoundedQueue<T> — the paper's Fig 2 indirection pattern.
//
// SCQ/wCQ rings transfer *indices*; real payloads live in a separate data
// array referenced by those indices. Two rings are used: `fq` holds free
// indices (initially full: 0..n-1) and `aq` holds allocated ones. Enqueue =
// take a free index, write the payload, publish the index through aq;
// Dequeue = take an index from aq, read the payload, recycle the index
// through fq. Because at most n indices exist, the rings' "Enqueue never
// checks full" precondition holds by construction, and "queue full" is
// simply "fq empty".
//
// Index magazines (DESIGN.md §9): fq is a free list — FIFO order among free
// indices is unobservable — so with Options::magazine (the default) each
// thread caches recently-freed indices in a private magazine
// (scale/index_magazine.hpp) and the fq half of every operation's
// shared-ring cost (seq_cst F&A + threshold traffic) amortizes to one bulk
// refill/spill per half-magazine span. The "full" contract relaxes
// accordingly: an enqueue that finds its magazine and fq empty performs one
// bounded reclaim sweep over all magazines (stealing a cached index) before
// reporting full, so cached-but-unused indices can never wedge the queue and
// UnboundedQueue segments never finalize before their exact capacity is
// live. A thread-exit hook flushes a dying thread's magazine back to fq, so
// no index leaks across thread churn (capacity stays exact).
//
// Session handles (DESIGN.md §10): every per-(queue, thread) lookup this
// layer and the rings below it used to repeat per operation — the registry
// tid, the wCQ thread-record pointer, the magazine block — lives in one
// `Handle`. `acquire()` returns an owned handle (flushes its magazine back
// to fq on destruction and pins the queue: destroying the queue first is a
// diagnosed abort); `handle_for(tid)` builds an unowned per-op view by pure
// arithmetic for composed layers that already know their tid (UnboundedQueue
// segments, the implicit wrappers). The implicit API is unchanged and costs
// exactly one registry lookup per operation — it resolves the thread_local
// tid once and derives the session from it, which is equivalent to (and
// safer than) caching handles in thread_local storage (see DESIGN.md §10 for
// the equivalence argument).
//
// The progress property is inherited from the Ring parameter: wait-free with
// WCQ (default), lock-free with SCQ. Magazine operations are bounded scans
// and every magazine↔ring interaction uses the existing wait-free paths, so
// the composition's progress class is unchanged.
//
// Degree-specialized rings (DESIGN.md §13): `BoundedQueue<T, MpscRing>` /
// `<T, SpmcRing>` restrict the *data* ring only. The free ring is chosen
// separately (the FreeRing parameter, defaulted by detail::DefaultFreeRing)
// because fq's degree profile never matches aq's — free indices flow back
// from consumers, exit hooks and reset paths on arbitrary threads — so
// specialized aqs pair with an MPMC SCQ fq by default.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/align.hpp"
#include "core/mpsc_ring.hpp"
#include "core/scq.hpp"
#include "core/spmc_ring.hpp"
#include "core/wcq.hpp"
#include "runtime/thread_registry.hpp"
#include "scale/index_magazine.hpp"

namespace wcq {

namespace detail {

// The fq ring for a given aq ring (DESIGN.md §13). fq's degree profile is
// NOT aq's: ctor pre-fill, cross-thread magazine exit flushes and owned-
// handle destruction all enqueue free indices into fq from arbitrary
// threads, and every enqueuer of the data queue dequeues from fq. So when
// aq is degree-specialized the free ring falls back to the MPMC SCQ —
// `BoundedQueue<T, MpscRing>` stays a drop-in instantiation while keeping
// the index-recycling paths unrestricted. Symmetric rings keep the historic
// fq == aq choice (wCQ's fq wait-freedom matters for the Fig 2 contract).
template <typename Ring>
struct DefaultFreeRing {
  using type = Ring;
};
template <>
struct DefaultFreeRing<MpscRing> {
  using type = SCQ;
};
template <>
struct DefaultFreeRing<SpmcRing> {
  using type = SCQ;
};

// Degree-specialized rings pin their owner thread via a SessionGuard; the
// exclusive-access paths below (destructor drain, reset) legitimately run
// on a different thread than the bound owner, so they clear the binding
// first. Symmetric rings have no such method — compile-time no-op.
template <typename R, typename = void>
struct HasReleaseSessions : std::false_type {};
template <typename R>
struct HasReleaseSessions<
    R, std::void_t<decltype(std::declval<R&>().release_sessions())>>
    : std::true_type {};

template <typename R>
void release_ring_sessions(R& ring) {
  if constexpr (HasReleaseSessions<R>::value) ring.release_sessions();
}

}  // namespace detail

template <typename T, typename Ring = WCQ,
          typename FreeRing = typename detail::DefaultFreeRing<Ring>::type>
class BoundedQueue {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "payloads move across threads; moves must not throw");

 public:
  struct Options {
    // Capacity = 2^order elements.
    unsigned order;
    // Per-thread free-index magazines; `magazine.capacity` is clamped to
    // IndexMagazines::kMaxSlots and to capacity/4 (tiny rings get tiny or no
    // magazines, keeping the full/finalize transition prompt). Disabled
    // reproduces the plain Fig 2 double-ring behavior exactly.
    IndexMagazines::Config magazine{};
  };

  // Per-thread session (DESIGN.md §10): dense tid, both rings' sessions and
  // the magazine block, resolved once. Move-only. An *owned* handle (from
  // acquire()) flushes its magazine back to fq on destruction — the exit
  // hook remains as the fallback for implicit use — and participates in
  // lifetime checking: the queue aborts with a diagnostic if destroyed
  // while owned handles are live, turning a handle-outlives-queue bug into
  // a deterministic failure instead of a use-after-free. Views from
  // handle_for() carry no ownership and may be built per operation.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& o) noexcept
        : q_(o.q_), tid_(o.tid_), aq_h_(o.aq_h_), fq_h_(o.fq_h_),
          mag_(o.mag_), owned_(o.owned_) {
      o.q_ = nullptr;
      o.owned_ = false;
    }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        q_ = o.q_;
        tid_ = o.tid_;
        aq_h_ = o.aq_h_;
        fq_h_ = o.fq_h_;
        mag_ = o.mag_;
        owned_ = o.owned_;
        o.q_ = nullptr;
        o.owned_ = false;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    unsigned tid() const { return tid_; }
    bool owned() const { return owned_; }

   private:
    friend class BoundedQueue;
    Handle(BoundedQueue* q, unsigned tid, bool owned)
        : q_(q), tid_(tid), aq_h_(q->aq_.handle_for(tid)),
          fq_h_(q->fq_.handle_for(tid)),
          mag_(q->mags_.block_for(tid)), owned_(owned) {}

    void release() {
      if (owned_ && q_ != nullptr) {
        q_->handle_released(*this);
      }
      q_ = nullptr;
      owned_ = false;
    }

    BoundedQueue* q_ = nullptr;
    unsigned tid_ = 0;
    typename Ring::Handle aq_h_{};
    typename FreeRing::Handle fq_h_{};
    std::atomic<u64>* mag_ = nullptr;  // null when magazines are disabled
    bool owned_ = false;
  };

  explicit BoundedQueue(Options opt)
      : aq_(opt.order),
        fq_(opt.order),
        data_(aq_.capacity(), kCacheLine),
        mags_(effective_magazine_capacity(opt.magazine, aq_.capacity()),
              ThreadRegistry::kMaxThreads) {
    for (u64 i = 0; i < fq_.capacity(); ++i) {
      fq_.enqueue(i);
    }
    if (mags_.enabled()) {
      // A dying thread flushes its cached free indices back to fq; without
      // this an index could only be recovered by a (full-edge) reclaim
      // sweep, and repeated churn would strand capacity in dead magazines.
      // Explicit handles flush earlier, on handle destruction; the hook is
      // the safety net for implicit use and for handles that outlive their
      // thread's last operation.
      hook_handle_ = ThreadRegistry::register_exit_hook(
          &BoundedQueue::exit_hook_cb, this);
    }
  }

  explicit BoundedQueue(unsigned order) : BoundedQueue(Options{order}) {}

  ~BoundedQueue() {
    const int live = live_handles_.load(std::memory_order_acquire);
    if (live != 0) {
      // A live owned handle holds pointers into this queue; letting the
      // destructor proceed would leave it dangling and its eventual flush
      // would scribble on freed memory. Fail deterministically instead.
      std::fprintf(stderr,
                   "wcq: BoundedQueue destroyed with %d live session "
                   "handle(s); destroy handles before their queue\n",
                   live);
      std::abort();
    }
    if (mags_.enabled()) {
      // Blocks until any in-flight exit flush completes; after this no
      // thread can touch fq_/mags_ through the hook path.
      ThreadRegistry::unregister_exit_hook(hook_handle_);
    }
    destroy_stragglers();
  }

  // Re-initialize to the freshly-constructed state: destroy any payloads
  // still in flight, rewind both rings, and refill fq with 0..n-1. Same
  // exclusivity precondition as the rings' reset() — this is the bounded
  // layer of the segment-recycling path (DESIGN.md §8), where the hazard
  // grace period guarantees no thread can still touch this queue... with one
  // exception: a thread-exit hook (or an owned handle's destructor) needs no
  // hazard to flush a magazine, so the magazine/fq rewind serializes with
  // flushes on this queue's flush lock. Either the flush completed first
  // (its indices land in the old fq and are discarded by the rewind) or it
  // runs after (the magazine is already empty — a no-op); both orders
  // preserve the exactly-one-of-each-index invariant (DESIGN.md §9). The
  // lock is per-queue and taken only here and in the flush paths — never by
  // enqueue/dequeue — so operation progress is unaffected and resets of
  // unrelated queues do not serialize.
  void reset() {
    destroy_stragglers();
    aq_.reset();
    if (mags_.enabled()) {
      const std::lock_guard<std::mutex> lk(mag_flush_mu_);
      reset_free_indices();
    } else {
      reset_free_indices();
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  u64 capacity() const { return aq_.capacity(); }

  // --- session acquisition (DESIGN.md §10) ---------------------------------

  // Owned per-thread session for the calling thread: one registry lookup
  // now, zero on every subsequent handle operation (steady state). The
  // handle must be destroyed before the queue (checked) and used only on
  // this thread.
  Handle acquire() {
    live_handles_.fetch_add(1, std::memory_order_acq_rel);
    return Handle(this, ThreadRegistry::tid(), /*owned=*/true);
  }

  // Unowned per-op session view for a known tid: pure arithmetic, no
  // registry access, no flush-on-destroy. Composed layers (UnboundedQueue
  // segments, ShardedQueue sweeps) and the implicit wrappers use this.
  Handle handle_for(unsigned tid) {
    return Handle(this, tid, /*owned=*/false);
  }

  // --- operations ----------------------------------------------------------

  // Returns false when the queue is full.
  bool enqueue(T value) { return enqueue_movable(value); }
  bool enqueue(Handle& h, T value) { return enqueue_movable(h, value); }

  // Enqueue by reference: on success `value` is moved-from, on failure it is
  // left intact. Callers that retarget a rejected element (ShardedQueue's
  // spill sweep) need the failure case to preserve ownership, which the
  // by-value overload cannot.
  bool enqueue_movable(T& value) {
    Handle h = handle_for(ThreadRegistry::tid());
    return enqueue_movable(h, value);
  }

  bool enqueue_movable(Handle& h, T& value) {
    u64 idx;
    if (!claim_index(h, idx)) return false;
    ::new (static_cast<void*>(slot(idx))) T(std::move(value));
    aq_.enqueue(h.aq_h_, idx);
    return true;
  }

  // Returns nullopt when the queue is empty.
  std::optional<T> dequeue() {
    Handle h = handle_for(ThreadRegistry::tid());
    return dequeue(h);
  }

  std::optional<T> dequeue(Handle& h) {
    const auto idx = aq_.dequeue(h.aq_h_);
    if (!idx) return std::nullopt;
    T* p = slot(*idx);
    std::optional<T> out{std::move(*p)};
    p->~T();
    release_index(h, *idx);
    return out;
  }

  // Batch insert (DESIGN.md §7): enqueues up to `n` values from `first`,
  // returning how many were taken. Exactly the first `ret` elements are
  // moved-from (a const source is copied instead); partial success means the
  // queue filled up mid-span. Free indices are claimed from the caller's
  // magazine first, then through the rings' bulk paths in chunks, so the
  // per-operation Tail/Head F&A and threshold traffic amortize across the
  // span.
  template <typename U,
            std::enable_if_t<std::is_same_v<std::remove_const_t<U>, T>, int> = 0>
  std::size_t enqueue_bulk(U* first, std::size_t n) {
    Handle h = handle_for(ThreadRegistry::tid());
    return enqueue_bulk(h, first, n);
  }

  template <typename U,
            std::enable_if_t<std::is_same_v<std::remove_const_t<U>, T>, int> = 0>
  std::size_t enqueue_bulk(Handle& h, U* first, std::size_t n) {
    std::size_t done = 0;
    u64 idx[kBulkChunk];
    while (done < n) {
      const std::size_t want = std::min(n - done, kBulkChunk);
      const std::size_t got = claim_indices(h, idx, want);
      if (got == 0) break;  // full
      for (std::size_t k = 0; k < got; ++k) {
        ::new (static_cast<void*>(slot(idx[k]))) T(std::move(first[done + k]));
      }
      aq_.enqueue_bulk(h.aq_h_, idx, got);
      done += got;
      if (got < want) break;
    }
    return done;
  }

  // Batch remove (DESIGN.md §7): move-assigns up to `n` elements into `out`
  // and returns how many. Fewer than `n` does not prove emptiness (the ring
  // bulk path may cede contended ranks); use dequeue() for an authoritative
  // empty answer.
  std::size_t dequeue_bulk(T* out, std::size_t n) {
    Handle h = handle_for(ThreadRegistry::tid());
    return dequeue_bulk(h, out, n);
  }

  std::size_t dequeue_bulk(Handle& h, T* out, std::size_t n) {
    static_assert(std::is_nothrow_move_assignable_v<T>,
                  "dequeue_bulk assigns into caller storage");
    std::size_t done = 0;
    u64 idx[kBulkChunk];
    while (done < n) {
      const std::size_t want = std::min(n - done, kBulkChunk);
      const std::size_t got = aq_.dequeue_bulk(h.aq_h_, idx, want);
      if (got == 0) break;  // empty (or fully contended)
      for (std::size_t k = 0; k < got; ++k) {
        T* p = slot(idx[k]);
        out[done + k] = std::move(*p);
        p->~T();
      }
      release_indices(h, idx, got);
      done += got;
      if (got < want) break;
    }
    return done;
  }

  // Ring access for diagnostics (e.g., threshold inspection in tests).
  const Ring& aq() const { return aq_; }
  const FreeRing& fq() const { return fq_; }
  // Free indices currently cached in magazines (exact at quiescence).
  std::size_t magazine_cached() const { return mags_.cached_total(); }
  std::size_t magazine_capacity() const { return mags_.capacity(); }
  // Owned session handles currently alive (test hook).
  int live_handles() const {
    return live_handles_.load(std::memory_order_acquire);
  }

 private:
  // Bulk spans are staged through a fixed stack buffer of indices so the
  // batch paths never allocate; larger caller spans just loop chunks.
  static constexpr std::size_t kBulkChunk = 64;

  static std::size_t effective_magazine_capacity(
      const IndexMagazines::Config& cfg, u64 ring_capacity) {
    if (!cfg.enabled) return 0;
    const std::size_t by_ring = static_cast<std::size_t>(ring_capacity / 4);
    return std::min(cfg.capacity, by_ring);
  }

  // --- free-index claim/release (the fq half of Fig 2) ----------------------

  // Claim one free index: magazine, then fq (refilling the magazine through
  // one bulk dequeue), then the reclaim sweep. False = queue full.
  bool claim_index(Handle& h, u64& idx) {
    if (h.mag_ == nullptr) {
      const auto i = fq_.dequeue(h.fq_h_);
      if (!i) return false;
      idx = *i;
      return true;
    }
    if (mags_.try_take_at(h.mag_, idx)) return true;  // steady state: no ring op
    if (refill_claim(h, idx)) return true;
    return mags_.steal_for(h.tid_, idx);
  }

  // One bulk fq dequeue refills the magazine and yields the caller's index:
  // the Head F&A and threshold decrement amortize across the span.
  bool refill_claim(Handle& h, u64& idx) {
    u64 buf[IndexMagazines::kMaxSlots + 1];
    const std::size_t want = 1 + mags_.refill_span();
    const std::size_t got = fq_.dequeue_bulk(h.fq_h_, buf, want);
    if (got == 0) {
      // The bulk path may cede contended ranks without proving emptiness;
      // the single-op dequeue is the authoritative answer (and is an O(1)
      // threshold check when fq is truly empty).
      const auto i = fq_.dequeue(h.fq_h_);
      if (!i) return false;
      idx = *i;
      return true;
    }
    idx = buf[0];
    for (std::size_t k = 1; k < got; ++k) {
      // Cannot overflow in practice (only the owner puts, and it just saw
      // its magazine empty); the fq fallback keeps a lost index impossible.
      if (!mags_.try_put_at(h.mag_, buf[k])) fq_.enqueue(h.fq_h_, buf[k]);
    }
    return true;
  }

  // Claim up to `want` indices for a bulk span: magazine first, fq bulk for
  // the remainder, reclaim sweep before concluding full.
  std::size_t claim_indices(Handle& h, u64* idx, std::size_t want) {
    std::size_t got = 0;
    if (h.mag_ != nullptr) got = mags_.take_some_at(h.mag_, idx, want);
    if (got < want) {
      got += fq_.dequeue_bulk(h.fq_h_, idx + got, want - got);
    }
    if (got == 0) {
      // The bulk path may cede contended ranks without proving emptiness;
      // a single-op dequeue is the authoritative full answer (and an O(1)
      // threshold check when fq is truly empty). This applies with or
      // without magazines — the reclaim sweep additionally recovers a
      // cached index before "full" is concluded.
      if (const auto i = fq_.dequeue(h.fq_h_)) {
        idx[got++] = *i;
      } else if (h.mag_ != nullptr) {
        if (u64 s; mags_.steal_for(h.tid_, s)) idx[got++] = s;
      }
    }
    return got;
  }

  // Recycle one freed index: cache it; when the magazine is past its
  // high-water mark (full), spill half back through one bulk fq enqueue so
  // the Tail F&A and threshold re-arm amortize across the spilled span.
  void release_index(Handle& h, u64 idx) {
    if (h.mag_ == nullptr) {
      fq_.enqueue(h.fq_h_, idx);
      return;
    }
    if (mags_.try_put_at(h.mag_, idx)) return;
    u64 buf[IndexMagazines::kMaxSlots];
    const std::size_t n = mags_.take_some_at(h.mag_, buf, mags_.spill_span());
    if (n > 0) fq_.enqueue_bulk(h.fq_h_, buf, n);
    if (!mags_.try_put_at(h.mag_, idx)) fq_.enqueue(h.fq_h_, idx);
  }

  // Recycle a bulk span: top the magazine up, send the rest through one fq
  // bulk enqueue.
  void release_indices(Handle& h, const u64* idx, std::size_t n) {
    std::size_t k = 0;
    if (h.mag_ != nullptr) {
      while (k < n && mags_.try_put_at(h.mag_, idx[k])) ++k;
    }
    if (k < n) fq_.enqueue_bulk(h.fq_h_, idx + k, n - k);
  }

 public:
  // Flush `tid`'s magazine back to fq, serialized with reset() by this
  // queue's flush lock — a flush landing mid-rewind would duplicate free
  // indices (DESIGN.md §9). Shared by the thread-exit hook (which runs on
  // the exiting thread, whose tid is still valid), an owned handle's
  // destructor, and the sharded front-end's session teardown. Public so
  // composed layers can return a released session's cached capacity
  // promptly; safe to call from any thread at any time.
  //
  // The fq enqueue runs through the *calling* thread's ring session, never
  // `tid`'s: a handle may be destroyed on a different thread than the one
  // that used it (or after that thread exited and its tid was recycled to
  // a live thread), and driving the ring through records_[tid] from here
  // would race that thread's concurrent operations. The magazine side is
  // already cross-thread safe (drain_tid takes slots by CAS). Lock order
  // is registry hook lock → flush lock; nothing takes them in the other
  // order.
  void flush_magazine(unsigned tid) {
    if (!mags_.enabled()) return;
    const std::lock_guard<std::mutex> lk(mag_flush_mu_);
    u64 buf[IndexMagazines::kMaxSlots];
    const std::size_t got =
        mags_.drain_tid(tid, buf, IndexMagazines::kMaxSlots);
    if (got > 0) {
      typename FreeRing::Handle fq_h = fq_.handle_for(ThreadRegistry::tid());
      fq_.enqueue_bulk(fq_h, buf, got);
    }
  }

 private:
  static void exit_hook_cb(void* ctx, unsigned tid) {
    static_cast<BoundedQueue*>(ctx)->flush_magazine(tid);
  }

  // Owned-handle teardown (DESIGN.md §10): the exit hook's flush moves onto
  // handle destruction, so a pool worker releasing its session returns its
  // cached indices immediately instead of at thread exit. Destruction on a
  // different thread than the one that used the handle is safe — see
  // flush_magazine's cross-thread contract.
  void handle_released(Handle& h) {
    flush_magazine(h.tid_);
    live_handles_.fetch_sub(1, std::memory_order_acq_rel);
  }

  // Magazine + fq rewind (under the flush lock when magazines are on).
  void reset_free_indices() {
    mags_.clear();
    fq_.reset();
    for (u64 i = 0; i < fq_.capacity(); ++i) {
      fq_.enqueue(i);
    }
  }

  // Destroy any payloads still in flight. Single-threaded drain: successful
  // dequeues never burn threshold, so this loop empties the queue exactly.
  // The caller has exclusive access (destructor or reset), so a degree-
  // specialized aq may legally rebind to this thread for the drain.
  void destroy_stragglers() {
    detail::release_ring_sessions(aq_);
    while (auto idx = aq_.dequeue()) {
      slot(*idx)->~T();
    }
    detail::release_ring_sessions(aq_);
  }

  struct alignas(alignof(T)) Storage {
    unsigned char bytes[sizeof(T)];
  };

  T* slot(u64 idx) {
    assert(idx < data_.size());
    return std::launder(reinterpret_cast<T*>(data_[idx].bytes));
  }

  Ring aq_;
  FreeRing fq_;
  AlignedArray<Storage> data_;
  IndexMagazines mags_;
  // Serializes magazine flushes (exit hook, handle destruction) against
  // reset()'s magazine/fq rewind. Never touched by enqueue/dequeue, so the
  // operations' progress class is untouched; contention is session
  // teardown × this queue's reset, both rare.
  std::mutex mag_flush_mu_;
  std::uint64_t hook_handle_ = 0;
  std::atomic<int> live_handles_{0};
};

}  // namespace wcq
