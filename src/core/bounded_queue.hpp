// BoundedQueue<T> — the paper's Fig 2 indirection pattern.
//
// SCQ/wCQ rings transfer *indices*; real payloads live in a separate data
// array referenced by those indices. Two rings are used: `fq` holds free
// indices (initially full: 0..n-1) and `aq` holds allocated ones. Enqueue =
// take a free index, write the payload, publish the index through aq;
// Dequeue = take an index from aq, read the payload, recycle the index
// through fq. Because at most n indices exist, the rings' "Enqueue never
// checks full" precondition holds by construction, and "queue full" is
// simply "fq empty".
//
// The progress property is inherited from the Ring parameter: wait-free with
// WCQ (default), lock-free with SCQ.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/align.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"

namespace wcq {

namespace detail {

// Ring bulk capability: BasicWCQ rings expose {enqueue,dequeue}_bulk
// (DESIGN.md §7); SCQ does not, and falls back to per-op loops below.
template <typename Ring, typename = void>
struct RingHasBulk : std::false_type {};
template <typename Ring>
struct RingHasBulk<
    Ring, std::void_t<decltype(std::declval<Ring&>().enqueue_bulk(
                          static_cast<const u64*>(nullptr), std::size_t{0})),
                      decltype(std::declval<Ring&>().dequeue_bulk(
                          static_cast<u64*>(nullptr), std::size_t{0}))>>
    : std::true_type {};

}  // namespace detail

template <typename T, typename Ring = WCQ>
class BoundedQueue {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "payloads move across threads; moves must not throw");

 public:
  // Capacity = 2^order elements.
  explicit BoundedQueue(unsigned order)
      : aq_(order), fq_(order), data_(aq_.capacity(), kCacheLine) {
    for (u64 i = 0; i < fq_.capacity(); ++i) {
      fq_.enqueue(i);
    }
  }

  ~BoundedQueue() { destroy_stragglers(); }

  // Re-initialize to the freshly-constructed state: destroy any payloads
  // still in flight, rewind both rings, and refill fq with 0..n-1. Same
  // exclusivity precondition as the rings' reset() — this is the bounded
  // layer of the segment-recycling path (DESIGN.md §8), where the hazard
  // grace period guarantees no thread can still touch this queue.
  void reset() {
    destroy_stragglers();
    aq_.reset();
    fq_.reset();
    for (u64 i = 0; i < fq_.capacity(); ++i) {
      fq_.enqueue(i);
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  u64 capacity() const { return aq_.capacity(); }

  // Returns false when the queue is full.
  bool enqueue(T value) { return enqueue_movable(value); }

  // Enqueue by reference: on success `value` is moved-from, on failure it is
  // left intact. Callers that retarget a rejected element (ShardedQueue's
  // spill sweep) need the failure case to preserve ownership, which the
  // by-value overload cannot.
  bool enqueue_movable(T& value) {
    const auto idx = fq_.dequeue();
    if (!idx) return false;
    ::new (static_cast<void*>(slot(*idx))) T(std::move(value));
    aq_.enqueue(*idx);
    return true;
  }

  // Returns nullopt when the queue is empty.
  std::optional<T> dequeue() {
    const auto idx = aq_.dequeue();
    if (!idx) return std::nullopt;
    T* p = slot(*idx);
    std::optional<T> out{std::move(*p)};
    p->~T();
    fq_.enqueue(*idx);
    return out;
  }

  // Batch insert (DESIGN.md §7): enqueues up to `n` values from `first`,
  // returning how many were taken. Exactly the first `ret` elements are
  // moved-from (a const source is copied instead); partial success means the
  // queue filled up mid-span. Free indices are claimed and published through
  // the rings' bulk paths in chunks, so the per-operation Tail/Head F&A and
  // threshold traffic amortize across the span.
  template <typename U,
            std::enable_if_t<std::is_same_v<std::remove_const_t<U>, T>, int> = 0>
  std::size_t enqueue_bulk(U* first, std::size_t n) {
    std::size_t done = 0;
    u64 idx[kBulkChunk];
    while (done < n) {
      const std::size_t want = std::min(n - done, kBulkChunk);
      std::size_t got = 0;
      if constexpr (detail::RingHasBulk<Ring>::value) {
        got = fq_.dequeue_bulk(idx, want);
      } else {
        while (got < want) {
          const auto i = fq_.dequeue();
          if (!i) break;
          idx[got++] = *i;
        }
      }
      if (got == 0) break;  // full
      for (std::size_t k = 0; k < got; ++k) {
        ::new (static_cast<void*>(slot(idx[k]))) T(std::move(first[done + k]));
      }
      if constexpr (detail::RingHasBulk<Ring>::value) {
        aq_.enqueue_bulk(idx, got);
      } else {
        for (std::size_t k = 0; k < got; ++k) aq_.enqueue(idx[k]);
      }
      done += got;
      if (got < want) break;
    }
    return done;
  }

  // Batch remove (DESIGN.md §7): move-assigns up to `n` elements into `out`
  // and returns how many. Fewer than `n` does not prove emptiness (the ring
  // bulk path may cede contended ranks); use dequeue() for an authoritative
  // empty answer.
  std::size_t dequeue_bulk(T* out, std::size_t n) {
    static_assert(std::is_nothrow_move_assignable_v<T>,
                  "dequeue_bulk assigns into caller storage");
    std::size_t done = 0;
    u64 idx[kBulkChunk];
    while (done < n) {
      const std::size_t want = std::min(n - done, kBulkChunk);
      std::size_t got = 0;
      if constexpr (detail::RingHasBulk<Ring>::value) {
        got = aq_.dequeue_bulk(idx, want);
      } else {
        while (got < want) {
          const auto i = aq_.dequeue();
          if (!i) break;
          idx[got++] = *i;
        }
      }
      if (got == 0) break;  // empty (or fully contended)
      for (std::size_t k = 0; k < got; ++k) {
        T* p = slot(idx[k]);
        out[done + k] = std::move(*p);
        p->~T();
      }
      if constexpr (detail::RingHasBulk<Ring>::value) {
        fq_.enqueue_bulk(idx, got);
      } else {
        for (std::size_t k = 0; k < got; ++k) fq_.enqueue(idx[k]);
      }
      done += got;
      if (got < want) break;
    }
    return done;
  }

  // Ring access for diagnostics (e.g., threshold inspection in tests).
  const Ring& aq() const { return aq_; }
  const Ring& fq() const { return fq_; }

 private:
  // Bulk spans are staged through a fixed stack buffer of indices so the
  // batch paths never allocate; larger caller spans just loop chunks.
  static constexpr std::size_t kBulkChunk = 64;

  // Destroy any payloads still in flight. Single-threaded drain: successful
  // dequeues never burn threshold, so this loop empties the queue exactly.
  void destroy_stragglers() {
    while (auto idx = aq_.dequeue()) {
      slot(*idx)->~T();
    }
  }

  struct alignas(alignof(T)) Storage {
    unsigned char bytes[sizeof(T)];
  };

  T* slot(u64 idx) {
    assert(idx < data_.size());
    return std::launder(reinterpret_cast<T*>(data_[idx].bytes));
  }

  Ring aq_;
  Ring fq_;
  AlignedArray<Storage> data_;
};

}  // namespace wcq
