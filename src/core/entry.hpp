// Ring-entry bit packing shared by SCQ (Fig 3) and wCQ (Fig 4).
//
// A ring of order `o` has R = 2^(o+1) slots (the paper's 2n: SCQ/wCQ allocate
// double capacity and only ever hold n = 2^o live indices, which is what
// makes the 3n-1 threshold bound work). Each slot is one 64-bit word:
//
//   bits [0, B)      Index    (B = o+1; real indices are [0, n);
//                              ⊥ = R-2 marks "empty", ⊤/⊥c = R-1 "consumed")
//   bit  B           Enq      (wCQ two-step insertion flag; always 1 in SCQ)
//   bit  B+1         IsSafe
//   bits [B+2, 64)   Cycle    (counter / R)
//
// ⊥c is all-ones in the low B bits, so consuming an element is a single
// atomic OR of (⊥c | Enq-bit) that preserves Cycle and IsSafe — exactly the
// paper's `consume` (Fig 3 line 12 / Fig 5 line 3).
//
// Head/Tail counters start at R (cycle 1) so that the initial entries
// (cycle 0) always compare strictly older. Counters must stay below 2^62
// because wCQ steals bits 62/63 of its per-thread counter words for INC/FIN;
// at 10^9 ops/s that is ~146 years of queue lifetime.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/align.hpp"

namespace wcq {

using u64 = std::uint64_t;
using i64 = std::int64_t;

struct Entry {
  u64 cycle;
  bool safe;
  bool enq;
  u64 index;
};

class EntryCodec {
 public:
  explicit EntryCodec(unsigned order)
      : order_(order),
        idx_bits_(order + 1),
        ring_size_(u64{1} << idx_bits_),
        idx_mask_(ring_size_ - 1),
        enq_bit_(u64{1} << idx_bits_),
        safe_bit_(u64{1} << (idx_bits_ + 1)),
        cycle_shift_(idx_bits_ + 2) {
    assert(order >= 1 && order <= 31);
  }

  unsigned order() const { return order_; }
  u64 ring_size() const { return ring_size_; }      // R = 2n
  u64 half() const { return ring_size_ >> 1; }      // n = usable capacity
  u64 bottom() const { return ring_size_ - 2; }     // ⊥
  u64 bottom_c() const { return ring_size_ - 1; }   // ⊥c
  u64 consume_mask() const { return bottom_c() | enq_bit_; }

  u64 pack(u64 cycle, bool safe, bool enq, u64 index) const {
    assert(index < ring_size_);
    return (cycle << cycle_shift_) | (safe ? safe_bit_ : 0) |
           (enq ? enq_bit_ : 0) | index;
  }

  Entry unpack(u64 raw) const {
    return Entry{raw >> cycle_shift_, (raw & safe_bit_) != 0,
                 (raw & enq_bit_) != 0, raw & idx_mask_};
  }

  bool is_live_index(u64 index) const { return index < bottom(); }

  // Position and cycle of a Head/Tail counter value.
  u64 pos_of(u64 counter) const { return counter & idx_mask_; }
  u64 cycle_of(u64 counter) const { return counter >> idx_bits_; }

  // Initial entry state: {Cycle=0, IsSafe=1, Enq=1, Index=⊥} (Fig 3 / Fig 4).
  u64 initial() const { return pack(0, true, true, bottom()); }

 private:
  unsigned order_;
  unsigned idx_bits_;  // B
  u64 ring_size_;
  u64 idx_mask_;
  u64 enq_bit_;
  u64 safe_bit_;
  unsigned cycle_shift_;
};

}  // namespace wcq
