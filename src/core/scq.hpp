// SCQ — the lock-free Scalable Circular Queue of Nikolaev (DISC'19), exactly
// as reproduced in the wCQ paper's Figure 3. It is both (a) the substrate
// wCQ's fast path is built from and (b) one of the benchmark subjects.
//
// SCQ is an index ring: it stores values in [0, capacity()) ("indices"),
// which in the full queue (core/bounded_queue.hpp, paper Fig 2) refer into a
// separate data array. The ring physically holds 2n slots but the caller
// must keep at most n = capacity() indices live — that invariant is what
// lets Enqueue skip full-queue checks and what makes the 3n-1 Threshold
// bound (paper §2) valid.
//
// Progress: operation-wise lock-free. Dequeue on an empty queue is O(1)
// after the Threshold short-circuit kicks in (the property behind Fig 11a).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>

#include "analysis/sched_point.hpp"
#include "common/align.hpp"
#include "common/backoff.hpp"
#include "common/op_counters.hpp"
#include "core/entry.hpp"
#include "core/remap.hpp"

namespace wcq {

class SCQ {
 public:
  // Session handle (DESIGN.md §10). SCQ keeps no per-thread state — no
  // thread records, no registry use — so its handle is empty; it exists so
  // the Fig 2 layers can thread one handle type through any Ring uniformly.
  struct Handle {};

  Handle handle() { return Handle{}; }
  Handle handle_for(unsigned /*tid*/) { return Handle{}; }
  // `order`: capacity = 2^order indices; the ring allocates 2^(order+1)
  // slots. The paper's benchmark configuration is order 15 (2^16 slots).
  explicit SCQ(unsigned order, bool cache_remap = true)
      : codec_(order),
        remap_(codec_.ring_size(), sizeof(std::atomic<u64>), cache_remap),
        entries_(codec_.ring_size(), kCacheLine) {
    for (u64 i = 0; i < codec_.ring_size(); ++i) {
      entries_[i].store(codec_.initial(), std::memory_order_relaxed);
    }
    tail_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    head_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    threshold_.value.store(-1, std::memory_order_release);  // empty
  }

  SCQ(const SCQ&) = delete;
  SCQ& operator=(const SCQ&) = delete;

  u64 capacity() const { return codec_.half(); }
  u64 ring_size() const { return codec_.ring_size(); }

  // Inserts `index` (< capacity()). Never fails; the caller guarantees at
  // most capacity() live indices (Fig 2's fq/aq usage provides that).
  // try_enq only fails while a dequeuer that ⊥-marked the target slot has
  // not yet caught up, so on oversubscribed hosts the retry loop must back
  // off to let that (descheduled) dequeuer run.
  void enqueue(u64 index) {
    u64 tail_unused;
    Backoff bo;
    while (!try_enq(index, tail_unused)) bo.pause();
  }

  // Removes and returns the oldest index, or nullopt when empty.
  std::optional<u64> dequeue() {
    WCQ_SCHED_POINT(kThresholdCheck);
    if (threshold_.value.load(std::memory_order_acquire) < 0) {
      return std::nullopt;  // empty fast-exit (Fig 3 line 7)
    }
    for (;;) {
      u64 index;
      switch (try_deq(index)) {
        case DeqStatus::kOk:
          return index;
        case DeqStatus::kEmpty:
          return std::nullopt;
        case DeqStatus::kRetry:
          break;
      }
    }
  }

  // Handle overloads: SCQ's handle is stateless, so these forward. They give
  // BoundedQueue one call shape across all Ring parameters.
  void enqueue(Handle&, u64 index) { enqueue(index); }
  std::optional<u64> dequeue(Handle&) { return dequeue(); }
  void enqueue_bulk(Handle&, const u64* indices, std::size_t n) {
    enqueue_bulk(indices, n);
  }
  std::size_t dequeue_bulk(Handle&, u64* out, std::size_t n) {
    return dequeue_bulk(out, n);
  }

  // Batch insert (DESIGN.md §7, the BasicWCQ contract): all `n` indices are
  // inserted. One Tail F&A reserves n consecutive ranks and the threshold is
  // re-armed once for the whole span; a rank whose slot is unusable is
  // abandoned (exactly as a failed try_enq abandons its rank) and the
  // affected indices fall back to the single-op path. Deferring the re-arm
  // is safe for the same reason as in BasicWCQ: the bulk call has not
  // returned, so a dequeuer reading the stale negative threshold linearizes
  // its "empty" before these enqueues.
  void enqueue_bulk(const u64* indices, std::size_t n) {
    if (n == 0) return;
    if (n == 1) return enqueue(indices[0]);
    WCQ_SCHED_POINT(kTailFaa);
    const u64 base = tail_.value.fetch_add(n, std::memory_order_seq_cst);
    opcount::count_faa();
    std::size_t done = 0;
    for (std::size_t k = 0; k < n && done < n; ++k) {
      if (enq_at(base + k, indices[done], /*reset_thld=*/false)) ++done;
    }
    reset_threshold();  // one re-arm for the whole span
    for (; done < n; ++done) enqueue(indices[done]);
  }

  // Batch remove (DESIGN.md §7): pops up to `n` indices into `out` with one
  // Head F&A for the whole span. Returns the number actually dequeued; fewer
  // than n does not imply emptiness (a rank can be contended away, the same
  // transient a single-op retry absorbs) — partial success is the batch
  // contract. Every reserved rank is processed (see deq_at).
  std::size_t dequeue_bulk(u64* out, std::size_t n) {
    if (n == 0) return 0;
    WCQ_SCHED_POINT(kThresholdCheck);
    if (threshold_.value.load(std::memory_order_acquire) < 0) {
      return 0;  // empty fast-exit, no ranks burned
    }
    if (n == 1) {
      const auto v = dequeue();
      if (!v) return 0;
      out[0] = *v;
      return 1;
    }
    WCQ_SCHED_POINT(kHeadFaa);
    const u64 base = head_.value.fetch_add(n, std::memory_order_seq_cst);
    opcount::count_faa();
    std::size_t got = 0;
    for (std::size_t k = 0; k < n; ++k) {
      u64 idx;
      if (deq_at(base + k, idx) == DeqStatus::kOk) out[got++] = idx;
    }
    return got;
  }

  // Re-initialize the ring to its freshly-constructed (empty) state so it can
  // be reused, e.g. by a recycled UnboundedQueue segment (DESIGN.md §8).
  //
  // Precondition: the caller has exclusive access — no concurrent operation
  // is in flight and none can start until the reset is published (the segment
  // pool provides this via hazard-pointer grace + release/acquire hand-off).
  // All stores are relaxed; the publishing edge belongs to the caller.
  void reset() {
    for (u64 i = 0; i < codec_.ring_size(); ++i) {
      entries_[i].store(codec_.initial(), std::memory_order_relaxed);
    }
    tail_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    head_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    threshold_.value.store(-1, std::memory_order_relaxed);  // empty
  }

  // --- introspection hooks (tests / benches) -------------------------------
  i64 threshold() const {
    return threshold_.value.load(std::memory_order_acquire);
  }
  u64 head() const { return head_.value.load(std::memory_order_acquire); }
  u64 tail() const { return tail_.value.load(std::memory_order_acquire); }

 private:
  enum class DeqStatus { kOk, kEmpty, kRetry };

  i64 threshold_max() const {
    // 3n - 1 for a 2n-slot ring holding at most n indices (paper §2).
    return static_cast<i64>(codec_.half() * 3 - 1);
  }

  // Fig 3, try_enq. Returns true on success; false means "F&A again"
  // (the slot was unusable for this tail value).
  bool try_enq(u64 index, u64& tail_out) {
    WCQ_SCHED_POINT(kTailFaa);
    const u64 t = tail_.value.fetch_add(1, std::memory_order_seq_cst);
    opcount::count_faa();
    tail_out = t;
    return enq_at(t, index, /*reset_thld=*/true);
  }

  // Process one already-reserved tail rank (single-op and bulk paths share
  // this; bulk spans defer the threshold re-arm to the end of the span).
  bool enq_at(u64 t, u64 index, bool reset_thld) {
    const u64 j = remap_(codec_.pos_of(t));
    const u64 cycle_t = codec_.cycle_of(t);
    u64 raw = entries_[j].load(std::memory_order_acquire);
    for (;;) {
      const Entry e = codec_.unpack(raw);
      if (e.cycle < cycle_t &&
          (e.safe || head_.value.load(std::memory_order_seq_cst) <= t) &&
          !codec_.is_live_index(e.index)) {
        const u64 fresh = codec_.pack(cycle_t, true, true, index);
        WCQ_SCHED_POINT(kEntryUpdate);
        if (!entries_[j].compare_exchange_strong(raw, fresh,
                                                 std::memory_order_seq_cst)) {
          continue;  // Fig 3 line 25: re-check with the observed entry
        }
        if (reset_thld) reset_threshold();
        return true;
      }
      return false;
    }
  }

  void reset_threshold() {
    // Relaxed dirty pre-check (DESIGN.md §15 THLD-PRECHECK): the same
    // argument as BasicWCQ::reset_threshold's PR 4 downgrade, which this
    // mirrors — the pre-check only *skips* the re-arm when it reads
    // threshold_max, a value some thread's re-arm stored; staleness or
    // store-buffer reordering can under-arm the budget by at most the
    // handful of seq_cst RMWs one drain window admits, well inside the 3n-1
    // slack. All cross-thread ordering flows through the guarded store,
    // which stays seq_cst.
    if (threshold_.value.load(std::memory_order_relaxed) != threshold_max()) {
      WCQ_SCHED_POINT(kThresholdArm);
#if defined(WCQ_ANALYSIS_MUTATE_THRESHOLD)
      // Mutation self-test (DESIGN.md §11): model the re-arm downgraded to a
      // relaxed store whose visibility is delayed past the next scheduling
      // point. tests/analysis must catch the false-empty window this opens.
      analysis::mutate_deferred_store(&threshold_.value, threshold_max());
#else
      threshold_.value.store(threshold_max(), std::memory_order_seq_cst);
#endif
      opcount::count_threshold();
    }
  }

  // Fig 3, try_deq.
  DeqStatus try_deq(u64& index_out) {
    WCQ_SCHED_POINT(kHeadFaa);
    const u64 h = head_.value.fetch_add(1, std::memory_order_seq_cst);
    opcount::count_faa();
    return deq_at(h, index_out);
  }

  // Process one already-reserved head rank. As in BasicWCQ::deq_at, every
  // reserved rank MUST pass through here: a claimed rank whose slot holds a
  // cycle-matching element is the only dequeuer that will ever consume it,
  // so abandoning a reservation would leak the element forever.
  DeqStatus deq_at(u64 h, u64& index_out) {
    const u64 j = remap_(codec_.pos_of(h));
    const u64 cycle_h = codec_.cycle_of(h);
    u64 raw = entries_[j].load(std::memory_order_acquire);
    for (;;) {
      WCQ_SCHED_POINT(kEntryUpdate);
      const Entry e = codec_.unpack(raw);
      if (e.cycle == cycle_h) {
        // Our enqueuer arrived first: consume (atomic OR keeps Cycle/IsSafe).
        entries_[j].fetch_or(codec_.consume_mask(), std::memory_order_seq_cst);
        index_out = e.index;
        return DeqStatus::kOk;
      }
      u64 fresh;
      if (!codec_.is_live_index(e.index)) {
        // Mark the slot with our cycle so our (late) enqueuer skips it.
        fresh = codec_.pack(cycle_h, e.safe, e.enq, codec_.bottom());
      } else {
        // An older-cycle element is still here; strip IsSafe so enqueuers
        // must consult Head before reusing the slot.
        fresh = codec_.pack(e.cycle, false, e.enq, e.index);
      }
      if (e.cycle < cycle_h) {
        if (!entries_[j].compare_exchange_strong(raw, fresh,
                                                 std::memory_order_seq_cst)) {
          continue;
        }
        const u64 t = tail_.value.load(std::memory_order_seq_cst);
        if (t <= h + 1) {
          catchup(t, h + 1);
          WCQ_SCHED_POINT(kThresholdDec);
          threshold_.value.fetch_sub(1, std::memory_order_seq_cst);
          opcount::count_threshold();
          return DeqStatus::kEmpty;
        }
      }
      opcount::count_threshold();
      WCQ_SCHED_POINT(kThresholdDec);
      if (threshold_.value.fetch_sub(1, std::memory_order_seq_cst) <= 0) {
        return DeqStatus::kEmpty;
      }
      return DeqStatus::kRetry;
    }
  }

  // Fig 3, catchup: pull Tail forward to Head after draining past it. Purely
  // a contention optimization; iterations are capped (harmless, and wCQ
  // requires the cap for wait-freedom — paper §3.2 "Bounding catchup").
  void catchup(u64 tail, u64 head) {
    for (int i = 0; i < kCatchupMax; ++i) {
      WCQ_SCHED_POINT(kCatchup);
      if (tail_.value.compare_exchange_strong(tail, head,
                                              std::memory_order_seq_cst)) {
        return;
      }
      // Relaxed re-loads (DESIGN.md §15 CATCHUP-RELOAD): they only steer
      // this bounded heuristic — a stale pair either retries the CAS (which
      // re-validates and publishes with seq_cst) or exits early, and early
      // exit is always correct for a pure contention optimization.
      head = head_.value.load(std::memory_order_relaxed);
      tail = tail_.value.load(std::memory_order_relaxed);
      if (tail >= head) return;
    }
  }

  static constexpr int kCatchupMax = 8;

  EntryCodec codec_;
  CacheRemap remap_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<u64>> tail_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<u64>> head_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<i64>> threshold_;
  AlignedArray<std::atomic<u64>> entries_;
};

}  // namespace wcq
