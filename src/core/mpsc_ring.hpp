// MpscRing — the SCQ index ring (core/scq.hpp, paper Fig 3) specialized for
// a single consumer. Degree specialization, not a new algorithm: the
// producer side is SCQ's verbatim (Tail F&A + entry CAS), while everything
// the MPMC dequeue path needed only to referee *between dequeuers* is
// deleted outright (full argument: DESIGN.md §13):
//
//   - Head F&A            → plain load + release store. Head has one writer;
//                           reserving ranks speculatively is pointless when
//                           no rival can claim them first.
//   - Threshold           → deleted, member and all. The 3n-1 bound exists
//                           so concurrent dequeuers that burn ranks on an
//                           empty ring still detect emptiness in finite
//                           steps; the single consumer never burns a rank on
//                           emptiness (it peeks before committing), so the
//                           counter guards nothing observable.
//   - consume fetch_or    → plain release store. A live (cycle, pos) rank
//                           has exactly one eligible dequeuer — us — and no
//                           producer touches a live slot, so there is no RMW
//                           race to win.
//   - catchup             → deleted. Head never overshoots Tail (the
//                           consumer stops at Tail instead of racing past
//                           it), so there is nothing to pull forward.
//   - IsSafe stripping    → unreachable. The consumer never leaves a live
//                           older-cycle element behind Head, so producers
//                           never need the Head consultation IsSafe=0 forces
//                           (and consequently never load Head at all on the
//                           common path).
//
// The consumer-side contract is enforced, not assumed: a SessionGuard binds
// the first dequeuing thread and traps any second consumer (death-tested in
// tests/test_mpsc_ring.cpp). reset()/release_sessions() are the exclusive-
// access rebind points, which is what lets recycled UnboundedQueue segments
// and BoundedQueue's destructor drain change the consuming thread.
//
// Progress: the producer side inherits SCQ's operation-wise lock-freedom;
// the consumer is obstruction-free against producers in the same transient
// sense as SCQ's dequeue (a dead rank costs one CAS, and ranks only go dead
// when some producer made progress past them).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>

#include "analysis/sched_point.hpp"
#include "common/align.hpp"
#include "common/backoff.hpp"
#include "common/op_counters.hpp"
#include "core/entry.hpp"
#include "core/remap.hpp"
#include "core/session_guard.hpp"

namespace wcq {

class MpscRing {
 public:
  // Session handle (DESIGN.md §10): stateless, as for SCQ — the consumer
  // identity lives in the SessionGuard (keyed by thread, not by handle) so
  // that the same handle value cannot be used to smuggle a second consumer.
  struct Handle {};

  Handle handle() { return Handle{}; }
  Handle handle_for(unsigned /*tid*/) { return Handle{}; }

  // `order`: capacity = 2^order indices over 2^(order+1) slots, as SCQ.
  explicit MpscRing(unsigned order, bool cache_remap = true)
      : codec_(order),
        remap_(codec_.ring_size(), sizeof(std::atomic<u64>), cache_remap),
        entries_(codec_.ring_size(), kCacheLine) {
    for (u64 i = 0; i < codec_.ring_size(); ++i) {
      entries_[i].store(codec_.initial(), std::memory_order_relaxed);
    }
    tail_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    head_.value.store(codec_.ring_size(), std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  u64 capacity() const { return codec_.half(); }
  u64 ring_size() const { return codec_.ring_size(); }

  // --- producer side (any thread; SCQ verbatim minus the re-arm) -----------

  // Inserts `index` (< capacity()). Never fails; the caller guarantees at
  // most capacity() live indices. The backoff exists for the same reason as
  // SCQ's: a failed rank means the consumer ⊥-marked the slot and producers
  // must let it run.
  void enqueue(u64 index) {
    Backoff bo;
    while (!try_enq(index)) bo.pause();
  }

  // Batch insert (DESIGN.md §7 contract): one Tail F&A per span; unusable
  // ranks are abandoned and the affected indices fall back to singles.
  // Unlike SCQ there is no deferred re-arm to flush — the span needs no
  // epilogue at all.
  void enqueue_bulk(const u64* indices, std::size_t n) {
    if (n == 0) return;
    if (n == 1) return enqueue(indices[0]);
    WCQ_SCHED_POINT(kTailFaa);
    const u64 base = tail_.value.fetch_add(n, std::memory_order_seq_cst);
    opcount::count_faa();
    std::size_t done = 0;
    for (std::size_t k = 0; k < n && done < n; ++k) {
      if (enq_at(base + k, indices[done])) ++done;
    }
    for (; done < n; ++done) enqueue(indices[done]);
  }

  // --- consumer side (one bound thread; traps otherwise) -------------------

  // Removes and returns the oldest index, or nullopt when empty. Performs
  // zero F&As and zero threshold RMWs — the property bench/check_pipeline.py
  // gates on. Peek-before-commit: the consumer inspects rank Head WITHOUT
  // reserving it, so an empty probe burns nothing and needs no threshold to
  // stay O(1).
  std::optional<u64> dequeue() {
    consumer_.enter("MpscRing", "consumer");
    u64 h = head_.value.load(std::memory_order_relaxed);
    const u64 h0 = h;
    for (;;) {
      u64 index;
      switch (step_at(h, index)) {
        case Step::kGot:
          head_.value.store(h + 1, std::memory_order_release);
          return index;
        case Step::kEmpty:
          // Publish any dead ranks we skipped so the next probe (and the
          // head() introspection producers never read) starts past them.
          if (h != h0) head_.value.store(h, std::memory_order_release);
          return std::nullopt;
        case Step::kSkip:
          ++h;
          break;
      }
    }
  }

  // Batch remove: up to `n` indices with ONE Head publish for the whole
  // span (the single-writer analogue of SCQ's one-F&A-per-span). Partial
  // return does not imply emptiness only in the sense that later elements
  // may land immediately after we stop; within the call the scan is exact.
  std::size_t dequeue_bulk(u64* out, std::size_t n) {
    if (n == 0) return 0;
    consumer_.enter("MpscRing", "consumer");
    const u64 h0 = head_.value.load(std::memory_order_relaxed);
    u64 h = h0;
    std::size_t got = 0;
    while (got < n) {
      u64 index;
      const Step s = step_at(h, index);
      if (s == Step::kEmpty) break;
      if (s == Step::kGot) out[got++] = index;
      ++h;  // kGot and kSkip both advance past the rank
    }
    if (h != h0) head_.value.store(h, std::memory_order_release);
    return got;
  }

  // Handle overloads, one call shape across all Ring parameters.
  void enqueue(Handle&, u64 index) { enqueue(index); }
  std::optional<u64> dequeue(Handle&) { return dequeue(); }
  void enqueue_bulk(Handle&, const u64* indices, std::size_t n) {
    enqueue_bulk(indices, n);
  }
  std::size_t dequeue_bulk(Handle&, u64* out, std::size_t n) {
    return dequeue_bulk(out, n);
  }

  // Re-initialize to the freshly-constructed state (DESIGN.md §8
  // precondition: exclusive access, publishing edge belongs to the caller).
  // Also an ownership rebind point: the recycled ring's consumer may be a
  // different thread than the retired ring's.
  void reset() {
    for (u64 i = 0; i < codec_.ring_size(); ++i) {
      entries_[i].store(codec_.initial(), std::memory_order_relaxed);
    }
    tail_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    head_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    consumer_.release();
  }

  // Clear session bindings without touching ring contents. Exclusive-access
  // only; lets a destructor or straggler drain running on an arbitrary
  // thread adopt the consumer role (BoundedQueue::destroy_stragglers).
  void release_sessions() { consumer_.release(); }

  // --- introspection hooks (tests / benches) -------------------------------
  u64 head() const { return head_.value.load(std::memory_order_acquire); }
  u64 tail() const { return tail_.value.load(std::memory_order_acquire); }

 private:
  enum class Step { kGot, kEmpty, kSkip };

  bool try_enq(u64 index) {
    WCQ_SCHED_POINT(kTailFaa);
    const u64 t = tail_.value.fetch_add(1, std::memory_order_seq_cst);
    opcount::count_faa();
    return enq_at(t, index);
  }

  // SCQ's enq_at minus the threshold re-arm. The Head consultation on
  // IsSafe=0 is kept byte-for-byte even though §13 shows the consumer never
  // clears IsSafe — keeping the producer identical to SCQ's means the §13
  // argument only has to reason about deletions on the consumer side.
  bool enq_at(u64 t, u64 index) {
    const u64 j = remap_(codec_.pos_of(t));
    const u64 cycle_t = codec_.cycle_of(t);
    u64 raw = entries_[j].load(std::memory_order_acquire);
    for (;;) {
      const Entry e = codec_.unpack(raw);
      if (e.cycle < cycle_t &&
          (e.safe || head_.value.load(std::memory_order_seq_cst) <= t) &&
          !codec_.is_live_index(e.index)) {
        const u64 fresh = codec_.pack(cycle_t, true, true, index);
        WCQ_SCHED_POINT(kEntryUpdate);
        if (!entries_[j].compare_exchange_strong(raw, fresh,
                                                 std::memory_order_seq_cst)) {
          continue;  // re-check with the observed entry
        }
        return true;
      }
      return false;
    }
  }

  // Examine one head rank without having reserved it. Outcomes:
  //   kGot   — rank held a live element for our cycle; it has been consumed
  //            (plain release store; no rival dequeuer exists) and the
  //            caller must advance past the rank.
  //   kSkip  — rank is dead (superseded cycle, or ⊥-marked by us just now);
  //            advance past it and look at the next.
  //   kEmpty — Tail <= h with the rank unfilled: no completed-unconsumed
  //            enqueue exists (§13 linearization argument), and Head must
  //            NOT advance — the rank stays claimable by a future enqueue.
  Step step_at(u64 h, u64& index_out) {
    const u64 j = remap_(codec_.pos_of(h));
    const u64 cycle_h = codec_.cycle_of(h);
    u64 raw = entries_[j].load(std::memory_order_acquire);
    for (;;) {
      WCQ_SCHED_POINT(kEntryUpdate);
      const Entry e = codec_.unpack(raw);
      if (e.cycle == cycle_h) {
        if (codec_.is_live_index(e.index)) {
          // Consume. A (pos, cycle) rank has one eligible consumer and
          // producers refuse live slots (enq_at's !is_live_index arm), so
          // between our acquire load and this store nobody else can write
          // the slot: a plain release store replaces SCQ's fetch_or.
          entries_[j].store(
              codec_.pack(cycle_h, e.safe, e.enq, codec_.bottom_c()),
              std::memory_order_release);
          index_out = e.index;
          return Step::kGot;
        }
        return Step::kSkip;  // our own earlier ⊥-mark; nothing can land now
      }
      if (e.cycle > cycle_h) {
        // The slot was reused for a later cycle, which proves every rank of
        // our cycle at this position is dead.
        return Step::kSkip;
      }
      // e.cycle < cycle_h: rank h's enqueuer has not delivered. Decide
      // empty-vs-late by Tail; the seq_cst load orders against producers'
      // seq_cst Tail F&As, making the "no completed enqueue" claim exact.
      WCQ_SCHED_POINT(kThresholdCheck);
      if (tail_.value.load(std::memory_order_seq_cst) <= h) {
        return Step::kEmpty;
      }
#if defined(WCQ_ANALYSIS_MUTATE_MPSC)
      // Mutation self-test (DESIGN.md §13): skip the dead rank WITHOUT
      // ⊥-marking it. A descheduled rank-h producer can then land its
      // element behind Head where it is lost forever; tests/analysis must
      // catch the resulting non-linearizable empty.
      return Step::kSkip;
#else
      // Producers are already past this rank (Tail > h) but rank h's owner
      // may still land late; ⊥-mark the slot so it cannot deliver behind
      // Head. CAS, not a store: this is the one consumer write that races a
      // producer (the late owner landing right now) — on failure re-examine,
      // the element may have just arrived.
      const u64 dead = codec_.pack(cycle_h, e.safe, e.enq, codec_.bottom());
      if (entries_[j].compare_exchange_strong(raw, dead,
                                              std::memory_order_seq_cst,
                                              std::memory_order_acquire)) {
        return Step::kSkip;
      }
#endif
    }
  }

  EntryCodec codec_;
  CacheRemap remap_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<u64>> tail_;
  // Head is consumer-private for writes; producers read it only on the
  // IsSafe=0 slow arm, which §13 shows is unreachable here — the separate
  // cache line is kept so the consumer's publishes never bounce Tail's line.
  alignas(kDestructiveRange) CacheAligned<std::atomic<u64>> head_;
  SessionGuard consumer_;
  AlignedArray<std::atomic<u64>> entries_;
};

}  // namespace wcq
