// wCQ — the Wait-free Circular Queue (the paper's contribution, Figs 4-7).
//
// wCQ is SCQ (core/scq.hpp) plus a fast-path-slow-path construction that
// makes both operations wait-free while keeping memory statically bounded:
//
//  * Fast path: identical to SCQ (F&A on Head/Tail, single-word CAS/OR on
//    the entry's Value word), tried MAX_PATIENCE times.
//  * Slow path: the thread publishes a help request in its per-queue thread
//    record; every thread polls for requests (one candidate every HELP_DELAY
//    operations) and replays the stuck operation cooperatively. The global
//    Head/Tail F&A is replaced by slow_F&A — a two-phase, helped increment
//    that all cooperating threads agree on via the request's localTail /
//    localHead word (counter + INC/FIN flag bits).
//
// Entries become 16-byte pairs {Value, Note}: Note is a cycle watermark that
// forces late helpers to skip any slot one cooperating thread already
// skipped, and the extra Enq bit supports two-step insertion (produce with
// Enq=0, finalize the request, flip Enq=1) so helpers can be terminated
// before a produced entry is consumed and its slot recycled.
//
// Deviations from the paper's pseudocode (justified in DESIGN.md §3):
//  1. The second-phase reference stored in global Head/Tail is not a raw
//     phase2rec pointer but a packed (tid, generation) tag validated against
//     the record's seq words — a raw pointer left dangling by Fig 7 line 35's
//     allowed failure could otherwise complete a *later* increment's Phase 2
//     prematurely, breaking the local < global invariant.
//  2. Helpers re-validate the request generation (rec.seq1 == seq) after
//     every bare read of the shared localTail/localHead word in slow_F&A and
//     abort helping on mismatch; without this a helper that survives its
//     one-shot Fig 6 validation can adopt the *next* request's counter and
//     enqueue a stale index into it.
//  3. A cycle match in try_enq_slow counts as success only for a non-⊥
//     index (a same-counter dequeuer may have ⊥-marked the slot first).
//  4. A failed FIN CAS that does not observe FIN means "keep working", not
//     "done" — otherwise helpers continue on a dead request and orphan the
//     elements they dequeue for it.
//  5. The baseline (failed fast-path) rank is a CAS anchor only and is
//     never handed out as a reservation by the bare-read path.
//  6. catchup is iteration-capped (the paper requires this, §3.2).
//
// Progress: wait-free, bounded memory (Theorems 5.8-5.10).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdio>
#include <optional>

#include "analysis/sched_point.hpp"
#include "common/align.hpp"
#include "common/backoff.hpp"
#include "common/dwcas.hpp"
#include "common/op_counters.hpp"
#include "core/entry.hpp"
#include "core/remap.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {

// Entry-pair update policy. wCQ's slow path reads both words of an entry
// pair atomically-enough (torn reads are re-validated) but only ever
// *updates one word at a time* — the property §4 exploits on PowerPC/MIPS.
// The default implementation uses CAS2 (x86-64/AArch64); core/wcq_llsc.hpp
// provides the paper's Fig 9 LL/SC decomposition over a simulated
// reservation granule. Both have weak-CAS semantics: spurious failure is
// allowed, callers re-read and retry.
struct Cas2EntryOps {
  static bool update_value(AtomicPair128& e, const Pair128& expected,
                           u64 new_value) {
    Pair128 exp = expected;
    return dwcas(e, exp, Pair128{new_value, expected.hi});
  }
  static bool update_note(AtomicPair128& e, const Pair128& expected,
                          u64 new_note) {
    Pair128 exp = expected;
    return dwcas(e, exp, Pair128{expected.lo, new_note});
  }
};

template <typename EntryOps>
class BasicWCQ {
 private:
  struct ThreadRec;  // defined below; named here so Handle can hold one

 public:
  struct Options {
    unsigned order = 15;        // capacity 2^order; ring allocates 2^(order+1)
    unsigned max_threads = 128;  // size of the per-queue record array
    int enq_patience = 16;      // paper §6: 16 for Enqueue
    int deq_patience = 64;      // paper §6: 64 for Dequeue
    unsigned help_delay = 16;   // Fig 6 HELP_DELAY
    bool cache_remap = true;
  };

  // Per-thread session handle (DESIGN.md §10): the dense registry tid plus
  // this queue's thread record for it, resolved once instead of on every
  // operation. Trivially copyable — it is two words of derived state, so a
  // composed layer (BoundedQueue) can rebuild it from a tid with pure
  // arithmetic. With the tid in hand the hot path touches no registry or
  // thread_local state at all; the only remaining registry read is the
  // help scan's high_water snapshot, taken once per HELP_DELAY operations
  // when the periodic check fires (see help_threads). A handle is valid
  // only while the queue is alive and only on the thread owning the tid.
  class Handle {
   public:
    Handle() = default;
    unsigned tid() const { return tid_; }

   private:
    friend class BasicWCQ;
    Handle(unsigned tid, ThreadRec* rec) : tid_(tid), rec_(rec) {}
    unsigned tid_ = 0;
    ThreadRec* rec_ = nullptr;
  };

  explicit BasicWCQ(Options opt)
      : opt_(opt),
        codec_(opt.order),
        remap_(codec_.ring_size(), sizeof(AtomicPair128), opt.cache_remap),
        entries_(codec_.ring_size(), kCacheLine),
        records_(opt.max_threads, kDestructiveRange) {
    assert(opt.enq_patience >= 1 && opt.deq_patience >= 1);
    assert(opt.help_delay >= 1);
    assert(opt.max_threads >= 1 &&
           opt.max_threads <= ThreadRegistry::kMaxThreads);
    for (u64 i = 0; i < codec_.ring_size(); ++i) {
      entries_[i].lo.store(codec_.initial(), std::memory_order_relaxed);
      entries_[i].hi.store(0, std::memory_order_relaxed);  // Note: "never"
    }
    tail_.lo.store(codec_.ring_size(), std::memory_order_relaxed);
    tail_.hi.store(0, std::memory_order_relaxed);
    head_.lo.store(codec_.ring_size(), std::memory_order_relaxed);
    head_.hi.store(0, std::memory_order_relaxed);
    threshold_.value.store(-1, std::memory_order_release);
  }

  explicit BasicWCQ(unsigned order) : BasicWCQ(Options{.order = order}) {}
  BasicWCQ() : BasicWCQ(Options{}) {}

  BasicWCQ(const BasicWCQ&) = delete;
  BasicWCQ& operator=(const BasicWCQ&) = delete;

  u64 capacity() const { return codec_.half(); }
  u64 ring_size() const { return codec_.ring_size(); }

  // Acquire a session for the calling thread (exactly one registry lookup).
  Handle handle() { return handle_for(ThreadRegistry::tid()); }

  // Build the session for a known dense tid: pure pointer arithmetic, no
  // registry or thread_local access. Composed layers (BoundedQueue,
  // UnboundedQueue segments) carry the tid in their own handles and rebuild
  // ring sessions through this. Traps on a tid beyond max_threads — the
  // same documented hard limit the implicit path enforces.
  Handle handle_for(unsigned tid) {
    if (tid >= opt_.max_threads) {
      assert(false && "thread id exceeds WCQ max_threads");
      __builtin_trap();
    }
    return Handle(tid, &records_[tid]);
  }

  // Inserts `index` (< capacity()). The caller guarantees at most
  // capacity() live indices (Fig 2 indirection provides that). Wait-free.
  void enqueue(u64 index) {
    Handle h = handle();
    enqueue(h, index);
  }

  void enqueue(Handle& h, u64 index) {
    ThreadRec& rec = *h.rec_;
    help_threads(h);
    // == Fast path (SCQ) ==
    u64 tail = 0;
    for (int i = 0; i < opt_.enq_patience; ++i) {
      if (try_enq(index, tail)) return;
    }
    // == Slow path ==
    const u64 seq = rec.seq1.load(std::memory_order_relaxed);
    rec.local_tail.store(tail, std::memory_order_release);
    rec.init_tail.store(tail, std::memory_order_release);
    rec.index.store(index, std::memory_order_release);
    rec.is_enqueue.store(true, std::memory_order_release);
    rec.seq2.store(seq, std::memory_order_release);
    rec.pending.store(true, std::memory_order_release);
    enqueue_slow(h, tail, index, rec, seq);
    // The element is inserted, but the inserting thread may have been a
    // helper that has not yet executed its Threshold reset (Fig 7 line 18
    // runs after the FIN that released us). Returning now would let a
    // dequeuer read the stale negative threshold and report empty even
    // though this enqueue has completed — a linearizability violation
    // caught by the L4 history check (deviation 7, DESIGN.md §3). Re-arm
    // the threshold before responding; an extra reset is always safe.
    reset_threshold();
    rec.pending.store(false, std::memory_order_release);
    rec.seq1.store(seq + 1, std::memory_order_release);
  }

  // Removes and returns the oldest index, or nullopt when empty. Wait-free.
  std::optional<u64> dequeue() {
    WCQ_SCHED_POINT(kThresholdCheck);
    if (threshold_.value.load(std::memory_order_acquire) < 0) {
      return std::nullopt;  // empty fast-exit (before paying for a session)
    }
    Handle h = handle();
    return dequeue(h);
  }

  std::optional<u64> dequeue(Handle& sh) {
    WCQ_SCHED_POINT(kThresholdCheck);
    if (threshold_.value.load(std::memory_order_acquire) < 0) {
      return std::nullopt;  // empty fast-exit
    }
    ThreadRec& rec = *sh.rec_;
    help_threads(sh);
    // == Fast path (SCQ) ==
    u64 head = 0;
    for (int i = 0; i < opt_.deq_patience; ++i) {
      u64 index;
      switch (try_deq(sh, index, head)) {
        case DeqStatus::kOk:
          return index;
        case DeqStatus::kEmpty:
          return std::nullopt;
        case DeqStatus::kRetry:
          break;
      }
    }
    // == Slow path ==
    const u64 seq = rec.seq1.load(std::memory_order_relaxed);
    rec.local_head.store(head, std::memory_order_release);
    rec.init_head.store(head, std::memory_order_release);
    rec.is_enqueue.store(false, std::memory_order_release);
    rec.seq2.store(seq, std::memory_order_release);
    rec.pending.store(true, std::memory_order_release);
    dequeue_slow(sh, head, rec, seq);
    rec.pending.store(false, std::memory_order_release);
    rec.seq1.store(seq + 1, std::memory_order_release);
    // Gather the slow-path result (Fig 5 lines 48-54): the final reservation
    // is in local_head; only the requester consumes it.
    const u64 h = rec.local_head.load(std::memory_order_acquire) & kCounterMask;
    const u64 j = remap_(codec_.pos_of(h));
    const u64 raw = entries_[j].lo.load(std::memory_order_acquire);
    const Entry e = codec_.unpack(raw);
    if (e.cycle == codec_.cycle_of(h) && e.index != codec_.bottom()) {
      assert(e.index != codec_.bottom_c() && "slot consumed by non-owner");
      dbg(kEvGatherTaken, h, e.index);
      consume(sh, h, j, e);
      return e.index;
    }
    dbg(kEvGatherEmpty, h);
    return std::nullopt;
  }

  // Batch insert (DESIGN.md §7): all `n` indices are inserted. One Tail F&A
  // reserves n consecutive ranks and the threshold is re-armed once for the
  // whole span instead of once per element; ranks whose slot is unusable are
  // abandoned (exactly as a failed fast-path attempt abandons its rank) and
  // the affected indices fall back to the wait-free single-op path. The
  // caller's "at most capacity() live indices" precondition covers the whole
  // batch.
  void enqueue_bulk(const u64* indices, std::size_t n) {
    if (n == 0) return;
    Handle h = handle();
    enqueue_bulk(h, indices, n);
  }

  void enqueue_bulk(Handle& h, const u64* indices, std::size_t n) {
    if (n == 0) return;
    if (n == 1) return enqueue(h, indices[0]);
    help_threads(h);
    WCQ_SCHED_POINT(kTailFaa);
    const u64 base = tail_.lo.fetch_add(n, std::memory_order_seq_cst);
    opcount::count_faa();
    std::size_t done = 0;
    for (std::size_t k = 0; k < n && done < n; ++k) {
      if (enq_at(base + k, indices[done], /*reset_thld=*/false)) ++done;
    }
    reset_threshold();  // one re-arm for the whole span
    for (; done < n; ++done) enqueue(h, indices[done]);
  }

  // Batch remove (DESIGN.md §7): pops up to `n` indices into `out`, one Head
  // F&A for the whole span. Returns the number actually dequeued; fewer than
  // n does not imply emptiness (a rank can be contended away, the same
  // transient a single-op fast-path retry absorbs) — partial success is the
  // batch contract. Every reserved rank is processed (see deq_at).
  std::size_t dequeue_bulk(u64* out, std::size_t n) {
    if (n == 0) return 0;
    WCQ_SCHED_POINT(kThresholdCheck);
    if (threshold_.value.load(std::memory_order_acquire) < 0) {
      return 0;  // empty fast-exit, no ranks burned (and no session paid)
    }
    Handle h = handle();
    return dequeue_bulk(h, out, n);
  }

  std::size_t dequeue_bulk(Handle& h, u64* out, std::size_t n) {
    if (n == 0) return 0;
    WCQ_SCHED_POINT(kThresholdCheck);
    if (threshold_.value.load(std::memory_order_acquire) < 0) {
      return 0;  // empty fast-exit, no ranks burned
    }
    if (n == 1) {
      const auto v = dequeue(h);
      if (!v) return 0;
      out[0] = *v;
      return 1;
    }
    help_threads(h);
    WCQ_SCHED_POINT(kHeadFaa);
    const u64 base = head_.lo.fetch_add(n, std::memory_order_seq_cst);
    opcount::count_faa();
    std::size_t got = 0;
    for (std::size_t k = 0; k < n; ++k) {
      u64 idx;
      if (deq_at(h, base + k, idx) == DeqStatus::kOk) out[got++] = idx;
    }
    return got;
  }

  // Re-initialize the ring to its freshly-constructed (empty) state so a
  // drained, finalized segment can be reopened (DESIGN.md §8).
  //
  // Precondition: exclusive access. No operation is in flight, no helper can
  // be inside the queue (every path into the ring goes through an operation),
  // and no thread may start an operation until the reset is published. The
  // segment pool provides this window: a segment is reset only after its
  // hazard-pointer grace period has passed, and the reset values reach the
  // next user through the pool's release/acquire hand-off. Under that
  // precondition the per-thread records can be rewound too — rolling seq1
  // back to 1 is safe precisely because no helper holds a generation to
  // confuse (the reuse-ABA argument, DESIGN.md §8).
  void reset() {
    for (u64 i = 0; i < codec_.ring_size(); ++i) {
      entries_[i].lo.store(codec_.initial(), std::memory_order_relaxed);
      entries_[i].hi.store(0, std::memory_order_relaxed);  // Note: "never"
    }
    tail_.lo.store(codec_.ring_size(), std::memory_order_relaxed);
    tail_.hi.store(0, std::memory_order_relaxed);
    head_.lo.store(codec_.ring_size(), std::memory_order_relaxed);
    head_.hi.store(0, std::memory_order_relaxed);
    threshold_.value.store(-1, std::memory_order_relaxed);
    for (u64 i = 0; i < records_.size(); ++i) {
      ThreadRec& r = records_[i];
      r.next_check = 1;
      r.next_tid = 0;
      r.phase2.seq1.store(1, std::memory_order_relaxed);
      r.phase2.local.store(0, std::memory_order_relaxed);
      r.phase2.cnt.store(0, std::memory_order_relaxed);
      r.phase2.seq2.store(0, std::memory_order_relaxed);
      r.seq1.store(1, std::memory_order_relaxed);
      r.is_enqueue.store(false, std::memory_order_relaxed);
      r.pending.store(false, std::memory_order_relaxed);
      r.local_tail.store(0, std::memory_order_relaxed);
      r.init_tail.store(0, std::memory_order_relaxed);
      r.local_head.store(0, std::memory_order_relaxed);
      r.init_head.store(0, std::memory_order_relaxed);
      r.index.store(0, std::memory_order_relaxed);
      r.seq2.store(0, std::memory_order_relaxed);
    }
  }

  // --- introspection hooks (tests / benches) -------------------------------
  i64 threshold() const {
    return threshold_.value.load(std::memory_order_acquire);
  }
  u64 head() const { return head_.lo.load(std::memory_order_acquire); }
  u64 tail() const { return tail_.lo.load(std::memory_order_acquire); }
  // True if any registered thread currently advertises a pending request.
  bool any_pending() const {
    for (unsigned i = 0; i < n_records(); ++i) {
      if (records_[i].pending.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  // Debug event hooks (tests only; default off). Called with the counter
  // value (rank) at each state-changing event so a test harness can check
  // global produce/consume accounting.
  enum DebugEvent : int {
    kEvProducedFast = 0,
    kEvProducedSlow,
    kEvConsumed,
    kEvDeqBotMarkFast,   // dequeuer wrote the ⊥-mark at its cycle
    kEvDeqBotMarkSlow,
    kEvDeqUnsafeFast,    // dequeuer stripped IsSafe from an old live entry
    kEvDeqUnsafeSlow,
    kEvDeqRetryFast,     // fast dequeue left rank h with RETRY
    kEvDeqEmptyFast,
    kEvDeqSlowFalse,     // try_deq_slow abandoned rank h
    kEvDeqSlowFinReady,  // helper saw the ready entry and set FIN
    kEvDeqSlowFinEmpty,
    kEvGatherTaken,      // requester consumed the slow-path result
    kEvGatherEmpty,
    kEvEnqSlowAvert,     // try_enq_slow watermarked Note
    kEvEnqSlowFalse,
    kEvP1Adv,            // phase-1 CAS advanced local to rank|INC (aux=old)
    kEvP2Done,           // phase-2 CAS cleared INC at rank (helper or self)
    kEvPublishOk,        // global CAS2 granted rank to the group
    kEvReturnTrue,       // slow_faa handed rank to a cooperative thread
    kEvFinFail,          // FIN CAS at rank failed (aux=observed local word)
  };
  struct DebugHooks {
    void (*event)(void* ctx, int kind, u64 rank, u64 aux) = nullptr;
    void* ctx = nullptr;
  };
  DebugHooks debug_hooks;

  void dbg(int kind, u64 rank, u64 aux = 0) {
    if (debug_hooks.event != nullptr) {
      debug_hooks.event(debug_hooks.ctx, kind, rank, aux);
    }
  }

  // Post-mortem diagnostic: dump ring slots and thread records to stderr.
  // Not synchronized; only meaningful when the queue is quiescent/stuck.
  // All loads relaxed (DESIGN.md §15 DBG-RELAXED): the dump races by
  // construction, individual loads stay word-atomic either way, and on a
  // quiescent queue every committed value is already visible — seq_cst here
  // bought ordering no reader of the dump could use.
  void debug_dump() const {
    using std::memory_order_relaxed;
    std::fprintf(stderr, "WCQ dump: head=%llu tail=%llu threshold=%lld\n",
                 (unsigned long long)head_.lo.load(memory_order_relaxed),
                 (unsigned long long)tail_.lo.load(memory_order_relaxed),
                 (long long)threshold_.value.load(memory_order_relaxed));
    std::fprintf(stderr, "  head.ref=%llx tail.ref=%llx\n",
                 (unsigned long long)head_.hi.load(memory_order_relaxed),
                 (unsigned long long)tail_.hi.load(memory_order_relaxed));
    for (u64 pos = 0; pos < codec_.ring_size(); ++pos) {
      const u64 j = remap_(pos);
      const Entry e =
          codec_.unpack(entries_[j].lo.load(memory_order_relaxed));
      std::fprintf(
          stderr,
          "  slot[pos=%llu j=%llu] cycle=%llu safe=%d enq=%d "
          "idx=%llu note=%llu\n",
          (unsigned long long)pos, (unsigned long long)j,
          (unsigned long long)e.cycle, e.safe ? 1 : 0, e.enq ? 1 : 0,
          (unsigned long long)e.index,
          (unsigned long long)entries_[j].hi.load(memory_order_relaxed));
    }
    for (unsigned i = 0; i < n_records(); ++i) {
      const ThreadRec& r = records_[i];
      std::fprintf(
          stderr,
          "  rec[%u] pending=%d enq=%d seq1=%llu seq2=%llu "
          "ltail=%llx itail=%llx lhead=%llx ihead=%llx idx=%llu\n",
          i, r.pending.load(memory_order_relaxed) ? 1 : 0,
          r.is_enqueue.load(memory_order_relaxed) ? 1 : 0,
          (unsigned long long)r.seq1.load(memory_order_relaxed),
          (unsigned long long)r.seq2.load(memory_order_relaxed),
          (unsigned long long)r.local_tail.load(memory_order_relaxed),
          (unsigned long long)r.init_tail.load(memory_order_relaxed),
          (unsigned long long)r.local_head.load(memory_order_relaxed),
          (unsigned long long)r.init_head.load(memory_order_relaxed),
          (unsigned long long)r.index.load(memory_order_relaxed));
    }
  }

 private:
  // ---- per-thread state (Fig 4) -------------------------------------------

  // Second-phase help request: which record's local word must move from
  // cnt|INC to cnt to finish a published increment.
  struct Phase2Rec {
    std::atomic<u64> seq1{1};
    std::atomic<u64> local{0};  // address of the helpee's local counter word
    std::atomic<u64> cnt{0};
    std::atomic<u64> seq2{0};
  };

  struct alignas(kDestructiveRange) ThreadRec {
    // Private fields — only the owning thread touches these.
    u64 next_check = 1;
    unsigned next_tid = 0;
    // Shared fields.
    Phase2Rec phase2;
    std::atomic<u64> seq1{1};
    std::atomic<bool> is_enqueue{false};
    std::atomic<bool> pending{false};
    std::atomic<u64> local_tail{0};
    std::atomic<u64> init_tail{0};
    std::atomic<u64> local_head{0};
    std::atomic<u64> init_head{0};
    std::atomic<u64> index{0};
    std::atomic<u64> seq2{0};
  };

  // Flag bits stolen from local_tail / local_head (counters stay < 2^62).
  static constexpr u64 kFin = u64{1} << 63;  // request finished: stop helping
  static constexpr u64 kInc = u64{1} << 62;  // Phase 1 done, Phase 2 pending
  static constexpr u64 kCounterMask = kInc - 1;

  // Packed (tid, phase2 generation) tag published in the global pair's
  // second word while an increment's Phase 2 is outstanding (deviation 1).
  static constexpr unsigned kRefTidShift = 48;
  static constexpr u64 kRefSeqMask = (u64{1} << kRefTidShift) - 1;
  static u64 make_ref(unsigned tid, u64 seq) {
    return (u64{tid} << kRefTidShift) | (seq & kRefSeqMask);
  }
  static unsigned ref_tid(u64 ref) {
    return static_cast<unsigned>(ref >> kRefTidShift);
  }
  static u64 ref_seq(u64 ref) { return ref & kRefSeqMask; }

  enum class DeqStatus { kOk, kEmpty, kRetry };

  i64 threshold_max() const {
    return static_cast<i64>(codec_.half() * 3 - 1);
  }

  u64 rec_index(const ThreadRec& r) const {
    return static_cast<u64>(&r - records_.data());
  }

  unsigned n_records() const {
    const unsigned hw = ThreadRegistry::high_water();
    return hw < opt_.max_threads ? hw : opt_.max_threads;
  }

  // ---- fast path (identical to SCQ modulo the pair layout) ----------------

  bool try_enq(u64 index, u64& tail_out) {
    WCQ_SCHED_POINT(kTailFaa);
    const u64 t = tail_.lo.fetch_add(1, std::memory_order_seq_cst);
    opcount::count_faa();
    tail_out = t;
    return enq_at(t, index, /*reset_thld=*/true);
  }

  DeqStatus try_deq(Handle& me, u64& index_out, u64& head_out) {
    WCQ_SCHED_POINT(kHeadFaa);
    const u64 h = head_.lo.fetch_add(1, std::memory_order_seq_cst);
    opcount::count_faa();
    head_out = h;
    return deq_at(me, h, index_out);
  }

  // Process one already-reserved tail rank. Batch enqueues reserve a span of
  // ranks with a single F&A and defer the threshold re-arm to the end of the
  // span (reset_thld=false); deferring is safe because the bulk call has not
  // returned, so a dequeuer reading the stale negative threshold linearizes
  // its "empty" before these enqueues (same argument as deviation 7).
  bool enq_at(u64 t, u64 index, bool reset_thld) {
    const u64 j = remap_(codec_.pos_of(t));
    const u64 cycle_t = codec_.cycle_of(t);
    u64 raw = entries_[j].lo.load(std::memory_order_acquire);
    for (;;) {
      const Entry e = codec_.unpack(raw);
      if (e.cycle < cycle_t &&
          (e.safe || head_.lo.load(std::memory_order_seq_cst) <= t) &&
          !codec_.is_live_index(e.index)) {
        // One-step insertion on the fast path: Enq=1 right away (Thm 5.9).
        const u64 fresh = codec_.pack(cycle_t, true, true, index);
        WCQ_SCHED_POINT(kEntryUpdate);
        if (!entries_[j].lo.compare_exchange_strong(
                raw, fresh, std::memory_order_seq_cst)) {
          continue;
        }
        dbg(kEvProducedFast, t, index);
        if (reset_thld) reset_threshold();
        return true;
      }
      return false;
    }
  }

  // Process one already-reserved head rank. Every reserved rank MUST pass
  // through here: a claimed rank whose slot holds a cycle-matching element is
  // the only dequeuer that will ever consume it (later cycles ⊥-mark or
  // unsafe-mark, never consume), so abandoning a reservation would leak the
  // element and its Fig 2 index forever.
  DeqStatus deq_at(Handle& me, u64 h, u64& index_out) {
    const u64 j = remap_(codec_.pos_of(h));
    const u64 cycle_h = codec_.cycle_of(h);
    u64 raw = entries_[j].lo.load(std::memory_order_acquire);
    for (;;) {
      WCQ_SCHED_POINT(kEntryUpdate);
      const Entry e = codec_.unpack(raw);
      if (e.cycle == cycle_h) {
        assert(codec_.is_live_index(e.index) && "owner sees non-live index");
        consume(me, h, j, e);
        index_out = e.index;
        return DeqStatus::kOk;
      }
      u64 fresh;
      const bool live = codec_.is_live_index(e.index);
      if (!live) {
        fresh = codec_.pack(cycle_h, e.safe, true, codec_.bottom());
      } else {
        fresh = codec_.pack(e.cycle, false, e.enq, e.index);
      }
      if (e.cycle < cycle_h) {
        if (!entries_[j].lo.compare_exchange_strong(
                raw, fresh, std::memory_order_seq_cst)) {
          continue;
        }
        dbg(live ? kEvDeqUnsafeFast : kEvDeqBotMarkFast, h);
        const u64 t = tail_.lo.load(std::memory_order_seq_cst);
        if (t <= h + 1) {
          catchup(t, h + 1);
          WCQ_SCHED_POINT(kThresholdDec);
          threshold_.value.fetch_sub(1, std::memory_order_seq_cst);
          opcount::count_threshold();
          dbg(kEvDeqEmptyFast, h);
          return DeqStatus::kEmpty;
        }
      }
      opcount::count_threshold();
      WCQ_SCHED_POINT(kThresholdDec);
      if (threshold_.value.fetch_sub(1, std::memory_order_seq_cst) <= 0) {
        dbg(kEvDeqEmptyFast, h);
        return DeqStatus::kEmpty;
      }
      dbg(kEvDeqRetryFast, h);
      return DeqStatus::kRetry;
    }
  }

  void reset_threshold() {
    // The dirty pre-check is a heuristic that skips the seq_cst store when
    // the threshold is already re-armed; relaxed suffices for it. A skip is
    // taken only when the load returns threshold_max, a value some thread's
    // re-arm stored, and there are two ways that can be "wrong":
    //  * Staleness — reading a threshold_max that decrements have already
    //    buried. Coherent hardware does not produce this for a plain load
    //    (the load returns the line's current committed value); decrements
    //    landing after the read are indistinguishable from decrements
    //    landing right after a performed store, which the seq_cst version
    //    tolerates too.
    //  * Store-load reordering — on non-TSO ISAs the relaxed load may be
    //    satisfied while this thread's entry-publishing CAS still sits in
    //    the store buffer, so decrements by dequeuers that missed the
    //    not-yet-visible entry can predate the read. The skip then leaves
    //    the budget short by k, where k is bounded by the seq_cst RMWs
    //    other cores can complete inside one store-buffer drain window —
    //    a handful of contended line transfers, far under the ~n slack the
    //    3n-1 bound carries over the <= 2n failed probes needed to reach a
    //    present element (x86's locked CAS is a full fence: k = 0 there).
    // All cross-thread ordering still flows through the guarded store,
    // which stays seq_cst (Lemma 5.5 ordering); the L4 empty-window history
    // check is the regression net for this argument.
    if (threshold_.value.load(std::memory_order_relaxed) != threshold_max()) {
      WCQ_SCHED_POINT(kThresholdArm);
#if defined(WCQ_ANALYSIS_MUTATE_THRESHOLD)
      // Mutation self-test (DESIGN.md §11): model the re-arm downgraded to a
      // relaxed store whose visibility is delayed past the next scheduling
      // point. tests/analysis must catch the false-empty window this opens.
      analysis::mutate_deferred_store(&threshold_.value, threshold_max());
#else
      threshold_.value.store(threshold_max(), std::memory_order_seq_cst);
#endif
      opcount::count_threshold();
    }
  }

  void catchup(u64 tail, u64 head) {
    for (int i = 0; i < kCatchupMax; ++i) {
      WCQ_SCHED_POINT(kCatchup);
      if (tail_.lo.compare_exchange_strong(tail, head,
                                           std::memory_order_seq_cst)) {
        return;
      }
      // Relaxed re-loads (DESIGN.md §15 CATCHUP-RELOAD): these only steer a
      // bounded contention heuristic. A stale pair either retries the CAS —
      // which re-validates against the real Tail and publishes with seq_cst
      // — or exits early, and exiting early is always correct: catchup is
      // purely an optimization, the dequeuer's own path tolerates Tail
      // lagging Head.
      head = head_.lo.load(std::memory_order_relaxed);
      tail = tail_.lo.load(std::memory_order_relaxed);
      if (tail >= head) return;
    }
  }

  // ---- consume / finalize (Fig 5 lines 1-11) ------------------------------

  void consume(Handle& me, u64 h, u64 j, const Entry& e) {
    if (!e.enq) finalize_request(me, h);
    WCQ_SCHED_POINT(kEntryUpdate);
    entries_[j].lo.fetch_or(codec_.consume_mask(), std::memory_order_seq_cst);
    dbg(kEvConsumed, h, e.index);
  }

  // An entry produced by a slow-path enqueuer (Enq=0) is being consumed:
  // terminate that enqueuer's helpers by setting FIN on its local tail.
  // The scan bound is the *live* high_water — a session-cached snapshot is
  // not safe here: missing the enqueuer's record would leave its helpers
  // unterminated while the slot recycles, and they could re-produce the
  // element at a later rank (a duplicate). This path runs only when an
  // Enq=0 entry is consumed, i.e. once per slow-path enqueue, so the
  // lookup does not register on the per-op budget.
  void finalize_request(Handle& me, u64 h) {
    const unsigned self = me.tid_;
    const unsigned n = n_records();
    for (unsigned step = 1; step < n; ++step) {
      const unsigned i = (self + step) % n;
      std::atomic<u64>& lt = records_[i].local_tail;
      const u64 cur = lt.load(std::memory_order_acquire);
      if ((cur & kCounterMask) == h) {
        u64 expect = h;  // only a clean (flag-free) value is finalized
        WCQ_SCHED_POINT(kSlowLocal);
        lt.compare_exchange_strong(expect, h | kFin,
                                   std::memory_order_seq_cst);
        return;
      }
    }
  }

  // ---- helping (Fig 6) -----------------------------------------------------

  void help_threads(Handle& me) {
    ThreadRec& rec = *me.rec_;
    if (--rec.next_check != 0) return;
    rec.next_check = opt_.help_delay;
    // The high_water read happens only when the check fires, so the help
    // scan's one registry lookup amortizes to 1/help_delay per operation —
    // what keeps the explicit-handle path under the ≤1-lookup budget
    // (DESIGN.md §10). A snapshot taken here may miss a thread that
    // registers mid-window; it is seen one help_delay window later, a
    // bounded delay, so the helping bound is preserved.
    const unsigned n = n_records();
    if (rec.next_tid >= n) rec.next_tid = 0;
    ThreadRec& thr = records_[rec.next_tid];
    if (&thr != &rec && thr.pending.load(std::memory_order_acquire)) {
      if (thr.is_enqueue.load(std::memory_order_acquire)) {
        help_enqueue(me, thr);
      } else {
        help_dequeue(me, thr);
      }
    }
    rec.next_tid = (rec.next_tid + 1) % n;
  }

  void help_enqueue(Handle& me, ThreadRec& thr) {
    const u64 seq = thr.seq2.load(std::memory_order_acquire);
    const bool enq = thr.is_enqueue.load(std::memory_order_acquire);
    const u64 idx = thr.index.load(std::memory_order_acquire);
    const u64 tail = thr.init_tail.load(std::memory_order_acquire);
    // seq1 is read after the fields (acquire loads keep program order for
    // later loads); equality proves the fields belong to generation `seq`.
    if (enq && thr.seq1.load(std::memory_order_acquire) == seq) {
      enqueue_slow(me, tail, idx, thr, seq);
    }
  }

  void help_dequeue(Handle& me, ThreadRec& thr) {
    const u64 seq = thr.seq2.load(std::memory_order_acquire);
    const bool enq = thr.is_enqueue.load(std::memory_order_acquire);
    const u64 head = thr.init_head.load(std::memory_order_acquire);
    if (!enq && thr.seq1.load(std::memory_order_acquire) == seq) {
      dequeue_slow(me, head, thr, seq);
    }
  }

  // ---- slow path (Fig 7) ---------------------------------------------------

  void enqueue_slow(Handle& me, u64 t, u64 index, ThreadRec& rec, u64 seq) {
    u64 v = t;
    while (slow_faa(me, tail_, rec.local_tail, v, /*thld=*/nullptr, rec, seq,
                    /*init=*/t)) {
      if (try_enq_slow(v, index, rec)) break;
    }
  }

  void dequeue_slow(Handle& me, u64 h, ThreadRec& rec, u64 seq) {
    u64 v = h;
    while (slow_faa(me, head_, rec.local_head, v, &threshold_.value, rec, seq,
                    /*init=*/h)) {
      if (try_deq_slow(v, rec)) break;
    }
  }

  // Fig 7 try_enq_slow. Returns true when the request's element is known to
  // be inserted (by us or a peer); false means "advance to the next slot".
  bool try_enq_slow(u64 t, u64 index, ThreadRec& rec) {
    const u64 j = remap_(codec_.pos_of(t));
    const u64 cycle_t = codec_.cycle_of(t);
    for (;;) {
      WCQ_SCHED_POINT(kEntryUpdate);
      Pair128 pair = entries_[j].load_torn();
      const Entry e = codec_.unpack(pair.lo);
      const u64 note = pair.hi;
      if (e.cycle < cycle_t && note < cycle_t) {
        if (!(e.safe || head_.lo.load(std::memory_order_seq_cst) <= t) ||
            codec_.is_live_index(e.index)) {
          // Unusable: watermark Note so every cooperating thread skips this
          // slot even if the condition later turns true for them.
          if (!EntryOps::update_note(entries_[j], pair, cycle_t)) continue;
          dbg(kEvEnqSlowAvert, t, rec_index(rec));
          return false;
        }
        // Produce the entry two-step: Enq=0 first.
        const Pair128 produced{codec_.pack(cycle_t, true, false, index),
                               note};
        if (!EntryOps::update_value(entries_[j], pair, produced.lo)) continue;
        dbg(kEvProducedSlow, t, index);
        // Finalize the help request, then flip Enq to 1 (Fig 7 lines 14-17).
        u64 expect = t;
        WCQ_SCHED_POINT(kSlowLocal);
        if (rec.local_tail.compare_exchange_strong(
                expect, t | kFin, std::memory_order_seq_cst)) {
          // Flip Enq to 1; on failure the consumer's OR flips it instead.
          EntryOps::update_value(entries_[j], produced,
                                 codec_.pack(cycle_t, true, true, index));
        }
        reset_threshold();
        return true;
      }
      if (e.cycle != cycle_t) {
        dbg(kEvEnqSlowFalse, t, rec_index(rec));
        return false;
      }
      // Cycle matches: either a peer inserted this request's element (live
      // index, or ⊥c once the requester consumed it) — success — or a
      // dequeuer with the *same counter value* arrived first and ⊥-marked
      // the slot, in which case nothing was inserted and the group must
      // move to the next reservation. The paper's Fig 7 line 19/20 elides
      // the ⊥ case; treating it as success silently drops the element
      // (deviation 3, DESIGN.md §3).
      return e.index != codec_.bottom();
    }
  }

  // Fig 7 try_deq_slow. Returns true when the result for this request is
  // decided (element ready at `h`, or queue empty); the requester gathers
  // the actual value afterwards (Fig 5 lines 48-54).
  bool try_deq_slow(u64 h, ThreadRec& rec) {
    const u64 j = remap_(codec_.pos_of(h));
    const u64 cycle_h = codec_.cycle_of(h);
    for (;;) {
      WCQ_SCHED_POINT(kEntryUpdate);
      Pair128 pair = entries_[j].load_torn();
      const Entry e = codec_.unpack(pair.lo);
      if (e.cycle == cycle_h && e.index != codec_.bottom()) {
        // Ready (value) or already consumed by the requester (⊥c).
        u64 expect = h;
        WCQ_SCHED_POINT(kSlowLocal);
        if (!rec.local_head.compare_exchange_strong(
                expect, h | kFin, std::memory_order_seq_cst)) {
          dbg(kEvFinFail, h, expect);
        }
        dbg(kEvDeqSlowFinReady, h, rec_index(rec));
        return true;
      }
      u64 note = pair.hi;
      u64 val = codec_.pack(cycle_h, e.safe, true, codec_.bottom());
      const bool live = codec_.is_live_index(e.index);
      if (live) {
        if (e.cycle < cycle_h && note < cycle_h) {
          // Watermark so late helper dequeuers do not revisit this slot.
          if (!EntryOps::update_note(entries_[j], pair, cycle_h)) continue;
          pair.hi = cycle_h;
          note = cycle_h;
        }
        val = codec_.pack(e.cycle, false, e.enq, e.index);
      }
      if (e.cycle < cycle_h) {
        if (!EntryOps::update_value(entries_[j], pair, val)) continue;
        dbg(live ? kEvDeqUnsafeSlow : kEvDeqBotMarkSlow, h);
      }
      const u64 t = tail_.lo.load(std::memory_order_seq_cst);
      if (t <= h + 1) {
        catchup(t, h + 1);
        WCQ_SCHED_POINT(kThresholdCheck);
        if (threshold_.value.load(std::memory_order_seq_cst) < 0) {
          u64 expect = h;
          WCQ_SCHED_POINT(kSlowLocal);
          if (!rec.local_head.compare_exchange_strong(
                  expect, h | kFin, std::memory_order_seq_cst) &&
              (expect & kFin) == 0) {
            dbg(kEvFinFail, h, expect);
            return false;  // group advanced; the request is not finished
          }
          dbg(kEvDeqSlowFinEmpty, h, rec_index(rec));
          return true;  // queue is empty
        }
      }
      dbg(kEvDeqSlowFalse, h, rec_index(rec));
      return false;
    }
  }

  // Fig 7 slow_F&A: a helped, two-phase replacement for F&A on the global
  // Head/Tail pair. All cooperating threads of one request agree on each
  // reserved counter value through the request's local word; the global
  // counter moves exactly once per reservation. On return `v` holds the
  // reserved counter (true) or the request is finished (false).
  bool slow_faa(Handle& me, AtomicPair128& global, std::atomic<u64>& local,
                u64& v, std::atomic<i64>* thld, ThreadRec& req_rec,
                u64 req_seq, u64 init) {
    const unsigned my = me.tid_;
    Phase2Rec& p2 = me.rec_->phase2;
    Backoff bo;
    for (;;) {
      u64 cnt = 0;
      const bool have_cnt = load_global_help_phase2(global, local, cnt);
      bool advanced = false;
      if (have_cnt) {
        u64 expect = v;
        WCQ_SCHED_POINT(kSlowLocal);
        if (local.compare_exchange_strong(expect, cnt | kInc,
                                          std::memory_order_seq_cst)) {
          dbg(kEvP1Adv, cnt, v);
          v = cnt | kInc;  // Phase 1 complete (for this attempt)
          advanced = true;
        }
      }
      if (!advanced) {
        v = local.load(std::memory_order_acquire);
        // Deviation 2 (DESIGN.md §3): a bare read of the shared word is only
        // trusted if the request generation still matches; otherwise this
        // helper is operating on a dead request and must stop.
        if (req_rec.seq1.load(std::memory_order_acquire) != req_seq) {
          return false;
        }
        if ((v & kFin) != 0) return false;
        if ((v & kInc) == 0) {
          // The request's baseline (the failed fast-path rank) is only a CAS
          // anchor: the fast path already exhausted that rank, and handing
          // it out as a reservation would let a production/FIN race the
          // bootstrap phase-1 CAS (deviation 5, DESIGN.md §3). Loop instead;
          // the next phase-1 CAS anchored at it will advance the group. This
          // is the slow path's one wait on a *peer's* step (a cooperating
          // thread's phase-1 CAS), so it backs off rather than spinning dry
          // on oversubscribed hosts; the helping protocol itself provides
          // the wait-freedom bound (DESIGN.md §5).
          if (v == init) {
            bo.pause();
            continue;
          }
          dbg(kEvReturnTrue, v, rec_index(req_rec));
          return true;  // already reserved; v is the slot
        }
        cnt = v & kCounterMask;
      }
      // Publish the increment together with a Phase-2 help tag.
      const u64 gen = prepare_phase2(p2, &local, cnt);
      Pair128 expect{cnt, 0};
      WCQ_SCHED_POINT(kSlowPublish);
      if (dwcas(global, expect, Pair128{cnt + 1, make_ref(my, gen)})) {
        opcount::count_faa();  // the slow path's published increment
        dbg(kEvPublishOk, cnt, rec_index(req_rec));
        // Exactly one thread reaches here per reservation: the threshold is
        // decremented once per global Head change (Lemma 5.6).
        if (thld != nullptr) {
          WCQ_SCHED_POINT(kThresholdDec);
          thld->fetch_sub(1, std::memory_order_seq_cst);
          opcount::count_threshold();
        }
        u64 e = cnt | kInc;
        WCQ_SCHED_POINT(kSlowLocal);
        if (local.compare_exchange_strong(e, cnt, std::memory_order_seq_cst)) {
          dbg(kEvP2Done, cnt);
        }
        Pair128 gexp{cnt + 1, make_ref(my, gen)};
        WCQ_SCHED_POINT(kSlowPublish);
        dwcas(global, gexp, Pair128{cnt + 1, 0});  // failure: others clear it
        v = cnt;
        dbg(kEvReturnTrue, v, rec_index(req_rec));
        return true;
      }
    }
  }

  u64 prepare_phase2(Phase2Rec& p2, std::atomic<u64>* local, u64 cnt) {
    const u64 gen = p2.seq1.load(std::memory_order_relaxed) + 1;
    p2.seq1.store(gen, std::memory_order_release);
    p2.local.store(reinterpret_cast<u64>(local), std::memory_order_release);
    p2.cnt.store(cnt, std::memory_order_release);
    p2.seq2.store(gen, std::memory_order_release);
    return gen;
  }

  // Fig 7 load_global_help_phase2: read the global counter, first helping to
  // complete (and clear) any published Phase-2 request. Returns false when
  // the caller's request is finished (FIN observed on its local word).
  bool load_global_help_phase2(AtomicPair128& global, std::atomic<u64>& local,
                               u64& cnt_out) {
    for (;;) {
      WCQ_SCHED_POINT(kSlowHelp);
      if ((local.load(std::memory_order_acquire) & kFin) != 0) return false;
      const u64 gcnt = global.lo.load(std::memory_order_seq_cst);
      const u64 gref = global.hi.load(std::memory_order_acquire);
      if (gref == 0) {
        cnt_out = gcnt;
        return true;
      }
      // Help the publisher identified by the (tid, generation) tag. The help
      // CAS only fires if the record still holds that generation's data
      // (deviation 1), which also proves the increment was published.
      Phase2Rec& p2 = records_[ref_tid(gref)].phase2;
      const u64 s2 = p2.seq2.load(std::memory_order_acquire);
      if ((s2 & kRefSeqMask) == ref_seq(gref)) {
        const u64 laddr = p2.local.load(std::memory_order_acquire);
        const u64 cnt = p2.cnt.load(std::memory_order_acquire);
        // The generation tag in gref pins the record content to the exact
        // increment that published this reference; a stale gref (left
        // dangling by a failed clear) sees a bumped generation and skips.
        // Note gcnt may legitimately be far ahead of cnt+1 here — fast-path
        // F&As keep moving the counter word while the reference lingers —
        // so no relation between gcnt and cnt may be assumed; skipping the
        // help on such a mismatch (while still clearing the reference
        // below) would let a cooperative thread's stale phase-1 anchor
        // succeed and make the group abandon a granted reservation.
        if (p2.seq1.load(std::memory_order_acquire) == s2) {
          auto* lp = reinterpret_cast<std::atomic<u64>*>(laddr);
          u64 expect = cnt | kInc;
          if (lp->compare_exchange_strong(expect, cnt,
                                          std::memory_order_seq_cst)) {
            dbg(kEvP2Done, cnt);
          }
        }
      }
      Pair128 gexp{gcnt, gref};
      dwcas(global, gexp, Pair128{gcnt, 0});
      // Loop: re-read; the reference is gone or the state moved on.
    }
  }

  static constexpr int kCatchupMax = 8;

  Options opt_;
  EntryCodec codec_;
  CacheRemap remap_;
  alignas(kDestructiveRange) AtomicPair128 tail_;
  char pad_t_[kDestructiveRange - sizeof(AtomicPair128)];
  AtomicPair128 head_;
  char pad_h_[kDestructiveRange - sizeof(AtomicPair128)];
  CacheAligned<std::atomic<i64>> threshold_;
  AlignedArray<AtomicPair128> entries_;
  AlignedArray<ThreadRec> records_;
};

// The paper's wCQ: CAS2-based entry updates (x86-64 / AArch64).
using WCQ = BasicWCQ<Cas2EntryOps>;

}  // namespace wcq
