// wCQ for architectures with ordinary LL/SC (paper §4, Fig 9).
//
// PowerPC and MIPS lack CAS2. The paper's §4 observation: wCQ's slow path
// needs to *read* both words of an entry pair but only ever *updates* one of
// them at a time, so the pair can live in one LL/SC reservation granule —
// LL one word, plain-load the other, SC the updated word; the SC fails if
// *anything* in the granule changed (reservation-granule semantics). This
// gives weak-CAS behavior: sporadic failures, single-word load atomicity on
// failure — both of which wCQ's retry loops tolerate.
//
// Backends (DESIGN.md §15): the entry ops are templated over the LL/SC
// provider. `LLSCSim` (portability/llsc.hpp) models the reservation granule
// on top of CAS2 with injected sporadic failures; `LLSCNative`
// (portability/llsc_native.hpp) is real AArch64 LDXP/STXP. A backend that
// exposes fused `update_lo/update_hi` (one asm block, robust against
// exclusive-monitor clearing between function calls) is preferred over the
// split load_linked/store_conditional shape automatically.
//
// The global Head/Tail pairs keep CAS2 in this build; the paper replaces
// those with a single-word CAS over a (thread-index, 48-bit counter)
// packing, a narrowing that is orthogonal to the Fig 9 entry decomposition
// validated here.
#pragma once

#include "core/wcq.hpp"
#include "portability/llsc.hpp"
#include "portability/llsc_native.hpp"

namespace wcq {

// Fig 9: CAS2_Value / CAS2_Note replacements via LL/SC, generic over the
// backend. Entry pairs are {lo = value, hi = note}.
template <typename Backend>
struct BasicLlscEntryOps {
  static bool update_value(AtomicPair128& e, const Pair128& expected,
                           u64 new_value) {
    if constexpr (requires { Backend::update_lo(e, expected, new_value); }) {
      return Backend::update_lo(e, expected, new_value);
    } else {
      const Pair128 prev = Backend::load_linked(e);
      if (!(prev == expected)) return false;
      return Backend::store_conditional_lo(e, new_value);
    }
  }
  static bool update_note(AtomicPair128& e, const Pair128& expected,
                          u64 new_note) {
    if constexpr (requires { Backend::update_hi(e, expected, new_note); }) {
      return Backend::update_hi(e, expected, new_note);
    } else {
      const Pair128 prev = Backend::load_linked(e);
      if (!(prev == expected)) return false;
      return Backend::store_conditional_hi(e, new_note);
    }
  }
};

using LlscEntryOps = BasicLlscEntryOps<LLSCSim>;

// The portable wCQ variant (paper §4). Same algorithm, same guarantees;
// entry-pair updates go through the LL/SC reservation-granule model.
using WCQLLSC = BasicWCQ<LlscEntryOps>;

#if defined(WCQ_HAS_NATIVE_LLSC)
// Same algorithm over the hardware exclusive monitor (AArch64 only).
using LlscNativeEntryOps = BasicLlscEntryOps<LLSCNative>;
using WCQLLSCNative = BasicWCQ<LlscNativeEntryOps>;
#endif

}  // namespace wcq
