// wCQ for architectures with ordinary LL/SC (paper §4, Fig 9).
//
// PowerPC and MIPS lack CAS2. The paper's §4 observation: wCQ's slow path
// needs to *read* both words of an entry pair but only ever *updates* one of
// them at a time, so the pair can live in one LL/SC reservation granule —
// LL one word, plain-load the other, SC the updated word; the SC fails if
// *anything* in the granule changed (reservation-granule semantics). This
// gives weak-CAS behavior: sporadic failures, single-word load atomicity on
// failure — both of which wCQ's retry loops tolerate.
//
// Substitution note (DESIGN.md §4): no PowerPC hardware is available here,
// so the reservation granule is modeled by portability/llsc.hpp on top of
// CAS2, with optional injected sporadic SC failures to exercise the weak
// semantics. The global Head/Tail pairs keep CAS2 in this build; the paper
// replaces those with a single-word CAS over a (thread-index, 48-bit
// counter) packing, a narrowing that is orthogonal to the Fig 9 entry
// decomposition validated here.
#pragma once

#include "core/wcq.hpp"
#include "portability/llsc.hpp"

namespace wcq {

// Fig 9: CAS2_Value / CAS2_Note replacements via LL/SC.
struct LlscEntryOps {
  static bool update_value(AtomicPair128& e, const Pair128& expected,
                           u64 new_value) {
    const Pair128 prev = LLSCSim::load_linked(e);
    if (!(prev == expected)) return false;
    return LLSCSim::store_conditional_lo(e, new_value);
  }
  static bool update_note(AtomicPair128& e, const Pair128& expected,
                          u64 new_note) {
    const Pair128 prev = LLSCSim::load_linked(e);
    if (!(prev == expected)) return false;
    return LLSCSim::store_conditional_hi(e, new_note);
  }
};

// The portable wCQ variant (paper §4). Same algorithm, same guarantees;
// entry-pair updates go through the LL/SC reservation-granule model.
using WCQLLSC = BasicWCQ<LlscEntryOps>;

}  // namespace wcq
