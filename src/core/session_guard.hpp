// Single-owner session guard for the degree-specialized rings
// (core/mpsc_ring.hpp, core/spmc_ring.hpp; DESIGN.md §13).
//
// MpscRing's consumer side and SpmcRing's producer side are correct only
// under a single-session discipline: exactly one thread may ever drive the
// specialized side between two exclusive-access points (construction,
// reset(), release_sessions()). Violating that is not a performance bug —
// the owner's plain Head/Tail load+store loses updates — so the guard turns
// the violation into a deterministic diagnosed abort instead of silent
// corruption, the same policy as the queue-destroyed-with-live-handles
// check (DESIGN.md §10).
//
// Cost on the owner's hot path: one thread-local address materialization,
// one relaxed load and a predicted-taken compare — no RMW, no fence — so
// the guard does not perturb the zero-F&A/zero-threshold property the
// bench/check_pipeline.py gate asserts (those gates count shared-ring RMWs,
// which the guard never performs after binding).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdio>

namespace wcq {

class SessionGuard {
 public:
  // Bind-or-verify: the first thread through becomes the owner; any other
  // thread tripping this is a contract violation. The trap is unconditional
  // (not assert-only) so release builds fail deterministically too — a
  // second consumer racing the first would otherwise corrupt the ring
  // state long before an assert build ever saw it.
  void enter(const char* ring, const char* role) {
    const void* me = self();
    const void* cur = owner_.load(std::memory_order_relaxed);
    if (cur == me) return;
    if (cur == nullptr &&
        owner_.compare_exchange_strong(cur, me, std::memory_order_relaxed)) {
      return;
    }
    std::fprintf(stderr,
                 "wcq: second %s session on %s (single-%s ring side); "
                 "bind exactly one thread between exclusive-access points\n",
                 role, ring, role);
    assert(false && "second session on a single-owner ring side");
    __builtin_trap();
  }

  // Exclusive-access rebind point: clears the binding so the next session
  // (a recycled segment's new consumer, a destructor's draining thread) can
  // claim it. Legal only when no concurrent operation is possible — the
  // same precondition as the rings' reset() (DESIGN.md §8).
  void release() { owner_.store(nullptr, std::memory_order_relaxed); }

  // True when some thread has bound this side since the last release().
  bool bound() const {
    return owner_.load(std::memory_order_relaxed) != nullptr;
  }

 private:
  // Identity of the calling thread: the address of a thread_local tag,
  // stable for the thread's lifetime and resolved without the registry (so
  // the guard adds zero tid()/high_water() lookups to the counters the
  // session-handle gate tracks).
  static const void* self() {
    static thread_local char tag;
    return &tag;
  }

  std::atomic<const void*> owner_{nullptr};
};

}  // namespace wcq
