// SpmcRing — the SCQ index ring specialized for a single producer; the dual
// of core/mpsc_ring.hpp. The dequeue side is SCQ's verbatim — multiple
// consumers still need rank reservation (Head F&A), the threshold emptiness
// bound, ⊥-marking AND IsSafe stripping — while the producer side exploits
// the single-writer guarantee (full argument: DESIGN.md §13):
//
//   - Tail F&A     → plain load + seq_cst store. One writer means the store
//                    occupies exactly the slot in Tail's modification order
//                    the F&A would have, so the Fig 3 proof shape survives;
//                    seq_cst is kept because dequeuers' emptiness check
//                    (deq_at's Tail load) orders against it.
//   - catchup      → deleted from the dequeue path: dequeuers may not write
//                    a producer-owned Tail. The producer runs the moral
//                    equivalent itself — it starts each reservation from
//                    max(Tail, Head), which it can do with plain loads.
//   - threshold    → KEPT, including the re-arm: it referees concurrent
//                    consumers, which this ring still has. Only its writer
//                    set shrank (one producer re-arms, many consumers
//                    decrement).
//
// A SessionGuard binds the first enqueuing thread and traps any second
// producer (death-tested in tests/test_spmc_ring.cpp); reset() and
// release_sessions() are the exclusive-access rebind points.
//
// Progress: consumers inherit SCQ's lock-freedom among themselves; the
// producer is wait-free for the reservation itself (no rival can invalidate
// its Tail store) and lock-free overall (a ⊥-marked rank costs a retry,
// which implies a consumer progressed).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>

#include "analysis/sched_point.hpp"
#include "common/align.hpp"
#include "common/backoff.hpp"
#include "common/op_counters.hpp"
#include "core/entry.hpp"
#include "core/remap.hpp"
#include "core/session_guard.hpp"

namespace wcq {

class SpmcRing {
 public:
  // Session handle (DESIGN.md §10): stateless, as for SCQ/MpscRing.
  struct Handle {};

  Handle handle() { return Handle{}; }
  Handle handle_for(unsigned /*tid*/) { return Handle{}; }

  // `order`: capacity = 2^order indices over 2^(order+1) slots, as SCQ.
  explicit SpmcRing(unsigned order, bool cache_remap = true)
      : codec_(order),
        remap_(codec_.ring_size(), sizeof(std::atomic<u64>), cache_remap),
        entries_(codec_.ring_size(), kCacheLine) {
    for (u64 i = 0; i < codec_.ring_size(); ++i) {
      entries_[i].store(codec_.initial(), std::memory_order_relaxed);
    }
    tail_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    head_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    threshold_.value.store(-1, std::memory_order_release);  // empty
  }

  SpmcRing(const SpmcRing&) = delete;
  SpmcRing& operator=(const SpmcRing&) = delete;

  u64 capacity() const { return codec_.half(); }
  u64 ring_size() const { return codec_.ring_size(); }

  // --- producer side (one bound thread; traps otherwise) -------------------

  // Inserts `index` (< capacity()). Never fails; caller guarantees at most
  // capacity() live indices. Performs zero Tail F&As and zero CAS loops on
  // Tail — reservation is a single-writer store. The entry CAS in enq_at
  // remains (it races consumers' ⊥-marks), as does the backoff on a dead
  // rank for SCQ's reason.
  void enqueue(u64 index) {
    consumer_guarded_enqueue(&index, 1);
  }

  // Batch insert (DESIGN.md §7 contract): one Tail store per span, one
  // threshold re-arm per span, fallback singles for abandoned ranks.
  void enqueue_bulk(const u64* indices, std::size_t n) {
    if (n == 0) return;
    consumer_guarded_enqueue(indices, n);
  }

  // --- consumer side (any thread; SCQ verbatim minus catchup) --------------

  // Removes and returns the oldest index, or nullopt when empty.
  std::optional<u64> dequeue() {
    WCQ_SCHED_POINT(kThresholdCheck);
    if (threshold_.value.load(std::memory_order_acquire) < 0) {
      return std::nullopt;  // empty fast-exit (Fig 3 line 7)
    }
    for (;;) {
      u64 index;
      switch (try_deq(index)) {
        case DeqStatus::kOk:
          return index;
        case DeqStatus::kEmpty:
          return std::nullopt;
        case DeqStatus::kRetry:
          break;
      }
    }
  }

  // Batch remove: one Head F&A per span, partial-success contract as SCQ.
  std::size_t dequeue_bulk(u64* out, std::size_t n) {
    if (n == 0) return 0;
    WCQ_SCHED_POINT(kThresholdCheck);
    if (threshold_.value.load(std::memory_order_acquire) < 0) {
      return 0;  // empty fast-exit, no ranks burned
    }
    if (n == 1) {
      const auto v = dequeue();
      if (!v) return 0;
      out[0] = *v;
      return 1;
    }
    WCQ_SCHED_POINT(kHeadFaa);
    const u64 base = head_.value.fetch_add(n, std::memory_order_seq_cst);
    opcount::count_faa();
    std::size_t got = 0;
    for (std::size_t k = 0; k < n; ++k) {
      u64 idx;
      if (deq_at(base + k, idx) == DeqStatus::kOk) out[got++] = idx;
    }
    return got;
  }

  // Handle overloads, one call shape across all Ring parameters.
  void enqueue(Handle&, u64 index) { enqueue(index); }
  std::optional<u64> dequeue(Handle&) { return dequeue(); }
  void enqueue_bulk(Handle&, const u64* indices, std::size_t n) {
    enqueue_bulk(indices, n);
  }
  std::size_t dequeue_bulk(Handle&, u64* out, std::size_t n) {
    return dequeue_bulk(out, n);
  }

  // Re-initialize to the freshly-constructed state (DESIGN.md §8
  // precondition: exclusive access; publishing edge belongs to the caller).
  // Also the producer-ownership rebind point.
  void reset() {
    for (u64 i = 0; i < codec_.ring_size(); ++i) {
      entries_[i].store(codec_.initial(), std::memory_order_relaxed);
    }
    tail_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    head_.value.store(codec_.ring_size(), std::memory_order_relaxed);
    threshold_.value.store(-1, std::memory_order_relaxed);  // empty
    producer_.release();
  }

  // Clear session bindings without touching ring contents (exclusive-access
  // only) — lets ctor pre-fill and destructor paths on arbitrary threads
  // act as the producer once the real producer is gone.
  void release_sessions() { producer_.release(); }

  // --- introspection hooks (tests / benches) -------------------------------
  i64 threshold() const {
    return threshold_.value.load(std::memory_order_acquire);
  }
  u64 head() const { return head_.value.load(std::memory_order_acquire); }
  u64 tail() const { return tail_.value.load(std::memory_order_acquire); }

 private:
  enum class DeqStatus { kOk, kEmpty, kRetry };

  i64 threshold_max() const {
    return static_cast<i64>(codec_.half() * 3 - 1);  // 3n - 1 (paper §2)
  }

  // Single-producer reservation + span insert. Reservation starts from
  // max(Tail, Head): consumers can no longer catchup-CAS Tail, so a drained
  // ring would otherwise leave Head arbitrarily far ahead and force the
  // producer to walk every dead rank in between. Both loads are relaxed
  // (DESIGN.md §15 SPMC-CATCHUP): Tail is producer-private, and Head only
  // seeds a starting rank — Head is monotonic, so a stale read is merely
  // lower, and every rank between a stale and the live Head is dead: enq_at
  // rejects it (⊥-mark/cycle check, with its own seq_cst Head consultation
  // on the unsafe arm) and the producer walks forward. Wasted probes, never
  // a wrong insert.
  void consumer_guarded_enqueue(const u64* indices, std::size_t n) {
    producer_.enter("SpmcRing", "producer");
    u64 t = tail_.value.load(std::memory_order_relaxed);
    const u64 hd = head_.value.load(std::memory_order_relaxed);
    if (t < hd) t = hd;  // producer-side catchup: ranks below Head are dead
    if (n > 1) {
      // Bulk span: reserve n ranks with one store, defer the re-arm.
      WCQ_SCHED_POINT(kTailFaa);
      tail_.value.store(t + n, std::memory_order_seq_cst);
      std::size_t done = 0;
      for (std::size_t k = 0; k < n && done < n; ++k) {
        if (enq_at(t + k, indices[done], /*reset_thld=*/false)) ++done;
      }
      reset_threshold();  // one re-arm for the whole span
      for (; done < n; ++done) single_enqueue(indices[done]);
      return;
    }
    single_enqueue_from(t, indices[0]);
  }

  void single_enqueue(u64 index) {
    single_enqueue_from(tail_.value.load(std::memory_order_relaxed), index);
  }

  void single_enqueue_from(u64 t, u64 index) {
    Backoff bo;
    for (;;) {
      // Reserve rank t: the single-writer store is the F&A's slot in Tail's
      // modification order (DESIGN.md §13).
      WCQ_SCHED_POINT(kTailFaa);
      tail_.value.store(t + 1, std::memory_order_seq_cst);
      if (enq_at(t, index, /*reset_thld=*/true)) return;
      ++t;  // rank went dead under a consumer's ⊥-mark; take the next
      bo.pause();
    }
  }

  // SCQ's enq_at, unchanged: the entry CAS stays because it races consumer
  // ⊥-marks, and the IsSafe/Head consultation stays because multi-consumer
  // stripping is still live in this ring.
  bool enq_at(u64 t, u64 index, bool reset_thld) {
    const u64 j = remap_(codec_.pos_of(t));
    const u64 cycle_t = codec_.cycle_of(t);
    u64 raw = entries_[j].load(std::memory_order_acquire);
    for (;;) {
      const Entry e = codec_.unpack(raw);
      if (e.cycle < cycle_t &&
          (e.safe || head_.value.load(std::memory_order_seq_cst) <= t) &&
          !codec_.is_live_index(e.index)) {
        const u64 fresh = codec_.pack(cycle_t, true, true, index);
        WCQ_SCHED_POINT(kEntryUpdate);
        if (!entries_[j].compare_exchange_strong(raw, fresh,
                                                 std::memory_order_seq_cst)) {
          continue;  // re-check with the observed entry
        }
        if (reset_thld) reset_threshold();
        return true;
      }
      return false;
    }
  }

  // Threshold re-arm (DESIGN.md §15 SPMC-REARM): single producer ⇒ single
  // writer of threshold_max. The dirty pre-check is relaxed (§15
  // THLD-PRECHECK, the same PR 4 argument wCQ and SCQ carry) and the store
  // is downgraded seq_cst → release: consumers only read threshold through
  // seq_cst fetch_subs, and a fetch_sub that reads-from this store
  // synchronizes-with it, so the producer's earlier entry publication
  // (seq_cst CAS, sequenced-before the store) is visible before any
  // consumer can act on the re-armed budget. A consumer that decrements
  // *before* the store lands sees the stale budget — a history seq_cst also
  // admits (the store merely lands later in S) and one the 3n-1 slack
  // already tolerates. On x86 this turns the re-arm's xchg into a plain
  // mov in the producer's per-span path. Weakening further than release is
  // the WCQ_ANALYSIS_MUTATE_RELAXED mutation, which tests/analysis must
  // catch (the §15 falsifiability contract).
  void reset_threshold() {
    if (threshold_.value.load(std::memory_order_relaxed) != threshold_max()) {
      WCQ_SCHED_POINT(kThresholdArm);
#if defined(WCQ_ANALYSIS_MUTATE_RELAXED)
      // Mutation self-test: the argued release store over-weakened to a
      // relaxed store whose visibility is deferred past the next scheduling
      // point — the false-empty window the PCT explorer must catch.
      analysis::mutate_deferred_store(&threshold_.value, threshold_max());
#else
      threshold_.value.store(threshold_max(), std::memory_order_release);
#endif
      opcount::count_threshold();
    }
  }

  // Fig 3, try_deq — SCQ verbatim.
  DeqStatus try_deq(u64& index_out) {
    WCQ_SCHED_POINT(kHeadFaa);
    const u64 h = head_.value.fetch_add(1, std::memory_order_seq_cst);
    opcount::count_faa();
    return deq_at(h, index_out);
  }

  // SCQ's deq_at with exactly one edit: the catchup call is gone (Tail is
  // producer-owned; see header comment). The threshold decrement that
  // accompanied it stays — it is the emptiness accounting among consumers,
  // not part of catchup.
  DeqStatus deq_at(u64 h, u64& index_out) {
    const u64 j = remap_(codec_.pos_of(h));
    const u64 cycle_h = codec_.cycle_of(h);
    u64 raw = entries_[j].load(std::memory_order_acquire);
    for (;;) {
      WCQ_SCHED_POINT(kEntryUpdate);
      const Entry e = codec_.unpack(raw);
      if (e.cycle == cycle_h) {
        entries_[j].fetch_or(codec_.consume_mask(), std::memory_order_seq_cst);
        index_out = e.index;
        return DeqStatus::kOk;
      }
      u64 fresh;
      if (!codec_.is_live_index(e.index)) {
        fresh = codec_.pack(cycle_h, e.safe, e.enq, codec_.bottom());
      } else {
        fresh = codec_.pack(e.cycle, false, e.enq, e.index);
      }
      if (e.cycle < cycle_h) {
        if (!entries_[j].compare_exchange_strong(raw, fresh,
                                                 std::memory_order_seq_cst)) {
          continue;
        }
        const u64 t = tail_.value.load(std::memory_order_seq_cst);
        if (t <= h + 1) {
          // No catchup: the producer pulls Tail forward itself on its next
          // reservation (consumer_guarded_enqueue's max(Tail, Head)).
          WCQ_SCHED_POINT(kThresholdDec);
          threshold_.value.fetch_sub(1, std::memory_order_seq_cst);
          opcount::count_threshold();
          return DeqStatus::kEmpty;
        }
      }
      opcount::count_threshold();
      WCQ_SCHED_POINT(kThresholdDec);
      if (threshold_.value.fetch_sub(1, std::memory_order_seq_cst) <= 0) {
        return DeqStatus::kEmpty;
      }
      return DeqStatus::kRetry;
    }
  }

  EntryCodec codec_;
  CacheRemap remap_;
  // Tail is producer-private for writes; consumers read it (seq_cst) on the
  // emptiness arm, so it keeps its own line to spare them the entry array's
  // traffic.
  alignas(kDestructiveRange) CacheAligned<std::atomic<u64>> tail_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<u64>> head_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<i64>> threshold_;
  SessionGuard producer_;
  AlignedArray<std::atomic<u64>> entries_;
};

}  // namespace wcq
