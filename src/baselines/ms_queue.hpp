// MSQueue — Michael & Scott's classic lock-free FIFO queue (1996/1998),
// one of the paper's baselines (§6: "well-known ... not very performant").
//
// A singly-linked list with a dummy head node. Enqueue CASes the tail node's
// next pointer and swings Tail; Dequeue swings Head. Both operations sit in
// CAS loops on two contended words, which is exactly the scaling behavior
// the F&A-based queues in this repository improve on.
//
// Reclamation: hazard pointers (as in the paper's evaluation); nodes are
// allocated through the alloc meter so MSQueue's footprint shows up in the
// Fig 10 memory benchmark.
#pragma once

#include <atomic>
#include <optional>

#include "common/align.hpp"
#include "common/alloc_meter.hpp"
#include "reclaim/hazard_pointers.hpp"

namespace wcq {

class MSQueue {
 public:
  MSQueue() : hp_(HazardDomain::global()) {
    Node* dummy = alloc_meter::create<Node>(u64{0});
    head_.value.store(dummy, std::memory_order_relaxed);
    tail_.value.store(dummy, std::memory_order_relaxed);
  }

  ~MSQueue() {
    Node* n = head_.value.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      alloc_meter::destroy(n);
      n = next;
    }
  }

  MSQueue(const MSQueue&) = delete;
  MSQueue& operator=(const MSQueue&) = delete;

  bool enqueue(u64 value) {
    Node* node = alloc_meter::create<Node>(value);
    for (;;) {
      Node* tail = hp_.protect(0, tail_.value);
      Node* next = tail->next.load(std::memory_order_acquire);
      if (tail != tail_.value.load(std::memory_order_acquire)) continue;
      if (next != nullptr) {
        // Tail is lagging: help swing it.
        tail_.value.compare_exchange_strong(tail, next,
                                            std::memory_order_seq_cst);
        continue;
      }
      Node* expected = nullptr;
      if (tail->next.compare_exchange_strong(expected, node,
                                             std::memory_order_seq_cst)) {
        tail_.value.compare_exchange_strong(tail, node,
                                            std::memory_order_seq_cst);
        hp_.clear(0);
        return true;
      }
    }
  }

  std::optional<u64> dequeue() {
    for (;;) {
      Node* head = hp_.protect(0, head_.value);
      Node* tail = tail_.value.load(std::memory_order_acquire);
      Node* next = hp_.protect(1, head->next);
      if (head != head_.value.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        hp_.clear(0);
        hp_.clear(1);
        return std::nullopt;  // empty
      }
      if (head == tail) {
        // Tail lagging behind a non-empty list: help.
        tail_.value.compare_exchange_strong(tail, next,
                                            std::memory_order_seq_cst);
        continue;
      }
      const u64 value = next->value;  // read before CAS frees the slot
      if (head_.value.compare_exchange_strong(head, next,
                                              std::memory_order_seq_cst)) {
        hp_.clear(0);
        hp_.clear(1);
        hp_.retire(head, [](void* p) {
          alloc_meter::destroy(static_cast<Node*>(p));
        });
        return value;
      }
    }
  }

 private:
  struct alignas(kCacheLine) Node {
    explicit Node(u64 v) : value(v) {}
    u64 value;
    std::atomic<Node*> next{nullptr};
  };

  HazardDomain& hp_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<Node*>> head_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<Node*>> tail_;
};

}  // namespace wcq
