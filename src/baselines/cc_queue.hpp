// CCQueue — a flat-combining FIFO queue built on Fatourou & Kallimanis'
// CC-Synch combining construction (PPoPP'12), one of the paper's baselines.
//
// Threads announce operations by swapping a fresh record into a global tail
// (one XCHG — the only contended instruction); whoever finds its record's
// `wait` flag already cleared becomes the combiner and executes a bounded
// batch of announced operations against a *sequential* queue, then passes
// the combiner role down the announcement list. This achieves high
// throughput by turning N contended updates into one cache-friendly pass,
// but is blocking — a preempted combiner stalls everyone, the property the
// paper contrasts with wCQ's wait-freedom.
//
// Record recycling follows the original scheme: each thread keeps exactly
// one spare record; the record it swaps out of the tail becomes its request
// node and, after completion, its next spare. Sequential-queue nodes are
// allocated via the alloc meter (visible to the Fig 10 bench).
#pragma once

#include <atomic>
#include <optional>

#include "common/align.hpp"
#include "common/alloc_meter.hpp"
#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {

class CCQueue {
 public:
  CCQueue() {
    SeqNode* dummy = alloc_meter::create<SeqNode>(u64{0});
    seq_head_ = dummy;
    seq_tail_ = dummy;
    CombineRec* initial = alloc_meter::create<CombineRec>();
    initial->wait.store(false, std::memory_order_relaxed);  // first announcer
    lock_tail_.value.store(initial, std::memory_order_relaxed);  // combines
  }

  ~CCQueue() {
    SeqNode* n = seq_head_;
    while (n != nullptr) {
      SeqNode* next = n->next;
      alloc_meter::destroy(n);
      n = next;
    }
    for (auto& r : mine_) {
      alloc_meter::destroy(r.node);
    }
    alloc_meter::destroy(lock_tail_.value.load(std::memory_order_relaxed));
  }

  CCQueue(const CCQueue&) = delete;
  CCQueue& operator=(const CCQueue&) = delete;

  bool enqueue(u64 value) {
    combine(OpKind::kEnqueue, value);
    return true;
  }

  std::optional<u64> dequeue() {
    CombineRec* r = combine(OpKind::kDequeue, 0);
    if (!r->has_result) return std::nullopt;
    return r->result;
  }

 private:
  enum class OpKind : u64 { kEnqueue, kDequeue };

  struct alignas(kDestructiveRange) CombineRec {
    std::atomic<CombineRec*> next{nullptr};
    std::atomic<bool> wait{true};
    bool completed = false;  // written by the combiner before wait=false
    OpKind kind = OpKind::kEnqueue;
    u64 arg = 0;
    u64 result = 0;
    bool has_result = false;
  };

  struct SeqNode {
    explicit SeqNode(u64 v) : value(v) {}
    u64 value;
    SeqNode* next = nullptr;
  };

  CombineRec* combine(OpKind kind, u64 arg) {
    CombineRec*& mine = my_node();
    CombineRec* next_rec = mine;
    next_rec->next.store(nullptr, std::memory_order_relaxed);
    next_rec->wait.store(true, std::memory_order_relaxed);
    next_rec->completed = false;

    CombineRec* cur =
        lock_tail_.value.exchange(next_rec, std::memory_order_seq_cst);
    cur->kind = kind;
    cur->arg = arg;
    cur->has_result = false;
    mine = cur;  // recycled once this operation completes
    cur->next.store(next_rec, std::memory_order_release);

    // Blocking by construction: a preempted combiner stalls this wait (the
    // property the paper contrasts with wCQ), so it must yield eventually.
    Backoff bo;
    while (cur->wait.load(std::memory_order_acquire)) bo.pause();
    if (cur->completed) return cur;  // a combiner executed us

    // We are the combiner: run a bounded batch starting at our own record.
    CombineRec* node = cur;
    int budget = kCombineBatch;
    for (;;) {
      CombineRec* next = node->next.load(std::memory_order_acquire);
      if (next == nullptr || --budget == 0) break;
      apply(node);
      node->completed = true;
      node->wait.store(false, std::memory_order_release);
      node = next;
    }
    // `node` is unapplied: either the tail dummy (its future owner will
    // combine) or, on budget exhaustion, a pending request whose owner now
    // becomes the combiner. Either way pass the role via wait=false.
    node->wait.store(false, std::memory_order_release);
    return cur;
  }

  void apply(CombineRec* r) {
    if (r->kind == OpKind::kEnqueue) {
      SeqNode* n = alloc_meter::create<SeqNode>(r->arg);
      seq_tail_->next = n;
      seq_tail_ = n;
    } else {
      SeqNode* first = seq_head_->next;
      if (first == nullptr) {
        r->has_result = false;
      } else {
        r->result = first->value;
        r->has_result = true;
        SeqNode* old = seq_head_;
        seq_head_ = first;
        alloc_meter::destroy(old);
      }
    }
  }

  struct MyRec {
    CombineRec* node = nullptr;
  };

  CombineRec*& my_node() {
    MyRec& m = mine_[ThreadRegistry::tid()];
    if (m.node == nullptr) m.node = alloc_meter::create<CombineRec>();
    return m.node;
  }

  static constexpr int kCombineBatch = 64;

  alignas(kDestructiveRange) CacheAligned<std::atomic<CombineRec*>> lock_tail_;
  // Sequential state: only the combiner touches these.
  alignas(kDestructiveRange) SeqNode* seq_head_;
  SeqNode* seq_tail_;
  MyRec mine_[ThreadRegistry::kMaxThreads] = {};
};

}  // namespace wcq
