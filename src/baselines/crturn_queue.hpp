// CRTurnQueue — a Ramalhete & Correia-style "turn" queue, the paper's
// truly-wait-free-but-slow baseline (§6), and the outer-layer algorithm the
// appendix uses to chain wCQ rings into an unbounded queue.
//
// Enqueue is the turn-based wait-free protocol exactly as sketched in the
// paper's Fig 13 (adapted from rings back to single-item nodes): a thread
// publishes its node in enqueuers[tid]; every enqueuer (a) clears the
// satisfied request of the node currently at Tail, (b) picks the next
// pending request round-robin starting *after* the Tail node's enqueuer id
// (the "turn"), (c) CASes it as Tail->next and swings Tail. Each round
// appends at least one request and the turn ordering reaches every pending
// request within NUM_THRDS appends, which bounds the loop.
//
// Reproduction note (DESIGN.md §4): the original's dequeue side (deqself /
// deqhelp assignment with giveUp cancellation) is replaced by a lock-free
// Michael&Scott-style dequeue. The original sources are unavailable offline
// and the cancellation protocol is not reconstructible from the paper text
// alone; the substitution preserves what the evaluation measures — a
// CAS-per-operation queue with no F&A scaling, an order of magnitude below
// the ring-based queues.
//
// Reclamation: hazard pointers; nodes allocated via the alloc meter.
#pragma once

#include <atomic>
#include <optional>

#include "common/align.hpp"
#include "common/alloc_meter.hpp"
#include "common/backoff.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {

class CRTurnQueue {
 public:
  CRTurnQueue() {
    Node* dummy = alloc_meter::create<Node>(u64{0}, 0u);
    head_.value.store(dummy, std::memory_order_relaxed);
    tail_.value.store(dummy, std::memory_order_relaxed);
    for (auto& e : enqueuers_) {
      e.value.store(nullptr, std::memory_order_relaxed);
    }
  }

  ~CRTurnQueue() {
    Node* n = head_.value.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      alloc_meter::destroy(n);
      n = next;
    }
  }

  CRTurnQueue(const CRTurnQueue&) = delete;
  CRTurnQueue& operator=(const CRTurnQueue&) = delete;

  bool enqueue(u64 value) {
    HazardDomain& hp = HazardDomain::global();
    const unsigned tid = ThreadRegistry::tid();
    Node* my = alloc_meter::create<Node>(value, tid);
    enqueuers_[tid].value.store(my, std::memory_order_seq_cst);

    const unsigned rounds = ThreadRegistry::high_water() + 2;
    for (unsigned i = 0; i < rounds; ++i) {
      if (enqueuers_[tid].value.load(std::memory_order_seq_cst) == nullptr) {
        break;  // our node was appended (and its request cleared)
      }
      help_append_one(hp);
    }
    // The turn argument bounds the loop above; the guard below only spins if
    // that bound was computed against a stale thread high-water mark. Each
    // help round that swings Tail is progress this thread drives itself, so
    // back off only when a round leaves Tail unchanged (the blocked-on-a-
    // descheduled-peer case).
    Backoff bo;
    Node* last_tail = tail_.value.load(std::memory_order_seq_cst);
    while (enqueuers_[tid].value.load(std::memory_order_seq_cst) != nullptr) {
      help_append_one(hp);
      Node* t = tail_.value.load(std::memory_order_seq_cst);
      if (t == last_tail) {
        bo.pause();
      } else {
        last_tail = t;
        bo.reset();
      }
    }
    hp.clear_all();
    return true;
  }

  std::optional<u64> dequeue() {
    HazardDomain& hp = HazardDomain::global();
    for (;;) {
      Node* lhead = hp.protect(0, head_.value);
      Node* ltail = tail_.value.load(std::memory_order_acquire);
      Node* lnext = hp.protect(1, lhead->next);
      if (lhead != head_.value.load(std::memory_order_acquire)) continue;
      if (lnext == nullptr) {
        hp.clear_all();
        return std::nullopt;
      }
      if (lhead == ltail) {
        // Keep the MS invariant head <= tail before removing lnext.
        tail_.value.compare_exchange_strong(ltail, lnext,
                                            std::memory_order_seq_cst);
        continue;
      }
      const u64 value = lnext->value;
      if (head_.value.compare_exchange_strong(lhead, lnext,
                                              std::memory_order_seq_cst)) {
        hp.clear_all();
        hp.retire(lhead, [](void* p) {
          alloc_meter::destroy(static_cast<Node*>(p));
        });
        return value;
      }
    }
  }

 private:
  struct alignas(kCacheLine) Node {
    Node(u64 v, unsigned tid) : value(v), enq_tid(tid) {}
    u64 value;
    unsigned enq_tid;  // the "turn" anchor (Fig 13: ltail->enqTid)
    std::atomic<Node*> next{nullptr};
  };

  // One helping round (Fig 13 lines 14-27): clear the Tail node's satisfied
  // request, append the next pending request by turn order, swing Tail.
  void help_append_one(HazardDomain& hp) {
    Node* ltail = hp.protect(0, tail_.value);
    if (ltail != tail_.value.load(std::memory_order_seq_cst)) return;
    // (a) The node at Tail is appended: drop its request so the turn scan
    //     cannot pick it again.
    Node* req = enqueuers_[ltail->enq_tid].value.load(std::memory_order_seq_cst);
    if (req == ltail) {
      enqueuers_[ltail->enq_tid].value.compare_exchange_strong(
          req, nullptr, std::memory_order_seq_cst);
    }
    // (b) Pick the next pending request, round-robin after the turn anchor.
    const unsigned n = ThreadRegistry::high_water();
    for (unsigned j = 1; j <= n; ++j) {
      Node* cand =
          enqueuers_[(ltail->enq_tid + j) % n].value.load(
              std::memory_order_seq_cst);
      if (cand == nullptr) continue;
      Node* expected = nullptr;
      ltail->next.compare_exchange_strong(expected, cand,
                                          std::memory_order_seq_cst);
      break;  // either we appended cand or someone appended first
    }
    // (c) Swing Tail over whatever is linked now.
    Node* lnext = ltail->next.load(std::memory_order_seq_cst);
    if (lnext != nullptr) {
      tail_.value.compare_exchange_strong(ltail, lnext,
                                          std::memory_order_seq_cst);
    }
  }

  alignas(kDestructiveRange) CacheAligned<std::atomic<Node*>> head_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<Node*>> tail_;
  CacheAligned<std::atomic<Node*>> enqueuers_[ThreadRegistry::kMaxThreads];
};

}  // namespace wcq
