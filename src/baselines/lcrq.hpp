// LCRQ — Morrison & Afek's linked concurrent ring queue (PPoPP'13), the
// strongest lock-free baseline in the paper's evaluation.
//
// A CRQ is a livelock-prone F&A ring: Enqueue F&As Tail and CAS2-publishes
// {epoch-index, value} into the slot; Dequeue F&As Head and either consumes
// the slot or advances its epoch so the late enqueuer fails. When an
// enqueuer starves (or the ring fills) it *closes* the CRQ (a bit on Tail)
// and appends a fresh one to a Michael&Scott-style outer list — which is
// exactly the memory-usage weakness Fig 10 exposes: every close strands a
// 2^12-slot ring until the dequeuers drain past it.
//
// Slot layout (16 bytes, CAS2):
//   lo: [63] unsafe flag, [62:0] idx (the epoch: slot serves rank idx)
//   hi: value, or kEmptyVal when vacant
//
// Reclamation: hazard pointers on the outer list (as in the paper's setup);
// ring allocation goes through the alloc meter so Fig 10 sees it.
#pragma once

#include <atomic>
#include <optional>

#include "common/align.hpp"
#include "common/alloc_meter.hpp"
#include "common/dwcas.hpp"
#include "reclaim/hazard_pointers.hpp"

namespace wcq {

class LCRQ {
 public:
  // Paper/author default: rings of 2^12 slots.
  explicit LCRQ(unsigned ring_order = 12) : ring_order_(ring_order) {
    CRQ* first = CRQ::create(ring_order_);
    head_.value.store(first, std::memory_order_relaxed);
    tail_.value.store(first, std::memory_order_relaxed);
  }

  ~LCRQ() {
    CRQ* c = head_.value.load(std::memory_order_relaxed);
    while (c != nullptr) {
      CRQ* next = c->next.load(std::memory_order_relaxed);
      CRQ::destroy(c);
      c = next;
    }
  }

  LCRQ(const LCRQ&) = delete;
  LCRQ& operator=(const LCRQ&) = delete;

  bool enqueue(u64 value) {
    HazardDomain& hp = HazardDomain::global();
    for (;;) {
      CRQ* crq = hp.protect(0, tail_.value);
      if (crq->next.load(std::memory_order_acquire) != nullptr) {
        // Tail lags: help swing it.
        CRQ* expected = crq;
        tail_.value.compare_exchange_strong(
            expected, crq->next.load(std::memory_order_acquire),
            std::memory_order_seq_cst);
        continue;
      }
      if (crq->enqueue(value)) {
        hp.clear(0);
        return true;
      }
      // CRQ closed: append a fresh ring seeded with our value.
      CRQ* fresh = CRQ::create(ring_order_);
      (void)fresh->enqueue(value);  // empty open ring: cannot fail
      CRQ* expected = nullptr;
      if (crq->next.compare_exchange_strong(expected, fresh,
                                            std::memory_order_seq_cst)) {
        tail_.value.compare_exchange_strong(crq, fresh,
                                            std::memory_order_seq_cst);
        hp.clear(0);
        return true;
      }
      CRQ::destroy(fresh);  // somebody else appended first; retry there
    }
  }

  std::optional<u64> dequeue() {
    HazardDomain& hp = HazardDomain::global();
    for (;;) {
      CRQ* crq = hp.protect(0, head_.value);
      u64 value;
      if (crq->dequeue(value)) {
        hp.clear(0);
        return value;
      }
      // This ring is drained. If no successor, the queue is empty.
      CRQ* next = crq->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        hp.clear(0);
        return std::nullopt;
      }
      // A successor exists: the ring is closed-and-drained; unlink it.
      CRQ* expected = crq;
      if (head_.value.compare_exchange_strong(expected, next,
                                              std::memory_order_seq_cst)) {
        hp.clear(0);
        hp.retire(crq, [](void* p) { CRQ::destroy(static_cast<CRQ*>(p)); });
      }
    }
  }

 private:
  struct CRQ {
    static constexpr u64 kUnsafe = u64{1} << 63;
    static constexpr u64 kIdxMask = kUnsafe - 1;
    static constexpr u64 kClosed = u64{1} << 63;  // on tail_counter
    static constexpr u64 kEmptyVal = ~u64{0};
    static constexpr int kStarvation = 16;  // failed F&As before closing

    alignas(kDestructiveRange) std::atomic<u64> head_counter;
    alignas(kDestructiveRange) std::atomic<u64> tail_counter;  // [63]=closed
    alignas(kDestructiveRange) std::atomic<CRQ*> next;
    u64 size;  // number of slots (power of two)
    // slots[] trails the header (flexible layout via create()).

    AtomicPair128* slots() {
      return reinterpret_cast<AtomicPair128*>(this + 1);
    }

    static CRQ* create(unsigned order) {
      const u64 n = u64{1} << order;
      // CRQ is over-aligned (alignas(kDestructiveRange) members): plain
      // malloc's max_align_t guarantee is not enough.
      void* mem = alloc_meter::allocate_aligned(
          sizeof(CRQ) + n * sizeof(AtomicPair128), alignof(CRQ));
      CRQ* c = new (mem) CRQ();
      c->head_counter.store(0, std::memory_order_relaxed);
      c->tail_counter.store(0, std::memory_order_relaxed);
      c->next.store(nullptr, std::memory_order_relaxed);
      c->size = n;
      for (u64 i = 0; i < n; ++i) {
        // Slot i initially serves rank i and is vacant.
        c->slots()[i].lo.store(i, std::memory_order_relaxed);
        c->slots()[i].hi.store(kEmptyVal, std::memory_order_relaxed);
      }
      return c;
    }

    static void destroy(CRQ* c) {
      const u64 n = c->size;
      c->~CRQ();
      alloc_meter::deallocate_aligned(c, sizeof(CRQ) + n * sizeof(AtomicPair128));
    }

    // False = closed (caller appends a new CRQ).
    bool enqueue(u64 value) {
      int tries = kStarvation;
      for (;;) {
        const u64 raw_t =
            tail_counter.fetch_add(1, std::memory_order_seq_cst);
        if ((raw_t & kClosed) != 0) return false;
        const u64 t = raw_t & ~kClosed;
        AtomicPair128& slot = slots()[t & (size - 1)];
        const u64 word = slot.lo.load(std::memory_order_acquire);
        const u64 val = slot.hi.load(std::memory_order_acquire);
        const u64 idx = word & kIdxMask;
        const bool safe = (word & kUnsafe) == 0;
        if (val == kEmptyVal && idx <= t &&
            (safe || head_counter.load(std::memory_order_seq_cst) <= t)) {
          Pair128 expected{word, kEmptyVal};
          if (dwcas(slot, expected, Pair128{t, value})) {
            return true;
          }
        }
        const u64 h = head_counter.load(std::memory_order_seq_cst);
        if (t >= h + size || --tries <= 0) {
          tail_counter.fetch_or(kClosed, std::memory_order_seq_cst);
          return false;
        }
      }
    }

    // False = empty transition for the *ring* (drained to its tail).
    bool dequeue(u64& out) {
      for (;;) {
        const u64 h = head_counter.fetch_add(1, std::memory_order_seq_cst);
        AtomicPair128& slot = slots()[h & (size - 1)];
        for (;;) {
          const u64 word = slot.lo.load(std::memory_order_acquire);
          const u64 val = slot.hi.load(std::memory_order_acquire);
          const u64 idx = word & kIdxMask;
          const u64 unsafe_bit = word & kUnsafe;
          if (idx > h) break;  // slot already serves a later rank
          if (val != kEmptyVal) {
            if (idx == h) {
              // Consume: advance the slot to the next epoch.
              Pair128 expected{word, val};
              if (dwcas(slot, expected,
                        Pair128{unsafe_bit | (h + size), kEmptyVal})) {
                out = val;
                return true;
              }
            } else {
              // Old undequeued value: mark unsafe so its enqueuer's rank
              // cannot be re-served, then move on.
              Pair128 expected{word, val};
              if (dwcas(slot, expected, Pair128{kUnsafe | idx, val})) break;
            }
          } else {
            // Vacant: advance epoch so the rank-h enqueuer fails.
            Pair128 expected{word, kEmptyVal};
            if (dwcas(slot, expected,
                      Pair128{unsafe_bit | (h + size), kEmptyVal})) {
              break;
            }
          }
        }
        const u64 raw_t = tail_counter.load(std::memory_order_seq_cst);
        const u64 t = raw_t & ~kClosed;
        if (t <= h + 1) {
          fix_state();
          return false;
        }
      }
    }

    // LCRQ's fixState: pull Tail up to Head after dequeuers overshoot, so
    // future enqueues do not spin through consumed ranks.
    void fix_state() {
      for (;;) {
        const u64 h = head_counter.load(std::memory_order_seq_cst);
        u64 raw_t = tail_counter.load(std::memory_order_seq_cst);
        if ((raw_t & ~kClosed) >= h) return;
        if (tail_counter.compare_exchange_strong(
                raw_t, (raw_t & kClosed) | h, std::memory_order_seq_cst)) {
          return;
        }
      }
    }
  };

  unsigned ring_order_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<CRQ*>> head_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<CRQ*>> tail_;
};

}  // namespace wcq
