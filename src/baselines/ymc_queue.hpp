// YMCQueue — a Yang & Mellor-Crummey-style queue (PPoPP'16), the paper's
// main wait-free comparison point.
//
// YMC realizes the "infinite array queue" (paper Fig 1) directly: a linked
// list of fixed-size segments forms a conceptually infinite cell array;
// Enqueue F&As a global enqueue index (Ei) and CASes its value into cell i,
// Dequeue F&As a dequeue index (Di) and either takes the value or poisons
// the cell (⊤) so the late enqueuer retries at a later rank.
//
// Reproduction notes (DESIGN.md §4): the original's wait-free slow path
// (enqueue/dequeue request descriptors + peer helping) is replaced by
// lock-free retry, and segment reclamation uses hazard pointers instead of
// the original's handle-scan scheme. What the wCQ paper's evaluation
// depends on is preserved:
//   * F&A-class throughput — the fast path is YMC's fast path verbatim;
//   * segment churn and reclamation lag visible to the Fig 10 memory bench
//     (segments allocate as indices advance and free only once every
//     in-flight operation has moved past them), including the headline
//     weakness: a stalled thread inside an operation pins segments and
//     retired memory indefinitely.
//
// Cell states: kBot (vacant) / kTop (poisoned) / value. Segments are
// allocated via the alloc meter (Fig 10) and retired through HazardDomain.
#pragma once

#include <atomic>
#include <optional>

#include "common/align.hpp"
#include "common/alloc_meter.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {

class YMCQueue {
 public:
  static constexpr unsigned kSegOrder = 10;  // 1024 cells/segment (as in YMC)
  static constexpr u64 kSegCells = u64{1} << kSegOrder;

  YMCQueue() {
    Segment* s = Segment::create(0);
    first_seg_.store(s, std::memory_order_relaxed);
    first_id_.store(0, std::memory_order_relaxed);
  }

  ~YMCQueue() {
    Segment* s = first_seg_.load(std::memory_order_relaxed);
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      Segment::destroy(s);
      s = next;
    }
  }

  YMCQueue(const YMCQueue&) = delete;
  YMCQueue& operator=(const YMCQueue&) = delete;

  bool enqueue(u64 value) {
    HazardDomain& hp = HazardDomain::global();
    Segment* seg = acquire_start_segment(hp);
    for (;;) {
      const u64 i = ei_.value.fetch_add(1, std::memory_order_seq_cst);
      seg = walk_to(hp, seg, i >> kSegOrder);
      std::atomic<u64>& cell = seg->cells[i & (kSegCells - 1)];
      u64 expected = kBot;
      if (cell.compare_exchange_strong(expected, value,
                                       std::memory_order_seq_cst)) {
        hp.clear_all();
        return true;
      }
      // Cell poisoned by an overshooting dequeuer; take the next rank.
    }
  }

  std::optional<u64> dequeue() {
    HazardDomain& hp = HazardDomain::global();
    Segment* seg = acquire_start_segment(hp);
    for (;;) {
      const u64 i = di_.value.fetch_add(1, std::memory_order_seq_cst);
      seg = walk_to(hp, seg, i >> kSegOrder);
      std::atomic<u64>& cell = seg->cells[i & (kSegCells - 1)];
      // Give an in-flight enqueuer of this rank a brief chance, then poison.
      u64 v = cell.load(std::memory_order_acquire);
      for (int spin = 0; v == kBot && spin < kSpinBeforePoison; ++spin) {
        v = cell.load(std::memory_order_acquire);
      }
      if (v == kBot) {
        u64 expected = kBot;
        if (!cell.compare_exchange_strong(expected, kTop,
                                          std::memory_order_seq_cst)) {
          v = expected;  // the enqueuer won the race after all
        } else {
          v = kTop;
        }
      }
      if (v != kTop) {
        maybe_reclaim(i);
        hp.clear_all();
        return v;
      }
      // Poisoned a vacant cell: if no enqueuer is ahead, report empty and
      // pull Ei forward (the fixState analogue) so enqueuers do not crawl
      // rank-by-rank through poisoned cells.
      u64 e = ei_.value.load(std::memory_order_seq_cst);
      if (e <= i + 1) {
        while (e < i + 1 && !ei_.value.compare_exchange_weak(
                                e, i + 1, std::memory_order_seq_cst)) {
        }
        maybe_reclaim(i);
        hp.clear_all();
        return std::nullopt;
      }
    }
  }

  // Test hook: number of segments currently linked.
  u64 live_segments() const {
    u64 n = 0;
    for (Segment* s = first_seg_.load(std::memory_order_acquire); s != nullptr;
         s = s->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  static constexpr u64 kBot = ~u64{0};
  static constexpr u64 kTop = ~u64{0} - 1;
  static constexpr int kSpinBeforePoison = 64;
  static constexpr u64 kReclaimMask = 4 * kSegCells - 1;  // scan cadence
  // Hazard slots used during an operation (scratch; cleared on exit).
  static constexpr unsigned kHpSeg = 0;
  static constexpr unsigned kHpHop = 1;

  struct Segment {
    u64 id;
    std::atomic<Segment*> next{nullptr};
    std::atomic<u64> cells[kSegCells];

    static Segment* create(u64 seg_id) {
      Segment* s =
          static_cast<Segment*>(alloc_meter::allocate(sizeof(Segment)));
      s->id = seg_id;
      new (&s->next) std::atomic<Segment*>(nullptr);
      for (u64 i = 0; i < kSegCells; ++i) {
        s->cells[i].store(kBot, std::memory_order_relaxed);
      }
      return s;
    }
    static void destroy(Segment* s) {
      alloc_meter::deallocate(s, sizeof(Segment));
    }
    static void retire_cb(void* p) { destroy(static_cast<Segment*>(p)); }
  };

  // Protect and return the current first segment. protect() validates the
  // pointer against the source, so once returned the segment cannot be
  // freed until we clear the slot, and every segment after it is still
  // linked (only the strict prefix is ever unlinked).
  Segment* acquire_start_segment(HazardDomain& hp) {
    return hp.protect(kHpSeg, first_seg_);
  }

  // Hand-over-hand protected walk to segment `want` (allocating missing
  // segments at the end of the list). On return the result is protected by
  // kHpSeg, which the caller keeps until its cell access is done.
  Segment* walk_to(HazardDomain& hp, Segment* seg, u64 want) {
    while (seg->id < want) {
      Segment* next = hp.protect(kHpHop, seg->next);
      if (next == nullptr) {
        Segment* fresh = Segment::create(seg->id + 1);
        Segment* expected = nullptr;
        if (seg->next.compare_exchange_strong(expected, fresh,
                                              std::memory_order_seq_cst)) {
          next = fresh;
        } else {
          Segment::destroy(fresh);
          next = hp.protect(kHpHop, seg->next);
        }
      }
      hp.set(kHpSeg, next);  // next stays protected by kHpHop during the move
      seg = next;
    }
    return seg;
  }

  // Unlink and retire every segment both indices have moved past. Runs at a
  // coarse cadence under a CAS lock; actual frees are gated by hazard
  // pointers, so a stalled in-flight operation pins memory — YMC's
  // documented reclamation weakness.
  void maybe_reclaim(u64 rank) {
    if ((rank & kReclaimMask) != 0) return;
    bool expected = false;
    if (!reclaiming_.value.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      return;
    }
    u64 min_id = ei_.value.load(std::memory_order_seq_cst) >> kSegOrder;
    const u64 di_id = di_.value.load(std::memory_order_seq_cst) >> kSegOrder;
    if (di_id < min_id) min_id = di_id;
    HazardDomain& hp = HazardDomain::global();
    Segment* s = first_seg_.load(std::memory_order_acquire);
    while (s->id < min_id) {
      Segment* next = s->next.load(std::memory_order_acquire);
      if (next == nullptr) break;
      first_seg_.store(next, std::memory_order_seq_cst);
      first_id_.store(next->id, std::memory_order_seq_cst);
      hp.retire(s, &Segment::retire_cb);
      s = next;
    }
    reclaiming_.value.store(false, std::memory_order_release);
  }

  alignas(kDestructiveRange) CacheAligned<std::atomic<u64>> ei_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<u64>> di_;
  alignas(kDestructiveRange) std::atomic<Segment*> first_seg_;
  std::atomic<u64> first_id_;
  CacheAligned<std::atomic<bool>> reclaiming_;
};

}  // namespace wcq
