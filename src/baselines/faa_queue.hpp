// FAA — the paper's "theoretical upper bound" pseudo-queue (§6).
//
// Not a real queue: Enqueue just fetch-and-adds Tail, Dequeue fetch-and-adds
// Head and pretends a value was transferred. It measures the raw cost of the
// two contended F&A hot spots that every F&A-based queue (LCRQ, YMC, SCQ,
// wCQ) is built around, and so upper-bounds their achievable throughput.
// It intentionally still incurs the RMW cache-invalidation traffic, which is
// why it loses the empty-dequeue benchmark (Fig 11a) to the threshold-based
// queues.
#pragma once

#include <atomic>
#include <optional>

#include "common/align.hpp"

namespace wcq {

class FAAQueue {
 public:
  FAAQueue() = default;
  FAAQueue(const FAAQueue&) = delete;
  FAAQueue& operator=(const FAAQueue&) = delete;

  bool enqueue(u64 value) {
    (void)value;  // no payload transfer: F&A cost only (paper §6)
    tail_.value.fetch_add(1, std::memory_order_seq_cst);
    return true;
  }

  std::optional<u64> dequeue() {
    const u64 h = head_.value.fetch_add(1, std::memory_order_seq_cst);
    if (h >= tail_.value.load(std::memory_order_seq_cst)) {
      return std::nullopt;  // "empty"
    }
    return u64{0};  // dummy: FAA transfers no real values
  }

 private:
  alignas(kDestructiveRange) CacheAligned<std::atomic<u64>> tail_;
  alignas(kDestructiveRange) CacheAligned<std::atomic<u64>> head_;
};

}  // namespace wcq
