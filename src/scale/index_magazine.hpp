// Per-thread free-index magazines for the Fig 2 indirection layer
// (DESIGN.md §9).
//
// BoundedQueue's fq ring is a *free list*: FIFO order among free indices is
// semantically irrelevant (any free index is as good as any other), which
// makes per-thread caching of free indices safe — the observation Jiffy
// (Adas & Friedman) uses to amortize shared-structure traffic with
// thread-local buffers. Each queue owns one magazine per registry tid; a
// dequeue parks the index it just freed in the caller's magazine and an
// enqueue claims from there first, so at steady state the fq half of the
// Fig 2 double-ring hot path (its seq_cst F&A, threshold decrement and help
// check) disappears entirely. Refills/spills go through fq's bulk paths in
// half-magazine spans, so the residual fq traffic is one shared-ring
// operation per span instead of one per element.
//
// Concurrency shape:
//  * A magazine is a per-tid block of atomic words: one count word followed
//    by `capacity` slots, each slot holding kNone or one free index. Blocks
//    are whole cache lines sized by the *configured* capacity (not a
//    compile-time maximum), so dense neighboring tids never share a line
//    and a disabled or small magazine costs little memory.
//  * Only the owning thread stores indices into its slots, so a slot the
//    owner observed empty stays empty until the owner writes it — puts are
//    a plain check-then-store (release), no RMW.
//  * Takes CAS the slot back to kNone (acquire). The owner CASes because
//    *other* threads may concurrently take too: the reclaim sweep (an
//    enqueuer that found both its magazine and fq empty steals a cached
//    index so cached-but-unused indices cannot wedge the queue) and the
//    thread-exit flush both claim slots cross-thread. At steady state the
//    CAS is uncontended and the line is owner-exclusive — that cheapness is
//    the whole point.
//  * The release(put)/acquire(take) pairing carries the payload-destruction
//    → payload-construction happens-before edge that fq's enqueue/dequeue
//    provided for recycled indices.
//  * The count word is a hint (relaxed, maintained by owner and stealers;
//    read as two's-complement signed so a racing take's decrement landing
//    before the matching put's increment just reads as a transient
//    negative). It can lag in-flight operations but is exact at quiescence;
//    decisions taken on it (skip an empty magazine, spill) are heuristics —
//    the slots are the truth.
//
// Every operation is a bounded scan (≤ capacity slots, or high_water()
// magazines for the sweep): no retry loops, so the wait-freedom of the
// enclosing queue is preserved.
#pragma once

#include <atomic>
#include <cstddef>

#include "analysis/sched_point.hpp"
#include "common/align.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {

class IndexMagazines {
 public:
  struct Config {
    // Off reproduces the plain double-ring behavior (A/B benching).
    bool enabled = true;
    // Per-thread slots; the owning queue clamps this to kMaxSlots and to a
    // fraction of ring capacity so magazines stay well under the ring size.
    std::size_t capacity = 16;
  };

  static constexpr std::size_t kMaxSlots = 32;
  static constexpr u64 kNone = ~u64{0};

  // Disabled set: no storage, every operation is a cheap no-op/miss.
  IndexMagazines() = default;

  // `capacity` == 0 constructs a disabled set. One magazine block per
  // possible registry tid, sized once at queue construction (metered,
  // Fig 10): round_up(1 + capacity, 8) atomic words per tid.
  IndexMagazines(std::size_t capacity, unsigned max_threads)
      : cap_(capacity < kMaxSlots ? capacity : kMaxSlots) {
    if (cap_ != 0) {
      constexpr std::size_t kWordsPerLine = kCacheLine / sizeof(u64);
      stride_ = AlignedArray<std::atomic<u64>>::round_up(1 + cap_,
                                                         kWordsPerLine);
      words_ = AlignedArray<std::atomic<u64>>(max_threads * stride_,
                                              kCacheLine);
      for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i].store(kNone, std::memory_order_relaxed);
      }
      for (unsigned t = 0; t < max_threads; ++t) {
        count_of(block(t)).store(0, std::memory_order_relaxed);
      }
    }
  }

  IndexMagazines(const IndexMagazines&) = delete;
  IndexMagazines& operator=(const IndexMagazines&) = delete;

  bool enabled() const { return cap_ != 0; }
  std::size_t capacity() const { return cap_; }
  // Refill span: indices pulled from fq beyond the one the triggering
  // enqueue consumes. Half-magazine spans give hysteresis: a freshly
  // refilled/spilled magazine is half full, so the next spill/refill is a
  // half-magazine of operations away in either direction.
  std::size_t refill_span() const { return cap_ / 2; }
  std::size_t spill_span() const { return cap_ / 2 + 1; }

  // --- session surface (DESIGN.md §10) ------------------------------------

  // The magazine block for a tid, cached once in a queue's per-thread
  // session handle so the owner operations below run with zero registry
  // lookups. nullptr when magazines are disabled (callers branch on
  // enabled() anyway). Stable for the queue's lifetime.
  std::atomic<u64>* block_for(unsigned tid) const {
    return enabled() && tid < max_threads() ? block(tid) : nullptr;
  }

  // --- owner operations (the block is the caller's own magazine) ----------

  // Claim one cached index. The count pre-check makes the common
  // magazine-empty case (enqueue-heavy phases) one relaxed load; the hint
  // never under-reports the owner's own puts (program order), so a <= 0
  // here proves the magazine empty to its owner.
  bool try_take_at(std::atomic<u64>* m, u64& out) {
    if (count_hint(m) <= 0) return false;
    return take_from(m, out);
  }

  // Park one freed index; false when every slot is full (caller spills).
  bool try_put_at(std::atomic<u64>* m, u64 idx) {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (slot(m, i).load(std::memory_order_relaxed) == kNone) {
        // Only the owner stores non-kNone values, so the slot cannot have
        // been filled since the check; takes only empty slots out.
        WCQ_SCHED_POINT(kMagazinePut);
        slot(m, i).store(idx, std::memory_order_release);
        count_of(m).fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  // Claim up to `n` cached indices (bulk claim, spill, exit flush).
  std::size_t take_some_at(std::atomic<u64>* m, u64* out, std::size_t n) {
    return take_some_from(m, out, n);
  }

  // Implicit-path wrappers: resolve the calling thread's block through the
  // registry (one lookup), then run the block-based operation. Unit tests
  // and any caller without a session handle use these.
  bool try_take(u64& out) { return try_take_at(mine(), out); }
  bool try_put(u64 idx) { return try_put_at(mine(), idx); }
  std::size_t take_some(u64* out, std::size_t n) {
    return take_some_at(mine(), out, n);
  }

  // --- cross-thread operations --------------------------------------------

  // Reclaim sweep: steal one cached index from any magazine but `self`'s.
  // Bounded: one pass over the registered-tid range. A miss does not prove
  // no index is cached anywhere (an in-flight put/flush can slip past the
  // scan) — that transient is the same class as an index held by an
  // in-flight enqueuer, which the "full" contract already tolerates
  // (DESIGN.md §9). Runs only at the full edge, so its registry lookup is
  // off the steady-state budget.
  bool steal_for(unsigned self, u64& out) {
    const unsigned hw = ThreadRegistry::high_water();
    const unsigned n = hw < max_threads() ? hw : max_threads();
    for (unsigned t = 0; t < n; ++t) {
      if (t == self) continue;
      WCQ_SCHED_POINT(kMagazineSteal);
      std::atomic<u64>* m = block(t);
      if (count_hint(m) <= 0) continue;
      if (take_from(m, out)) return true;
    }
    return false;
  }

  bool steal(u64& out) { return steal_for(ThreadRegistry::tid(), out); }

  // Claim every index cached in `tid`'s magazine (thread-exit flush; also
  // usable cross-thread since takes are CASes). Scans slots directly, not
  // the hint, so a flush cannot miss a slot behind a stale count.
  std::size_t drain_tid(unsigned tid, u64* out, std::size_t n) {
    if (!enabled() || tid >= max_threads()) return 0;
    return take_some_from(block(tid), out, n);
  }

  // Exclusive-access rewind (the reset path, DESIGN.md §8/§9): empty every
  // magazine. The caller guarantees no concurrent operation and no
  // concurrent exit flush (BoundedQueue serializes both on its flush lock).
  void clear() {
    for (unsigned t = 0; t < max_threads(); ++t) {
      std::atomic<u64>* m = block(t);
      for (std::size_t i = 0; i < cap_; ++i) {
        slot(m, i).store(kNone, std::memory_order_relaxed);
      }
      count_of(m).store(0, std::memory_order_relaxed);
    }
  }

  // Diagnostic: cached indices across all magazines (exact at quiescence).
  std::size_t cached_total() const {
    std::size_t total = 0;
    for (unsigned t = 0; t < max_threads(); ++t) {
      const i64 c = count_hint(block(t));
      if (c > 0) total += static_cast<std::size_t>(c);
    }
    return total;
  }

 private:
  // Block layout per tid: word 0 is the count, words 1..cap_ the slots.
  // The count shares the owner's hot line — it is touched by the same
  // thread on every put/take, and cross-thread readers (sweep skip) are
  // rare by construction.
  std::atomic<u64>* block(unsigned tid) const {
    return const_cast<std::atomic<u64>*>(words_.data()) + tid * stride_;
  }
  std::atomic<u64>* mine() const { return block(ThreadRegistry::tid()); }
  static std::atomic<u64>& count_of(std::atomic<u64>* m) { return m[0]; }
  static std::atomic<u64>& slot(std::atomic<u64>* m, std::size_t i) {
    return m[1 + i];
  }
  // Two's-complement read: a take's decrement racing ahead of the matching
  // put's increment shows as a harmless transient negative, not a wrap.
  static i64 count_hint(std::atomic<u64>* m) {
    return static_cast<i64>(count_of(m).load(std::memory_order_relaxed));
  }
  unsigned max_threads() const {
    return stride_ == 0 ? 0u : static_cast<unsigned>(words_.size() / stride_);
  }

  bool take_from(std::atomic<u64>* m, u64& out) {
    for (std::size_t i = 0; i < cap_; ++i) {
      u64 v = slot(m, i).load(std::memory_order_relaxed);
      if (v == kNone) continue;
      WCQ_SCHED_POINT(kMagazineTake);
      if (slot(m, i).compare_exchange_strong(v, kNone,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
        count_of(m).fetch_sub(1, std::memory_order_relaxed);
        out = v;
        return true;
      }
      // Lost the slot to a concurrent taker; keep scanning.
    }
    return false;
  }

  std::size_t take_some_from(std::atomic<u64>* m, u64* out, std::size_t n) {
    std::size_t got = 0;
    for (std::size_t i = 0; i < cap_ && got < n; ++i) {
      u64 v = slot(m, i).load(std::memory_order_relaxed);
      if (v == kNone) continue;
      WCQ_SCHED_POINT(kMagazineTake);
      if (slot(m, i).compare_exchange_strong(v, kNone,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
        count_of(m).fetch_sub(1, std::memory_order_relaxed);
        out[got++] = v;
      }
    }
    return got;
  }

  std::size_t cap_ = 0;
  std::size_t stride_ = 0;
  AlignedArray<std::atomic<u64>> words_;
};

}  // namespace wcq
