// ShardedQueue<T, Ring> — a topology-aware sharded front-end over Fig 2
// bounded queues (DESIGN.md §7, §12).
//
// wCQ's bounded-memory rings are the building block; this composes a
// power-of-two number of BoundedQueue<T, Ring> shards so that unrelated
// threads stop contending on one Head/Tail pair. Policy:
//
//  * Placement — shards are assigned to NUMA nodes in contiguous groups
//    (shard i belongs to node i*m/n for m nodes, n shards), and on a real
//    multi-node machine each group's backing store is constructed by a
//    helper thread pinned to the owning node, so first-touch puts the ring
//    arrays in that node's memory.
//  * Affinity — every operation starts at the caller's *home shard*: the
//    thread's current node selects the local shard group, the dense
//    registry tid picks within it (`group[tid % group_size]`). On a flat
//    (single-node) topology this degenerates to the pre-topology
//    `tid & (shards-1)`. A session handle (DESIGN.md §10) resolves the node
//    and the whole sweep order once at acquire() and caches one
//    BoundedQueue session per shard, so the handle path resolves nothing
//    per operation; the implicit path resolves tid and node once per call.
//  * Stealing — when the home shard is empty (dequeue) or full (enqueue),
//    the operation sweeps the remaining shards exactly once,
//    hierarchically: first the rest of the local node's group (rotated to
//    start after home), then each remote node's group, nearest node first
//    by the topology's distance matrix. "Empty"/"full" is reported only
//    after the full sweep fails, so an element visible in any shard before
//    the sweep began is found — the reordering of visits relative to the
//    flat ring sweep does not weaken that contract (DESIGN.md §12). The
//    sweep stays bounded (one visit per shard), preserving the rings'
//    progress guarantee per operation.
//  * Accounting — an operation that *succeeds* on a shard of a different
//    node than the caller's increments the thread-local remote_steal
//    counter (common/op_counters.hpp): crossing the interconnect is the
//    expensive event worth gating on, failed remote probes are not.
//  * Batching — enqueue_bulk/dequeue_bulk forward to the shards' batch
//    paths (one ring F&A per chunk instead of per element), spilling the
//    unplaced/unfilled remainder across the same hierarchical sweep.
//
// Ordering contract: each shard is an independent FIFO queue. Elements
// routed through one shard retain per-producer FIFO order; the composition
// does not define a global order across shards (the usual partitioned-queue
// trade: Jiffy-style sharded consumers re-merge by key or don't care).
// Emptiness is likewise per-sweep: a concurrent enqueue racing the sweep may
// be missed, exactly as a dequeue racing a single queue's enqueue may be.
//
// Pipeline mode (DESIGN.md §13): `Options::mode = Mode::kPipeline` declares
// the sharded-ingest shape — every shard drained by exactly one owning
// consumer — and is meant to be instantiated as `ShardedQueue<T, MpscRing>`
// so each shard's data ring drops to the single-consumer fast path.
// Consumers enter through acquire_consumer(shard), which pins the calling
// thread to the shard's owning node (PR 7 placement) and returns a session
// whose sweep is just {shard}: the owning consumer never steals, so the
// steal sweep is producer-side only, exactly the restriction that keeps one
// consumer per MPSC ring. Producers are unchanged (hash to home shards,
// full hierarchical sweep). The mode is enforced at this layer — a dequeue
// through anything but a consumer session traps — and again at the ring
// layer by MpscRing's SessionGuard, so a second consumer on a shard is a
// diagnosed abort, not silent corruption. The same options minus the mode
// (and minus the ring substitution) give the full-MPMC baseline the
// bench_pipeline A/B measures against.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/cpu.hpp"
#include "common/op_counters.hpp"
#include "common/topology.hpp"
#include "core/bounded_queue.hpp"
#include "core/wcq.hpp"
#include "runtime/thread_registry.hpp"
#include "scale/index_magazine.hpp"

namespace wcq {

template <typename T, typename Ring = WCQ>
class ShardedQueue {
 public:
  using Shard = BoundedQueue<T, Ring>;

  // Front-end discipline (see header comment). kMpmc is the historic
  // behavior: any thread may enqueue or dequeue anywhere in the sweep.
  // kPipeline restricts draining to per-shard owning consumers.
  enum class Mode { kMpmc, kPipeline };

  // Per-thread session (DESIGN.md §10, §12): the caller's node and full
  // hierarchical sweep order resolved once at acquire(), plus one unowned
  // BoundedQueue session per shard — the sweep then touches neither the
  // registry nor the topology. Move-only; the queue aborts if destroyed
  // while owned handles are live (same lifetime contract as the shard
  // handles). Releasing the session flushes this tid's magazine in every
  // shard back to the shard's fq, so a pool worker's cached capacity
  // returns immediately, not at thread exit.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& o) noexcept
        : q_(o.q_), tid_(o.tid_), node_(o.node_),
          sweep_(std::move(o.sweep_)), home_(o.home_),
          shards_(std::move(o.shards_)), owned_(o.owned_),
          consumer_(o.consumer_) {
      o.q_ = nullptr;
      o.owned_ = false;
    }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        q_ = o.q_;
        tid_ = o.tid_;
        node_ = o.node_;
        home_ = o.home_;
        sweep_ = std::move(o.sweep_);
        shards_ = std::move(o.shards_);
        owned_ = o.owned_;
        consumer_ = o.consumer_;
        o.q_ = nullptr;
        o.owned_ = false;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    unsigned tid() const { return tid_; }
    // The node this session resolved at acquire(); a thread that migrates
    // afterwards keeps its original placement (sessions are cheap — reacquire
    // to re-home).
    unsigned node() const { return node_; }
    // The session's cached home shard (satellite of DESIGN.md §10: the
    // implicit path recomputes this from the registry tid and current node
    // once per call; the handle never does).
    unsigned home_shard() const { return home_; }
    // True for sessions from acquire_consumer(): the sweep is pinned to the
    // owned shard and pipeline-mode dequeues are permitted.
    bool is_consumer() const { return consumer_; }

   private:
    friend class ShardedQueue;
    Handle(ShardedQueue* q, unsigned tid, bool owned)
        : q_(q), tid_(tid), node_(q->topo_->current_node()),
          sweep_(q->sweep_order(node_, tid)), home_(sweep_.front()),
          owned_(owned) {
      shards_.reserve(q->shards_.size());
      for (auto& s : q->shards_) shards_.push_back(s->handle_for(tid));
    }

    // Owning-consumer session (acquire_consumer): the sweep is exactly the
    // owned shard — the consumer never steals, which is what keeps one
    // consumer per MPSC data ring. Always owned.
    Handle(ShardedQueue* q, unsigned tid, unsigned shard)
        : q_(q), tid_(tid), node_(q->shard_node_[shard]),
          sweep_({shard}), home_(shard), owned_(true), consumer_(true) {
      shards_.reserve(q->shards_.size());
      for (auto& s : q->shards_) shards_.push_back(s->handle_for(tid));
    }

    void release() {
      if (owned_ && q_ != nullptr) {
        // Same ownership transfer as BoundedQueue::acquire()'s handle: the
        // session returns its cached free indices now; the thread-exit
        // hook remains the fallback for implicit use.
        for (auto& s : q_->shards_) s->flush_magazine(tid_);
        q_->live_handles_.fetch_sub(1, std::memory_order_acq_rel);
      }
      q_ = nullptr;
      owned_ = false;
    }

    ShardedQueue* q_ = nullptr;
    unsigned tid_ = 0;
    unsigned node_ = 0;
    std::vector<unsigned> sweep_;  // full hierarchical visit order
    unsigned home_ = 0;
    std::vector<typename Shard::Handle> shards_;
    bool owned_ = false;
    bool consumer_ = false;
  };

  struct Options {
    // Rounded up to a power of two (at least 1).
    unsigned shards = 4;
    // Each shard is an independent BoundedQueue of capacity 2^shard_order.
    unsigned shard_order = 12;
    // Per-thread free-index magazines inside each shard (DESIGN.md §9);
    // home-shard affinity means a thread's magazine hits concentrate on one
    // shard, exactly the locality magazines reward.
    IndexMagazines::Config magazine{};
    // Placement source; nullptr means the process topology
    // (Topology::instance(), i.e. WCQ_TOPOLOGY or the live machine). Tests
    // inject simulated shapes here without touching the environment.
    const Topology* topology = nullptr;
    // Front-end discipline; see Mode. Pipeline instantiations should pair
    // this with Ring = MpscRing to actually collect the fast-path win.
    Mode mode = Mode::kMpmc;
  };

  explicit ShardedQueue(Options opt)
      : topo_(opt.topology != nullptr ? opt.topology
                                      : &Topology::instance()),
        mode_(opt.mode) {
    const unsigned n = std::bit_ceil(opt.shards == 0 ? 1u : opt.shards);
    mask_ = n - 1;
    const unsigned m = topo_->node_count();

    // Contiguous groups: shard i -> node i*m/n. With m > n the trailing
    // nodes own no shards and their threads start the sweep at the nearest
    // node that does; with m <= n every node owns >= floor(n/m) shards.
    shard_node_.resize(n);
    for (unsigned i = 0; i < n; ++i) {
      shard_node_[i] =
          static_cast<unsigned>(static_cast<u64>(i) * m / n);
    }
    local_.assign(m, {});
    for (unsigned i = 0; i < n; ++i) local_[shard_node_[i]].push_back(i);

    // Canonical per-node visit order: own group first, then each remote
    // node's group nearest-first (Topology::remote_order). Every shard
    // appears exactly once; per-(thread, node) sweeps only rotate the
    // leading local segment.
    order_.resize(m);
    for (unsigned t = 0; t < m; ++t) {
      auto& ord = order_[t];
      ord = local_[t];
      for (unsigned r : topo_->remote_order(t)) {
        ord.insert(ord.end(), local_[r].begin(), local_[r].end());
      }
    }

    shards_.resize(n);
    auto build_range = [&](unsigned lo, unsigned hi) {
      for (unsigned i = lo; i < hi; ++i) {
        shards_[i] = std::make_unique<Shard>(
            typename Shard::Options{opt.shard_order, opt.magazine});
      }
    };
    if (m > 1 && !topo_->simulated()) {
      // First-touch: one builder thread per node group, pinned to the
      // owning node, so each group's ring arrays fault into that node's
      // memory. Simulated topologies skip this — their nodes have no
      // distinct physical memory to touch.
      std::vector<std::thread> builders;
      for (unsigned t = 0; t < m; ++t) {
        if (local_[t].empty()) continue;
        const unsigned lo = local_[t].front();
        const unsigned hi = local_[t].back() + 1;
        builders.emplace_back([this, build_range, t, lo, hi] {
          pin_thread(0,
                     Topology::PinSpec{Topology::PinPolicy::kNode, t},
                     *topo_);
          build_range(lo, hi);
        });
      }
      for (auto& b : builders) b.join();
    } else {
      build_range(0, n);
    }
  }

  ShardedQueue(unsigned shards, unsigned shard_order)
      : ShardedQueue(Options{shards, shard_order}) {}

  ~ShardedQueue() {
    const int live = live_handles_.load(std::memory_order_acquire);
    if (live != 0) {
      std::fprintf(stderr,
                   "wcq: ShardedQueue destroyed with %d live session "
                   "handle(s); destroy handles before their queue\n",
                   live);
      std::abort();
    }
  }

  ShardedQueue(const ShardedQueue&) = delete;
  ShardedQueue& operator=(const ShardedQueue&) = delete;

  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  Mode mode() const { return mode_; }
  u64 capacity() const { return shard_count() * shards_[0]->capacity(); }
  Shard& shard(unsigned i) { return *shards_[i]; }
  const Shard& shard(unsigned i) const { return *shards_[i]; }
  const Topology& topology() const { return *topo_; }

  // Node owning shard `i` under this queue's placement.
  unsigned shard_node(unsigned i) const { return shard_node_[i]; }

  // The full hierarchical visit order for a thread `tid` on `node`: the
  // local group rotated to start at the home shard, then remote groups
  // nearest-node-first. Exposed for tests; Handle caches exactly this.
  std::vector<unsigned> sweep_order(unsigned node, unsigned tid) const {
    const auto& loc = local_[node];
    const auto& ord = order_[node];
    const unsigned n = shard_count();
    const unsigned L = static_cast<unsigned>(loc.size());
    const unsigned p = L != 0 ? tid % L : 0;
    std::vector<unsigned> out;
    out.reserve(n);
    for (unsigned s = 0; s < L; ++s) out.push_back(loc[(p + s) % L]);
    for (unsigned s = L; s < n; ++s) out.push_back(ord[s]);
    return out;
  }

  // Home shard for a thread `tid` homed on `node`: its slot in the node's
  // local group (the flat-topology case reduces to tid & (shards-1)), or
  // the nearest populated node's first shard when `node` owns none.
  unsigned home_shard_for(unsigned node, unsigned tid) const {
    const auto& loc = local_[node];
    if (!loc.empty()) return loc[tid % loc.size()];
    return order_[node].front();
  }
  // The calling thread's home shard (tests pin expectations to this; stays
  // consistent with Handle::home_shard() for a handle acquired here).
  unsigned home_shard() const {
    return home_shard_for(topo_->current_node(), ThreadRegistry::tid());
  }

  // Owned per-thread session: one registry lookup and one topology
  // resolution now, none per operation.
  Handle acquire() {
    live_handles_.fetch_add(1, std::memory_order_acq_rel);
    return Handle(this, ThreadRegistry::tid(), /*owned=*/true);
  }

  // Owning-consumer session for `shard` (pipeline mode's drain side,
  // usable in either mode). Pins the calling thread to the shard's owning
  // node — node placement via the PR 7 groups; under a simulated topology
  // the pin only records the node, no affinity syscalls — and returns a
  // session whose sweep is exactly {shard}. One consumer per shard is the
  // caller's contract; with Ring = MpscRing the shard's SessionGuard
  // enforces it (a second consumer traps).
  Handle acquire_consumer(unsigned shard) {
    assert(shard < shard_count());
    pin_thread(shard,
               Topology::PinSpec{Topology::PinPolicy::kNode,
                                 shard_node_[shard]},
               *topo_);
    live_handles_.fetch_add(1, std::memory_order_acq_rel);
    return Handle(this, ThreadRegistry::tid(), shard);
  }

  // --- operations ----------------------------------------------------------

  // False only after every shard rejected the element during one sweep.
  bool enqueue(T value) { return enqueue_movable(value); }

  bool enqueue(Handle& h, T value) { return enqueue_movable(h, value); }

  // Value-preserving variant (mirrors BoundedQueue::enqueue_movable): `value`
  // is moved from only on success, so retry loops — the blocking Channel send
  // path — can re-offer the same element after a full sweep failed.
  bool enqueue_movable(Handle& h, T& value) {
    for (const unsigned i : h.sweep_) {
      if (shards_[i]->enqueue_movable(h.shards_[i], value)) {
        if (shard_node_[i] != h.node_) opcount::count_remote_steal();
        return true;
      }
    }
    return false;
  }

  bool enqueue_movable(T& value) {
    const unsigned tid = ThreadRegistry::tid();
    const unsigned node = topo_->current_node();
    const auto& loc = local_[node];
    const auto& ord = order_[node];
    const unsigned n = shard_count();
    const unsigned L = static_cast<unsigned>(loc.size());
    const unsigned p = L != 0 ? tid % L : 0;
    for (unsigned s = 0; s < n; ++s) {
      const unsigned i = s < L ? loc[(p + s) % L] : ord[s];
      Shard& sh = *shards_[i];
      auto shh = sh.handle_for(tid);
      if (sh.enqueue_movable(shh, value)) {
        if (shard_node_[i] != node) opcount::count_remote_steal();
        return true;
      }
    }
    return false;
  }

  // Nullopt only after a full steal sweep found every shard empty.
  std::optional<T> dequeue() {
    require_consumer(/*consumer=*/false);
    const unsigned tid = ThreadRegistry::tid();
    const unsigned node = topo_->current_node();
    const auto& loc = local_[node];
    const auto& ord = order_[node];
    const unsigned n = shard_count();
    const unsigned L = static_cast<unsigned>(loc.size());
    const unsigned p = L != 0 ? tid % L : 0;
    for (unsigned s = 0; s < n; ++s) {
      const unsigned i = s < L ? loc[(p + s) % L] : ord[s];
      Shard& sh = *shards_[i];
      auto shh = sh.handle_for(tid);
      if (auto v = sh.dequeue(shh)) {
        if (shard_node_[i] != node) opcount::count_remote_steal();
        return v;
      }
    }
    return std::nullopt;
  }

  std::optional<T> dequeue(Handle& h) {
    require_consumer(h.consumer_);
    for (const unsigned i : h.sweep_) {
      if (auto v = shards_[i]->dequeue(h.shards_[i])) {
        if (shard_node_[i] != h.node_) opcount::count_remote_steal();
        return v;
      }
    }
    return std::nullopt;
  }

  // Batch insert: places up to `n` elements (home shard first, spilling the
  // remainder across the sweep) and returns how many were taken; exactly the
  // first `ret` elements of `first` are moved-from. Partial success means
  // every shard filled up during the sweep. Remote accounting is per shard
  // visit that transferred at least one element, not per element.
  template <typename U,
            std::enable_if_t<std::is_same_v<std::remove_const_t<U>, T>, int> = 0>
  std::size_t enqueue_bulk(U* first, std::size_t n) {
    const unsigned tid = ThreadRegistry::tid();
    const unsigned node = topo_->current_node();
    const auto& loc = local_[node];
    const auto& ord = order_[node];
    const unsigned k = shard_count();
    const unsigned L = static_cast<unsigned>(loc.size());
    const unsigned p = L != 0 ? tid % L : 0;
    std::size_t done = 0;
    for (unsigned s = 0; s < k && done < n; ++s) {
      const unsigned i = s < L ? loc[(p + s) % L] : ord[s];
      Shard& sh = *shards_[i];
      auto shh = sh.handle_for(tid);
      const std::size_t got = sh.enqueue_bulk(shh, first + done, n - done);
      if (got != 0 && shard_node_[i] != node) opcount::count_remote_steal();
      done += got;
    }
    return done;
  }

  template <typename U,
            std::enable_if_t<std::is_same_v<std::remove_const_t<U>, T>, int> = 0>
  std::size_t enqueue_bulk(Handle& h, U* first, std::size_t n) {
    std::size_t done = 0;
    for (const unsigned i : h.sweep_) {
      if (done >= n) break;
      const std::size_t got =
          shards_[i]->enqueue_bulk(h.shards_[i], first + done, n - done);
      if (got != 0 && shard_node_[i] != h.node_) {
        opcount::count_remote_steal();
      }
      done += got;
    }
    return done;
  }

  // Batch remove: fills `out` from the home shard first, then steals across
  // the sweep. Returns how many were dequeued; fewer than `n` does not prove
  // emptiness (see the shard-level contract), dequeue() does.
  std::size_t dequeue_bulk(T* out, std::size_t n) {
    require_consumer(/*consumer=*/false);
    const unsigned tid = ThreadRegistry::tid();
    const unsigned node = topo_->current_node();
    const auto& loc = local_[node];
    const auto& ord = order_[node];
    const unsigned k = shard_count();
    const unsigned L = static_cast<unsigned>(loc.size());
    const unsigned p = L != 0 ? tid % L : 0;
    std::size_t done = 0;
    for (unsigned s = 0; s < k && done < n; ++s) {
      const unsigned i = s < L ? loc[(p + s) % L] : ord[s];
      Shard& sh = *shards_[i];
      auto shh = sh.handle_for(tid);
      const std::size_t got = sh.dequeue_bulk(shh, out + done, n - done);
      if (got != 0 && shard_node_[i] != node) opcount::count_remote_steal();
      done += got;
    }
    return done;
  }

  std::size_t dequeue_bulk(Handle& h, T* out, std::size_t n) {
    require_consumer(h.consumer_);
    std::size_t done = 0;
    for (const unsigned i : h.sweep_) {
      if (done >= n) break;
      const std::size_t got =
          shards_[i]->dequeue_bulk(h.shards_[i], out + done, n - done);
      if (got != 0 && shard_node_[i] != h.node_) {
        opcount::count_remote_steal();
      }
      done += got;
    }
    return done;
  }

 private:
  // Pipeline-mode role check: draining is reserved to owning-consumer
  // sessions, and violating that is the same severity as a second MPSC
  // consumer (it IS one, a sweep deep) — diagnosed abort, not UB. In kMpmc
  // mode this is a single predictable branch.
  void require_consumer(bool consumer) const {
    if (mode_ != Mode::kPipeline || consumer) return;
    std::fprintf(stderr,
                 "wcq: dequeue on a pipeline-mode ShardedQueue requires an "
                 "acquire_consumer() session\n");
    assert(false && "pipeline-mode dequeue without a consumer session");
    __builtin_trap();
  }

  const Topology* topo_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<unsigned> shard_node_;           // shard -> owning node
  std::vector<std::vector<unsigned>> local_;   // node -> its shard group
  std::vector<std::vector<unsigned>> order_;   // node -> canonical sweep
  unsigned mask_ = 0;
  Mode mode_ = Mode::kMpmc;
  std::atomic<int> live_handles_{0};
};

}  // namespace wcq
