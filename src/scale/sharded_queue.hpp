// ShardedQueue<T, Ring> — a sharded front-end over Fig 2 bounded queues
// (DESIGN.md §7).
//
// wCQ's bounded-memory rings are the building block; this composes a
// power-of-two number of BoundedQueue<T, Ring> shards so that unrelated
// threads stop contending on one Head/Tail pair. Policy:
//
//  * Affinity — every operation starts at the caller's home shard,
//    `tid & (shards-1)`. Dense tids mean neighboring threads land on
//    distinct shards, and a thread keeps its shard for its whole lifetime,
//    so the uncontended case touches one ring only. A session handle
//    (DESIGN.md §10) caches the home shard and one BoundedQueue session per
//    shard, so the handle path resolves nothing per operation; the implicit
//    path resolves the tid once per call.
//  * Stealing — when the home shard is empty (dequeue) or full (enqueue),
//    the operation sweeps the remaining shards exactly once, in ring order
//    starting at home+1. "Empty"/"full" is reported only after a full sweep
//    fails, so an element visible in any shard before the sweep began is
//    found. The sweep is bounded (one visit per shard), preserving the
//    rings' progress guarantee per operation.
//  * Batching — enqueue_bulk/dequeue_bulk forward to the shards' batch
//    paths (one ring F&A per chunk instead of per element), spilling the
//    unplaced/unfilled remainder across the same sweep.
//
// Ordering contract: each shard is an independent FIFO queue. Elements
// routed through one shard retain per-producer FIFO order; the composition
// does not define a global order across shards (the usual partitioned-queue
// trade: Jiffy-style sharded consumers re-merge by key or don't care).
// Emptiness is likewise per-sweep: a concurrent enqueue racing the sweep may
// be missed, exactly as a dequeue racing a single queue's enqueue may be.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/bounded_queue.hpp"
#include "core/wcq.hpp"
#include "runtime/thread_registry.hpp"
#include "scale/index_magazine.hpp"

namespace wcq {

template <typename T, typename Ring = WCQ>
class ShardedQueue {
 public:
  using Shard = BoundedQueue<T, Ring>;

  // Per-thread session (DESIGN.md §10): the cached home shard plus one
  // unowned BoundedQueue session per shard, built once at acquire() — the
  // sweep then touches no registry state at all. Move-only; the queue
  // aborts if destroyed while owned handles are live (same lifetime
  // contract as the shard handles). Releasing the session flushes this
  // tid's magazine in every shard back to the shard's fq, so a pool
  // worker's cached capacity returns immediately, not at thread exit.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& o) noexcept
        : q_(o.q_), tid_(o.tid_), home_(o.home_),
          shards_(std::move(o.shards_)), owned_(o.owned_) {
      o.q_ = nullptr;
      o.owned_ = false;
    }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        q_ = o.q_;
        tid_ = o.tid_;
        home_ = o.home_;
        shards_ = std::move(o.shards_);
        owned_ = o.owned_;
        o.q_ = nullptr;
        o.owned_ = false;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    unsigned tid() const { return tid_; }
    // The session's cached home shard (satellite of DESIGN.md §10: the
    // implicit path recomputes this from the registry tid once per call;
    // the handle never does).
    unsigned home_shard() const { return home_; }

   private:
    friend class ShardedQueue;
    Handle(ShardedQueue* q, unsigned tid, bool owned)
        : q_(q), tid_(tid), home_(tid & q->mask_), owned_(owned) {
      shards_.reserve(q->shards_.size());
      for (auto& s : q->shards_) shards_.push_back(s->handle_for(tid));
    }

    void release() {
      if (owned_ && q_ != nullptr) {
        // Same ownership transfer as BoundedQueue::acquire()'s handle: the
        // session returns its cached free indices now; the thread-exit
        // hook remains the fallback for implicit use.
        for (auto& s : q_->shards_) s->flush_magazine(tid_);
        q_->live_handles_.fetch_sub(1, std::memory_order_acq_rel);
      }
      q_ = nullptr;
      owned_ = false;
    }

    ShardedQueue* q_ = nullptr;
    unsigned tid_ = 0;
    unsigned home_ = 0;
    std::vector<typename Shard::Handle> shards_;
    bool owned_ = false;
  };

  struct Options {
    // Rounded up to a power of two (at least 1).
    unsigned shards = 4;
    // Each shard is an independent BoundedQueue of capacity 2^shard_order.
    unsigned shard_order = 12;
    // Per-thread free-index magazines inside each shard (DESIGN.md §9);
    // home-shard affinity means a thread's magazine hits concentrate on one
    // shard, exactly the locality magazines reward.
    IndexMagazines::Config magazine{};
  };

  explicit ShardedQueue(Options opt) {
    const unsigned n = std::bit_ceil(opt.shards == 0 ? 1u : opt.shards);
    mask_ = n - 1;
    shards_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>(
          typename Shard::Options{opt.shard_order, opt.magazine}));
    }
  }

  ShardedQueue(unsigned shards, unsigned shard_order)
      : ShardedQueue(Options{shards, shard_order}) {}

  ~ShardedQueue() {
    const int live = live_handles_.load(std::memory_order_acquire);
    if (live != 0) {
      std::fprintf(stderr,
                   "wcq: ShardedQueue destroyed with %d live session "
                   "handle(s); destroy handles before their queue\n",
                   live);
      std::abort();
    }
  }

  ShardedQueue(const ShardedQueue&) = delete;
  ShardedQueue& operator=(const ShardedQueue&) = delete;

  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  u64 capacity() const { return shard_count() * shards_[0]->capacity(); }
  Shard& shard(unsigned i) { return *shards_[i]; }
  const Shard& shard(unsigned i) const { return *shards_[i]; }
  // The calling thread's home shard (tests pin expectations to this).
  unsigned home_shard() const { return ThreadRegistry::tid() & mask_; }

  // Owned per-thread session: one registry lookup now, none per operation.
  Handle acquire() {
    live_handles_.fetch_add(1, std::memory_order_acq_rel);
    return Handle(this, ThreadRegistry::tid(), /*owned=*/true);
  }

  // --- operations ----------------------------------------------------------

  // False only after every shard rejected the element during one sweep.
  bool enqueue(T value) {
    const unsigned tid = ThreadRegistry::tid();
    const unsigned h = tid & mask_;
    const unsigned n = shard_count();
    for (unsigned s = 0; s < n; ++s) {
      Shard& sh = *shards_[(h + s) & mask_];
      auto shh = sh.handle_for(tid);
      if (sh.enqueue_movable(shh, value)) return true;
    }
    return false;
  }

  bool enqueue(Handle& h, T value) {
    const unsigned n = shard_count();
    for (unsigned s = 0; s < n; ++s) {
      const unsigned i = (h.home_ + s) & mask_;
      if (shards_[i]->enqueue_movable(h.shards_[i], value)) return true;
    }
    return false;
  }

  // Nullopt only after a full steal sweep found every shard empty.
  std::optional<T> dequeue() {
    const unsigned tid = ThreadRegistry::tid();
    const unsigned h = tid & mask_;
    const unsigned n = shard_count();
    for (unsigned s = 0; s < n; ++s) {
      Shard& sh = *shards_[(h + s) & mask_];
      auto shh = sh.handle_for(tid);
      if (auto v = sh.dequeue(shh)) return v;
    }
    return std::nullopt;
  }

  std::optional<T> dequeue(Handle& h) {
    const unsigned n = shard_count();
    for (unsigned s = 0; s < n; ++s) {
      const unsigned i = (h.home_ + s) & mask_;
      if (auto v = shards_[i]->dequeue(h.shards_[i])) return v;
    }
    return std::nullopt;
  }

  // Batch insert: places up to `n` elements (home shard first, spilling the
  // remainder across the sweep) and returns how many were taken; exactly the
  // first `ret` elements of `first` are moved-from. Partial success means
  // every shard filled up during the sweep.
  template <typename U,
            std::enable_if_t<std::is_same_v<std::remove_const_t<U>, T>, int> = 0>
  std::size_t enqueue_bulk(U* first, std::size_t n) {
    const unsigned tid = ThreadRegistry::tid();
    const unsigned h = tid & mask_;
    const unsigned k = shard_count();
    std::size_t done = 0;
    for (unsigned s = 0; s < k && done < n; ++s) {
      Shard& sh = *shards_[(h + s) & mask_];
      auto shh = sh.handle_for(tid);
      done += sh.enqueue_bulk(shh, first + done, n - done);
    }
    return done;
  }

  template <typename U,
            std::enable_if_t<std::is_same_v<std::remove_const_t<U>, T>, int> = 0>
  std::size_t enqueue_bulk(Handle& h, U* first, std::size_t n) {
    const unsigned k = shard_count();
    std::size_t done = 0;
    for (unsigned s = 0; s < k && done < n; ++s) {
      const unsigned i = (h.home_ + s) & mask_;
      done += shards_[i]->enqueue_bulk(h.shards_[i], first + done, n - done);
    }
    return done;
  }

  // Batch remove: fills `out` from the home shard first, then steals across
  // the sweep. Returns how many were dequeued; fewer than `n` does not prove
  // emptiness (see the shard-level contract), dequeue() does.
  std::size_t dequeue_bulk(T* out, std::size_t n) {
    const unsigned tid = ThreadRegistry::tid();
    const unsigned h = tid & mask_;
    const unsigned k = shard_count();
    std::size_t done = 0;
    for (unsigned s = 0; s < k && done < n; ++s) {
      Shard& sh = *shards_[(h + s) & mask_];
      auto shh = sh.handle_for(tid);
      done += sh.dequeue_bulk(shh, out + done, n - done);
    }
    return done;
  }

  std::size_t dequeue_bulk(Handle& h, T* out, std::size_t n) {
    const unsigned k = shard_count();
    std::size_t done = 0;
    for (unsigned s = 0; s < k && done < n; ++s) {
      const unsigned i = (h.home_ + s) & mask_;
      done += shards_[i]->dequeue_bulk(h.shards_[i], out + done, n - done);
    }
    return done;
  }

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
  unsigned mask_ = 0;
  std::atomic<int> live_handles_{0};
};

}  // namespace wcq
