// ShardedQueue<T, Ring> — a sharded front-end over Fig 2 bounded queues
// (DESIGN.md §7).
//
// wCQ's bounded-memory rings are the building block; this composes a
// power-of-two number of BoundedQueue<T, Ring> shards so that unrelated
// threads stop contending on one Head/Tail pair. Policy:
//
//  * Affinity — every operation starts at the caller's home shard,
//    `ThreadRegistry::tid() & (shards-1)`. Dense tids mean neighboring
//    threads land on distinct shards, and a thread keeps its shard for its
//    whole lifetime, so the uncontended case touches one ring only.
//  * Stealing — when the home shard is empty (dequeue) or full (enqueue),
//    the operation sweeps the remaining shards exactly once, in ring order
//    starting at home+1. "Empty"/"full" is reported only after a full sweep
//    fails, so an element visible in any shard before the sweep began is
//    found. The sweep is bounded (one visit per shard), preserving the
//    rings' progress guarantee per operation.
//  * Batching — enqueue_bulk/dequeue_bulk forward to the shards' batch
//    paths (one ring F&A per chunk instead of per element), spilling the
//    unplaced/unfilled remainder across the same sweep.
//
// Ordering contract: each shard is an independent FIFO queue. Elements
// routed through one shard retain per-producer FIFO order; the composition
// does not define a global order across shards (the usual partitioned-queue
// trade: Jiffy-style sharded consumers re-merge by key or don't care).
// Emptiness is likewise per-sweep: a concurrent enqueue racing the sweep may
// be missed, exactly as a dequeue racing a single queue's enqueue may be.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/bounded_queue.hpp"
#include "core/wcq.hpp"
#include "runtime/thread_registry.hpp"
#include "scale/index_magazine.hpp"

namespace wcq {

template <typename T, typename Ring = WCQ>
class ShardedQueue {
 public:
  using Shard = BoundedQueue<T, Ring>;

  struct Options {
    // Rounded up to a power of two (at least 1).
    unsigned shards = 4;
    // Each shard is an independent BoundedQueue of capacity 2^shard_order.
    unsigned shard_order = 12;
    // Per-thread free-index magazines inside each shard (DESIGN.md §9);
    // home-shard affinity means a thread's magazine hits concentrate on one
    // shard, exactly the locality magazines reward.
    IndexMagazines::Config magazine{};
  };

  explicit ShardedQueue(Options opt) {
    const unsigned n = std::bit_ceil(opt.shards == 0 ? 1u : opt.shards);
    mask_ = n - 1;
    shards_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>(
          typename Shard::Options{opt.shard_order, opt.magazine}));
    }
  }

  ShardedQueue(unsigned shards, unsigned shard_order)
      : ShardedQueue(Options{shards, shard_order}) {}

  ShardedQueue(const ShardedQueue&) = delete;
  ShardedQueue& operator=(const ShardedQueue&) = delete;

  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  u64 capacity() const { return shard_count() * shards_[0]->capacity(); }
  Shard& shard(unsigned i) { return *shards_[i]; }
  const Shard& shard(unsigned i) const { return *shards_[i]; }
  // The calling thread's home shard (tests pin expectations to this).
  unsigned home_shard() const { return ThreadRegistry::tid() & mask_; }

  // False only after every shard rejected the element during one sweep.
  bool enqueue(T value) {
    const unsigned h = home_shard();
    const unsigned n = shard_count();
    for (unsigned s = 0; s < n; ++s) {
      if (shards_[(h + s) & mask_]->enqueue_movable(value)) return true;
    }
    return false;
  }

  // Nullopt only after a full steal sweep found every shard empty.
  std::optional<T> dequeue() {
    const unsigned h = home_shard();
    const unsigned n = shard_count();
    for (unsigned s = 0; s < n; ++s) {
      if (auto v = shards_[(h + s) & mask_]->dequeue()) return v;
    }
    return std::nullopt;
  }

  // Batch insert: places up to `n` elements (home shard first, spilling the
  // remainder across the sweep) and returns how many were taken; exactly the
  // first `ret` elements of `first` are moved-from. Partial success means
  // every shard filled up during the sweep.
  template <typename U,
            std::enable_if_t<std::is_same_v<std::remove_const_t<U>, T>, int> = 0>
  std::size_t enqueue_bulk(U* first, std::size_t n) {
    const unsigned h = home_shard();
    const unsigned k = shard_count();
    std::size_t done = 0;
    for (unsigned s = 0; s < k && done < n; ++s) {
      done += shards_[(h + s) & mask_]->enqueue_bulk(first + done, n - done);
    }
    return done;
  }

  // Batch remove: fills `out` from the home shard first, then steals across
  // the sweep. Returns how many were dequeued; fewer than `n` does not prove
  // emptiness (see the shard-level contract), dequeue() does.
  std::size_t dequeue_bulk(T* out, std::size_t n) {
    const unsigned h = home_shard();
    const unsigned k = shard_count();
    std::size_t done = 0;
    for (unsigned s = 0; s < k && done < n; ++s) {
      done += shards_[(h + s) & mask_]->dequeue_bulk(out + done, n - done);
    }
    return done;
  }

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
  unsigned mask_ = 0;
};

}  // namespace wcq
