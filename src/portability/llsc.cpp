#include "portability/llsc.hpp"

#include <atomic>

#include "common/rng.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {

namespace llsc_inject {

namespace {
std::atomic<std::uint64_t> g_failure_rate_permille{0};
std::atomic<std::uint64_t> g_injected{0};
std::atomic<std::uint64_t> g_attempts{0};
}  // namespace

void set_rate(double p) {
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  g_failure_rate_permille.store(static_cast<std::uint64_t>(p * 1000.0),
                                std::memory_order_relaxed);
}

double rate() {
  return static_cast<double>(
             g_failure_rate_permille.load(std::memory_order_relaxed)) /
         1000.0;
}

bool should_fail() {
  const std::uint64_t permille =
      g_failure_rate_permille.load(std::memory_order_relaxed);
  if (permille == 0) return false;
  // Attempts are only tallied while injection is armed: benchmarks run with
  // it off and must not pay for a contended counter line in the SC path.
  g_attempts.fetch_add(1, std::memory_order_relaxed);
  thread_local Xoshiro256 rng{0xC0FFEEULL + ThreadRegistry::tid()};
  if (rng.bounded(1000) < permille) {
    g_injected.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::uint64_t injected() { return g_injected.load(std::memory_order_relaxed); }

std::uint64_t attempts() { return g_attempts.load(std::memory_order_relaxed); }

}  // namespace llsc_inject

namespace {

struct Reservation {
  AtomicPair128* granule = nullptr;
  Pair128 snapshot{0, 0};
};

thread_local Reservation t_reservation;

}  // namespace

Pair128 LLSCSim::load_linked(AtomicPair128& granule) {
  // The snapshot itself may be torn; a torn snapshot can never match the
  // granule at SC time as a pair, so the SC simply fails — the same behavior
  // as losing the reservation, which callers must handle anyway.
  const Pair128 snap = granule.load_torn(std::memory_order_seq_cst);
  t_reservation = Reservation{&granule, snap};
  return snap;
}

bool LLSCSim::store_conditional(AtomicPair128& granule, Pair128 desired) {
  Reservation r = t_reservation;
  t_reservation = Reservation{};  // reservations are single-shot
  if (r.granule != &granule) return false;
  if (llsc_inject::should_fail()) return false;
  Pair128 expected = r.snapshot;
  return dwcas(granule, expected, desired);
}

bool LLSCSim::store_conditional_lo(AtomicPair128& granule, u64 new_lo) {
  const Reservation& r = t_reservation;
  if (r.granule != &granule) return false;
  return store_conditional(granule, Pair128{new_lo, r.snapshot.hi});
}

bool LLSCSim::store_conditional_hi(AtomicPair128& granule, u64 new_hi) {
  const Reservation& r = t_reservation;
  if (r.granule != &granule) return false;
  return store_conditional(granule, Pair128{r.snapshot.lo, new_hi});
}

}  // namespace wcq
