// Simulated weak LL/SC over 16-byte reservation granules (paper §4).
//
// PowerPC and MIPS lack CAS2; the paper implements wCQ there with LL/SC
// whose reservation granule spans both words of an entry pair, loading the
// second word with a plain (dependency-ordered) load between LL and SC. We
// cannot run PowerPC hardware here (see DESIGN.md §4), so this module
// provides a behavioral model of weak LL/SC on x86:
//
//  * LL(granule) records a snapshot of the whole 16-byte granule for the
//    calling thread.
//  * SC(granule, word, value) succeeds iff the *entire* granule is unchanged
//    since LL (reservation-granule semantics: an intervening write to the
//    other word kills the reservation too, exactly the false-sharing
//    behavior §4 describes) — implemented with one CAS2.
//  * Optional sporadic failure injection models weak LL/SC's spurious SC
//    failures (OS events, cache evictions). Tests run the full wCQ suite
//    with failure rates up to 50%.
//
// On AArch64 the same interface is implemented with real LDXP/STXP exclusive
// pairs in llsc_native.hpp; both backends share the injection machinery in
// llsc_inject so the spurious-SC storm suites exercise real stxp failure
// paths with the same counters (DESIGN.md §15).
//
// Fig 9's CAS2_Value / CAS2_Note replacements are built on this model in
// core/wcq_llsc.hpp.
#pragma once

#include <cstdint>

#include "common/dwcas.hpp"

namespace wcq {

// Injection machinery shared by the simulated and native LL/SC backends.
// Global, test-only; default rate 0 keeps all of it off the SC hot path.
namespace llsc_inject {

// Probability in [0,1] that an otherwise-successful SC spuriously fails.
void set_rate(double p);
double rate();

// True if this SC attempt should spuriously fail. Counts the attempt (only
// while injection is armed — benchmarks must not pay for a contended counter
// line in the SC path).
bool should_fail();

// Number of SCs that failed due to injection.
std::uint64_t injected();

// Number of SCs that held a valid reservation while injection was armed (the
// population eligible for injection).
std::uint64_t attempts();

}  // namespace llsc_inject

class LLSCSim {
 public:
  // Load-linked: snapshot the granule and open a reservation for this thread.
  static Pair128 load_linked(AtomicPair128& granule);

  // Store-conditional to one word of the reserved granule. Returns false if
  // the granule changed since load_linked, if there is no reservation, or on
  // an injected sporadic failure.
  static bool store_conditional_lo(AtomicPair128& granule, u64 new_lo);
  static bool store_conditional_hi(AtomicPair128& granule, u64 new_hi);

  // Probability in [0,1] that an otherwise-successful SC spuriously fails.
  // Global, test-only. Default 0. (Forwards to llsc_inject, which the native
  // backend shares — one knob arms every backend.)
  static void set_spurious_failure_rate(double p) { llsc_inject::set_rate(p); }
  static double spurious_failure_rate() { return llsc_inject::rate(); }

  // Test hook: number of SCs that failed due to injection.
  static std::uint64_t injected_failures() { return llsc_inject::injected(); }

  // Test hook: number of SCs that held a valid reservation while injection
  // was armed (the population eligible for injection; not counted when the
  // rate is 0, to keep the counter off the benchmarked SC path). Tests
  // asserting "the injector fired" gate on this — on a 1-core host the wCQ
  // slow path may see so little genuine contention that almost no LL/SC
  // updates run at all.
  static std::uint64_t sc_attempts() { return llsc_inject::attempts(); }

 private:
  static bool store_conditional(AtomicPair128& granule, Pair128 desired);
};

}  // namespace wcq
