// Native AArch64 LL/SC over the 16-byte reservation granule (paper §4).
//
// AArch64's LDXP/STXP exclusive pair covers exactly the paper's granule: one
// reservation spanning both words of an entry pair. Where the simulator
// (portability/llsc.hpp) models reservation loss with a CAS2 of a snapshot,
// this backend uses the real exclusive monitor — spurious SC failures are
// now produced by the hardware (cache evictions, context switches, monitor
// clearing), so the existing ≤50%-injection suites become the correctness
// envelope rather than the only source of weak behavior.
//
// Two API shapes (DESIGN.md §15):
//
//  * Fused update_lo/update_hi — one asm block: LDAXP, compare against the
//    expected pair, STLXP the updated pair, CLREX on mismatch. This is the
//    primary path on real hardware: the architecture allows *any* memory
//    access (even a thread_local spill) between a split LL and SC to clear
//    the exclusive monitor, so an LL/SC pair separated by a function return
//    can livelock. Keeping the whole sequence in one block with no
//    intervening loads/stores is the standard -moutline-atomics-era idiom.
//
//  * Split load_linked / store_conditional_* — LLSCSim-shaped, for interface
//    parity and the storm tests. Works reliably under qemu-user (which
//    implements STXP as a value comparison, immune to monitor clearing) and
//    opportunistically on hardware; callers must tolerate persistent failure
//    exactly as they tolerate spurious SC failure.
//
// Both paths share llsc_inject with the simulator: one knob and one set of
// counters arm spurious failures against every backend.
#pragma once

#include "portability/llsc.hpp"

#if defined(__aarch64__) && !defined(WCQ_NO_NATIVE_LLSC)
#define WCQ_HAS_NATIVE_LLSC 1
#endif

namespace wcq {

inline const char* llsc_backend_name() {
#if defined(WCQ_HAS_NATIVE_LLSC)
  return "ldxp-stxp";
#else
  return "sim-cas2";
#endif
}

#if defined(WCQ_HAS_NATIVE_LLSC)

class LLSCNative {
 public:
  // Fused CAS-shaped update: succeed iff the granule still equals `expected`
  // and the exclusive store lands; the non-updated word is re-stored from
  // the value observed under the reservation (== expected's, by the
  // compare). Returns false on mismatch, monitor loss, or injection.
  static bool update_lo(AtomicPair128& granule, const Pair128& expected,
                        u64 new_lo) {
    // Injection happens before the exclusive opens: a function call between
    // LDAXP and STLXP could itself clear the monitor and bias the measured
    // failure population.
    if (llsc_inject::should_fail()) return false;
    u64 lo, hi;
    std::uint32_t fail;
    asm volatile(
        "ldaxp %[lo], %[hi], %[mem]\n\t"
        "cmp %[lo], %[exp_lo]\n\t"
        "ccmp %[hi], %[exp_hi], #0, eq\n\t"
        "b.ne 1f\n\t"
        "stlxp %w[fail], %[new_lo], %[hi], %[mem]\n\t"
        "b 2f\n"
        "1:\n\t"
        "clrex\n\t"
        "mov %w[fail], #2\n"
        "2:"
        : [lo] "=&r"(lo), [hi] "=&r"(hi), [fail] "=&r"(fail),
          [mem] "+Q"(granule)
        : [exp_lo] "r"(expected.lo), [exp_hi] "r"(expected.hi),
          [new_lo] "r"(new_lo)
        : "cc", "memory");
    return fail == 0;
  }

  static bool update_hi(AtomicPair128& granule, const Pair128& expected,
                        u64 new_hi) {
    if (llsc_inject::should_fail()) return false;
    u64 lo, hi;
    std::uint32_t fail;
    asm volatile(
        "ldaxp %[lo], %[hi], %[mem]\n\t"
        "cmp %[lo], %[exp_lo]\n\t"
        "ccmp %[hi], %[exp_hi], #0, eq\n\t"
        "b.ne 1f\n\t"
        "stlxp %w[fail], %[lo], %[new_hi], %[mem]\n\t"
        "b 2f\n"
        "1:\n\t"
        "clrex\n\t"
        "mov %w[fail], #2\n"
        "2:"
        : [lo] "=&r"(lo), [hi] "=&r"(hi), [fail] "=&r"(fail),
          [mem] "+Q"(granule)
        : [exp_lo] "r"(expected.lo), [exp_hi] "r"(expected.hi),
          [new_hi] "r"(new_hi)
        : "cc", "memory");
    return fail == 0;
  }

  // ---- Split LLSCSim-shaped API (qemu-reliable; see file header) ----

  static Pair128 load_linked(AtomicPair128& granule) {
    Pair128 snap;
    asm volatile("ldaxp %[lo], %[hi], %[mem]"
                 : [lo] "=&r"(snap.lo), [hi] "=&r"(snap.hi)
                 : [mem] "Q"(granule)
                 : "memory");
    reservation() = Reservation{&granule, snap};
    return snap;
  }

  static bool store_conditional_lo(AtomicPair128& granule, u64 new_lo) {
    Reservation r = take_reservation(granule);
    if (r.granule == nullptr) return false;
    return store_exclusive(granule, Pair128{new_lo, r.snapshot.hi});
  }

  static bool store_conditional_hi(AtomicPair128& granule, u64 new_hi) {
    Reservation r = take_reservation(granule);
    if (r.granule == nullptr) return false;
    return store_exclusive(granule, Pair128{r.snapshot.lo, new_hi});
  }

  // Injection control shares the simulator's knob; keep the familiar names.
  static void set_spurious_failure_rate(double p) { llsc_inject::set_rate(p); }
  static double spurious_failure_rate() { return llsc_inject::rate(); }
  static std::uint64_t injected_failures() { return llsc_inject::injected(); }
  static std::uint64_t sc_attempts() { return llsc_inject::attempts(); }

 private:
  struct Reservation {
    AtomicPair128* granule = nullptr;
    Pair128 snapshot{0, 0};
  };

  static Reservation& reservation() {
    static thread_local Reservation t_res;
    return t_res;
  }

  // Single-shot, like the simulator: consume and clear. An injected failure
  // releases the hardware monitor too so a later unrelated STXP cannot pair
  // with this reservation.
  static Reservation take_reservation(AtomicPair128& granule) {
    Reservation r = reservation();
    reservation() = Reservation{};
    if (r.granule != &granule) {
      asm volatile("clrex" ::: "memory");
      return Reservation{};
    }
    if (llsc_inject::should_fail()) {
      asm volatile("clrex" ::: "memory");
      return Reservation{};
    }
    return r;
  }

  static bool store_exclusive(AtomicPair128& granule, Pair128 desired) {
    std::uint32_t fail;
    asm volatile("stlxp %w[fail], %[lo], %[hi], %[mem]"
                 : [fail] "=&r"(fail), [mem] "+Q"(granule)
                 : [lo] "r"(desired.lo), [hi] "r"(desired.hi)
                 : "memory");
    return fail == 0;
  }
};

#endif  // WCQ_HAS_NATIVE_LLSC

}  // namespace wcq
