// Process-wide thread-slot registry and thread-exit hooks.
//
// wCQ's helping protocol needs a bounded array of per-thread records indexed
// by a dense thread id (the paper's NUM_THRDS / TID). We assign each OS
// thread a dense slot on first use and release it when the thread exits, so
// short-lived threads (common in tests) recycle low ids and per-queue record
// arrays stay small.
//
// Slot acquisition is a lock-free scan over a bitmap; it runs once per thread
// lifetime, after which `tid()` is a thread_local read.
//
// Exit hooks (DESIGN.md §9): subsystems that keep per-tid state outside a
// queue operation — the index-magazine free-index caches — register a
// callback that fires on the exiting thread, after its last queue operation
// and *before* its slot is released (so the callback may still perform queue
// operations under the dying tid). Hooks run serialized under one internal
// lock; unregister_exit_hook() blocks until any in-flight invocation
// completes, so after it returns the hook's context can be torn down.
// Mutual exclusion between a hook body and other work on its per-queue
// state (the reset-vs-flush race) is the registrant's job — BoundedQueue
// uses its own flush lock, keeping this registry lock out of queue reset
// paths.
#pragma once

#include <atomic>
#include <cstdint>

namespace wcq {

class ThreadRegistry {
 public:
  // Upper bound on simultaneously-live registered threads. Queues may be
  // configured with a smaller `max_threads`; they reject tids beyond it.
  static constexpr unsigned kMaxThreads = 256;

  // Dense id of the calling thread; acquires a slot on first call.
  // Terminates the process if more than kMaxThreads threads are live
  // (documented hard limit, as in the paper's static NUM_THRDS).
  //
  // Every call is metered as a registry lookup (opcount::count_registry, as
  // is high_water()): the per-thread session handles (DESIGN.md §10) exist
  // to resolve this once per thread instead of once per layer per
  // operation, and the bench gate asserts that reduction.
  static unsigned tid();

  // One past the highest slot ever acquired; helping loops iterate only
  // [0, high_water()) instead of the full kMaxThreads. The acquire load here
  // pairs with the release advance in acquire_slot(), so a scan that
  // observes slot s < high_water() also observes the claim of slot s.
  static unsigned high_water();

  // Number of currently-held slots (test hook).
  static unsigned live_threads();

  // --- exit hooks ----------------------------------------------------------

  using ExitHook = void (*)(void* ctx, unsigned tid);

  // Register `fn` to run (as fn(ctx, tid)) on every registered thread's
  // exit, on the exiting thread itself, before its slot is released.
  // Returns a handle for unregister_exit_hook. Hooks must not register or
  // unregister hooks, and must be bounded (they run under the hook lock).
  static std::uint64_t register_exit_hook(ExitHook fn, void* ctx);

  // Remove a hook. Blocks until any in-flight invocation of it completes;
  // after return the hook will never run again and `ctx` may be destroyed.
  static void unregister_exit_hook(std::uint64_t handle);
};

}  // namespace wcq
