// Process-wide thread-slot registry.
//
// wCQ's helping protocol needs a bounded array of per-thread records indexed
// by a dense thread id (the paper's NUM_THRDS / TID). We assign each OS
// thread a dense slot on first use and release it when the thread exits, so
// short-lived threads (common in tests) recycle low ids and per-queue record
// arrays stay small.
//
// Slot acquisition is a lock-free scan over a bitmap; it runs once per thread
// lifetime, after which `tid()` is a thread_local read.
#pragma once

#include <atomic>
#include <cstdint>

namespace wcq {

class ThreadRegistry {
 public:
  // Upper bound on simultaneously-live registered threads. Queues may be
  // configured with a smaller `max_threads`; they reject tids beyond it.
  static constexpr unsigned kMaxThreads = 256;

  // Dense id of the calling thread; acquires a slot on first call.
  // Terminates the process if more than kMaxThreads threads are live
  // (documented hard limit, as in the paper's static NUM_THRDS).
  static unsigned tid();

  // One past the highest slot ever acquired; helping loops iterate only
  // [0, high_water()) instead of the full kMaxThreads. The acquire load here
  // pairs with the release advance in acquire_slot(), so a scan that
  // observes slot s < high_water() also observes the claim of slot s.
  static unsigned high_water();

  // Number of currently-held slots (test hook).
  static unsigned live_threads();
};

}  // namespace wcq
