// Channel<T> — the blocking facade over the wait-free queues (DESIGN.md §14).
//
// BoundedQueue and ShardedQueue are non-blocking by construction: full means
// "enqueue returns false", empty means "dequeue returns nullopt", and the
// caller decides what to do about it. A server cannot leave that decision to
// every call site — idle consumers must park, producers hitting a full queue
// must apply backpressure, and shutdown must terminate every waiter exactly
// once. Channel packages those policies without touching the queue itself:
//
//   * send/recv       — block (spin-then-park via EventCount) until the op
//                       completes or the channel closes.
//   * try_send/try_recv, *_for/*_until — non-blocking and deadline variants.
//   * close()         — idempotent; senders fail fast (kClosed), receivers
//                       drain the residual elements then get kClosed, every
//                       parked waiter is woken.
//
// The non-contended fast path adds zero ring operations: a successful
// try_send is one closed-flag load, the queue's own enqueue, and a notify
// that — with no waiter announced — is a fence plus one relaxed load (no
// RMW, no syscall). tests/test_channel.cpp pins this with the opcount
// counters: N channel ops cost exactly the same ring F&As as N raw queue
// ops.
//
// Parking protocol (per direction — receivers park on not_empty_, senders on
// not_full_): the op spins through its session handle's Backoff ladder, then
// enters the eventcount's prepare / re-check / commit sequence. The re-check
// between prepare_wait and commit_wait retries the queue op itself (not a
// size hint), so the element a racing peer published is taken rather than
// slept through; EventCount's seq_cst fence pair closes the remaining
// store-buffer window (the PARK-DEKKER argument in eventcount.hpp). The
// analysis tier's mutation self-tests break exactly these two edges — a
// dropped post-send wake (WCQ_ANALYSIS_MUTATE_DROPWAKE) and a skipped
// pre-park re-check (WCQ_ANALYSIS_MUTATE_SKIP_RECHECK) — and the PCT
// explorer must catch both via EventCount::stranded().
//
// Close semantics. close() linearizes at the closed_ CAS (CHAN-CLOSE):
//   * Sends that returned kOk happened-before close() are all drained —
//     receivers observing closed_ re-run one authoritative dequeue before
//     reporting kClosed, and pre-close enqueues are visible to any dequeue
//     that starts after closed_ was observed.
//   * Sends concurrent with close() may land after the flag: they still
//     return kOk and their elements are still drained by any receiver that
//     keeps looping, but they are tallied in accepted_after_close (and the
//     sender re-notifies) so a shutdown sequencer can see them.
//   * Sends that begin after close() observe the flag and return kClosed
//     without touching the ring (closed_send_rejects).
//   * Both eventcounts get notify_all() after the flag publish, so every
//     parked waiter wakes, re-checks, and leaves through the closed path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>

#include "analysis/sched_point.hpp"
#include "common/backoff.hpp"
#include "core/bounded_queue.hpp"
#include "runtime/eventcount.hpp"

namespace wcq {

// Operation outcome. kFull/kEmpty only from try_*; kTimeout only from the
// deadline variants; kClosed from any shape once close() is visible (for
// recv: only after the residual drain is exhausted).
enum class ChanStatus : std::uint8_t {
  kOk = 0,
  kFull,
  kEmpty,
  kClosed,
  kTimeout,
};

template <typename T, typename Q = BoundedQueue<T>>
class Channel {
 public:
  using Queue = Q;

  // Session handle: wraps the queue's own session handle and carries the
  // per-thread parking state — the spin-then-park Backoff ladder and a local
  // park tally. One per thread, reused across operations (DESIGN.md §10
  // session discipline applies unchanged).
  class Handle {
   public:
    Handle(Handle&&) = default;
    Handle& operator=(Handle&&) = default;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    // Times this session committed a park (kernel or virtual).
    std::uint64_t parks() const { return parks_; }

   private:
    friend class Channel;
    explicit Handle(typename Q::Handle qh) : qh_(std::move(qh)) {}

    typename Q::Handle qh_;
    Backoff backoff_;
    std::uint64_t parks_ = 0;
  };

  // Degraded-mode accounting snapshot (surfaced in bench JSON).
  struct Stats {
    std::uint64_t send_parks;           // sender commit_waits (not_full_)
    std::uint64_t recv_parks;           // receiver commit_waits (not_empty_)
    std::uint64_t send_notifies;        // wakes delivered to parked senders
    std::uint64_t recv_notifies;        // wakes delivered to parked receivers
    std::uint64_t send_timeouts;        // kTimeout returns from send_*for/until
    std::uint64_t recv_timeouts;        // kTimeout returns from recv_*for/until
    std::uint64_t closed_send_rejects;  // kClosed returns from send paths
    std::uint64_t accepted_after_close; // kOk sends that raced past close()
    std::uint64_t stranded;             // analysis-mode lost-wakeup detector
  };

  template <typename... Args>
  explicit Channel(Args&&... args) : q_(std::forward<Args>(args)...) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  Handle acquire() { return Handle(q_.acquire()); }

  // Pipeline-mode consumer session (ShardedQueue only; SFINAE'd away for
  // queues without acquire_consumer).
  template <typename QQ = Q,
            typename = decltype(std::declval<QQ&>().acquire_consumer(0u))>
  Handle acquire_consumer(unsigned shard) {
    return Handle(q_.acquire_consumer(shard));
  }

  Queue& queue() { return q_; }
  std::uint64_t capacity() const { return q_.capacity(); }

  // --- non-blocking --------------------------------------------------------

  // Moves from `value` only on kOk (the queue layers' enqueue_movable
  // contract), so a rejected element can be re-offered.
  ChanStatus try_send(Handle& h, T& value) {
    if (closed_.load(std::memory_order_acquire)) {  // CHAN-CLOSE
      closed_send_rejects_.fetch_add(1, std::memory_order_relaxed);
      return ChanStatus::kClosed;
    }
    if (!q_.enqueue_movable(h.qh_, value)) return ChanStatus::kFull;
    after_send();
    return ChanStatus::kOk;
  }

  ChanStatus try_recv(Handle& h, T& out) {
    if (auto v = q_.dequeue(h.qh_)) {
      out = std::move(*v);
      not_full_.notify_one();
      return ChanStatus::kOk;
    }
    if (closed_.load(std::memory_order_acquire)) {  // CHAN-CLOSE
      // Authoritative drain probe: the failed dequeue above raced pre-close
      // enqueues; one more attempt issued *after* observing the flag sees
      // every element published before close().
      if (auto v = q_.dequeue(h.qh_)) {
        out = std::move(*v);
        not_full_.notify_one();
        return ChanStatus::kOk;
      }
      return ChanStatus::kClosed;
    }
    return ChanStatus::kEmpty;
  }

  // --- blocking ------------------------------------------------------------

  ChanStatus send(Handle& h, T value) {
    return send_impl(h, value, /*has_deadline=*/false, {});
  }
  ChanStatus recv(Handle& h, T& out) {
    return recv_impl(h, out, /*has_deadline=*/false, {});
  }

  // --- deadline variants ---------------------------------------------------

  ChanStatus send_until(Handle& h, T value,
                        std::chrono::steady_clock::time_point deadline) {
    return send_impl(h, value, /*has_deadline=*/true, deadline);
  }
  template <typename Rep, typename Period>
  ChanStatus send_for(Handle& h, T value,
                      std::chrono::duration<Rep, Period> d) {
    return send_impl(h, value, /*has_deadline=*/true,
                     std::chrono::steady_clock::now() + d);
  }
  ChanStatus recv_until(Handle& h, T& out,
                        std::chrono::steady_clock::time_point deadline) {
    return recv_impl(h, out, /*has_deadline=*/true, deadline);
  }
  template <typename Rep, typename Period>
  ChanStatus recv_for(Handle& h, T& out,
                      std::chrono::duration<Rep, Period> d) {
    return recv_impl(h, out, /*has_deadline=*/true,
                     std::chrono::steady_clock::now() + d);
  }

  // --- shutdown ------------------------------------------------------------

  // Idempotent; safe to race from any number of threads. Returns true for
  // the one caller whose CAS performed the close. The CAS is the close's
  // linearization point; the two notify_all calls behind it guarantee every
  // waiter parked at that point wakes and re-routes through the closed path
  // (the prepare-fence / notify-fence pairing makes a waiter that parks
  // *after* the CAS see the flag in its re-check instead).
  bool close() {
    bool expected = false;
    if (!closed_.compare_exchange_strong(expected, true,
                                         std::memory_order_seq_cst)) {
      return false;  // CHAN-CLOSE
    }
    WCQ_SCHED_POINT(kChanClose);
    not_empty_.notify_all();
    not_full_.notify_all();
    return true;
  }

  bool closed() const {
    return closed_.load(std::memory_order_acquire);  // CHAN-CLOSE
  }

  // --- introspection -------------------------------------------------------

  Stats stats() const {
    Stats s{};
    s.send_parks = not_full_.parks();
    s.recv_parks = not_empty_.parks();
    s.send_notifies = not_full_.notifies();
    s.recv_notifies = not_empty_.notifies();
    s.send_timeouts = send_timeouts_.load(std::memory_order_relaxed);
    s.recv_timeouts = recv_timeouts_.load(std::memory_order_relaxed);
    s.closed_send_rejects =
        closed_send_rejects_.load(std::memory_order_relaxed);
    s.accepted_after_close =
        accepted_after_close_.load(std::memory_order_relaxed);
    s.stranded = not_full_.stranded() + not_empty_.stranded();
    return s;
  }

 private:
  // Post-enqueue bookkeeping shared by every successful send path. The
  // closed re-check catches the send/close race: the element is already in
  // the ring (and will be drained by any receiver still looping), but a
  // shutdown sequencer deserves to know an element landed after the close
  // linearization point — and the extra notify_all covers a drainer that
  // parked between close()'s wake storm and this enqueue.
  void after_send() {
#if defined(WCQ_ANALYSIS_MUTATE_DROPWAKE)
    // Mutation self-test: swallow the post-send wake. A receiver that parked
    // before this enqueue now sleeps forever — the PCT explorer must surface
    // it as EventCount::stranded() > 0 at some schedule
    // (tests/analysis/test_mutation_dropwake.cpp).
    if (closed_.load(std::memory_order_acquire)) {
      accepted_after_close_.fetch_add(1, std::memory_order_relaxed);
    }
#else
    not_empty_.notify_one();
    if (closed_.load(std::memory_order_acquire)) {  // CHAN-CLOSE
      accepted_after_close_.fetch_add(1, std::memory_order_relaxed);
      not_empty_.notify_all();
    }
#endif
  }

  ChanStatus send_impl(Handle& h, T& value, bool has_deadline,
                       std::chrono::steady_clock::time_point deadline) {
    if (closed_.load(std::memory_order_acquire)) {  // CHAN-CLOSE
      closed_send_rejects_.fetch_add(1, std::memory_order_relaxed);
      return ChanStatus::kClosed;
    }
    h.backoff_.reset();
    for (;;) {
      if (q_.enqueue_movable(h.qh_, value)) {
        after_send();
        return ChanStatus::kOk;
      }
      if (!h.backoff_.yielding()) {
        // Spin phase: burn the ladder before announcing a waiter.
        if (has_deadline) {
          if (!h.backoff_.until(deadline)) {
            send_timeouts_.fetch_add(1, std::memory_order_relaxed);
            return ChanStatus::kTimeout;
          }
        } else {
          h.backoff_.pause();
        }
        continue;
      }
      // Park phase: prepare, re-check (the op itself, then the flag), commit.
      const EventCount::Ticket t = not_full_.prepare_wait();
      if (q_.enqueue_movable(h.qh_, value)) {
        not_full_.cancel_wait();
        after_send();
        return ChanStatus::kOk;
      }
      if (closed_.load(std::memory_order_acquire)) {  // CHAN-CLOSE
        not_full_.cancel_wait();
        closed_send_rejects_.fetch_add(1, std::memory_order_relaxed);
        return ChanStatus::kClosed;
      }
      ++h.parks_;
      if (has_deadline) {
        if (!not_full_.commit_wait_until(t, deadline) ||
            std::chrono::steady_clock::now() >= deadline) {
          // One last immediate attempt so a wake racing the deadline is not
          // reported as a timeout when the slot is already there.
          if (q_.enqueue_movable(h.qh_, value)) {
            after_send();
            return ChanStatus::kOk;
          }
          send_timeouts_.fetch_add(1, std::memory_order_relaxed);
          return ChanStatus::kTimeout;
        }
      } else {
        not_full_.commit_wait(t);
      }
      if (closed_.load(std::memory_order_acquire)) {  // CHAN-CLOSE
        closed_send_rejects_.fetch_add(1, std::memory_order_relaxed);
        return ChanStatus::kClosed;
      }
    }
  }

  ChanStatus recv_impl(Handle& h, T& out, bool has_deadline,
                       std::chrono::steady_clock::time_point deadline) {
    h.backoff_.reset();
    for (;;) {
      if (auto v = q_.dequeue(h.qh_)) {
        out = std::move(*v);
        not_full_.notify_one();
        return ChanStatus::kOk;
      }
      if (closed_.load(std::memory_order_acquire)) {  // CHAN-CLOSE
        // Drain-to-empty: one authoritative attempt after observing the
        // flag (see try_recv); only then report the channel closed.
        if (auto v = q_.dequeue(h.qh_)) {
          out = std::move(*v);
          not_full_.notify_one();
          return ChanStatus::kOk;
        }
        return ChanStatus::kClosed;
      }
      if (!h.backoff_.yielding()) {
        if (has_deadline) {
          if (!h.backoff_.until(deadline)) {
            recv_timeouts_.fetch_add(1, std::memory_order_relaxed);
            return ChanStatus::kTimeout;
          }
        } else {
          h.backoff_.pause();
        }
        continue;
      }
      const EventCount::Ticket t = not_empty_.prepare_wait();
#if defined(WCQ_ANALYSIS_MUTATE_SKIP_RECHECK)
      // Mutation self-test: park without re-running the dequeue. An element
      // published (and notified) before our prepare_wait is slept through —
      // the classic check-then-park race the prepare/re-check/commit shape
      // exists to close (tests/analysis/test_mutation_parkcheck.cpp).
      (void)0;
#else
      if (auto v = q_.dequeue(h.qh_)) {
        not_empty_.cancel_wait();
        out = std::move(*v);
        not_full_.notify_one();
        return ChanStatus::kOk;
      }
      if (closed_.load(std::memory_order_seq_cst)) {  // CHAN-CLOSE
        not_empty_.cancel_wait();
        if (auto v = q_.dequeue(h.qh_)) {
          out = std::move(*v);
          not_full_.notify_one();
          return ChanStatus::kOk;
        }
        return ChanStatus::kClosed;
      }
#endif
      ++h.parks_;
      if (has_deadline) {
        if (!not_empty_.commit_wait_until(t, deadline) ||
            std::chrono::steady_clock::now() >= deadline) {
          if (auto v = q_.dequeue(h.qh_)) {
            out = std::move(*v);
            not_full_.notify_one();
            return ChanStatus::kOk;
          }
          recv_timeouts_.fetch_add(1, std::memory_order_relaxed);
          return ChanStatus::kTimeout;
        }
      } else {
        not_empty_.commit_wait(t);
      }
    }
  }

  Q q_;
  EventCount not_empty_;  // receivers park here; senders notify
  EventCount not_full_;   // senders park here; receivers notify
  // Close flag; the CAS in close() is the linearization point. Loads pair
  // with the eventcount fence machinery (see file comment), so acquire
  // suffices everywhere except the in-park re-check, which participates in
  // the Dekker case analysis directly and stays seq_cst.
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> send_timeouts_{0};        // STAT-RELAXED
  std::atomic<std::uint64_t> recv_timeouts_{0};        // STAT-RELAXED
  std::atomic<std::uint64_t> closed_send_rejects_{0};  // STAT-RELAXED
  std::atomic<std::uint64_t> accepted_after_close_{0}; // STAT-RELAXED
};

}  // namespace wcq
