#include "runtime/thread_registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "analysis/sched_point.hpp"
#include "common/op_counters.hpp"

namespace wcq {

namespace {

constexpr unsigned kWords = ThreadRegistry::kMaxThreads / 64;

std::atomic<std::uint64_t> g_bitmap[kWords];
std::atomic<unsigned> g_high_water{0};
std::atomic<unsigned> g_live{0};

// Exit-hook table. The lock serializes registration, unregistration, hook
// invocation and with_exit_hooks_blocked(); hook bodies are bounded queue
// operations (magazine flushes), so holding the lock across them is cheap
// and buys the teardown guarantee unregister_exit_hook() documents. Both
// objects are function-local statics: the main thread's SlotHolder runs its
// hooks during thread_local destruction, which [basic.start.term] orders
// before static-duration destruction, and the lazy construction dodges the
// static-init-order fiasco for queues constructed before main().
struct HookEntry {
  std::uint64_t handle;
  ThreadRegistry::ExitHook fn;
  void* ctx;
};

std::mutex& hook_mutex() {
  static std::mutex m;
  return m;
}

std::vector<HookEntry>& hook_table() {
  static std::vector<HookEntry> t;
  return t;
}

std::uint64_t g_next_hook_handle{1};

void run_exit_hooks(unsigned slot) {
  std::lock_guard<std::mutex> lk(hook_mutex());
  for (const HookEntry& h : hook_table()) {
    h.fn(h.ctx, slot);
  }
}

unsigned acquire_slot() {
  for (unsigned w = 0; w < kWords; ++w) {
    std::uint64_t bits = g_bitmap[w].load(std::memory_order_relaxed);
    while (bits != ~std::uint64_t{0}) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(~bits));
      WCQ_SCHED_POINT(kRegistry);
      if (g_bitmap[w].compare_exchange_weak(bits, bits | (1ULL << bit),
                                            std::memory_order_acq_rel)) {
        const unsigned slot = w * 64 + bit;
        // Release on advance pairs with the acquire load in high_water():
        // reclamation/helping scans size their record iteration by
        // high_water() and must observe everything this thread published
        // before its slot became visible (the bitmap claim above). A relaxed
        // advance would let a scanner see the new high-water mark without
        // those prior writes.
        unsigned hw = g_high_water.load(std::memory_order_relaxed);
        WCQ_SCHED_POINT(kRegistry);
        while (hw < slot + 1 &&
               !g_high_water.compare_exchange_weak(hw, slot + 1,
                                                   std::memory_order_release,
                                                   std::memory_order_relaxed)) {
        }
        g_live.fetch_add(1, std::memory_order_relaxed);
        return slot;
      }
    }
  }
  std::fprintf(stderr,
               "wcq: more than %u concurrent threads registered; rebuild with "
               "a larger ThreadRegistry::kMaxThreads\n",
               ThreadRegistry::kMaxThreads);
  std::abort();
}

void release_slot(unsigned slot) {
  g_bitmap[slot / 64].fetch_and(~(1ULL << (slot % 64)),
                                std::memory_order_acq_rel);
  g_live.fetch_sub(1, std::memory_order_relaxed);
}

struct SlotHolder {
  unsigned slot;
  SlotHolder() : slot(acquire_slot()) {}
  ~SlotHolder() {
    // Hooks run first: the slot is still this thread's, so a hook may issue
    // queue operations (the magazine flush enqueues into fq, whose ring
    // reads ThreadRegistry::tid() — re-entering tid() here returns this
    // holder's still-alive `slot` member, valid for the whole dtor body).
    run_exit_hooks(slot);
    release_slot(slot);
  }
};

}  // namespace

unsigned ThreadRegistry::tid() {
  thread_local SlotHolder holder;
  opcount::count_registry();
  return holder.slot;
}

unsigned ThreadRegistry::high_water() {
  opcount::count_registry();
  return g_high_water.load(std::memory_order_acquire);
}

unsigned ThreadRegistry::live_threads() {
  return g_live.load(std::memory_order_relaxed);
}

std::uint64_t ThreadRegistry::register_exit_hook(ExitHook fn, void* ctx) {
  std::lock_guard<std::mutex> lk(hook_mutex());
  const std::uint64_t handle = g_next_hook_handle++;
  hook_table().push_back(HookEntry{handle, fn, ctx});
  return handle;
}

void ThreadRegistry::unregister_exit_hook(std::uint64_t handle) {
  std::lock_guard<std::mutex> lk(hook_mutex());
  auto& t = hook_table();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].handle == handle) {
      t.erase(t.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

}  // namespace wcq
