#include "runtime/thread_registry.hpp"

#include <cstdio>
#include <cstdlib>

namespace wcq {

namespace {

constexpr unsigned kWords = ThreadRegistry::kMaxThreads / 64;

std::atomic<std::uint64_t> g_bitmap[kWords];
std::atomic<unsigned> g_high_water{0};
std::atomic<unsigned> g_live{0};

unsigned acquire_slot() {
  for (unsigned w = 0; w < kWords; ++w) {
    std::uint64_t bits = g_bitmap[w].load(std::memory_order_relaxed);
    while (bits != ~std::uint64_t{0}) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(~bits));
      if (g_bitmap[w].compare_exchange_weak(bits, bits | (1ULL << bit),
                                            std::memory_order_acq_rel)) {
        const unsigned slot = w * 64 + bit;
        // Release on advance pairs with the acquire load in high_water():
        // reclamation/helping scans size their record iteration by
        // high_water() and must observe everything this thread published
        // before its slot became visible (the bitmap claim above). A relaxed
        // advance would let a scanner see the new high-water mark without
        // those prior writes.
        unsigned hw = g_high_water.load(std::memory_order_relaxed);
        while (hw < slot + 1 &&
               !g_high_water.compare_exchange_weak(hw, slot + 1,
                                                   std::memory_order_release,
                                                   std::memory_order_relaxed)) {
        }
        g_live.fetch_add(1, std::memory_order_relaxed);
        return slot;
      }
    }
  }
  std::fprintf(stderr,
               "wcq: more than %u concurrent threads registered; rebuild with "
               "a larger ThreadRegistry::kMaxThreads\n",
               ThreadRegistry::kMaxThreads);
  std::abort();
}

void release_slot(unsigned slot) {
  g_bitmap[slot / 64].fetch_and(~(1ULL << (slot % 64)),
                                std::memory_order_acq_rel);
  g_live.fetch_sub(1, std::memory_order_relaxed);
}

struct SlotHolder {
  unsigned slot;
  SlotHolder() : slot(acquire_slot()) {}
  ~SlotHolder() { release_slot(slot); }
};

}  // namespace

unsigned ThreadRegistry::tid() {
  thread_local SlotHolder holder;
  return holder.slot;
}

unsigned ThreadRegistry::high_water() {
  return g_high_water.load(std::memory_order_acquire);
}

unsigned ThreadRegistry::live_threads() {
  return g_live.load(std::memory_order_relaxed);
}

}  // namespace wcq
