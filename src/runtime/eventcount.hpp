// EventCount — futex-backed parking for the blocking facade (DESIGN.md §14).
//
// The wait-free rings never block, but a server fronting idle traffic cannot
// spin consumers forever. An eventcount is the classic bridge: it lets a
// waiter park on "the queue's state changed" without adding anything to the
// queue's own operations. The protocol is the three-phase prepare/re-check/
// commit shape:
//
//   waiter                                 notifier
//   ------                                 --------
//   t = prepare_wait()   (waiters_++)      publish state (queue op)
//   re-check condition  ----------- race ----------  notify(): read waiters_
//   hit   -> cancel_wait(), done           0  -> done (no wake, no RMW)
//   miss  -> commit_wait(t): park          >0 -> epoch_++, futex wake
//
// Lost-wakeup freedom is a Dekker argument over the two seq_cst fences (one
// in prepare_wait after the waiter-count increment, one in notify() before
// the waiter-count read): whichever fence is later in the fence total order
// S makes the other side's write visible. If the notifier's fence is later,
// it sees the waiter and bumps the epoch — the commit's futex compare (or
// its userspace re-read) observes a ticket mismatch and refuses to sleep.
// If the waiter's fence is later, its re-check sees the published state and
// cancels. There is no third case, so a committed park always has a pending
// wake or a condition the re-check would have caught — the exact argument
// the analysis tier's dropped-wake / skipped-re-check mutations invalidate
// (tests/analysis/test_mutation_{dropwake,parkcheck}.cpp).
//
// The fast path is wait-free and touches no mutex: prepare/cancel are one
// relaxed RMW each plus a fence, notify with no waiters is a fence + one
// relaxed load, and only commit_wait enters the kernel. On Linux the park is
// FUTEX_WAIT_PRIVATE on the 32-bit epoch word (the kernel re-validates the
// ticket under its own lock, closing the check-then-sleep window); elsewhere
// a mutex+condvar fallback provides the same interface (the notifier taking
// the mutex empty-handed before notifying closes the same window).
//
// Analysis builds (WCQ_ANALYSIS=1): every protocol edge is a WCQ_SCHED_POINT,
// and when a cooperative scheduler is installed commit_wait parks *virtually*
// — it spins at kParkCommit scheduling points re-reading the epoch instead of
// entering the kernel, so the PCT explorer can interleave park/wake edges
// deterministically. A virtual park that exhausts its step budget without
// ever observing an epoch bump returns spuriously (callers re-check by
// contract) and is tallied in stranded(): in a well-formed harness where
// every park has a matching wake, stranded() == 0 over every schedule is the
// lost-wakeup-freedom assertion, and the mutation self-tests demand the
// opposite.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "analysis/sched_point.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#define WCQ_HAS_FUTEX 1
#else
#include <condition_variable>
#include <mutex>
#define WCQ_HAS_FUTEX 0
#endif

namespace wcq {

class EventCount {
 public:
  // Epoch snapshot returned by prepare_wait and consumed by commit_wait.
  using Ticket = std::uint32_t;

  EventCount() = default;
  EventCount(const EventCount&) = delete;
  EventCount& operator=(const EventCount&) = delete;

  // Phase 1: announce this thread as a waiter and snapshot the epoch. The
  // caller MUST re-check its wait condition between prepare_wait and
  // commit_wait (that re-check races the notifier's state publication; the
  // fence pair makes exactly one side lose) and MUST follow with exactly one
  // cancel_wait or commit_wait.
  Ticket prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_relaxed);  // PARK-COUNT
    // PARK-DEKKER: orders the waiter announcement before the caller's
    // condition re-check, against notify()'s mirror fence.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    WCQ_SCHED_POINT(kParkPrepare);
    return epoch_.load(std::memory_order_acquire);  // PARK-EPOCH
  }

  // Phase 2a: the re-check found the condition satisfied — retract the
  // announcement without sleeping.
  void cancel_wait() {
    waiters_.fetch_sub(1, std::memory_order_relaxed);  // PARK-COUNT
    WCQ_SCHED_POINT(kParkCancel);
  }

  // Phase 2b: park until the epoch moves past `t`. May return spuriously
  // (futex EINTR, a wake aimed at another waiter, the analysis budget);
  // callers re-check their condition and re-prepare in a loop.
  void commit_wait(Ticket t) {
    parks_.fetch_add(1, std::memory_order_relaxed);
#if defined(WCQ_ANALYSIS) && WCQ_ANALYSIS
    if (analysis::hooks_installed()) {
      virtual_park(t);
      waiters_.fetch_sub(1, std::memory_order_relaxed);  // PARK-COUNT
      return;
    }
#endif
    platform_wait(t, /*has_deadline=*/false, {});
    waiters_.fetch_sub(1, std::memory_order_relaxed);  // PARK-COUNT
  }

  // Deadline variant: returns false iff the park ended because `deadline`
  // passed (a best-effort hint — the caller owns the authoritative deadline
  // check, exactly as it owns the condition re-check).
  bool commit_wait_until(Ticket t,
                         std::chrono::steady_clock::time_point deadline) {
    parks_.fetch_add(1, std::memory_order_relaxed);
#if defined(WCQ_ANALYSIS) && WCQ_ANALYSIS
    if (analysis::hooks_installed()) {
      const bool woke = virtual_park(t);
      waiters_.fetch_sub(1, std::memory_order_relaxed);  // PARK-COUNT
      return woke || std::chrono::steady_clock::now() < deadline;
    }
#endif
    const bool in_time = platform_wait(t, /*has_deadline=*/true, deadline);
    waiters_.fetch_sub(1, std::memory_order_relaxed);  // PARK-COUNT
    return in_time;
  }

  // Notifier side: called *after* publishing the state change the waiters
  // re-check. With no waiter announced this is fence + relaxed load — no RMW,
  // no syscall — which is what keeps the non-contended queue fast path free
  // of parking overhead (the bench gate in tests/test_channel.cpp).
  void notify_one() { notify(false); }
  void notify_all() { notify(true); }

  // --- introspection (tests, bench JSON) ------------------------------------

  // Currently-announced waiters (prepare'd but not yet cancelled/woken).
  std::uint32_t waiters() const {
    return waiters_.load(std::memory_order_relaxed);  // PARK-COUNT
  }
  // commit_wait calls (actual parks, virtual or kernel).
  std::uint64_t parks() const {
    return parks_.load(std::memory_order_relaxed);  // STAT-RELAXED
  }
  // notify calls that found waiters and bumped the epoch.
  std::uint64_t notifies() const {
    return notifies_.load(std::memory_order_relaxed);  // STAT-RELAXED
  }
  // Analysis-mode virtual parks that exhausted their step budget without an
  // epoch bump: the lost-wakeup detector (0 over every schedule of a
  // well-formed harness; the mutation self-tests require > 0).
  std::uint64_t stranded() const {
    return stranded_.load(std::memory_order_relaxed);  // STAT-RELAXED
  }

 private:
#if defined(WCQ_ANALYSIS) && WCQ_ANALYSIS
  // Virtual-park step budget under an installed scheduler. Large enough that
  // a pending wake always lands first (PCT's quota demotes the spinner every
  // 64 steps, so every peer gets the processor thousands of times within the
  // budget), small enough that a genuinely stranded waiter terminates the
  // schedule promptly instead of wedging the explorer.
  static constexpr std::uint32_t kAnalysisParkBudget = 4096;

  // Cooperative park: spin at scheduling points until the epoch moves.
  // Returns true if a bump was observed, false on budget exhaustion (tallied
  // as stranded — the caller's contract turns it into a spurious wake).
  bool virtual_park(Ticket t) {
    for (std::uint32_t i = 0; i < kAnalysisParkBudget; ++i) {
      WCQ_SCHED_POINT(kParkCommit);
      if (epoch_.load(std::memory_order_acquire) != t) {  // PARK-EPOCH
        return true;
      }
    }
    stranded_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
#endif

  void notify(bool all) {
    // PARK-DEKKER: orders the caller's state publication before the waiter
    // read, against prepare_wait's mirror fence.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    WCQ_SCHED_POINT(kParkWake);
    if (waiters_.load(std::memory_order_relaxed) == 0) {  // PARK-COUNT
      return;
    }
    notifies_.fetch_add(1, std::memory_order_relaxed);  // STAT-RELAXED
#if WCQ_HAS_FUTEX
    epoch_.fetch_add(1, std::memory_order_acq_rel);  // PARK-EPOCH
    futex(&epoch_, FUTEX_WAKE_PRIVATE, all ? INT32_MAX : 1, nullptr);
#else
    epoch_.fetch_add(1, std::memory_order_acq_rel);  // PARK-EPOCH
    // Empty critical section: a waiter past its epoch check but not yet in
    // cv.wait holds the mutex, so acquiring it here orders the bump before
    // that waiter blocks — the condvar analogue of the kernel's futex
    // re-validation.
    { std::lock_guard<std::mutex> lk(mu_); }
    if (all) {
      cv_.notify_all();
    } else {
      cv_.notify_one();
    }
#endif
  }

  // Kernel park. Returns false iff the wait ended on a timed-out deadline.
  bool platform_wait(Ticket t, bool has_deadline,
                     std::chrono::steady_clock::time_point deadline) {
#if WCQ_HAS_FUTEX
    timespec ts{};
    timespec* tsp = nullptr;
    if (has_deadline) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
          deadline - now);
      ts.tv_sec = static_cast<time_t>(left.count() / 1000000000);
      ts.tv_nsec = static_cast<long>(left.count() % 1000000000);
      tsp = &ts;
    }
    // The kernel re-reads the epoch word under its internal lock and refuses
    // to sleep on a mismatch (EAGAIN) — this is the atomic check-and-park
    // that closes the window between our ticket snapshot and the sleep.
    const long rc = futex(&epoch_, FUTEX_WAIT_PRIVATE,
                          static_cast<int>(t), tsp);
    return !(rc == -1 && errno == ETIMEDOUT);
#else
    std::unique_lock<std::mutex> lk(mu_);
    while (epoch_.load(std::memory_order_acquire) == t) {  // PARK-EPOCH
      if (has_deadline) {
        if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
          return false;
        }
      } else {
        cv_.wait(lk);
        break;  // one wait per commit: spurious condvar wakes surface as
                // spurious commit returns, which the caller's loop absorbs
      }
    }
    return true;
#endif
  }

#if WCQ_HAS_FUTEX
  static long futex(std::atomic<std::uint32_t>* addr, int op, int val,
                    timespec* timeout) {
    return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), op, val,
                   timeout, nullptr, 0);
  }
#endif

  // The futex word: bumped on every delivered notify; waiters sleep on its
  // value. 32-bit by futex contract; wraparound is harmless (a waiter only
  // compares for inequality against a snapshot taken within one park).
  std::atomic<std::uint32_t> epoch_{0};
  // Announced waiters. A stale-high read in notify() costs one spurious epoch
  // bump + wake; a stale-low read is impossible past the fence pair (the
  // PARK-DEKKER argument above), so relaxed RMWs suffice.
  std::atomic<std::uint32_t> waiters_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> notifies_{0};
  std::atomic<std::uint64_t> stranded_{0};
#if !WCQ_HAS_FUTEX
  std::mutex mu_;
  std::condition_variable cv_;
#endif
};

}  // namespace wcq
