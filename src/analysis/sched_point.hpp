// Schedule-exploration hooks (DESIGN.md §11, the memory-model analysis tier).
//
// Every shared Head/Tail/threshold/entry/hazard/magazine transition in the
// rings and their support layers is annotated with WCQ_SCHED_POINT(site).
// In normal builds the macro expands to nothing — the analysis tier costs
// zero in the configurations the throughput gates measure. Under the
// `analysis` CMake preset (WCQ_ANALYSIS=1), every annotation becomes a call
// into this hook layer, where a cooperative scheduler (tests/analysis/
// pct_scheduler.hpp) can suspend the calling thread and hand the processor
// to a different one — turning the annotations into preemption points for
// PCT-style randomized, preemption-bounded interleaving exploration.
//
// The hook dispatch itself is installed at runtime: with no scheduler
// installed, an analysis-build sched point is one acquire load and a
// predictable branch, so analysis binaries still run at full speed outside
// exploration harnesses (their functional tests share the tier-1 suite).
//
// Mutation self-test support: the schedule explorer must be able to detect a
// deliberately broken memory ordering, otherwise a pass proves nothing.
// mutate_deferred_store() models the visibility a downgraded (relaxed)
// threshold re-arm is allowed to have — the store parks in the calling
// thread's "store buffer" and drains only at that thread's next scheduling
// point, after the scheduler has had the chance to run other threads against
// the stale value. Ring code routes exactly one store through it, and only
// when compiled with WCQ_ANALYSIS_MUTATE_THRESHOLD (a test-only binary); see
// tests/analysis/test_mutation_threshold.cpp.
#pragma once

#include <atomic>
#include <cstdint>

namespace wcq::analysis {

// One value per *kind* of shared-memory transition. The taxonomy mirrors the
// DESIGN.md §11 argument groups, so an exploration trace can be read against
// the per-site ordering table.
enum class Site : std::uint8_t {
  kTailFaa = 0,    // shared Tail F&A (fast path, bulk span reservation)
  kHeadFaa,        // shared Head F&A
  kEntryUpdate,    // ring entry word CAS / consume-OR / Note watermark
  kThresholdCheck, // empty fast-exit load of Threshold
  kThresholdArm,   // Threshold re-arm store (the PR 4 / §11 THLD-ARM site)
  kThresholdDec,   // Threshold decrement RMW
  kCatchup,        // Tail catchup CAS
  kSlowLocal,      // slow-path localTail/localHead CAS (incl. FIN edges)
  kSlowPublish,    // slow_F&A global {counter, ref} CAS2 publish/clear
  kSlowHelp,       // load_global_help_phase2 loop head
  kMagazinePut,    // magazine slot release-store
  kMagazineTake,   // magazine slot take-CAS (owner or stealer)
  kMagazineSteal,  // reclaim-sweep scan step
  kHazardProtect,  // hazard slot publish/validate
  kHazardClear,    // hazard slot clear
  kHazardRetire,   // retire-list append / scan trigger
  kHazardScan,     // scan's cross-thread hazard reads
  kPoolOp,         // segment pool take/put edge
  kRegistry,       // registry slot acquire / high-water advance
  kOpBoundary,     // harness-injected operation invocation/response marker
  kParkPrepare,    // eventcount prepare_wait: waiter count published
  kParkCancel,     // eventcount cancel_wait: waiter count retracted
  kParkCommit,     // eventcount commit_wait: park edge (and each cooperative
                   //   re-check iteration under the analysis scheduler)
  kParkWake,       // eventcount notify: epoch bump / futex wake edge
  kChanClose,      // channel close: closed-flag publish before the wake storm
  kSiteCount,
};

// Installed scheduler callbacks. `yield` is invoked by the instrumented
// thread itself at each sched point; a cooperative scheduler blocks inside
// it until the thread is granted the processor again. Implementations must
// tolerate calls from threads they never registered (queue construction on
// a test's main thread, detached teardown work) by returning immediately.
struct SchedHooks {
  void (*yield)(void* ctx, Site site);
  void* ctx;
};

namespace detail {
// Single global installation point. Exploration is a whole-process activity
// (the registry and hazard tables are process-wide too); tests install one
// scheduler at a time.
extern std::atomic<const SchedHooks*> g_hooks;
// Out-of-line slow path: dispatch to the hooks, then drain this thread's
// deferred (mutation-model) store if one is parked.
void sched_point_slow(Site site);
}  // namespace detail

inline bool hooks_installed() {
  return detail::g_hooks.load(std::memory_order_acquire) != nullptr;
}

// The annotation target. One acquire load when no scheduler is installed.
inline void sched_point(Site site) {
  if (hooks_installed()) detail::sched_point_slow(site);
}

// Install/uninstall the process-wide scheduler. Callers serialize these with
// worker lifetime themselves (install before spawning instrumented workers,
// uninstall after joining them); the functions only publish the pointer.
void install(const SchedHooks* hooks);
void uninstall();

// --- mutation self-test support (WCQ_ANALYSIS_MUTATE_THRESHOLD) ------------

// Model of a downgraded threshold re-arm: park {target, value} in a
// per-thread buffer instead of storing seq_cst. The buffered store drains at
// this thread's next sched point *after* the scheduler's yield returns — so
// every other thread the scheduler chooses to run in between observes the
// pre-store value, exactly the window a relaxed store's delayed visibility
// opens on weak hardware (and the StoreLoad window x86 store buffers open
// even under TSO). With no scheduler installed the store happens
// immediately, keeping mutated binaries usable outside the harness.
void mutate_deferred_store(std::atomic<std::int64_t>* target,
                           std::int64_t value);

// Drain the calling thread's parked store, if any. The exploration harness
// calls this when a worker leaves the scheduled region, so a schedule's
// trailing deferred store cannot leak into queue teardown.
void flush_deferred();

}  // namespace wcq::analysis

// WCQ_SCHED_POINT(site_token) — annotation macro used by the instrumented
// layers. Compiles to nothing unless the tree (or the including target) is
// built with -DWCQ_ANALYSIS=1.
#if defined(WCQ_ANALYSIS) && WCQ_ANALYSIS
#define WCQ_SCHED_POINT(site) \
  ::wcq::analysis::sched_point(::wcq::analysis::Site::site)
#else
#define WCQ_SCHED_POINT(site) ((void)0)
#endif
