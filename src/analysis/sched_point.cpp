#include "analysis/sched_point.hpp"

namespace wcq::analysis {

namespace detail {
std::atomic<const SchedHooks*> g_hooks{nullptr};
}  // namespace detail

namespace {

// The mutation model's one-entry "store buffer" (sched_point.hpp). At most
// one store is parked per thread: ring code routes only the threshold re-arm
// through it, and a second defer drains the first — matching a real store
// buffer, which cannot reorder two stores to the same location.
struct DeferredStore {
  std::atomic<std::int64_t>* target = nullptr;
  std::int64_t value = 0;
};
thread_local DeferredStore tl_deferred;

}  // namespace

void flush_deferred() {
  if (tl_deferred.target != nullptr) {
    tl_deferred.target->store(tl_deferred.value, std::memory_order_seq_cst);
    tl_deferred.target = nullptr;
  }
}

namespace detail {
void sched_point_slow(Site site) {
  const SchedHooks* h = g_hooks.load(std::memory_order_acquire);
  if (h != nullptr) h->yield(h->ctx, site);
  // Drain after the yield returns: everything the scheduler ran in between
  // saw the pre-store state, which is the reordering window being modeled.
  flush_deferred();
}
}  // namespace detail

void install(const SchedHooks* hooks) {
  detail::g_hooks.store(hooks, std::memory_order_release);
}

void uninstall() {
  detail::g_hooks.store(nullptr, std::memory_order_release);
}

void mutate_deferred_store(std::atomic<std::int64_t>* target,
                           std::int64_t value) {
  if (!hooks_installed()) {
    target->store(value, std::memory_order_seq_cst);
    return;
  }
  flush_deferred();
  tl_deferred = DeferredStore{target, value};
}

}  // namespace wcq::analysis
