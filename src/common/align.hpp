// Cache-line and alignment utilities shared by every lock-free module.
//
// All contended variables in this library are isolated to their own cache
// line (the paper's queues put Head, Tail and Threshold on separate lines),
// and ring-buffer arrays are allocated line-aligned so that Cache_Remap's
// permutation math (see core/remap.hpp) lines up with real cache lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

namespace wcq {

using u64 = std::uint64_t;
using i64 = std::int64_t;

// Defined in common/alloc_meter.cpp; declared here so AlignedArray (ring
// buffers, record arrays) is visible to the Fig 10 memory accounting
// without an include cycle.
namespace alloc_meter {
void* allocate_aligned(std::size_t bytes, std::size_t alignment);
void deallocate_aligned(void* p, std::size_t bytes);
}  // namespace alloc_meter

// 64 bytes on every CPU this library targets. We intentionally do not use
// std::hardware_destructive_interference_size: it is 256 on some toolchains
// and would quadruple ring-buffer footprints measured in the Fig 10 bench.
inline constexpr std::size_t kCacheLine = 64;

// Adjacent-line prefetcher pairs lines on x86; top-level queue objects are
// padded to 2 lines to keep producers and consumers from false sharing.
inline constexpr std::size_t kDestructiveRange = 128;

// A value padded out to occupy one full cache line.
template <typename T>
struct alignas(kCacheLine) CacheAligned {
  T value{};
  char pad_[kCacheLine - (sizeof(T) % kCacheLine ? sizeof(T) % kCacheLine
                                                 : kCacheLine)];
};

// RAII array storage with explicit alignment (for ring buffers whose slots
// must be 16-byte aligned for CAS2 and line-aligned as a whole).
template <typename T>
class AlignedArray {
 public:
  AlignedArray() = default;
  AlignedArray(std::size_t n, std::size_t alignment) : n_(n) {
    bytes_ = round_up(n * sizeof(T), alignment);
    ptr_ = static_cast<T*>(alloc_meter::allocate_aligned(bytes_, alignment));
    for (std::size_t i = 0; i < n_; ++i) {
      new (ptr_ + i) T();
    }
  }
  ~AlignedArray() {
    if (ptr_ != nullptr) {
      for (std::size_t i = n_; i > 0; --i) {
        ptr_[i - 1].~T();
      }
      alloc_meter::deallocate_aligned(ptr_, bytes_);
    }
  }
  AlignedArray(const AlignedArray&) = delete;
  AlignedArray& operator=(const AlignedArray&) = delete;
  AlignedArray(AlignedArray&& o) noexcept
      : ptr_(o.ptr_), n_(o.n_), bytes_(o.bytes_) {
    o.ptr_ = nullptr;
    o.n_ = 0;
    o.bytes_ = 0;
  }
  AlignedArray& operator=(AlignedArray&& o) noexcept {
    if (this != &o) {
      this->~AlignedArray();
      new (this) AlignedArray(std::move(o));
    }
    return *this;
  }

  T* data() noexcept { return ptr_; }
  const T* data() const noexcept { return ptr_; }
  T& operator[](std::size_t i) noexcept { return ptr_[i]; }
  const T& operator[](std::size_t i) const noexcept { return ptr_[i]; }
  std::size_t size() const noexcept { return n_; }

  static constexpr std::size_t round_up(std::size_t v, std::size_t a) {
    return (v + a - 1) / a * a;
  }

 private:
  T* ptr_ = nullptr;
  std::size_t n_ = 0;
  std::size_t bytes_ = 0;
};

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr unsigned log2_floor(std::uint64_t v) {
  unsigned r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

}  // namespace wcq
