// Summary statistics for benchmark runs.
//
// The paper reports the mean of 10 runs and notes "the coefficient of
// variation, as reported by the benchmark, is small (< 0.01)"; we reproduce
// both numbers for every measured point.
#pragma once

#include <cstddef>
#include <vector>

namespace wcq {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double cv = 0.0;      // stddev / mean (0 when mean == 0)
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

Summary summarize(const std::vector<double>& samples);

}  // namespace wcq
