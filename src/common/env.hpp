// Environment-variable knobs.
//
// Benchmarks default to CI-friendly sizes and scale up to the paper's
// parameters (10 runs x 10,000,000 ops) via environment variables or flags;
// this keeps `for b in build/bench/*; do $b; done` fast while making the full
// reproduction a one-liner (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>

namespace wcq {

std::uint64_t env_u64(const char* name, std::uint64_t fallback);
double env_double(const char* name, double fallback);
bool env_flag(const char* name, bool fallback);
std::string env_str(const char* name, const std::string& fallback);

}  // namespace wcq
