#include "common/env.hpp"

#include <cstdlib>
#include <cstring>

namespace wcq {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 0);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "off") == 0);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

}  // namespace wcq
