// Adaptive spin-then-yield backoff for unbounded retry loops.
//
// Busy-wait loops built on cpu_relax() alone livelock on oversubscribed
// machines: the spinning thread burns its whole scheduling quantum while the
// thread it waits for is runnable but descheduled. A 1-core CI runner is the
// worst case — every handoff costs a full quantum, so a loop that needs a
// peer to run (a producer waiting for a consumer to free a slot, a consumer
// waiting for a producer to publish) degrades from nanoseconds to ~100 ms
// per retry and a 10^5-item test hangs past any CTest timeout.
//
// Backoff escalates: the first kSpinRounds calls to pause() spin in
// userspace with an exponentially growing train of cpu_relax()es (so
// uncontended retries stay cheap and off the scheduler), after which every
// pause() calls std::this_thread::yield(), donating the remainder of the
// quantum to the starved peer.
//
// Usage:
//   Backoff bo;
//   while (!try_something()) bo.pause();
//
// Call reset() after real progress if the same Backoff guards successive
// waits (e.g. one per item in a producer loop).
//
// This helper is for loops whose progress depends on *another thread's*
// steps (blocking-by-construction waits, and lock-free retry loops under
// oversubscription). wCQ's wait-free fast path is patience-bounded and never
// waits on a peer; it does not use Backoff (see DESIGN.md §5).
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/cpu.hpp"

namespace wcq {

class Backoff {
 public:
  // pause() calls spent spinning before escalating to yield(). 2^0..2^6
  // cpu_relax()es per round: ~127 relaxes (~a few microseconds) total before
  // the first syscall — long enough to absorb cache-miss-length waits,
  // short enough that a descheduled peer costs one quantum, not many.
  static constexpr std::uint32_t kSpinRounds = 8;
  static constexpr std::uint32_t kMaxRelaxShift = 6;

  constexpr Backoff() = default;
  explicit constexpr Backoff(std::uint32_t spin_rounds)
      : spin_rounds_(spin_rounds) {}

  void pause() {
    if (round_ < spin_rounds_) {
      const std::uint32_t shift =
          round_ < kMaxRelaxShift ? round_ : kMaxRelaxShift;
      for (std::uint32_t i = 0; i < (std::uint32_t{1} << shift); ++i) {
        cpu_relax();
      }
      ++round_;
    } else {
      std::this_thread::yield();
      ++yields_;
    }
  }

  // Deadline-aware pause() for spin-then-park loops (runtime/channel.hpp):
  // identical ladder, but returns false once `deadline` has passed so the
  // caller can stop retrying. The clock is read only after the spin rounds
  // are exhausted — the pure-spin phase stays syscall- and clock-free, at
  // the cost of overshooting a deadline by at most the ladder's few
  // microseconds of spinning.
  bool until(std::chrono::steady_clock::time_point deadline) {
    if (round_ >= spin_rounds_ &&
        std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    pause();
    return true;
  }

  // Restart the ladder after the guarded condition made progress.
  void reset() { round_ = 0; }

  // Introspection (tests).
  std::uint32_t spin_rounds() const { return spin_rounds_; }
  std::uint32_t round() const { return round_; }
  std::uint64_t yields() const { return yields_; }
  bool yielding() const { return round_ >= spin_rounds_; }

 private:
  std::uint32_t spin_rounds_ = kSpinRounds;
  std::uint32_t round_ = 0;
  std::uint64_t yields_ = 0;
};

}  // namespace wcq
