// CPU topology and affinity helpers for the benchmark harness.
//
// The paper pins measurement threads ("x86-64's throughput peaks for 18
// threads (all 18 threads can fit just one physical CPU)"); we pin threads
// round-robin over online CPUs so thread-count sweeps are reproducible.
#pragma once

#include <cstdint>

namespace wcq {

// Number of online CPUs.
unsigned cpu_count();

// Pin the calling thread to cpu `index % cpu_count()`. No-op on failure
// (e.g., restricted cpusets); benchmarks still run, just unpinned.
void pin_thread(unsigned index);

// A few-cycle pause to play nice with the sibling hyperthread inside spin
// loops (PAUSE on x86, YIELD elsewhere).
inline void cpu_relax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

// Current resident set size in bytes (Linux /proc/self/statm); 0 if unknown.
// Used by the Fig 10 memory bench alongside the deterministic alloc meter.
std::uint64_t current_rss_bytes();

}  // namespace wcq
