// CPU affinity and spin-wait primitives, over the Topology subsystem
// (common/topology.hpp, DESIGN.md §12).
//
// The paper pins measurement threads ("x86-64's throughput peaks for 18
// threads (all 18 threads can fit just one physical CPU)"); placement is a
// first-class policy here — round-robin, compact (fill a node, real cores
// before hyperthreads), scatter (across nodes first), or confined to one
// node — because on a multi-socket box the placement decides whether the
// rings' cache lines cross the interconnect. Benchmarks, shard construction
// and tests all pin through these helpers.
#pragma once

#include <cstdint>

#include "common/topology.hpp"

namespace wcq {

// Number of online CPUs (the live machine, not a simulated topology).
unsigned cpu_count();

// Pin the calling thread to cpu `index % cpu_count()` — round-robin over the
// live machine, the legacy policy. No-op on failure (restricted cpusets,
// missing CPUs): callers still run, just unpinned; nothing reports or
// retries, by contract (see README "Topology").
void pin_thread(unsigned index);

// Policy-aware pinning: map thread `index` through `spec` on `topo`, set the
// calling thread's node override to the target CPU's node, and — unless the
// topology is simulated, whose CPU ids are nominal — pin to that CPU.
// The same no-op-on-failure contract as pin_thread(index): a failed affinity
// syscall leaves the thread unpinned but the node override is ALWAYS set, so
// node-keyed placement (home shards, segment pools) stays deterministic even
// where pinning is impossible (1-core CI under a simulated multi-node
// topology).
void pin_thread(unsigned index, const Topology::PinSpec& spec,
                const Topology& topo = Topology::instance());

// A few-cycle pause to play nice with the sibling hyperthread inside spin
// loops. PAUSE on x86; ISB on AArch64 — YIELD is architecturally a NOP on
// most ARM cores (it only hints SMT, which is rare there), while ISB stalls
// the pipeline long enough to open a window for the spun-on store to land
// and measurably cuts exclusive-monitor/coherence traffic in LDXP/STXP
// loops (DESIGN.md §15). Other ISAs get a compiler barrier so spun-on
// values are at least re-loaded instead of hoisted, rather than falling
// through to nothing.
inline void cpu_relax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("isb" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Current resident set size in bytes (Linux /proc/self/statm); 0 if unknown.
// Used by the Fig 10 memory bench alongside the deterministic alloc meter.
std::uint64_t current_rss_bytes();

}  // namespace wcq
