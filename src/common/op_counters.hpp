// Thread-local shared-ring operation counters (DESIGN.md §9).
//
// The Fig 2 indirection layer pays two shared-ring operations per logical
// queue operation (one on fq, one on aq), each of which issues seq_cst RMWs
// on contended counter lines. The index-magazine subsystem exists to
// amortize the fq half away; these counters make that claim *measurable* on
// hosts where wall-clock throughput is noise (the 1-core CI runner).
//
// Three counters, incremented at the sites inside the rings and registry:
//   faa       — F&A (or the slow path's published-increment CAS2) on a
//               shared Head/Tail counter line
//   threshold — RMW/store traffic on a shared Threshold line
//   registry  — ThreadRegistry::tid()/high_water() resolutions, i.e. the
//               thread_local/global-registry lookups the per-thread session
//               handles (DESIGN.md §10) exist to hoist off the hot path.
//               Counted inside the registry itself so every layer's lookup
//               is captured; the handle CI gate (bench/check_ringops.py)
//               requires the explicit-handle path to stay ≤ 1 per op.
//   remote_steal — ShardedQueue operations that *succeeded* on a shard homed
//               on a different NUMA node than the calling session
//               (DESIGN.md §12). Failed probes of remote shards during a
//               sweep are free of side effects and not counted; a nonzero
//               count means payload actually crossed the interconnect. The
//               topology CI gate (bench/check_topology.py) requires exactly
//               0 under node-partitioned placement.
//
// The counters are plain thread-local increments (one add on a core-private
// line, no atomics), cheap enough to keep unconditionally enabled; the bench
// harness snapshots them per worker and reports per-operation means.
#pragma once

#include <cstdint>

namespace wcq::opcount {

struct Counters {
  std::uint64_t faa = 0;
  std::uint64_t threshold = 0;
  std::uint64_t registry = 0;
  std::uint64_t remote_steal = 0;
};

// Function-local thread_local rather than an extern TLS object: GCC's
// -fsanitize=null instrumentation has a long-standing false positive on
// direct member access through an extern thread_local under optimization
// ("member access within null pointer" on the segment-relative address),
// which would make the UBSan tier unusable. The accessor compiles to the
// same single fs-relative add; snapshot() keeps the public API unchanged.
inline Counters& tls_counters() noexcept {
  thread_local Counters c{};
  return c;
}

inline void count_faa() { ++tls_counters().faa; }
inline void count_threshold() { ++tls_counters().threshold; }
inline void count_registry() { ++tls_counters().registry; }
inline void count_remote_steal() { ++tls_counters().remote_steal; }

// Snapshot of this thread's counters (diff two snapshots around a workload).
inline Counters snapshot() { return tls_counters(); }

}  // namespace wcq::opcount
