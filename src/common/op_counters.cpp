#include "common/op_counters.hpp"

// The counters live in a function-local thread_local (see the header for the
// -fsanitize=null rationale); no out-of-line state remains. The TU stays so
// the build graph keeps a stable anchor for the component.
namespace wcq::opcount {}
