#include "common/op_counters.hpp"

namespace wcq::opcount {

constinit thread_local Counters tl_counters{};

}  // namespace wcq::opcount
