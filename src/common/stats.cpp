#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace wcq {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0.0;
    for (double v : samples) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(samples.size() - 1));
  }
  s.cv = (s.mean != 0.0) ? s.stddev / s.mean : 0.0;
  return s;
}

}  // namespace wcq
