// Double-width compare-and-swap (the paper's CAS2, §2).
//
// wCQ needs 16-byte CAS in two places: ring entries ({Note, Value} pairs,
// Fig 4) and the global Head/Tail references ({counter, phase2 pointer}
// pairs, Fig 7). x86-64 provides cmpxchg16b; AArch64 provides CASP (LSE) or
// an LDXP/STXP exclusive pair (see src/portability/llsc_native.hpp). On
// toolchains where 16-byte __atomic operations are routed through libatomic
// we use inline assembly to keep the hot path call-free.
//
// Backend selection (DESIGN.md §15):
//   x86-64            lock cmpxchg16b        (unless WCQ_NO_INLINE_CAS2)
//   aarch64 + LSE     caspal/casp family     (__ARM_FEATURE_ATOMICS, i.e.
//                     -march=armv8.1-a+, or forced with WCQ_FORCE_LSE_CAS2)
//   anything else     __atomic_compare_exchange with the requested order
//                     (no longer hardwired to seq_cst)
//
// Atomic 16-byte *loads* are deliberately NOT provided as a primitive.
// Per the paper (§4): every consumer of a pair either re-validates it with a
// CAS2 (so a torn two-word read only causes a benign retry) or bases its
// decision on a single word of the pair. We therefore read pairs as two
// individually-atomic 64-bit loads.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"

#if defined(__aarch64__) && !defined(WCQ_NO_INLINE_CAS2) && \
    (defined(__ARM_FEATURE_ATOMICS) || defined(WCQ_FORCE_LSE_CAS2))
#define WCQ_DWCAS_BACKEND_LSE 1
#endif

namespace wcq {

struct alignas(16) Pair128 {
  std::uint64_t lo;
  std::uint64_t hi;

  friend bool operator==(const Pair128& a, const Pair128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

// Storage for a CAS2-able pair. Each word is separately atomic so fast paths
// can F&A / load one word while slow paths CAS2 the pair (Fig 7: "use only
// .cnt for fast paths").
struct alignas(16) AtomicPair128 {
  std::atomic<std::uint64_t> lo;
  std::atomic<std::uint64_t> hi;

  // Two individually-atomic loads; the combined value may be torn (see file
  // header for why that is safe everywhere this is used).
  Pair128 load_torn(std::memory_order order = std::memory_order_acquire) const {
    Pair128 r;
    r.lo = lo.load(order);
    r.hi = hi.load(order);
    return r;
  }
};

static_assert(sizeof(AtomicPair128) == 16);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

// Human-readable backend name, reported by benches so committed JSON records
// which CAS2 implementation produced the numbers.
inline const char* dwcas_backend_name() {
#if defined(__x86_64__) && !defined(WCQ_NO_INLINE_CAS2)
  return "cmpxchg16b";
#elif defined(WCQ_DWCAS_BACKEND_LSE)
  return "lse-casp";
#else
  return "__atomic";
#endif
}

#if defined(WCQ_DWCAS_BACKEND_LSE)
// LSE CASP requires the compare/swap operands in consecutive even/odd
// register pairs; pin them with register-asm locals. The order parameter
// selects the casp variant at compile time when constant-folded, falling
// back to caspal (strongest) for dynamic orders.
inline bool dwcas_lse(AtomicPair128& target, Pair128& expected,
                      const Pair128& desired, std::memory_order order) {
  register std::uint64_t x0 asm("x0") = expected.lo;
  register std::uint64_t x1 asm("x1") = expected.hi;
  register std::uint64_t x2 asm("x2") = desired.lo;
  register std::uint64_t x3 asm("x3") = desired.hi;
  switch (order) {
    case std::memory_order_relaxed:
      asm volatile("casp %0, %1, %3, %4, %2"
                   : "+r"(x0), "+r"(x1), "+Q"(target)
                   : "r"(x2), "r"(x3)
                   : "memory");
      break;
    case std::memory_order_acquire:
    case std::memory_order_consume:
      asm volatile("caspa %0, %1, %3, %4, %2"
                   : "+r"(x0), "+r"(x1), "+Q"(target)
                   : "r"(x2), "r"(x3)
                   : "memory");
      break;
    case std::memory_order_release:
      asm volatile("caspl %0, %1, %3, %4, %2"
                   : "+r"(x0), "+r"(x1), "+Q"(target)
                   : "r"(x2), "r"(x3)
                   : "memory");
      break;
    default:  // acq_rel, seq_cst
      asm volatile("caspal %0, %1, %3, %4, %2"
                   : "+r"(x0), "+r"(x1), "+Q"(target)
                   : "r"(x2), "r"(x3)
                   : "memory");
      break;
  }
  bool ok = (x0 == expected.lo) && (x1 == expected.hi);
  expected.lo = x0;
  expected.hi = x1;
  return ok;
}
#endif  // WCQ_DWCAS_BACKEND_LSE

// Maps a std::memory_order to the (success, failure) __ATOMIC pair for the
// generic fallback; failure order is the strongest load-only order implied.
inline void dwcas_atomic_orders(std::memory_order order, int& success,
                                int& failure) {
  switch (order) {
    case std::memory_order_relaxed:
      success = __ATOMIC_RELAXED;
      failure = __ATOMIC_RELAXED;
      break;
    case std::memory_order_consume:
    case std::memory_order_acquire:
      success = __ATOMIC_ACQUIRE;
      failure = __ATOMIC_ACQUIRE;
      break;
    case std::memory_order_release:
      success = __ATOMIC_RELEASE;
      failure = __ATOMIC_RELAXED;
      break;
    case std::memory_order_acq_rel:
      success = __ATOMIC_ACQ_REL;
      failure = __ATOMIC_ACQUIRE;
      break;
    default:
      success = __ATOMIC_SEQ_CST;
      failure = __ATOMIC_SEQ_CST;
      break;
  }
}

// 16-byte strong CAS. On success returns true; on failure updates `expected`
// with the observed value (like std::atomic::compare_exchange). The order
// parameter is advisory on x86 (lock cmpxchg16b is a full barrier either
// way) and selects the casp variant / __atomic order pair elsewhere. All
// pre-existing callers keep the seq_cst default; DESIGN.md §15 records any
// call site that passes something weaker.
inline bool dwcas(AtomicPair128& target, Pair128& expected,
                  const Pair128& desired,
                  std::memory_order order = std::memory_order_seq_cst) {
#if defined(__x86_64__) && !defined(WCQ_NO_INLINE_CAS2)
  (void)order;
  bool ok;
  asm volatile("lock cmpxchg16b %1"
               : "=@ccz"(ok), "+m"(target), "+a"(expected.lo),
                 "+d"(expected.hi)
               : "b"(desired.lo), "c"(desired.hi)
               : "memory");
  return ok;
#elif defined(WCQ_DWCAS_BACKEND_LSE)
  return dwcas_lse(target, expected, desired, order);
#else
  int success, failure;
  dwcas_atomic_orders(order, success, failure);
  return __atomic_compare_exchange(
      reinterpret_cast<Pair128*>(&target), &expected,
      const_cast<Pair128*>(&desired), /*weak=*/false, success, failure);
#endif
}

// Truly-atomic 16-byte load built from CAS2 (writes the current value back to
// itself). Only used by tests/assertions; algorithm code uses load_torn().
inline Pair128 dwload_atomic(AtomicPair128& target) {
  Pair128 expected = target.load_torn(std::memory_order_relaxed);
  while (!dwcas(target, expected, expected)) {
  }
  return expected;
}

}  // namespace wcq
