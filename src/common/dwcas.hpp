// Double-width compare-and-swap (the paper's CAS2, §2).
//
// wCQ needs 16-byte CAS in two places: ring entries ({Note, Value} pairs,
// Fig 4) and the global Head/Tail references ({counter, phase2 pointer}
// pairs, Fig 7). x86-64 provides cmpxchg16b; AArch64 provides CASP. On
// toolchains where 16-byte __atomic operations are routed through libatomic
// we use inline assembly on x86-64 to keep the hot path call-free.
//
// Atomic 16-byte *loads* are deliberately NOT provided as a primitive.
// Per the paper (§4): every consumer of a pair either re-validates it with a
// CAS2 (so a torn two-word read only causes a benign retry) or bases its
// decision on a single word of the pair. We therefore read pairs as two
// individually-atomic 64-bit loads.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"

namespace wcq {

struct alignas(16) Pair128 {
  std::uint64_t lo;
  std::uint64_t hi;

  friend bool operator==(const Pair128& a, const Pair128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

// Storage for a CAS2-able pair. Each word is separately atomic so fast paths
// can F&A / load one word while slow paths CAS2 the pair (Fig 7: "use only
// .cnt for fast paths").
struct alignas(16) AtomicPair128 {
  std::atomic<std::uint64_t> lo;
  std::atomic<std::uint64_t> hi;

  // Two individually-atomic loads; the combined value may be torn (see file
  // header for why that is safe everywhere this is used).
  Pair128 load_torn(std::memory_order order = std::memory_order_acquire) const {
    Pair128 r;
    r.lo = lo.load(order);
    r.hi = hi.load(order);
    return r;
  }
};

static_assert(sizeof(AtomicPair128) == 16);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

// 16-byte strong CAS. On success returns true; on failure updates `expected`
// with the observed value (like std::atomic::compare_exchange). Full barrier
// semantics (lock-prefixed on x86; __ATOMIC_SEQ_CST on the fallback).
inline bool dwcas(AtomicPair128& target, Pair128& expected,
                  const Pair128& desired) {
#if defined(__x86_64__) && !defined(WCQ_NO_INLINE_CAS2)
  bool ok;
  asm volatile("lock cmpxchg16b %1"
               : "=@ccz"(ok), "+m"(target), "+a"(expected.lo),
                 "+d"(expected.hi)
               : "b"(desired.lo), "c"(desired.hi)
               : "memory");
  return ok;
#else
  return __atomic_compare_exchange(
      reinterpret_cast<Pair128*>(&target), &expected,
      const_cast<Pair128*>(&desired), /*weak=*/false, __ATOMIC_SEQ_CST,
      __ATOMIC_SEQ_CST);
#endif
}

// Truly-atomic 16-byte load built from CAS2 (writes the current value back to
// itself). Only used by tests/assertions; algorithm code uses load_torn().
inline Pair128 dwload_atomic(AtomicPair128& target) {
  Pair128 expected = target.load_torn(std::memory_order_relaxed);
  while (!dwcas(target, expected, expected)) {
  }
  return expected;
}

}  // namespace wcq
