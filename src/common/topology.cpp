#include "common/topology.hpp"

#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace wcq {

namespace fs = std::filesystem;

namespace {

thread_local unsigned t_node_override = Topology::kUnsetNode;

// Linux cpulist: "0-3,8,10-11". Returns false on any malformed token; an
// empty list parses to an empty vector (valid: a memory-only NUMA node has
// an empty cpulist).
bool parse_cpulist(const std::string& s, std::vector<unsigned>& out) {
  std::size_t pos = 0;
  while (pos < s.size()) {
    while (pos < s.size() && (s[pos] == ',' || s[pos] == ' ')) ++pos;
    if (pos >= s.size() || s[pos] == '\n') break;
    char* end = nullptr;
    const unsigned long lo = std::strtoul(s.c_str() + pos, &end, 10);
    if (end == s.c_str() + pos) return false;
    unsigned long hi = lo;
    pos = static_cast<std::size_t>(end - s.c_str());
    if (pos < s.size() && s[pos] == '-') {
      ++pos;
      hi = std::strtoul(s.c_str() + pos, &end, 10);
      if (end == s.c_str() + pos || hi < lo) return false;
      pos = static_cast<std::size_t>(end - s.c_str());
    }
    for (unsigned long c = lo; c <= hi; ++c) {
      out.push_back(static_cast<unsigned>(c));
    }
  }
  return true;
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream f(p);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

// Numeric suffix of a "nodeN"/"cpuN" directory name; nullopt otherwise.
std::optional<unsigned> dir_index(const std::string& name,
                                  const char* prefix) {
  const std::size_t plen = std::strlen(prefix);
  if (name.size() <= plen || name.compare(0, plen, prefix) != 0) {
    return std::nullopt;
  }
  for (std::size_t i = plen; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
  }
  return static_cast<unsigned>(std::strtoul(name.c_str() + plen, nullptr, 10));
}

unsigned online_cpus() {
  const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<unsigned>(n) : 1u;
}

}  // namespace

Topology Topology::flat(unsigned cpus) {
  Topology t;
  Node n;
  n.id = 0;
  for (unsigned c = 0; c < (cpus == 0 ? 1u : cpus); ++c) {
    n.cpus.push_back(c);
  }
  t.nodes_.push_back(std::move(n));
  t.finalize();
  return t;
}

std::optional<Topology> Topology::from_spec(const std::string& spec) {
  Topology t;
  t.simulated_ = true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string tok =
        spec.substr(pos, semi == std::string::npos ? semi : semi - pos);
    std::vector<unsigned> cpus;
    if (!parse_cpulist(tok, cpus) || cpus.empty()) return std::nullopt;
    Node n;
    n.id = static_cast<unsigned>(t.nodes_.size());
    n.cpus = std::move(cpus);
    t.nodes_.push_back(std::move(n));
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  if (t.nodes_.empty()) return std::nullopt;
  t.finalize();
  return t;
}

std::optional<Topology> Topology::from_sysfs(const std::string& root,
                                             bool simulated) {
  std::error_code ec;
  Topology t;
  t.simulated_ = simulated;

  // NUMA layer: node/node*/cpulist. Memory-only nodes (empty cpulist) are
  // skipped — placement here is about CPUs, and a node no thread can run on
  // would only produce unreachable shard groups.
  struct RawNode {
    unsigned id;
    std::vector<unsigned> cpus;
  };
  std::vector<RawNode> raw;
  const fs::path node_dir = fs::path(root) / "node";
  if (fs::is_directory(node_dir, ec)) {
    for (const auto& e : fs::directory_iterator(node_dir, ec)) {
      const auto idx = dir_index(e.path().filename().string(), "node");
      if (!idx) continue;
      std::string list;
      if (!read_file(e.path() / "cpulist", list)) continue;
      std::vector<unsigned> cpus;
      if (!parse_cpulist(list, cpus) || cpus.empty()) continue;
      std::sort(cpus.begin(), cpus.end());
      raw.push_back({*idx, std::move(cpus)});
    }
  }
  std::sort(raw.begin(), raw.end(),
            [](const RawNode& a, const RawNode& b) { return a.id < b.id; });

  if (raw.empty()) {
    // No NUMA information: fall back to one node over whatever cpu/cpu*
    // directories exist (fixtures) or the online count (live machine).
    std::vector<unsigned> cpus;
    const fs::path cpu_dir = fs::path(root) / "cpu";
    if (fs::is_directory(cpu_dir, ec)) {
      for (const auto& e : fs::directory_iterator(cpu_dir, ec)) {
        if (const auto idx = dir_index(e.path().filename().string(), "cpu")) {
          cpus.push_back(*idx);
        }
      }
      std::sort(cpus.begin(), cpus.end());
    }
    if (cpus.empty()) {
      if (simulated) return std::nullopt;  // fixture with nothing to parse
      for (unsigned c = 0; c < online_cpus(); ++c) cpus.push_back(c);
    }
    Node n;
    n.id = 0;
    n.cpus = std::move(cpus);
    t.nodes_.push_back(std::move(n));
  } else {
    // Dense re-index (sysfs node ids may be sparse); the distance matrix is
    // remapped with the same table below.
    for (const auto& rn : raw) {
      Node n;
      n.id = static_cast<unsigned>(t.nodes_.size());
      n.cpus = rn.cpus;
      t.nodes_.push_back(std::move(n));
    }
    // Distances: node/node<raw id>/distance is a space-separated row of the
    // full matrix indexed by raw node id. Keep only the columns of nodes we
    // kept, in dense order.
    t.dist_.resize(t.nodes_.size());
    bool have_all = true;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::string row;
      if (!read_file(node_dir / ("node" + std::to_string(raw[i].id)) /
                         "distance",
                     row)) {
        have_all = false;
        break;
      }
      std::vector<unsigned> cols;
      std::istringstream ss(row);
      unsigned v = 0;
      while (ss >> v) cols.push_back(v);
      for (const auto& rn : raw) {
        if (rn.id < cols.size()) {
          t.dist_[i].push_back(cols[rn.id]);
        } else {
          have_all = false;
        }
      }
      if (!have_all) break;
    }
    if (!have_all) t.dist_.clear();  // partial matrix: use ring order
  }

  // SMT layer: cpu/cpu*/topology/core_id, disambiguated by package id so two
  // sockets' "core 0" stay distinct cores.
  const fs::path cpu_dir = fs::path(root) / "cpu";
  if (fs::is_directory(cpu_dir, ec)) {
    std::unordered_map<std::uint64_t, unsigned> core_key_to_id;
    struct CoreInfo {
      unsigned cpu, core, pkg;
    };
    std::vector<CoreInfo> infos;
    for (const auto& e : fs::directory_iterator(cpu_dir, ec)) {
      const auto idx = dir_index(e.path().filename().string(), "cpu");
      if (!idx) continue;
      std::string core_s, pkg_s;
      if (!read_file(e.path() / "topology" / "core_id", core_s)) continue;
      const unsigned core =
          static_cast<unsigned>(std::strtoul(core_s.c_str(), nullptr, 10));
      unsigned pkg = 0;
      if (read_file(e.path() / "topology" / "physical_package_id", pkg_s)) {
        pkg = static_cast<unsigned>(std::strtoul(pkg_s.c_str(), nullptr, 10));
      }
      infos.push_back({*idx, core, pkg});
    }
    std::sort(infos.begin(), infos.end(),
              [](const CoreInfo& a, const CoreInfo& b) { return a.cpu < b.cpu; });
    unsigned max_cpu = 0;
    for (const auto& ci : infos) max_cpu = std::max(max_cpu, ci.cpu);
    t.cpu_core_.assign(max_cpu + 1, kUnsetNode);
    for (const auto& ci : infos) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(ci.pkg) << 32) | ci.core;
      const auto [it, fresh] =
          core_key_to_id.emplace(key, static_cast<unsigned>(core_key_to_id.size()));
      (void)fresh;
      t.cpu_core_[ci.cpu] = it->second;
    }
  }

  t.finalize();
  return t;
}

Topology Topology::detect() {
  if (auto t = from_sysfs("/sys/devices/system", /*simulated=*/false)) {
    return *std::move(t);
  }
  return flat(online_cpus());
}

const Topology& Topology::instance() {
  static const Topology t = [] {
    const char* env = std::getenv("WCQ_TOPOLOGY");
    if (env != nullptr && *env != '\0') {
      const std::string s(env);
      std::optional<Topology> parsed;
      if (s.rfind("sysfs:", 0) == 0) {
        parsed = from_sysfs(s.substr(6), /*simulated=*/true);
      } else {
        parsed = from_spec(s);
      }
      if (parsed) return *std::move(parsed);
      std::fprintf(stderr,
                   "wcq: ignoring malformed WCQ_TOPOLOGY=\"%s\" "
                   "(want \"0-1;2-3\" or \"sysfs:/path\")\n",
                   env);
    }
    return detect();
  }();
  return t;
}

void Topology::finalize() {
  // cpu -> node map (dense array over the max cpu id; gaps map to node 0 via
  // node_of_cpu's bounds check).
  unsigned max_cpu = 0;
  cpu_total_ = 0;
  for (const auto& n : nodes_) {
    for (unsigned c : n.cpus) max_cpu = std::max(max_cpu, c);
    cpu_total_ += static_cast<unsigned>(n.cpus.size());
  }
  cpu_node_.assign(max_cpu + 1, kUnsetNode);
  for (const auto& n : nodes_) {
    for (unsigned c : n.cpus) cpu_node_[c] = n.id;
  }

  // Round-robin order: every cpu in id order (the legacy pin_thread walk).
  rr_order_.clear();
  for (const auto& n : nodes_) {
    rr_order_.insert(rr_order_.end(), n.cpus.begin(), n.cpus.end());
  }
  std::sort(rr_order_.begin(), rr_order_.end());

  // Compact order: node by node; within a node, one cpu per physical core
  // first, then the second SMT siblings, and so on — threads spread over
  // real cores before doubling up on hyperthreads.
  compact_order_.clear();
  for (const auto& n : nodes_) {
    std::unordered_map<unsigned, unsigned> seen;  // core -> siblings placed
    std::vector<std::pair<unsigned, unsigned>> keyed;  // (sibling rank, cpu)
    for (unsigned c : n.cpus) {
      const unsigned core = core_of_cpu(c);
      keyed.emplace_back(seen[core]++, c);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (const auto& [rank, cpu] : keyed) {
      (void)rank;
      compact_order_.push_back(cpu);
    }
  }

  // Remote order per node: by the distance matrix when present (ties and
  // missing matrices fall back to ring order node+1, node+2, ...).
  const unsigned m = node_count();
  remote_order_.assign(m, {});
  for (unsigned a = 0; a < m; ++a) {
    std::vector<unsigned> others;
    for (unsigned d = 1; d < m; ++d) others.push_back((a + d) % m);
    if (dist_.size() == m) {
      std::stable_sort(others.begin(), others.end(),
                       [&](unsigned x, unsigned y) {
                         return dist_[a][x] < dist_[a][y];
                       });
    }
    remote_order_[a] = std::move(others);
  }
}

unsigned Topology::node_of_cpu(unsigned cpu) const {
  if (cpu < cpu_node_.size() && cpu_node_[cpu] != kUnsetNode) {
    return cpu_node_[cpu];
  }
  return 0;
}

unsigned Topology::core_of_cpu(unsigned cpu) const {
  if (cpu < cpu_core_.size() && cpu_core_[cpu] != kUnsetNode) {
    return cpu_core_[cpu];
  }
  return cpu;  // no SMT information: every cpu is its own core
}

unsigned Topology::cpu_for(const PinSpec& spec, unsigned index) const {
  switch (spec.policy) {
    case PinPolicy::kRoundRobin:
      return rr_order_[index % rr_order_.size()];
    case PinPolicy::kCompact:
      return compact_order_[index % compact_order_.size()];
    case PinPolicy::kScatter: {
      const unsigned m = node_count();
      const Node& n = nodes_[index % m];
      return n.cpus[(index / m) % n.cpus.size()];
    }
    case PinPolicy::kNode: {
      const Node& n = nodes_[spec.node % node_count()];
      return n.cpus[index % n.cpus.size()];
    }
  }
  return rr_order_[index % rr_order_.size()];
}

unsigned Topology::current_node() const {
  const unsigned o = t_node_override;
  if (o != kUnsetNode) return o % node_count();
  const int cpu = ::sched_getcpu();
  if (cpu >= 0) return node_of_cpu(static_cast<unsigned>(cpu));
  return 0;
}

std::optional<Topology::PinSpec> Topology::parse_pin_spec(
    const std::string& s) {
  if (s.empty() || s == "rr" || s == "round-robin") {
    return PinSpec{PinPolicy::kRoundRobin, 0};
  }
  if (s == "compact") return PinSpec{PinPolicy::kCompact, 0};
  if (s == "scatter") return PinSpec{PinPolicy::kScatter, 0};
  if (s.rfind("node:", 0) == 0) {
    char* end = nullptr;
    const unsigned long k = std::strtoul(s.c_str() + 5, &end, 10);
    if (end == s.c_str() + 5 || *end != '\0') return std::nullopt;
    return PinSpec{PinPolicy::kNode, static_cast<unsigned>(k)};
  }
  return std::nullopt;
}

const char* Topology::policy_name(PinPolicy p) {
  switch (p) {
    case PinPolicy::kRoundRobin:
      return "rr";
    case PinPolicy::kCompact:
      return "compact";
    case PinPolicy::kScatter:
      return "scatter";
    case PinPolicy::kNode:
      return "node";
  }
  return "?";
}

void Topology::set_thread_node(unsigned node) { t_node_override = node; }

unsigned Topology::thread_node_override() { return t_node_override; }

}  // namespace wcq
