#include "common/cpu.hpp"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <cstdio>

namespace wcq {

namespace {

void set_affinity(unsigned cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

}  // namespace

unsigned cpu_count() {
  const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<unsigned>(n) : 1u;
}

void pin_thread(unsigned index) { set_affinity(index % cpu_count()); }

void pin_thread(unsigned index, const Topology::PinSpec& spec,
                const Topology& topo) {
  const unsigned cpu = topo.cpu_for(spec, index);
  Topology::set_thread_node(topo.node_of_cpu(cpu));
  if (!topo.simulated()) set_affinity(cpu);
}

std::uint64_t current_rss_bytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0, resident = 0;
  const int rc = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (rc != 2) return 0;
  return static_cast<std::uint64_t>(resident) *
         static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
}

}  // namespace wcq
