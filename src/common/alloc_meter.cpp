#include "common/alloc_meter.hpp"

#include <cstdlib>
#include <new>

namespace wcq::alloc_meter {

namespace {

struct Meter {
  Shard shards[kShards];
  alignas(kCacheLine) std::atomic<std::int64_t> peak{0};
};

Meter g_meter;

unsigned shard_index() {
  // Cheap thread-id hash; collisions only share a counter cache line.
  static std::atomic<unsigned> next{0};
  thread_local unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

void bump_peak() {
  const std::int64_t live = live_bytes();
  std::int64_t prev = g_meter.peak.load(std::memory_order_relaxed);
  while (live > prev && !g_meter.peak.compare_exchange_weak(
                            prev, live, std::memory_order_relaxed)) {
  }
}

}  // namespace

Shard* shards() { return g_meter.shards; }

void* allocate(std::size_t bytes) {
  void* p = std::malloc(bytes);
  if (p == nullptr) throw std::bad_alloc{};
  Shard& s = g_meter.shards[shard_index()];
  s.live.fetch_add(static_cast<std::int64_t>(bytes),
                   std::memory_order_relaxed);
  s.allocs.fetch_add(1, std::memory_order_relaxed);
  bump_peak();
  return p;
}

void* allocate_aligned(std::size_t bytes, std::size_t alignment) {
  if (alignment < alignof(std::max_align_t)) {
    alignment = alignof(std::max_align_t);
  }
  void* p = nullptr;
  if (posix_memalign(&p, alignment, bytes) != 0) throw std::bad_alloc{};
  Shard& s = g_meter.shards[shard_index()];
  s.live.fetch_add(static_cast<std::int64_t>(bytes),
                   std::memory_order_relaxed);
  s.allocs.fetch_add(1, std::memory_order_relaxed);
  bump_peak();
  return p;
}

void deallocate_aligned(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  Shard& s = g_meter.shards[shard_index()];
  s.live.fetch_sub(static_cast<std::int64_t>(bytes),
                   std::memory_order_relaxed);
  std::free(p);
}

void deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  Shard& s = g_meter.shards[shard_index()];
  s.live.fetch_sub(static_cast<std::int64_t>(bytes),
                   std::memory_order_relaxed);
  std::free(p);
}

std::int64_t live_bytes() {
  std::int64_t sum = 0;
  for (unsigned i = 0; i < kShards; ++i) {
    sum += g_meter.shards[i].live.load(std::memory_order_relaxed);
  }
  return sum;
}

std::int64_t total_allocations() {
  std::int64_t sum = 0;
  for (unsigned i = 0; i < kShards; ++i) {
    sum += g_meter.shards[i].allocs.load(std::memory_order_relaxed);
  }
  return sum;
}

std::int64_t peak_bytes() {
  return g_meter.peak.load(std::memory_order_relaxed);
}

void reset_peak() {
  g_meter.peak.store(live_bytes(), std::memory_order_relaxed);
}

}  // namespace wcq::alloc_meter
