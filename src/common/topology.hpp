// Machine topology: NUMA nodes, their CPUs, SMT siblings and interconnect
// distances, behind one immutable `Topology` object (DESIGN.md §12).
//
// The paper measures on one socket ("x86-64's throughput peaks for 18
// threads (all 18 threads can fit just one physical CPU)"); past that point
// the cost model changes — a cache line bouncing across the interconnect is
// several times a within-socket transfer — so every scaling layer here
// (shard placement, segment-pool partitioning, the steal sweep, pinning
// policies) keys off this object instead of treating the machine as flat.
//
// Sources, in precedence order:
//   1. WCQ_TOPOLOGY=<spec>       — simulated topology, e.g. "0-1;2-3" (two
//      nodes of two CPUs). Deterministic: CI and 1-core hosts exercise
//      multi-node shapes without the hardware.
//   2. WCQ_TOPOLOGY=sysfs:<dir>  — parse a sysfs-like tree rooted at <dir>
//      (committed fixture trees under tests/fixtures/sysfs drive the parser
//      tests through exactly the production code path).
//   3. /sys/devices/system       — the live machine.
//   4. Flat fallback             — one node holding every online CPU (no
//      /sys, containers, non-Linux). All placement degenerates to the
//      pre-topology behavior.
//
// A *simulated* topology (1, 2) never issues affinity syscalls — its CPU ids
// need not exist on the live machine. Instead, pinning under a simulated
// topology records the target node in a thread-local override, which
// current_node() consults first; that is what makes node placement
// deterministic in tests and CI. On a real topology the override is set too
// (so current_node() is one TLS read, not a getcpu syscall, on pinned
// threads), but unpinned threads still resolve correctly through
// sched_getcpu().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace wcq {

class Topology {
 public:
  struct Node {
    unsigned id = 0;             // dense index, 0..node_count()-1
    std::vector<unsigned> cpus;  // CPU ids belonging to this node
  };

  // Pinning policies (README "Topology" section):
  //   kRoundRobin — cpu = index % cpu_count() over all CPUs in id order (the
  //                 pre-topology behavior, and still the default).
  //   kCompact    — fill node 0 before node 1, and within a node fill one
  //                 hyperthread per physical core before doubling up (the
  //                 paper's "all 18 threads fit one physical CPU" shape).
  //   kScatter    — round-robin across nodes first: thread i lands on node
  //                 i % node_count() (maximal interconnect exposure).
  //   kNode       — confine every thread to one node's CPUs (`node:<k>`);
  //                 the shape behind the remote_steal == 0 CI gate.
  enum class PinPolicy { kRoundRobin, kCompact, kScatter, kNode };
  struct PinSpec {
    PinPolicy policy = PinPolicy::kRoundRobin;
    unsigned node = 0;  // kNode only
  };

  // Sentinel for "no thread-node override in effect".
  static constexpr unsigned kUnsetNode = ~0u;

  // The process-wide topology: WCQ_TOPOLOGY override or live-machine
  // detection, resolved once on first use and immutable afterwards.
  static const Topology& instance();

  // Constructors for tests and composed layers; all are pure (no env).
  static Topology flat(unsigned cpus);
  // "0-3;4-7" — semicolon-separated Linux cpulists, one node per list.
  // Returns nullopt on a malformed spec (empty node, unparsable range).
  static std::optional<Topology> from_spec(const std::string& spec);
  // Parse a /sys/devices/system-shaped tree (node/node*/cpulist,
  // cpu/cpu*/topology/{core_id,physical_package_id}, node/node*/distance).
  // `simulated` marks the result as fixture-driven (no affinity syscalls).
  // Returns nullopt when the tree has no node/ nor cpu/ content.
  static std::optional<Topology> from_sysfs(const std::string& root,
                                            bool simulated);
  // Live-machine detection with the flat fallback; never fails.
  static Topology detect();

  unsigned node_count() const {
    return static_cast<unsigned>(nodes_.size());
  }
  unsigned cpu_count() const { return cpu_total_; }
  const Node& node(unsigned i) const { return nodes_[i]; }
  // Node owning `cpu`; 0 when the CPU is unknown to this topology (a thread
  // migrated onto a hotplugged CPU degrades to node-0 placement, it never
  // faults).
  unsigned node_of_cpu(unsigned cpu) const;
  // Physical core id of `cpu` (== cpu when no SMT information was found).
  unsigned core_of_cpu(unsigned cpu) const;
  // True when this topology came from a spec or fixture rather than the
  // live machine: CPU ids are nominal and affinity syscalls are skipped.
  bool simulated() const { return simulated_; }

  // Remote nodes of `node`, nearest first (by the sysfs distance matrix when
  // present, ring order otherwise). Size node_count()-1; the hierarchical
  // steal sweep (ShardedQueue) crosses the interconnect in this order.
  const std::vector<unsigned>& remote_order(unsigned node) const {
    return remote_order_[node];
  }

  // The CPU thread `index` maps to under `spec` (deterministic, total: every
  // index maps somewhere, wrapping within the policy's CPU set).
  unsigned cpu_for(const PinSpec& spec, unsigned index) const;

  // The node thread `index` maps to under `spec` (node_of_cpu ∘ cpu_for; the
  // bench layer attributes per-node throughput with this).
  unsigned node_for(const PinSpec& spec, unsigned index) const {
    return node_of_cpu(cpu_for(spec, index));
  }

  // The calling thread's node in THIS topology: the thread-local override
  // when set (clamped into range), else the current CPU's node, else 0.
  unsigned current_node() const;

  // "rr" | "compact" | "scatter" | "node:<k>" → PinSpec; nullopt otherwise.
  static std::optional<PinSpec> parse_pin_spec(const std::string& s);
  static const char* policy_name(PinPolicy p);

  // Thread-local node override (kUnsetNode clears). Set by policy pinning —
  // always under a simulated topology, as a syscall-saving cache under a
  // real one — and by tests that stage threads on nominal nodes.
  static void set_thread_node(unsigned node);
  static unsigned thread_node_override();

 private:
  void finalize();  // build cpu->node map, compact order, remote orders

  std::vector<Node> nodes_;
  std::vector<unsigned> cpu_node_;            // cpu id -> node index
  std::vector<unsigned> cpu_core_;            // cpu id -> core id
  std::vector<std::vector<unsigned>> dist_;   // node x node distances
  std::vector<std::vector<unsigned>> remote_order_;
  std::vector<unsigned> rr_order_;            // all cpus, id order
  std::vector<unsigned> compact_order_;       // nodes in order, siblings last
  unsigned cpu_total_ = 0;
  bool simulated_ = false;
};

// RAII thread-node override for tests: stages the calling thread on a
// nominal node for the scope, restoring the previous override on exit.
class ScopedThreadNode {
 public:
  explicit ScopedThreadNode(unsigned node)
      : prev_(Topology::thread_node_override()) {
    Topology::set_thread_node(node);
  }
  ~ScopedThreadNode() { Topology::set_thread_node(prev_); }
  ScopedThreadNode(const ScopedThreadNode&) = delete;
  ScopedThreadNode& operator=(const ScopedThreadNode&) = delete;

 private:
  unsigned prev_;
};

}  // namespace wcq
