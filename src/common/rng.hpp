// xoshiro256** — fast, high-quality PRNG for workload generation.
//
// The paper's benchmark chooses operations randomly (Fig 10/11c: "Enqueue for
// one half of the time, and Dequeue for the other half") and inserts "tiny
// random delays" in the memory test. std::mt19937_64 is too slow to sit
// inside a 10M-op/s measurement loop without perturbing it; xoshiro costs a
// few cycles per draw.
#pragma once

#include <cstdint>

namespace wcq {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound) without modulo bias worth caring about here.
  std::uint64_t bounded(std::uint64_t bound) { return next() % bound; }

  // One coin flip per call; used for the 50%/50% workloads.
  bool coin() { return (next() & 1) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace wcq
