// Deterministic allocation metering for the Fig 10 memory-usage experiment.
//
// The paper measures "memory consumed" per algorithm under a 50/50 random
// workload with tiny delays: LCRQ's closed rings and YMC's segments pile up,
// while SCQ/wCQ stay at their statically-allocated ring size. RSS is noisy
// (allocator caching, page granularity), so every queue in this library
// routes its dynamic allocations through this meter; the benchmark reports
// live bytes and peak bytes exactly, plus RSS for context.
//
// Counters are per-cache-line sharded to keep the meter from becoming the
// bottleneck it is trying to measure.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/align.hpp"

namespace wcq::alloc_meter {

inline constexpr unsigned kShards = 64;

struct Shard {
  alignas(kCacheLine) std::atomic<std::int64_t> live{0};
  std::atomic<std::int64_t> allocs{0};
};

Shard* shards();

// Account `bytes` to the calling thread's shard and allocate. The aligned
// variants (also declared in common/align.hpp for AlignedArray) feed the
// same counters: ring-entry arrays, per-thread record arrays and payload
// storage are all AlignedArray-backed, so every byte a queue — or an
// UnboundedQueue segment — owns is metered, not just its top-level node.
void* allocate(std::size_t bytes);
void deallocate(void* p, std::size_t bytes);
void* allocate_aligned(std::size_t bytes, std::size_t alignment);
void deallocate_aligned(void* p, std::size_t bytes);

// Aggregate counters (live can transiently undershoot peak accounting; peak
// is tracked as max-of-live observed at allocation time).
//
// total_allocations() counts every metered allocation event (plain and
// aligned) and never decreases; a steady-state phase is allocation-free
// exactly when this counter stops moving — the property the segment pool
// buys for UnboundedQueue and bench_fig10_memory now reports per run.
std::int64_t live_bytes();
std::int64_t total_allocations();
std::int64_t peak_bytes();
void reset_peak();

// STL-compatible allocator that routes through the meter. Used by queue
// internals so that *all* queue memory shows up in Fig 10.
template <typename T>
struct MeteredAllocator {
  using value_type = T;
  MeteredAllocator() = default;
  template <typename U>
  MeteredAllocator(const MeteredAllocator<U>&) {}  // NOLINT(implicit)

  T* allocate(std::size_t n) {
    if constexpr (alignof(T) > alignof(std::max_align_t)) {
      return static_cast<T*>(
          alloc_meter::allocate_aligned(n * sizeof(T), alignof(T)));
    } else {
      return static_cast<T*>(alloc_meter::allocate(n * sizeof(T)));
    }
  }
  void deallocate(T* p, std::size_t n) {
    if constexpr (alignof(T) > alignof(std::max_align_t)) {
      alloc_meter::deallocate_aligned(p, n * sizeof(T));
    } else {
      alloc_meter::deallocate(p, n * sizeof(T));
    }
  }
  template <typename U>
  bool operator==(const MeteredAllocator<U>&) const {
    return true;
  }
};

// Typed convenience helpers for queue nodes/segments. Over-aligned types
// (cache-line-aligned Impl structs and the like) must go through the aligned
// path: plain malloc only guarantees max_align_t, and constructing an
// alignas(64) object on a 16-byte boundary is UB (UBSan: "constructor call
// on misaligned address").
template <typename T, typename... Args>
T* create(Args&&... args) {
  void* p;
  if constexpr (alignof(T) > alignof(std::max_align_t)) {
    p = allocate_aligned(sizeof(T), alignof(T));
  } else {
    p = allocate(sizeof(T));
  }
  return new (p) T(static_cast<Args&&>(args)...);
}

template <typename T>
void destroy(T* p) {
  if (p != nullptr) {
    p->~T();
    if constexpr (alignof(T) > alignof(std::max_align_t)) {
      deallocate_aligned(p, sizeof(T));
    } else {
      deallocate(p, sizeof(T));
    }
  }
}

}  // namespace wcq::alloc_meter
