// Deterministic allocation metering for the Fig 10 memory-usage experiment.
//
// The paper measures "memory consumed" per algorithm under a 50/50 random
// workload with tiny delays: LCRQ's closed rings and YMC's segments pile up,
// while SCQ/wCQ stay at their statically-allocated ring size. RSS is noisy
// (allocator caching, page granularity), so every queue in this library
// routes its dynamic allocations through this meter; the benchmark reports
// live bytes and peak bytes exactly, plus RSS for context.
//
// Counters are per-cache-line sharded to keep the meter from becoming the
// bottleneck it is trying to measure.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/align.hpp"

namespace wcq::alloc_meter {

inline constexpr unsigned kShards = 64;

struct Shard {
  alignas(kCacheLine) std::atomic<std::int64_t> live{0};
  std::atomic<std::int64_t> allocs{0};
};

Shard* shards();

// Account `bytes` to the calling thread's shard and allocate.
void* allocate(std::size_t bytes);
void deallocate(void* p, std::size_t bytes);

// Aggregate counters (live can transiently undershoot peak accounting; peak
// is tracked as max-of-live observed at allocation time).
std::int64_t live_bytes();
std::int64_t total_allocations();
std::int64_t peak_bytes();
void reset_peak();

// STL-compatible allocator that routes through the meter. Used by queue
// internals so that *all* queue memory shows up in Fig 10.
template <typename T>
struct MeteredAllocator {
  using value_type = T;
  MeteredAllocator() = default;
  template <typename U>
  MeteredAllocator(const MeteredAllocator<U>&) {}  // NOLINT(implicit)

  T* allocate(std::size_t n) {
    return static_cast<T*>(alloc_meter::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    alloc_meter::deallocate(p, n * sizeof(T));
  }
  template <typename U>
  bool operator==(const MeteredAllocator<U>&) const {
    return true;
  }
};

// Typed convenience helpers for queue nodes/segments.
template <typename T, typename... Args>
T* create(Args&&... args) {
  void* p = allocate(sizeof(T));
  return new (p) T(static_cast<Args&&>(args)...);
}

template <typename T>
void destroy(T* p) {
  if (p != nullptr) {
    p->~T();
    deallocate(p, sizeof(T));
  }
}

}  // namespace wcq::alloc_meter
