// Lock-free pooled reclamation for ring segments (DESIGN.md §8).
//
// UnboundedQueue retires one segment per 2^order dequeues and allocates one
// per 2^order enqueues on the growth path — a malloc/free pair whose cost
// dominates bounded-queue overheads once the rings themselves are fast
// (Aksenov et al., "Memory-Optimal Non-Blocking Queues"). This pool closes
// that loop: a retired segment, once its hazard-pointer grace period has
// passed, is reset and parked here instead of freed, and the next growth
// allocation takes it back. Steady-state operation becomes allocation-free.
//
// Shape: a fixed array of slots, each holding either null or one free node.
//   try_put — claim an empty slot with CAS(nullptr -> node)
//   try_get — claim a parked node with CAS(node -> nullptr)
// Both are single-CAS-per-slot bounded scans: lock-free, no node-internal
// free-list links, and — unlike a Treiber stack — no dereference of a node
// the caller does not yet own, so there is no ABA window and no dependence
// on the nodes' lifetimes (a popped node may be reused and even freed while
// another thread still scans; slots only ever hold whole pointers).
//
// Memory bound: the pool never holds more than cap() nodes, where cap is
// min(slot-array size, kPerThread * (registered threads + 1)). The cap check
// against the approximate size counter is advisory — concurrent puts can
// overshoot by at most one node per putting thread — so total parked memory
// stays O(threads * segment size), preserving the paper's bounded-memory
// property (DESIGN.md §8). Rejected puts are the caller's to free.
//
// Publication contract: try_put's successful CAS is a release store and
// try_get's claim is an acquire read of the same slot, so everything the
// putting thread wrote to the node (its reset) happens-before any access by
// the getting thread.
#pragma once

#include <atomic>
#include <cstddef>

#include "analysis/sched_point.hpp"
#include "common/align.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {

template <typename Node>
class SegmentPool {
 public:
  // Upper bound on parked nodes per registered thread (the dynamic cap).
  static constexpr std::size_t kPerThread = 2;

  // `slots`: hard ceiling on parked nodes; the slot array is allocated once,
  // through the alloc meter (it is queue-owned memory and belongs in Fig 10).
  explicit SegmentPool(std::size_t slots = 64)
      : slots_(slots, kCacheLine) {}

  SegmentPool(const SegmentPool&) = delete;
  SegmentPool& operator=(const SegmentPool&) = delete;

  // Take a parked node, or nullptr when the pool is empty (caller allocates).
  Node* try_get() {
    if (size_.load(std::memory_order_relaxed) == 0) return nullptr;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Node* n = slots_[i].value.load(std::memory_order_relaxed);
      WCQ_SCHED_POINT(kPoolOp);
      if (n != nullptr &&
          slots_[i].value.compare_exchange_strong(
              n, nullptr, std::memory_order_acquire,
              std::memory_order_relaxed)) {
        size_.fetch_sub(1, std::memory_order_relaxed);
        return n;
      }
    }
    return nullptr;
  }

  // Park `n`; false when the pool is at its cap (caller frees the node).
  // On success the pool owns the node until a try_get claims it.
  bool try_put(Node* n) {
    if (size_.load(std::memory_order_relaxed) >= cap()) return false;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Node* expected = nullptr;
      WCQ_SCHED_POINT(kPoolOp);
      if (slots_[i].value.load(std::memory_order_relaxed) == nullptr &&
          slots_[i].value.compare_exchange_strong(
              expected, n, std::memory_order_release,
              std::memory_order_relaxed)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  // Parked-node cap: scales with the registered-thread high water so idle
  // retention is O(threads), bounded by the slot array.
  std::size_t cap() const {
    const std::size_t dynamic =
        kPerThread * (static_cast<std::size_t>(ThreadRegistry::high_water()) + 1);
    return dynamic < slots_.size() ? dynamic : slots_.size();
  }

  // Approximate count of parked nodes (exact at quiescence).
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  // Empty the pool through `release` (e.g. Node::destroy). Quiescent-only:
  // the owning queue's destructor calls this after draining reclamation.
  template <typename F>
  void drain(F&& release) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Node* n = slots_[i].value.exchange(nullptr, std::memory_order_acquire);
      if (n != nullptr) {
        size_.fetch_sub(1, std::memory_order_relaxed);
        release(n);
      }
    }
  }

 private:
  AlignedArray<CacheAligned<std::atomic<Node*>>> slots_;
  alignas(kCacheLine) std::atomic<std::size_t> size_{0};
};

}  // namespace wcq
