// Lock-free pooled reclamation for ring segments (DESIGN.md §8, §12).
//
// UnboundedQueue retires one segment per 2^order dequeues and allocates one
// per 2^order enqueues on the growth path — a malloc/free pair whose cost
// dominates bounded-queue overheads once the rings themselves are fast
// (Aksenov et al., "Memory-Optimal Non-Blocking Queues"). This pool closes
// that loop: a retired segment, once its hazard-pointer grace period has
// passed, is reset and parked here instead of freed, and the next growth
// allocation takes it back. Steady-state operation becomes allocation-free.
//
// Shape: a fixed array of slots, each holding either null or one free node.
//   try_put — claim an empty slot with CAS(nullptr -> node)
//   try_get — claim a parked node with CAS(node -> nullptr)
// Both are single-CAS-per-slot bounded scans: lock-free, no node-internal
// free-list links, and — unlike a Treiber stack — no dereference of a node
// the caller does not yet own, so there is no ABA window and no dependence
// on the nodes' lifetimes (a popped node may be reused and even freed while
// another thread still scans; slots only ever hold whole pointers).
//
// NUMA partitioning (DESIGN.md §12): the slot array is split into
// `numa_nodes` contiguous partitions. The node-keyed overloads park and
// claim only within one partition, so a segment whose backing store was
// first-touched on node k is recycled to node-k threads and never silently
// migrates its pages across the interconnect through the free list. A full
// partition rejects the put even when another partition has room — the
// caller frees the segment, which is exactly the §8 overflow behavior; the
// memory bound is node-count-independent. The legacy node-less overloads
// scan the whole array (the single-partition shape is the pre-topology
// pool, byte for byte).
//
// Memory bound: the pool never holds more than cap() nodes, where cap is
// min(slot-array size, kPerThread * (registered threads + 1)). The cap check
// against the approximate size counter is advisory — concurrent puts can
// overshoot by at most one node per putting thread — so total parked memory
// stays O(threads * segment size), preserving the paper's bounded-memory
// property (DESIGN.md §8). Rejected puts are the caller's to free.
//
// Publication contract: try_put's successful CAS is a release store and
// try_get's claim is an acquire read of the same slot, so everything the
// putting thread wrote to the node (its reset) happens-before any access by
// the getting thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "analysis/sched_point.hpp"
#include "common/align.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {

template <typename Node>
class SegmentPool {
 public:
  // Upper bound on parked nodes per registered thread (the dynamic cap).
  static constexpr std::size_t kPerThread = 2;

  // `slots`: hard ceiling on parked nodes; the slot array is allocated once,
  // through the alloc meter (it is queue-owned memory and belongs in Fig 10).
  // `numa_nodes`: number of contiguous partitions (1 = the flat pool); a
  // partition may be empty when slots < numa_nodes, in which case that
  // node's puts are rejected (freed) and gets miss (allocate) — correct,
  // just uncached.
  explicit SegmentPool(std::size_t slots = 64, unsigned numa_nodes = 1)
      : slots_(slots, kCacheLine),
        part_of_(slots),
        psize_(numa_nodes == 0 ? 1 : numa_nodes, kCacheLine),
        parts_(numa_nodes == 0 ? 1 : numa_nodes) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      // Inverse of the [p*S/P, (p+1)*S/P) partition bounds.
      part_of_[i] = static_cast<unsigned>(i * parts_ / slots_.size());
    }
  }

  SegmentPool(const SegmentPool&) = delete;
  SegmentPool& operator=(const SegmentPool&) = delete;

  unsigned partitions() const { return parts_; }

  // Take a parked node from any partition, or nullptr when the pool is
  // empty (caller allocates).
  Node* try_get() { return get_range(0, slots_.size(), ~0u); }

  // Take a parked node from `node`'s partition only. A miss does NOT mean
  // the whole pool is empty — the caller allocates locally rather than
  // adopting a remote segment.
  Node* try_get(unsigned node) {
    const unsigned p = node < parts_ ? node : 0;
    if (psize_[p].value.load(std::memory_order_relaxed) == 0) return nullptr;
    return get_range(lo(p), hi(p), p);
  }

  // Park `n`; false when the pool is at its cap (caller frees the node).
  // On success the pool owns the node until a try_get claims it.
  bool try_put(Node* n) {
    if (size_.load(std::memory_order_relaxed) >= cap()) return false;
    return put_range(n, 0, slots_.size(), ~0u);
  }

  // Park `n` in `node`'s partition only; false when that partition (or the
  // global cap) is full — the caller frees, same as the flat overflow path.
  bool try_put(unsigned node, Node* n) {
    const unsigned p = node < parts_ ? node : 0;
    if (size_.load(std::memory_order_relaxed) >= cap()) return false;
    return put_range(n, lo(p), hi(p), p);
  }

  // Parked-node cap: scales with the registered-thread high water so idle
  // retention is O(threads), bounded by the slot array.
  std::size_t cap() const {
    const std::size_t dynamic =
        kPerThread * (static_cast<std::size_t>(ThreadRegistry::high_water()) + 1);
    return dynamic < slots_.size() ? dynamic : slots_.size();
  }

  // Approximate count of parked nodes (exact at quiescence).
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  // Approximate count parked in `node`'s partition (exact at quiescence).
  std::size_t size(unsigned node) const {
    const unsigned p = node < parts_ ? node : 0;
    return psize_[p].value.load(std::memory_order_relaxed);
  }

  // Empty the pool through `release` (e.g. Node::destroy). Quiescent-only:
  // the owning queue's destructor calls this after draining reclamation.
  template <typename F>
  void drain(F&& release) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Node* n = slots_[i].value.exchange(nullptr, std::memory_order_acquire);
      if (n != nullptr) {
        size_.fetch_sub(1, std::memory_order_relaxed);
        psize_[part_of_[i]].value.fetch_sub(1, std::memory_order_relaxed);
        release(n);
      }
    }
  }

 private:
  std::size_t lo(unsigned p) const { return p * slots_.size() / parts_; }
  std::size_t hi(unsigned p) const {
    return (p + 1) * slots_.size() / parts_;
  }

  // Bounded claim scan over [b, e); `p` == ~0u means "whichever partition
  // the slot belongs to" (the node-less whole-array paths).
  Node* get_range(std::size_t b, std::size_t e, unsigned p) {
    if (size_.load(std::memory_order_relaxed) == 0) return nullptr;
    for (std::size_t i = b; i < e; ++i) {
      Node* n = slots_[i].value.load(std::memory_order_relaxed);
      WCQ_SCHED_POINT(kPoolOp);
      if (n != nullptr &&
          slots_[i].value.compare_exchange_strong(
              n, nullptr, std::memory_order_acquire,
              std::memory_order_relaxed)) {
        size_.fetch_sub(1, std::memory_order_relaxed);
        const unsigned owner = p != ~0u ? p : part_of_[i];
        psize_[owner].value.fetch_sub(1, std::memory_order_relaxed);
        return n;
      }
    }
    return nullptr;
  }

  bool put_range(Node* n, std::size_t b, std::size_t e, unsigned p) {
    for (std::size_t i = b; i < e; ++i) {
      Node* expected = nullptr;
      WCQ_SCHED_POINT(kPoolOp);
      if (slots_[i].value.load(std::memory_order_relaxed) == nullptr &&
          slots_[i].value.compare_exchange_strong(
              expected, n, std::memory_order_release,
              std::memory_order_relaxed)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        const unsigned owner = p != ~0u ? p : part_of_[i];
        psize_[owner].value.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  AlignedArray<CacheAligned<std::atomic<Node*>>> slots_;
  std::vector<unsigned> part_of_;  // slot -> partition, immutable
  AlignedArray<CacheAligned<std::atomic<std::size_t>>> psize_;
  unsigned parts_ = 1;
  alignas(kCacheLine) std::atomic<std::size_t> size_{0};
};

}  // namespace wcq
