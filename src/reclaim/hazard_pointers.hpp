// Hazard-pointer memory reclamation (Michael, 2004).
//
// The paper's evaluation uses hazard pointers for the node/ring reclamation
// of MSQueue, LCRQ and CRTurn (§6: "we use customized reclamation for YMC
// and hazard pointers elsewhere"). This is a classic bounded implementation:
// a fixed table of per-thread hazard slots (indexed by the process-wide
// ThreadRegistry tid) and per-thread retire lists scanned when they exceed a
// threshold proportional to the number of registered threads.
//
// Retired-but-unreclaimed memory stays visible to the Fig 10 alloc meter
// because the owning queues allocate their nodes through alloc_meter and the
// deleter only runs at reclamation time.
#pragma once

#include <atomic>
#include <cstddef>

#include "analysis/sched_point.hpp"
#include "common/align.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {

class HazardDomain {
 public:
  static constexpr unsigned kSlotsPerThread = 4;

  // One thread's hazard slots, exposed as a first-class row so a per-thread
  // session handle (DESIGN.md §10) can cache the pointer once and keep the
  // hot-path publish/clear free of ThreadRegistry lookups. The row for a tid
  // is stable for the domain's lifetime; only the owning thread stores into
  // it (scans read cross-thread).
  struct alignas(kCacheLine) ThreadSlots {
    std::atomic<void*> slots[kSlotsPerThread];
  };

  // `retire_threshold`: per-thread retire-list length that triggers a scan.
  // 0 (default) selects the classic adaptive bound, 2 * kSlotsPerThread *
  // (registered threads + 1), which amortizes scan cost but lets up to that
  // many retired nodes sit unreclaimed per thread. Owners whose nodes are
  // *recycled* rather than freed (UnboundedQueue's segment pool) pass a
  // small fixed threshold instead: nodes then reach the pool promptly
  // instead of idling in retire lists while the queue allocates fresh ones,
  // which is what makes the steady state allocation-free (DESIGN.md §8).
  // Scans are O(threads) and segment retirement is once per 2^order
  // operations, so eager scanning costs nothing measurable there.
  explicit HazardDomain(std::size_t retire_threshold = 0);
  ~HazardDomain();
  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  // Process-wide default domain (queues may also own private domains).
  static HazardDomain& global();

  // The calling thread's (or an explicit tid's) row; constant-time, stable
  // for the domain's lifetime. Handles cache this.
  ThreadSlots* slots_for(unsigned tid);

  // Publish `src`'s current value in the calling thread's hazard slot and
  // re-validate until stable. Returns the protected pointer.
  template <typename T>
  T* protect(unsigned slot, const std::atomic<T*>& src) {
    void* p = protect_raw(slot, reinterpret_cast<const std::atomic<void*>&>(src));
    return static_cast<T*>(p);
  }

  // Row-based hot path (handle-cached row; no registry lookup). Inline on
  // purpose: with the row in hand the publish loop is a handful of loads
  // and one seq_cst store.
  template <typename T>
  static T* protect(ThreadSlots& row, unsigned slot,
                    const std::atomic<T*>& src) {
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      WCQ_SCHED_POINT(kHazardProtect);
      row.slots[slot].store(static_cast<void*>(p), std::memory_order_seq_cst);
      T* again = src.load(std::memory_order_acquire);
      if (again == p) return p;
      p = again;
    }
  }

  // Publish an already-loaded pointer (caller re-validates the source).
  template <typename T>
  void set(unsigned slot, T* p) {
    set_raw(slot, static_cast<void*>(p));
  }

  template <typename T>
  static void set(ThreadSlots& row, unsigned slot, T* p) {
    WCQ_SCHED_POINT(kHazardProtect);
    row.slots[slot].store(static_cast<void*>(p), std::memory_order_seq_cst);
  }

  void clear(unsigned slot);
  void clear_all();
  static void clear(ThreadSlots& row, unsigned slot) {
    WCQ_SCHED_POINT(kHazardClear);
    row.slots[slot].store(nullptr, std::memory_order_release);
  }

  // Hand `p` to the domain; `deleter(p)` runs once no thread protects it.
  void retire(void* p, void (*deleter)(void*));

  // Contextful variant: `deleter(p, ctx)` runs after the grace period. The
  // segment-recycling path uses this to route retired segments back into
  // their owning queue's pool instead of freeing them; `ctx` must outlive
  // every pending retirement that references it (a queue guarantees that by
  // owning a private domain and draining it in its destructor).
  void retire(void* p, void (*deleter)(void*, void*), void* ctx);

  // Handle variant: the caller supplies its dense tid (the retire list is
  // per-tid) instead of the domain resolving ThreadRegistry::tid().
  void retire(unsigned tid, void* p, void (*deleter)(void*, void*), void* ctx);

  // Drain every retire list that can be drained (called by queue dtors;
  // correct only when no other thread is inside the data structure).
  void drain();

  // Test hooks.
  std::size_t retired_count() const;

 private:
  void* protect_raw(unsigned slot, const std::atomic<void*>& src);
  void set_raw(unsigned slot, void* p);
  void retire_common(unsigned tid, void* p, void (*deleter)(void*),
                     void (*deleter2)(void*, void*), void* ctx);
  void scan(unsigned tid);

  struct Impl;
  Impl* impl_;
};

// RAII guard clearing a domain's slots on scope exit.
class HazardGuard {
 public:
  explicit HazardGuard(HazardDomain& d) : d_(d) {}
  ~HazardGuard() { d_.clear_all(); }
  HazardGuard(const HazardGuard&) = delete;
  HazardGuard& operator=(const HazardGuard&) = delete;

 private:
  HazardDomain& d_;
};

}  // namespace wcq
