// Hazard-pointer memory reclamation (Michael, 2004).
//
// The paper's evaluation uses hazard pointers for the node/ring reclamation
// of MSQueue, LCRQ and CRTurn (§6: "we use customized reclamation for YMC
// and hazard pointers elsewhere"). This is a classic bounded implementation:
// a fixed table of per-thread hazard slots (indexed by the process-wide
// ThreadRegistry tid) and per-thread retire lists scanned when they exceed a
// threshold proportional to the number of registered threads.
//
// Retired-but-unreclaimed memory stays visible to the Fig 10 alloc meter
// because the owning queues allocate their nodes through alloc_meter and the
// deleter only runs at reclamation time.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/align.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {

class HazardDomain {
 public:
  static constexpr unsigned kSlotsPerThread = 4;

  HazardDomain();
  ~HazardDomain();
  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  // Process-wide default domain (queues may also own private domains).
  static HazardDomain& global();

  // Publish `src`'s current value in the calling thread's hazard slot and
  // re-validate until stable. Returns the protected pointer.
  template <typename T>
  T* protect(unsigned slot, const std::atomic<T*>& src) {
    void* p = protect_raw(slot, reinterpret_cast<const std::atomic<void*>&>(src));
    return static_cast<T*>(p);
  }

  // Publish an already-loaded pointer (caller re-validates the source).
  template <typename T>
  void set(unsigned slot, T* p) {
    set_raw(slot, static_cast<void*>(p));
  }

  void clear(unsigned slot);
  void clear_all();

  // Hand `p` to the domain; `deleter(p)` runs once no thread protects it.
  void retire(void* p, void (*deleter)(void*));

  // Drain every retire list that can be drained (called by queue dtors;
  // correct only when no other thread is inside the data structure).
  void drain();

  // Test hooks.
  std::size_t retired_count() const;

 private:
  void* protect_raw(unsigned slot, const std::atomic<void*>& src);
  void set_raw(unsigned slot, void* p);
  void scan(unsigned tid);

  struct Impl;
  Impl* impl_;
};

// RAII guard clearing a domain's slots on scope exit.
class HazardGuard {
 public:
  explicit HazardGuard(HazardDomain& d) : d_(d) {}
  ~HazardGuard() { d_.clear_all(); }
  HazardGuard(const HazardGuard&) = delete;
  HazardGuard& operator=(const HazardGuard&) = delete;

 private:
  HazardDomain& d_;
};

}  // namespace wcq
