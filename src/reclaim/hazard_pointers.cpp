#include "reclaim/hazard_pointers.hpp"

#include <algorithm>
#include <vector>

#include "common/alloc_meter.hpp"

namespace wcq {

namespace {
constexpr unsigned kMaxThreads = ThreadRegistry::kMaxThreads;
}

struct HazardDomain::Impl {
  using SlotRow = HazardDomain::ThreadSlots;

  struct Retired {
    void* p;
    void (*deleter)(void*);         // exactly one of deleter/deleter2 is set
    void (*deleter2)(void*, void*);
    void* ctx;

    void run() const {
      if (deleter2 != nullptr) {
        deleter2(p, ctx);
      } else {
        deleter(p);
      }
    }
  };

  struct alignas(kCacheLine) RetireRow {
    // Only the owning tid mutates its row; scans read rows of live tids.
    // Vectors are metered (retired-node bookkeeping is queue-owned memory)
    // and keep their capacity across scans, so once the per-row buffers have
    // grown to the scan threshold the reclamation path stops allocating —
    // a precondition for the segment pool's allocation-free steady state.
    std::vector<Retired, alloc_meter::MeteredAllocator<Retired>> list;
    std::vector<Retired, alloc_meter::MeteredAllocator<Retired>> keep_scratch;
    std::vector<void*, alloc_meter::MeteredAllocator<void*>> hazard_scratch;
  };

  explicit Impl(std::size_t threshold) : retire_threshold(threshold) {}

  SlotRow rows[kMaxThreads] = {};
  RetireRow retired[kMaxThreads] = {};
  std::atomic<std::size_t> retired_total{0};
  std::size_t retire_threshold;  // 0 = adaptive (see header)
};

HazardDomain::HazardDomain(std::size_t retire_threshold)
    : impl_(alloc_meter::create<Impl>(retire_threshold)) {}
HazardDomain::~HazardDomain() {
  drain();
  alloc_meter::destroy(impl_);
}

HazardDomain& HazardDomain::global() {
  static HazardDomain d;
  return d;
}

HazardDomain::ThreadSlots* HazardDomain::slots_for(unsigned tid) {
  return &impl_->rows[tid];
}

void* HazardDomain::protect_raw(unsigned slot,
                                const std::atomic<void*>& src) {
  auto& cell = impl_->rows[ThreadRegistry::tid()].slots[slot];
  void* p = src.load(std::memory_order_acquire);
  for (;;) {
    WCQ_SCHED_POINT(kHazardProtect);
    cell.store(p, std::memory_order_seq_cst);
    void* again = src.load(std::memory_order_acquire);
    if (again == p) return p;
    p = again;
  }
}

void HazardDomain::set_raw(unsigned slot, void* p) {
  WCQ_SCHED_POINT(kHazardProtect);
  impl_->rows[ThreadRegistry::tid()].slots[slot].store(
      p, std::memory_order_seq_cst);
}

void HazardDomain::clear(unsigned slot) {
  WCQ_SCHED_POINT(kHazardClear);
  impl_->rows[ThreadRegistry::tid()].slots[slot].store(
      nullptr, std::memory_order_release);
}

void HazardDomain::clear_all() {
  auto& row = impl_->rows[ThreadRegistry::tid()];
  WCQ_SCHED_POINT(kHazardClear);
  for (auto& s : row.slots) s.store(nullptr, std::memory_order_release);
}

void HazardDomain::retire(void* p, void (*deleter)(void*)) {
  retire_common(ThreadRegistry::tid(), p, deleter, nullptr, nullptr);
}

void HazardDomain::retire(void* p, void (*deleter)(void*, void*), void* ctx) {
  retire_common(ThreadRegistry::tid(), p, nullptr, deleter, ctx);
}

void HazardDomain::retire(unsigned tid, void* p, void (*deleter)(void*, void*),
                          void* ctx) {
  retire_common(tid, p, nullptr, deleter, ctx);
}

void HazardDomain::retire_common(unsigned tid, void* p, void (*deleter)(void*),
                                 void (*deleter2)(void*, void*), void* ctx) {
  auto& list = impl_->retired[tid].list;
  WCQ_SCHED_POINT(kHazardRetire);
  list.push_back(Impl::Retired{p, deleter, deleter2, ctx});
  impl_->retired_total.fetch_add(1, std::memory_order_relaxed);
  // Scan threshold: either the domain's fixed setting or 2x the maximum
  // number of simultaneously-protected pointers, the usual amortization
  // that bounds retired garbage.
  const std::size_t threshold =
      impl_->retire_threshold != 0
          ? impl_->retire_threshold
          : 2 * kSlotsPerThread * (ThreadRegistry::high_water() + 1);
  if (list.size() >= threshold) scan(tid);
}

void HazardDomain::scan(unsigned tid) {
  // Snapshot all published hazards into the row's retained scratch buffer.
  auto& row = impl_->retired[tid];
  auto& hazards = row.hazard_scratch;
  hazards.clear();
  const unsigned hw = ThreadRegistry::high_water();
  hazards.reserve(static_cast<std::size_t>(hw) * kSlotsPerThread);
  // One seq_cst fence, then relaxed slot loads (DESIGN.md §15 HP-SCAN-FENCE).
  // The Dekker pattern needs the *scan* ordered after this thread's retire
  // bookkeeping and against each protector's seq_cst slot publish (HP-PROT);
  // a single fence joining S before the loop gives every subsequent load
  // that position, so per-slot seq_cst loads were O(threads) redundant
  // fences on ARM — the loads themselves only need coherence (a slot holds
  // one word, and a racing publish is caught by the publisher's re-validate,
  // not by this scan's order).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (unsigned t = 0; t < hw; ++t) {
    WCQ_SCHED_POINT(kHazardScan);
    for (const auto& s : impl_->rows[t].slots) {
      void* p = s.load(std::memory_order_relaxed);
      if (p != nullptr) hazards.push_back(p);
    }
  }
  std::sort(hazards.begin(), hazards.end());

  auto& list = row.list;
  auto& keep = row.keep_scratch;
  keep.clear();
  keep.reserve(list.size());
  for (const auto& r : list) {
    if (std::binary_search(hazards.begin(), hazards.end(), r.p)) {
      keep.push_back(r);
    } else {
      impl_->retired_total.fetch_sub(1, std::memory_order_relaxed);
      r.run();
    }
  }
  list.swap(keep);
}

void HazardDomain::drain() {
  for (unsigned t = 0; t < kMaxThreads; ++t) {
    auto& list = impl_->retired[t].list;
    for (const auto& r : list) {
      impl_->retired_total.fetch_sub(1, std::memory_order_relaxed);
      r.run();
    }
    list.clear();
  }
}

std::size_t HazardDomain::retired_count() const {
  return impl_->retired_total.load(std::memory_order_relaxed);
}

}  // namespace wcq
