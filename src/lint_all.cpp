// Lint anchor TU (DESIGN.md §11): includes every public header so that
// clang-tidy — which only analyzes translation units listed in
// compile_commands.json — sees the header-only rings, reclamation and
// scaling layers, not just the handful of .cpp files in libwcq. Built only
// under -DWCQ_LINT=ON (the CI static-analysis configuration); it ships no
// code of its own.
#include "analysis/sched_point.hpp"
#include "baselines/cc_queue.hpp"
#include "baselines/crturn_queue.hpp"
#include "baselines/faa_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/ymc_queue.hpp"
#include "common/align.hpp"
#include "common/alloc_meter.hpp"
#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "common/dwcas.hpp"
#include "common/env.hpp"
#include "common/op_counters.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/topology.hpp"
#include "core/bounded_queue.hpp"
#include "core/entry.hpp"
#include "core/mpsc_ring.hpp"
#include "core/remap.hpp"
#include "core/scq.hpp"
#include "core/session_guard.hpp"
#include "core/spmc_ring.hpp"
#include "core/unbounded_queue.hpp"
#include "core/wcq.hpp"
#include "core/wcq_llsc.hpp"
#include "portability/llsc.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "reclaim/segment_pool.hpp"
#include "runtime/channel.hpp"
#include "runtime/eventcount.hpp"
#include "runtime/thread_registry.hpp"
#include "scale/index_magazine.hpp"
#include "scale/sharded_queue.hpp"

// Instantiate the class templates the headers only declare generically, so
// the analyzer walks their member bodies too.
namespace wcq {
template class BoundedQueue<std::uint64_t, WCQ>;
template class BoundedQueue<std::uint64_t, SCQ>;
template class BoundedQueue<std::uint64_t, WCQLLSC>;
template class BoundedQueue<std::uint64_t, MpscRing>;
template class BoundedQueue<std::uint64_t, SpmcRing>;
template class Channel<std::uint64_t, BoundedQueue<std::uint64_t, WCQ>>;
template class Channel<std::uint64_t, ShardedQueue<std::uint64_t, WCQ>>;
}  // namespace wcq
