// Latency-sensitive task scheduler: wait-free queue vs mutex queue.
//
// The paper motivates wait-freedom with "lack of starvation and reduced
// tail latency ... especially useful for latency-sensitive applications
// which often have quality of service constraints" (§1, §2). This example
// builds a small MPMC task executor twice — once over the wait-free
// UnboundedQueue and once over a mutex-protected std::deque — runs the
// same workload, and prints the submission-to-start latency distribution
// (p50/p99/p99.9/max).
//
// Expect comparable medians but a visibly longer tail for the mutex
// executor under contention: a descheduled lock holder stalls everyone,
// whereas wCQ guarantees every operation completes in bounded steps.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/cpu.hpp"
#include "core/unbounded_queue.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wcq::u64;

struct Task {
  Clock::time_point submitted;
};

class WaitFreeTaskQueue {
 public:
  bool push(u64 v) { return q_.enqueue(v); }
  std::optional<u64> pop() { return q_.dequeue(); }
  static constexpr const char* kName = "wait-free (UnboundedQueue<wCQ>)";

 private:
  wcq::UnboundedQueue<u64> q_{10};
};

class MutexTaskQueue {
 public:
  bool push(u64 v) {
    std::lock_guard<std::mutex> lk(mu_);
    q_.push_back(v);
    return true;
  }
  std::optional<u64> pop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return std::nullopt;
    const u64 v = q_.front();
    q_.pop_front();
    return v;
  }
  static constexpr const char* kName = "mutex (std::deque)";

 private:
  std::mutex mu_;
  std::deque<u64> q_;
};

struct LatencyStats {
  double p50_us, p99_us, p999_us, max_us;
};

template <typename Queue>
LatencyStats run_executor(unsigned submitters, unsigned workers,
                          u64 tasks_per_submitter) {
  Queue q;
  const u64 total = tasks_per_submitter * submitters;
  std::vector<Task> tasks(total);
  std::vector<double> latencies_us(total);
  std::atomic<u64> started{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> threads;
  for (unsigned s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      while (!go.load(std::memory_order_acquire)) wcq::cpu_relax();
      for (u64 i = 0; i < tasks_per_submitter; ++i) {
        const u64 id = s * tasks_per_submitter + i;
        tasks[id].submitted = Clock::now();
        while (!q.push(id)) wcq::cpu_relax();
        // Pace submissions slightly so queues stay shallow (latency test,
        // not throughput test).
        for (int k = 0; k < 50; ++k) wcq::cpu_relax();
      }
    });
  }
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) wcq::cpu_relax();
      while (started.load(std::memory_order_relaxed) < total) {
        if (auto id = q.pop()) {
          const auto now = Clock::now();
          latencies_us[*id] =
              std::chrono::duration<double, std::micro>(now -
                                                        tasks[*id].submitted)
                  .count();
          started.fetch_add(1, std::memory_order_relaxed);
          for (int k = 0; k < 20; ++k) wcq::cpu_relax();  // tiny "work"
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct = [&](double p) {
    return latencies_us[static_cast<std::size_t>(p * (total - 1))];
  };
  return LatencyStats{pct(0.50), pct(0.99), pct(0.999),
                      latencies_us.back()};
}

}  // namespace

int main() {
  constexpr unsigned kSubmitters = 4;
  constexpr unsigned kWorkers = 4;
  constexpr u64 kTasks = 100000;

  std::printf("task scheduler: %u submitters, %u workers, %llu tasks each\n",
              kSubmitters, kWorkers,
              static_cast<unsigned long long>(kTasks));
  std::printf("%-34s %10s %10s %10s %10s\n", "queue", "p50(us)", "p99(us)",
              "p99.9(us)", "max(us)");

  const LatencyStats wf =
      run_executor<WaitFreeTaskQueue>(kSubmitters, kWorkers, kTasks);
  std::printf("%-34s %10.2f %10.2f %10.2f %10.2f\n", WaitFreeTaskQueue::kName,
              wf.p50_us, wf.p99_us, wf.p999_us, wf.max_us);

  const LatencyStats mx =
      run_executor<MutexTaskQueue>(kSubmitters, kWorkers, kTasks);
  std::printf("%-34s %10.2f %10.2f %10.2f %10.2f\n", MutexTaskQueue::kName,
              mx.p50_us, mx.p99_us, mx.p999_us, mx.max_us);

  return 0;
}
