// Go-style buffered channel built on the wait-free bounded queue.
//
// The paper's introduction motivates exactly this use case: "A number of
// languages, e.g., Vlang, Go, can benefit from having a fast queue for
// their concurrency and synchronization constructs. For example, Go needs a
// queue for its buffered channel implementation."
//
// This demo uses the library's wcq::Channel<T> (runtime/channel.hpp): a
// blocking facade over BoundedQueue whose fast path never touches a mutex —
// the queue operations stay wait-free, and blocking is bounded spinning
// followed by futex/eventcount parking with a lost-wakeup-free
// prepare/re-check/commit protocol (DESIGN.md §14). An earlier revision of
// this example hand-rolled the parking with a try_lock-guarded condvar
// notify, which can miss a parker between its failed fast path and its
// wait; the eventcount replaces that with a checked protocol.
//
// The demo wires a small pipeline: N producers -> channel -> M workers ->
// channel -> 1 aggregator, and checks the aggregate. Each thread holds one
// Channel::Handle for its lifetime (the DESIGN.md §10 session discipline);
// close() is called by the last producer/worker and the downstream side
// drains the residual elements before seeing kClosed.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/channel.hpp"

using wcq::ChanStatus;
using wcq::Channel;

int main() {
  constexpr int kProducers = 3;
  constexpr int kWorkers = 4;
  constexpr int kJobsPerProducer = 100000;

  Channel<int> jobs(8u);      // buffered channel, capacity 256
  Channel<long> results(8u);

  std::vector<std::thread> threads;
  std::atomic<int> producers_left{kProducers};
  std::atomic<int> workers_left{kWorkers};

  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto h = jobs.acquire();
      for (int i = 0; i < kJobsPerProducer; ++i) {
        jobs.send(h, p * kJobsPerProducer + i);
      }
      if (producers_left.fetch_sub(1) == 1) jobs.close();
    });
  }
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      auto hj = jobs.acquire();
      auto hr = results.acquire();
      int job = 0;
      while (jobs.recv(hj, job) == ChanStatus::kOk) {
        results.send(hr, static_cast<long>(job) * 2);  // "work"
      }
      if (workers_left.fetch_sub(1) == 1) results.close();
    });
  }

  long sum = 0;
  long count = 0;
  {
    auto hr = results.acquire();
    long r = 0;
    while (results.recv(hr, r) == ChanStatus::kOk) {
      sum += r;
      ++count;
    }
  }
  for (auto& t : threads) t.join();

  const auto jstats = jobs.stats();
  const auto rstats = results.stats();
  const long n = static_cast<long>(kProducers) * kJobsPerProducer;
  const long expect = (n - 1) * n;  // sum of 2*i for i in [0, n)
  std::printf("parks: jobs send=%llu recv=%llu, results send=%llu recv=%llu\n",
              static_cast<unsigned long long>(jstats.send_parks),
              static_cast<unsigned long long>(jstats.recv_parks),
              static_cast<unsigned long long>(rstats.send_parks),
              static_cast<unsigned long long>(rstats.recv_parks));
  std::printf("received %ld results, sum=%ld (expected %ld) -> %s\n", count,
              sum, expect, (count == n && sum == expect) ? "OK" : "MISMATCH");
  return (count == n && sum == expect) ? 0 : 1;
}
