// Go-style buffered channel built on the wait-free bounded queue.
//
// The paper's introduction motivates exactly this use case: "A number of
// languages, e.g., Vlang, Go, can benefit from having a fast queue for
// their concurrency and synchronization constructs. For example, Go needs a
// queue for its buffered channel implementation."
//
// Channel<T> wraps BoundedQueue<T> with blocking send/recv and close()
// semantics. The queue operations themselves are wait-free; blocking is
// implemented with bounded spinning + condition-variable parking, so the
// fast path (non-empty/non-full channel) never touches a mutex.
//
// The demo wires a small pipeline: N producers -> channel -> M workers ->
// channel -> 1 aggregator, and checks the aggregate.
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/cpu.hpp"
#include "core/bounded_queue.hpp"

namespace {

template <typename T>
class Channel {
 public:
  explicit Channel(unsigned order) : queue_(order) {}

  // Blocks while the channel is full. Returns false if the channel closed.
  bool send(T v) {
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      // Fast path: wait-free enqueue attempt with bounded spinning.
      for (int spin = 0; spin < kSpins; ++spin) {
        if (queue_.enqueue(std::move(v))) {
          wake_receivers();
          return true;
        }
        wcq::cpu_relax();
      }
      // Slow path: park until a receiver makes room.
      std::unique_lock<std::mutex> lk(mu_);
      not_full_.wait_for(lk, std::chrono::milliseconds(1));
    }
  }

  // Blocks while the channel is empty. nullopt once closed AND drained.
  std::optional<T> recv() {
    for (;;) {
      for (int spin = 0; spin < kSpins; ++spin) {
        if (auto v = queue_.dequeue()) {
          wake_senders();
          return v;
        }
        if (closed_.load(std::memory_order_acquire)) {
          // Drained check must come after the dequeue attempt.
          if (auto v2 = queue_.dequeue()) {
            wake_senders();
            return v2;
          }
          return std::nullopt;
        }
        wcq::cpu_relax();
      }
      std::unique_lock<std::mutex> lk(mu_);
      not_empty_.wait_for(lk, std::chrono::milliseconds(1));
    }
  }

  void close() {
    closed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lk(mu_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  static constexpr int kSpins = 256;

  void wake_receivers() {
    // Cheap heuristic: only take the lock when someone may be parked.
    if (mu_.try_lock()) {
      not_empty_.notify_one();
      mu_.unlock();
    }
  }
  void wake_senders() {
    if (mu_.try_lock()) {
      not_full_.notify_one();
      mu_.unlock();
    }
  }

  wcq::BoundedQueue<T> queue_;
  std::atomic<bool> closed_{false};
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
};

}  // namespace

int main() {
  constexpr int kProducers = 3;
  constexpr int kWorkers = 4;
  constexpr int kJobsPerProducer = 100000;

  Channel<int> jobs(8);      // buffered channel, capacity 256
  Channel<long> results(8);

  std::vector<std::thread> threads;
  std::atomic<int> producers_left{kProducers};
  std::atomic<int> workers_left{kWorkers};

  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kJobsPerProducer; ++i) {
        jobs.send(p * kJobsPerProducer + i);
      }
      if (producers_left.fetch_sub(1) == 1) jobs.close();
    });
  }
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      while (auto job = jobs.recv()) {
        results.send(static_cast<long>(*job) * 2);  // "work"
      }
      if (workers_left.fetch_sub(1) == 1) results.close();
    });
  }

  long sum = 0;
  long count = 0;
  while (auto r = results.recv()) {
    sum += *r;
    ++count;
  }
  for (auto& t : threads) t.join();

  const long n = static_cast<long>(kProducers) * kJobsPerProducer;
  const long expect = (n - 1) * n;  // sum of 2*i for i in [0, n)
  std::printf("received %ld results, sum=%ld (expected %ld) -> %s\n", count,
              sum, expect, (count == n && sum == expect) ? "OK" : "MISMATCH");
  return (count == n && sum == expect) ? 0 : 1;
}
