// DPDK-style packet buffer pool and forwarding pipeline.
//
// The paper's introduction: "high-speed networking and storage libraries
// such as DPDK and SPDK use ring buffers for various purposes when
// allocating and transferring network frames" — and points out that those
// rings are merely lock-less, not non-blocking: a preempted thread wedges
// everyone ("such queues cannot be safely used outside thread contexts,
// e.g., OS interrupts"). This example shows the same architecture on truly
// wait-free rings.
//
// Architecture (classic run-to-completion forwarding):
//   * a frame POOL: the Fig 2 trick used directly — a wCQ ring holding the
//     free indices of a preallocated frame array (allocation = dequeue,
//     free = enqueue; both wait-free);
//   * RX -> worker and worker -> TX rings carrying frame indices;
//   * RX threads "receive" frames (allocate + fill), workers rewrite
//     headers, TX threads "transmit" (checksum + release to pool).
//
// The end-to-end check: every frame transmitted exactly once, pool
// fully recovered, checksums consistent.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/cpu.hpp"
#include "core/wcq.hpp"

namespace {

using wcq::u64;

constexpr unsigned kPoolOrder = 12;  // 4096 frames
constexpr u64 kFrames = u64{1} << kPoolOrder;
constexpr int kFrameBytes = 128;

struct Frame {
  unsigned char data[kFrameBytes];
};

// Wait-free frame pool: free-index ring over a static frame array.
class FramePool {
 public:
  FramePool() : free_ring_(kPoolOrder) {
    for (u64 i = 0; i < kFrames; ++i) free_ring_.enqueue(i);
  }
  // Returns a frame index or fails when the pool is exhausted.
  std::optional<u64> alloc() { return free_ring_.dequeue(); }
  void release(u64 idx) { free_ring_.enqueue(idx); }
  Frame& frame(u64 idx) { return frames_[idx]; }
  u64 available() {
    // Destructive count (drain/refill) — only used in the final check.
    u64 n = 0;
    std::vector<u64> tmp;
    while (auto i = free_ring_.dequeue()) tmp.push_back(*i);
    n = tmp.size();
    for (u64 i : tmp) free_ring_.enqueue(i);
    return n;
  }

 private:
  wcq::WCQ free_ring_;
  std::vector<Frame> frames_{kFrames};
};

}  // namespace

int main() {
  constexpr int kRx = 2;
  constexpr int kWorkers = 3;
  constexpr int kTx = 2;
  constexpr u64 kPacketsPerRx = 300000;
  constexpr u64 kTotal = kPacketsPerRx * kRx;

  FramePool pool;
  wcq::WCQ rx_to_worker(kPoolOrder);  // carry frame indices
  wcq::WCQ worker_to_tx(kPoolOrder);

  std::atomic<u64> transmitted{0};
  std::atomic<u64> checksum{0};
  std::atomic<int> rx_done{0}, workers_done{0};
  std::vector<std::thread> threads;

  for (int r = 0; r < kRx; ++r) {
    threads.emplace_back([&, r] {
      for (u64 i = 0; i < kPacketsPerRx; ++i) {
        std::optional<u64> idx;
        while (!(idx = pool.alloc())) wcq::cpu_relax();  // pool exhausted
        Frame& f = pool.frame(*idx);
        // "Receive": stamp src port and a payload byte pattern.
        f.data[0] = static_cast<unsigned char>(r);
        std::memset(f.data + 1, static_cast<int>(i & 0xFF), 15);
        rx_to_worker.enqueue(*idx);
      }
      ++rx_done;
    });
  }
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        if (auto idx = rx_to_worker.dequeue()) {
          Frame& f = pool.frame(*idx);
          f.data[16] = static_cast<unsigned char>(f.data[0] ^ 0x5A);  // "route"
          worker_to_tx.enqueue(*idx);
        } else if (rx_done.load() == kRx) {
          if (auto idx2 = rx_to_worker.dequeue()) {  // drain re-check
            Frame& f = pool.frame(*idx2);
            f.data[16] = static_cast<unsigned char>(f.data[0] ^ 0x5A);
            worker_to_tx.enqueue(*idx2);
            continue;
          }
          break;
        } else {
          wcq::cpu_relax();
        }
      }
      ++workers_done;
    });
  }
  for (int t = 0; t < kTx; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        if (auto idx = worker_to_tx.dequeue()) {
          Frame& f = pool.frame(*idx);
          checksum.fetch_add(f.data[16], std::memory_order_relaxed);
          transmitted.fetch_add(1, std::memory_order_relaxed);
          pool.release(*idx);  // frame back to the pool
        } else if (workers_done.load() == kWorkers) {
          if (auto idx2 = worker_to_tx.dequeue()) {
            Frame& f = pool.frame(*idx2);
            checksum.fetch_add(f.data[16], std::memory_order_relaxed);
            transmitted.fetch_add(1, std::memory_order_relaxed);
            pool.release(*idx2);
            continue;
          }
          break;
        } else {
          wcq::cpu_relax();
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Each RX stamps data[0]=r; worker writes r^0x5A; kPacketsPerRx each.
  u64 expect_sum = 0;
  for (int r = 0; r < kRx; ++r) expect_sum += kPacketsPerRx * (r ^ 0x5A);

  const bool ok = transmitted.load() == kTotal &&
                  checksum.load() == expect_sum &&
                  pool.available() == kFrames;
  std::printf(
      "transmitted %llu/%llu frames, checksum %llu (expected %llu), pool "
      "recovered %llu/%llu -> %s\n",
      (unsigned long long)transmitted.load(), (unsigned long long)kTotal,
      (unsigned long long)checksum.load(), (unsigned long long)expect_sum,
      (unsigned long long)pool.available(), (unsigned long long)kFrames,
      ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
