// sharded_pipeline — a two-stage data pipeline on the sharded front-end
// (src/scale/sharded_queue.hpp), written against the explicit-handle API
// (DESIGN.md §10) as the usage reference for it.
//
// Each stage worker acquires one session handle for its lifetime —
// `queue.acquire()` — and every operation takes it: the handle caches the
// worker's home shard and its per-shard ring/magazine sessions, so the hot
// loop performs no registry or thread_local lookups at all (the implicit
// API would resolve the thread_local tid once per call; see the README
// migration table).
//
// Stage 1 threads produce work items in batches (enqueue_bulk amortizes the
// ring traffic), stage 2 threads drain in batches and fold a checksum.
// Backpressure is real: when every shard is full the producers' bulk call
// reports partial success and they retry the unsent tail. Run it with no
// arguments; it prints the per-stage totals and verifies nothing was lost.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "scale/sharded_queue.hpp"

namespace {

constexpr unsigned kProducers = 2;
constexpr unsigned kConsumers = 2;
constexpr unsigned kShards = 4;
constexpr unsigned kShardOrder = 8;  // 256 items per shard
constexpr wcq::u64 kItemsPerProducer = 100000;
constexpr std::size_t kBatch = 32;

}  // namespace

int main() {
  using namespace wcq;
  ShardedQueue<u64> queue(kShards, kShardOrder);
  std::atomic<u64> produced{0};
  std::atomic<u64> consumed{0};
  std::atomic<u64> checksum{0};
  std::atomic<unsigned> producers_live{kProducers};

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      // One session per worker lifetime; every queue call below takes it.
      auto handle = queue.acquire();
      Backoff bo;
      u64 buf[kBatch];
      u64 next = 0;
      while (next < kItemsPerProducer) {
        std::size_t span = kBatch;
        if (span > kItemsPerProducer - next) {
          span = kItemsPerProducer - next;
        }
        for (std::size_t k = 0; k < span; ++k) {
          buf[k] = (u64{p} << 32) | (next + k);
        }
        std::size_t sent = 0;
        bo.reset();
        while (sent < span) {
          const std::size_t got =
              queue.enqueue_bulk(handle, buf + sent, span - sent);
          if (got == 0) {
            bo.pause();  // every shard full: wait for stage 2
          } else {
            bo.reset();
          }
          sent += got;
        }
        next += span;
        produced.fetch_add(span, std::memory_order_relaxed);
      }
      producers_live.fetch_sub(1, std::memory_order_release);
      // The handle is destroyed here, before the queue: session state
      // (cached free indices) flushes back to the shards.
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      auto handle = queue.acquire();
      Backoff bo;
      u64 buf[kBatch];
      u64 local_sum = 0;
      u64 local_n = 0;
      for (;;) {
        const std::size_t got = queue.dequeue_bulk(handle, buf, kBatch);
        if (got > 0) {
          for (std::size_t k = 0; k < got; ++k) local_sum += buf[k];
          local_n += got;
          bo.reset();
          continue;
        }
        // Empty after a full steal sweep: finished only once stage 1 is done
        // and a final authoritative probe still finds nothing. The probe may
        // itself land an element — fold it in, never drop it.
        if (producers_live.load(std::memory_order_acquire) == 0) {
          if (auto v = queue.dequeue(handle)) {
            local_sum += *v;
            ++local_n;
            bo.reset();
            continue;
          }
          break;
        }
        bo.pause();
      }
      checksum.fetch_add(local_sum, std::memory_order_relaxed);
      consumed.fetch_add(local_n, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  // The drain loop's final single-op probe can race another consumer's bulk
  // grab; sweep up any leftovers on the main thread.
  while (auto v = queue.dequeue()) {
    checksum.fetch_add(*v, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  }

  u64 expect_sum = 0;
  for (unsigned p = 0; p < kProducers; ++p) {
    for (u64 i = 0; i < kItemsPerProducer; ++i) {
      expect_sum += (u64{p} << 32) | i;
    }
  }
  std::printf("sharded_pipeline: %u shards, %u+%u threads, batch %zu\n",
              queue.shard_count(), kProducers, kConsumers, kBatch);
  std::printf("  produced=%llu consumed=%llu checksum %s\n",
              static_cast<unsigned long long>(produced.load()),
              static_cast<unsigned long long>(consumed.load()),
              checksum.load() == expect_sum ? "OK" : "MISMATCH");
  return consumed.load() == produced.load() && checksum.load() == expect_sum
             ? 0
             : 1;
}
