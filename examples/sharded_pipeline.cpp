// sharded_pipeline — a two-stage data pipeline on the sharded front-end in
// pipeline mode (DESIGN.md §13): every shard is an MPSC ring with exactly
// one owning consumer, so the drain side runs on plain loads and release
// stores — zero F&As, zero threshold RMWs — while producers keep the full
// MPMC enqueue path (home-shard hash plus spill sweep on full).
//
// The usage shape this example is the reference for:
//
//   * `ShardedQueue<u64, MpscRing>` with `Options::mode = Mode::kPipeline`.
//   * Stage-1 workers take ordinary `acquire()` sessions and enqueue in
//     batches; backpressure is real (bulk reports partial success on full
//     and the producer retries the unsent tail).
//   * Stage-2 workers take `acquire_consumer(shard)` sessions — one worker
//     per shard, the session pins the thread to the shard's home NUMA node
//     and its sweep is exactly that shard. A plain `dequeue()` (or any
//     non-consumer session) would trap: in pipeline mode a stray dequeue
//     would bind a shard's single-consumer ring to a thread that will
//     never drain it.
//   * Termination needs no main-thread leftover sweep, and must not have
//     one (it would be a second consumer): each shard has exactly one
//     consumer, so that consumer's empty probe after stage 1 exits is
//     authoritative for its shard.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "core/mpsc_ring.hpp"
#include "scale/sharded_queue.hpp"

namespace {

constexpr unsigned kProducers = 2;
constexpr unsigned kShards = 4;  // one consumer per shard
constexpr unsigned kShardOrder = 8;  // 256 items per shard
constexpr wcq::u64 kItemsPerProducer = 100000;
constexpr std::size_t kBatch = 32;

}  // namespace

int main() {
  using namespace wcq;
  using Pipeline = ShardedQueue<u64, MpscRing>;
  Pipeline::Options opt;
  opt.shards = kShards;
  opt.shard_order = kShardOrder;
  opt.mode = Pipeline::Mode::kPipeline;
  Pipeline queue(opt);

  std::atomic<u64> produced{0};
  std::atomic<u64> consumed{0};
  std::atomic<u64> checksum{0};
  std::atomic<unsigned> producers_live{kProducers};

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      // One producer session per worker lifetime; the enqueue side of
      // pipeline mode is the ordinary §10 handle API.
      auto handle = queue.acquire();
      Backoff bo;
      u64 buf[kBatch];
      u64 next = 0;
      while (next < kItemsPerProducer) {
        std::size_t span = kBatch;
        if (span > kItemsPerProducer - next) {
          span = kItemsPerProducer - next;
        }
        for (std::size_t k = 0; k < span; ++k) {
          buf[k] = (u64{p} << 32) | (next + k);
        }
        std::size_t sent = 0;
        bo.reset();
        while (sent < span) {
          const std::size_t got =
              queue.enqueue_bulk(handle, buf + sent, span - sent);
          if (got == 0) {
            bo.pause();  // every shard full: wait for stage 2
          } else {
            bo.reset();
          }
          sent += got;
        }
        next += span;
        produced.fetch_add(span, std::memory_order_relaxed);
      }
      producers_live.fetch_sub(1, std::memory_order_release);
    });
  }
  for (unsigned s = 0; s < queue.shard_count(); ++s) {
    threads.emplace_back([&, s] {
      // The owning-consumer session: pinned to shard s's home node, sweep
      // = {s}, and the only session allowed to dequeue in pipeline mode.
      auto handle = queue.acquire_consumer(s);
      Backoff bo;
      u64 buf[kBatch];
      u64 local_sum = 0;
      u64 local_n = 0;
      for (;;) {
        const std::size_t got = queue.dequeue_bulk(handle, buf, kBatch);
        if (got > 0) {
          for (std::size_t k = 0; k < got; ++k) local_sum += buf[k];
          local_n += got;
          bo.reset();
          continue;
        }
        // Empty. Finished only once stage 1 is done and a final probe
        // still finds nothing — authoritative, because this thread is the
        // shard's ONLY consumer: nobody else can have raced an element out,
        // and producers are done, so empty-now means empty-forever.
        if (producers_live.load(std::memory_order_acquire) == 0) {
          if (auto v = queue.dequeue(handle)) {
            local_sum += *v;
            ++local_n;
            bo.reset();
            continue;
          }
          break;
        }
        bo.pause();
      }
      checksum.fetch_add(local_sum, std::memory_order_relaxed);
      consumed.fetch_add(local_n, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  u64 expect_sum = 0;
  for (unsigned p = 0; p < kProducers; ++p) {
    for (u64 i = 0; i < kItemsPerProducer; ++i) {
      expect_sum += (u64{p} << 32) | i;
    }
  }
  std::printf(
      "sharded_pipeline: %u MPSC shards (pipeline mode), %u producers, "
      "batch %zu\n",
      queue.shard_count(), kProducers, kBatch);
  std::printf("  produced=%llu consumed=%llu checksum %s\n",
              static_cast<unsigned long long>(produced.load()),
              static_cast<unsigned long long>(consumed.load()),
              checksum.load() == expect_sum ? "OK" : "MISMATCH");
  return consumed.load() == produced.load() && checksum.load() == expect_sum
             ? 0
             : 1;
}
