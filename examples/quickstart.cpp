// Quickstart: a wait-free bounded MPMC queue in a dozen lines.
//
// Build:  cmake -B build -G Ninja && cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/bounded_queue.hpp"

int main() {
  // Capacity 2^10 = 1024 elements; wait-free via the default WCQ ring.
  wcq::BoundedQueue<int> queue(10);

  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250000;
  std::atomic<long> sum{0};
  std::atomic<int> remaining{kProducers * kPerProducer};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue] {
      for (int i = 1; i <= kPerProducer; ++i) {
        while (!queue.enqueue(i)) {
          // Queue full: back off. enqueue itself is wait-free.
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      long local = 0;
      while (remaining.load(std::memory_order_relaxed) > 0) {
        if (auto v = queue.dequeue()) {
          local += *v;
          remaining.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  const long expect =
      static_cast<long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2;
  std::printf("consumed sum = %ld (expected %ld) -> %s\n", sum.load(), expect,
              sum.load() == expect ? "OK" : "MISMATCH");
  return sum.load() == expect ? 0 : 1;
}
