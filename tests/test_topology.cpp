// Topology subsystem tests (src/common/topology.hpp, DESIGN.md §12).
//
// The parser tests run the *production* from_sysfs path over committed
// fixture trees (tests/fixtures/sysfs/*): a flat 4-CPU machine, a 2-node
// box, an asymmetric 3-node box with a memory-only node and a distance
// matrix that disagrees with ring order, and an SMT part with adjacent
// hyperthread siblings. The spec parser, pin policies, flat fallback and
// thread-node override are covered directly.
#include <gtest/gtest.h>

#include <string>

#include "common/topology.hpp"

namespace wcq {
namespace {

std::string fixture(const char* name) {
  return std::string(WCQ_TEST_FIXTURE_DIR) + "/sysfs/" + name;
}

using Policy = Topology::PinPolicy;

// --- spec parsing ----------------------------------------------------------

TEST(TopologySpec, SingleNode) {
  auto t = Topology::from_spec("0-3");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node_count(), 1u);
  EXPECT_EQ(t->cpu_count(), 4u);
  EXPECT_TRUE(t->simulated());
  EXPECT_EQ(t->node(0).cpus, (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(TopologySpec, TwoNodesWithListsAndRanges) {
  auto t = Topology::from_spec("0-1,4;2-3");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node_count(), 2u);
  EXPECT_EQ(t->node(0).cpus, (std::vector<unsigned>{0, 1, 4}));
  EXPECT_EQ(t->node(1).cpus, (std::vector<unsigned>{2, 3}));
  EXPECT_EQ(t->node_of_cpu(4), 0u);
  EXPECT_EQ(t->node_of_cpu(2), 1u);
}

TEST(TopologySpec, MalformedSpecsRejected) {
  EXPECT_FALSE(Topology::from_spec("").has_value());
  EXPECT_FALSE(Topology::from_spec(";").has_value());
  EXPECT_FALSE(Topology::from_spec("0-1;;2-3").has_value());
  EXPECT_FALSE(Topology::from_spec("0-1;x").has_value());
  EXPECT_FALSE(Topology::from_spec("3-1").has_value());  // inverted range
}

TEST(TopologySpec, UnknownCpuMapsToNodeZero) {
  auto t = Topology::from_spec("0-1;2-3");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node_of_cpu(99), 0u);  // degrade, never fault
}

// --- sysfs fixture parsing -------------------------------------------------

TEST(TopologySysfs, OneNodeFixture) {
  auto t = Topology::from_sysfs(fixture("one_node"), /*simulated=*/true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node_count(), 1u);
  EXPECT_EQ(t->cpu_count(), 4u);
  EXPECT_TRUE(t->remote_order(0).empty());
  // No SMT in this fixture: every cpu is its own core.
  EXPECT_EQ(t->core_of_cpu(2), 2u);
}

TEST(TopologySysfs, TwoNodeFixture) {
  auto t = Topology::from_sysfs(fixture("two_node"), /*simulated=*/true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node_count(), 2u);
  EXPECT_EQ(t->cpu_count(), 8u);
  EXPECT_EQ(t->node(0).cpus, (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(t->node(1).cpus, (std::vector<unsigned>{4, 5, 6, 7}));
  EXPECT_EQ(t->node_of_cpu(5), 1u);
  // Same core_id on different packages stays a distinct core: cpu0 is
  // (pkg 0, core 0) and cpu4 is (pkg 1, core 0).
  EXPECT_NE(t->core_of_cpu(0), t->core_of_cpu(4));
  EXPECT_EQ(t->remote_order(0), (std::vector<unsigned>{1}));
  EXPECT_EQ(t->remote_order(1), (std::vector<unsigned>{0}));
}

TEST(TopologySysfs, AsymmetricFixtureSkipsMemoryOnlyNodeAndSortsByDistance) {
  auto t = Topology::from_sysfs(fixture("asym"), /*simulated=*/true);
  ASSERT_TRUE(t.has_value());
  // node3 has an empty cpulist (memory-only) and is skipped.
  EXPECT_EQ(t->node_count(), 3u);
  EXPECT_EQ(t->node(0).cpus.size(), 4u);
  EXPECT_EQ(t->node(1).cpus.size(), 2u);
  EXPECT_EQ(t->node(2).cpus.size(), 2u);
  // Distances: d(2,1)=21 < d(2,0)=31, so node 2's nearest remote is node 1
  // — ring order would say node 0 first.
  EXPECT_EQ(t->remote_order(2), (std::vector<unsigned>{1, 0}));
  EXPECT_EQ(t->remote_order(0), (std::vector<unsigned>{1, 2}));
}

TEST(TopologySysfs, SmtFixtureCompactOrderFillsCoresBeforeSiblings) {
  auto t = Topology::from_sysfs(fixture("smt"), /*simulated=*/true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node_count(), 1u);
  EXPECT_EQ(t->cpu_count(), 8u);
  // Siblings are adjacent (cpu0/cpu1 share core 0); compact placement must
  // visit one hyperthread per core before doubling up.
  const Topology::PinSpec compact{Policy::kCompact, 0};
  std::vector<unsigned> order;
  for (unsigned i = 0; i < 8; ++i) order.push_back(t->cpu_for(compact, i));
  EXPECT_EQ(order, (std::vector<unsigned>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(TopologySysfs, EmptyFixtureRejectedWhenSimulated) {
  EXPECT_FALSE(Topology::from_sysfs(fixture("does_not_exist"),
                                    /*simulated=*/true)
                   .has_value());
}

// --- flat fallback ---------------------------------------------------------

TEST(TopologyFlat, SingleNodeOverAllCpus) {
  Topology t = Topology::flat(6);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.cpu_count(), 6u);
  EXPECT_FALSE(t.simulated());
  EXPECT_TRUE(t.remote_order(0).empty());
  for (unsigned c = 0; c < 6; ++c) EXPECT_EQ(t.node_of_cpu(c), 0u);
}

TEST(TopologyFlat, DetectNeverFails) {
  Topology t = Topology::detect();
  EXPECT_GE(t.node_count(), 1u);
  EXPECT_GE(t.cpu_count(), 1u);
}

// --- pin policies ----------------------------------------------------------

TEST(TopologyPin, ParsePinSpecs) {
  EXPECT_EQ(Topology::parse_pin_spec("rr")->policy, Policy::kRoundRobin);
  EXPECT_EQ(Topology::parse_pin_spec("compact")->policy, Policy::kCompact);
  EXPECT_EQ(Topology::parse_pin_spec("scatter")->policy, Policy::kScatter);
  const auto node2 = Topology::parse_pin_spec("node:2");
  ASSERT_TRUE(node2.has_value());
  EXPECT_EQ(node2->policy, Policy::kNode);
  EXPECT_EQ(node2->node, 2u);
  EXPECT_FALSE(Topology::parse_pin_spec("node:").has_value());
  EXPECT_FALSE(Topology::parse_pin_spec("node:2x").has_value());
  EXPECT_FALSE(Topology::parse_pin_spec("bogus").has_value());
}

TEST(TopologyPin, PoliciesOnTwoNodeSpec) {
  auto t = Topology::from_spec("0-1;2-3");
  ASSERT_TRUE(t.has_value());
  // rr walks cpu ids in order, wrapping.
  EXPECT_EQ(t->cpu_for({Policy::kRoundRobin, 0}, 0), 0u);
  EXPECT_EQ(t->cpu_for({Policy::kRoundRobin, 0}, 3), 3u);
  EXPECT_EQ(t->cpu_for({Policy::kRoundRobin, 0}, 4), 0u);
  // scatter alternates nodes: thread i lands on node i % 2.
  EXPECT_EQ(t->node_for({Policy::kScatter, 0}, 0), 0u);
  EXPECT_EQ(t->node_for({Policy::kScatter, 0}, 1), 1u);
  EXPECT_EQ(t->node_for({Policy::kScatter, 0}, 2), 0u);
  EXPECT_EQ(t->node_for({Policy::kScatter, 0}, 3), 1u);
  // node:k confines every thread to that node, wrapping within it.
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(t->node_for({Policy::kNode, 1}, i), 1u);
  }
  // compact fills node 0 completely before node 1.
  EXPECT_EQ(t->node_for({Policy::kCompact, 0}, 0), 0u);
  EXPECT_EQ(t->node_for({Policy::kCompact, 0}, 1), 0u);
  EXPECT_EQ(t->node_for({Policy::kCompact, 0}, 2), 1u);
  EXPECT_EQ(t->node_for({Policy::kCompact, 0}, 3), 1u);
}

// --- thread-node override --------------------------------------------------

TEST(TopologyOverride, ScopedThreadNodeSetsAndRestores) {
  auto t = Topology::from_spec("0-1;2-3");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(Topology::thread_node_override(), Topology::kUnsetNode);
  {
    ScopedThreadNode on_node1(1);
    EXPECT_EQ(t->current_node(), 1u);
    {
      ScopedThreadNode on_node0(0);
      EXPECT_EQ(t->current_node(), 0u);
    }
    EXPECT_EQ(t->current_node(), 1u);
  }
  EXPECT_EQ(Topology::thread_node_override(), Topology::kUnsetNode);
}

TEST(TopologyOverride, OverrideClampsIntoRange) {
  auto t = Topology::from_spec("0-1;2-3");
  ASSERT_TRUE(t.has_value());
  ScopedThreadNode way_out(7);
  EXPECT_LT(t->current_node(), t->node_count());
}

}  // namespace
}  // namespace wcq
