// Backoff helper: the escalation ladder (spin rounds, then yield) and reset
// semantics that the livelock fixes in the test harness and queues rely on.
#include "common/backoff.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace wcq {
namespace {

TEST(Backoff, StartsInSpinPhase) {
  Backoff bo;
  EXPECT_EQ(bo.round(), 0u);
  EXPECT_EQ(bo.yields(), 0u);
  EXPECT_FALSE(bo.yielding());
}

TEST(Backoff, EscalatesToYieldAfterSpinRounds) {
  Backoff bo;
  for (std::uint32_t i = 0; i < Backoff::kSpinRounds; ++i) {
    EXPECT_FALSE(bo.yielding()) << "escalated early at round " << i;
    bo.pause();
  }
  EXPECT_TRUE(bo.yielding());
  EXPECT_EQ(bo.yields(), 0u) << "spin rounds must not yield";
  bo.pause();
  EXPECT_EQ(bo.yields(), 1u);
  bo.pause();
  EXPECT_EQ(bo.yields(), 2u);
}

TEST(Backoff, ResetRestartsTheLadder) {
  Backoff bo;
  for (std::uint32_t i = 0; i < Backoff::kSpinRounds + 3; ++i) bo.pause();
  EXPECT_TRUE(bo.yielding());
  bo.reset();
  EXPECT_FALSE(bo.yielding());
  EXPECT_EQ(bo.round(), 0u);
  bo.pause();
  EXPECT_EQ(bo.yields(), 3u) << "reset must not erase the yield count";
  EXPECT_EQ(bo.round(), 1u);
}

TEST(Backoff, CustomSpinRounds) {
  Backoff bo(2);
  EXPECT_EQ(bo.spin_rounds(), 2u);
  bo.pause();
  bo.pause();
  EXPECT_TRUE(bo.yielding());
  Backoff eager(0);  // yield immediately: pure-yield waiter
  EXPECT_TRUE(eager.yielding());
  eager.pause();
  EXPECT_EQ(eager.yields(), 1u);
}

TEST(Backoff, UntilHonorsDeadlineOnlyAfterSpinPhase) {
  // The deadline check is deferred to the yield phase: an already-expired
  // deadline still lets the cheap spin rounds run (they cost microseconds
  // and no clock read), and only the first would-be yield reports expiry.
  Backoff bo;
  const auto past = std::chrono::steady_clock::now() - std::chrono::hours(1);
  for (std::uint32_t i = 0; i < Backoff::kSpinRounds; ++i) {
    EXPECT_TRUE(bo.until(past)) << "spin round " << i << " checked the clock";
  }
  EXPECT_TRUE(bo.yielding());
  EXPECT_FALSE(bo.until(past));
  EXPECT_EQ(bo.yields(), 0u) << "expired deadline must not yield";
}

TEST(Backoff, UntilKeepsPausingBeforeDeadline) {
  Backoff bo(0);  // pure-yield ladder: every until() reads the clock
  const auto far = std::chrono::steady_clock::now() + std::chrono::hours(1);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(bo.until(far));
  EXPECT_EQ(bo.yields(), 3u);
}

TEST(Backoff, UntilExpiresWithinTolerance) {
  // A waiter looping on until() stops within a bounded overshoot of the
  // deadline (the ladder's spin phase, microseconds — 1s is a generous CI
  // bound).
  Backoff bo;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  while (bo.until(deadline)) {
  }
  const auto overshoot = std::chrono::steady_clock::now() - deadline;
  EXPECT_GE(overshoot.count(), 0);
  EXPECT_LT(overshoot, std::chrono::seconds(1));
}

TEST(Backoff, CpuRelaxExecutesOnThisIsa) {
  // cpu_relax() must emit a real instruction on every supported ISA (PAUSE
  // on x86, ISB on AArch64 — the aarch64 qemu CI job executes this path;
  // compiler barrier elsewhere) and never trap or block. One full spin
  // round's worth of calls is the smoke budget.
  for (int i = 0; i < (1 << Backoff::kMaxRelaxShift); ++i) cpu_relax();
  SUCCEED();
}

TEST(Backoff, LadderStillEscalatesPastTheSpinHint) {
  // Regression guard for the AArch64 ISB spin hint: a stronger (slower)
  // cpu_relax must not change the escalation contract — after kSpinRounds
  // pause() calls the ladder donates the quantum via
  // std::this_thread::yield(), which the 1-core livelock fix relies on.
  Backoff bo;
  while (!bo.yielding()) bo.pause();
  EXPECT_EQ(bo.round(), Backoff::kSpinRounds);
  EXPECT_EQ(bo.yields(), 0u);
  bo.pause();
  EXPECT_EQ(bo.yields(), 1u);
}

TEST(Backoff, HandoffCompletesOnOversubscribedHost) {
  // The livelock regression in miniature: two threads ping-pong a flag more
  // times than any plausible scheduling-quantum budget would allow if the
  // waiters never yielded. Completing at all (under the CTest timeout) is
  // the assertion; on a 1-core host this hangs without the yield escalation.
  std::atomic<int> turn{0};
  constexpr int kRounds = 2000;
  std::thread a([&] {
    Backoff bo;
    for (int i = 0; i < kRounds; ++i) {
      while (turn.load(std::memory_order_acquire) != 0) bo.pause();
      bo.reset();
      turn.store(1, std::memory_order_release);
    }
  });
  std::thread b([&] {
    Backoff bo;
    for (int i = 0; i < kRounds; ++i) {
      while (turn.load(std::memory_order_acquire) != 1) bo.pause();
      bo.reset();
      turn.store(0, std::memory_order_release);
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(turn.load(), 0);
}

}  // namespace
}  // namespace wcq
