// Backoff helper: the escalation ladder (spin rounds, then yield) and reset
// semantics that the livelock fixes in the test harness and queues rely on.
#include "common/backoff.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace wcq {
namespace {

TEST(Backoff, StartsInSpinPhase) {
  Backoff bo;
  EXPECT_EQ(bo.round(), 0u);
  EXPECT_EQ(bo.yields(), 0u);
  EXPECT_FALSE(bo.yielding());
}

TEST(Backoff, EscalatesToYieldAfterSpinRounds) {
  Backoff bo;
  for (std::uint32_t i = 0; i < Backoff::kSpinRounds; ++i) {
    EXPECT_FALSE(bo.yielding()) << "escalated early at round " << i;
    bo.pause();
  }
  EXPECT_TRUE(bo.yielding());
  EXPECT_EQ(bo.yields(), 0u) << "spin rounds must not yield";
  bo.pause();
  EXPECT_EQ(bo.yields(), 1u);
  bo.pause();
  EXPECT_EQ(bo.yields(), 2u);
}

TEST(Backoff, ResetRestartsTheLadder) {
  Backoff bo;
  for (std::uint32_t i = 0; i < Backoff::kSpinRounds + 3; ++i) bo.pause();
  EXPECT_TRUE(bo.yielding());
  bo.reset();
  EXPECT_FALSE(bo.yielding());
  EXPECT_EQ(bo.round(), 0u);
  bo.pause();
  EXPECT_EQ(bo.yields(), 3u) << "reset must not erase the yield count";
  EXPECT_EQ(bo.round(), 1u);
}

TEST(Backoff, CustomSpinRounds) {
  Backoff bo(2);
  EXPECT_EQ(bo.spin_rounds(), 2u);
  bo.pause();
  bo.pause();
  EXPECT_TRUE(bo.yielding());
  Backoff eager(0);  // yield immediately: pure-yield waiter
  EXPECT_TRUE(eager.yielding());
  eager.pause();
  EXPECT_EQ(eager.yields(), 1u);
}

TEST(Backoff, HandoffCompletesOnOversubscribedHost) {
  // The livelock regression in miniature: two threads ping-pong a flag more
  // times than any plausible scheduling-quantum budget would allow if the
  // waiters never yielded. Completing at all (under the CTest timeout) is
  // the assertion; on a 1-core host this hangs without the yield escalation.
  std::atomic<int> turn{0};
  constexpr int kRounds = 2000;
  std::thread a([&] {
    Backoff bo;
    for (int i = 0; i < kRounds; ++i) {
      while (turn.load(std::memory_order_acquire) != 0) bo.pause();
      bo.reset();
      turn.store(1, std::memory_order_release);
    }
  });
  std::thread b([&] {
    Backoff bo;
    for (int i = 0; i < kRounds; ++i) {
      while (turn.load(std::memory_order_acquire) != 1) bo.pause();
      bo.reset();
      turn.store(0, std::memory_order_release);
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(turn.load(), 0);
}

}  // namespace
}  // namespace wcq
