// SpmcRing (DESIGN.md §13) unit, counter, and concurrency tests: the SCQ
// dual whose single-producer side owns Tail with plain loads and seq_cst
// stores (no F&A) and re-arms the threshold with a store instead of a MAX
// RMW; the multi-consumer dequeue side is SCQ verbatim minus the catchup
// (the producer pulls Tail up itself).
#include "core/spmc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "common/op_counters.hpp"
#include "core/bounded_queue.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

TEST(SpmcRing, StartsEmpty) {
  SpmcRing q(4);
  EXPECT_EQ(q.capacity(), 16u);
  EXPECT_EQ(q.ring_size(), 32u);
  EXPECT_EQ(q.threshold(), -1);
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(SpmcRing, SingleElementRoundTrip) {
  SpmcRing q(4);
  q.enqueue(7);
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(SpmcRing, FifoOrderWithinCapacity) {
  SpmcRing q(6);
  for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
  for (u64 i = 0; i < q.capacity(); ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(SpmcRing, WraparoundManyCycles) {
  SpmcRing q(3);
  for (u64 i = 0; i < 10000; ++i) {
    q.enqueue(i % q.capacity());
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(SpmcRing, FullCapacityIsUsable) {
  SpmcRing q(8);
  for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
  u64 count = 0;
  while (q.dequeue().has_value()) ++count;
  EXPECT_EQ(count, q.capacity());
}

TEST(SpmcRing, ThresholdLifecycleKept) {
  // The threshold referees the concurrent consumers, so unlike MpscRing it
  // stays: enqueue re-arms to 3n-1 (by store, not RMW), failed dequeues
  // decay it below zero, after which dequeue is a constant-time load.
  SpmcRing q(4);
  q.enqueue(0);
  EXPECT_EQ(q.threshold(), static_cast<i64>(3 * q.capacity() - 1));
  ASSERT_TRUE(q.dequeue().has_value());
  for (u64 i = 0; i <= 4 * q.capacity(); ++i) {
    ASSERT_FALSE(q.dequeue().has_value());
  }
  EXPECT_LT(q.threshold(), 0);
  const u64 head_before = q.head();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(q.dequeue().has_value());
  }
  EXPECT_EQ(q.head(), head_before) << "empty dequeues still touched Head";
  q.enqueue(3);
  EXPECT_EQ(q.dequeue().value(), 3u);
}

TEST(SpmcRing, BulkRoundTripPreservesFifo) {
  SpmcRing q(6);
  u64 in[48], out[48];
  for (u64 i = 0; i < 48; ++i) in[i] = i;
  q.enqueue_bulk(in, 48);
  std::size_t got = 0;
  while (got < 48) {
    const std::size_t k = q.dequeue_bulk(out + got, 48 - got);
    if (k == 0) break;
    got += k;
  }
  ASSERT_EQ(got, 48u);
  for (u64 i = 0; i < 48; ++i) ASSERT_EQ(out[i], i);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(SpmcRing, ProducerPathCountsNoFaa) {
  // The dual of the MPSC consumer zeros: the single producer advances Tail
  // with plain stores, so enqueues — single and bulk — issue zero F&As.
  // (Threshold re-arms remain, demoted from RMW to store; the dequeue side
  // still pays the SCQ Head F&A.)
  SpmcRing q(6);
  u64 in[32];
  for (u64 i = 0; i < 32; ++i) in[i] = i;
  const auto before = opcount::snapshot();
  q.enqueue_bulk(in, 32);
  for (u64 i = 0; i < 16; ++i) q.enqueue(i);
  const auto after = opcount::snapshot();
  EXPECT_EQ(after.faa - before.faa, 0u) << "producer path issued a Tail F&A";

  const auto before_deq = opcount::snapshot();
  ASSERT_TRUE(q.dequeue().has_value());
  const auto after_deq = opcount::snapshot();
  EXPECT_EQ(after_deq.faa - before_deq.faa, 1u)
      << "dequeue must still reserve its rank with one Head F&A";
}

TEST(SpmcRing, HandleOpsRoundTrip) {
  SpmcRing q(5);
  auto h = q.handle();
  for (u64 i = 0; i < 4 * q.capacity(); ++i) {
    q.enqueue(h, i % q.capacity());
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
}

TEST(SpmcRing, ResetUnbindsProducerSession) {
  SpmcRing q(4);
  q.enqueue(1);  // binds this thread as the producer
  ASSERT_TRUE(q.dequeue().has_value());
  q.reset();
  std::thread t([&] {
    q.enqueue(9);  // would trap if the old binding survived reset
  });
  t.join();
  EXPECT_EQ(q.dequeue().value(), 9u);
}

TEST(SpmcRing, ReleaseSessionsRebinds) {
  SpmcRing q(4);
  q.enqueue(1);
  q.release_sessions();
  std::thread t([&] { q.enqueue(2); });
  t.join();
  EXPECT_EQ(q.dequeue().value(), 1u);
  EXPECT_EQ(q.dequeue().value(), 2u);
}

// Single-producer/multi-consumer exact-count checks — the ring's whole
// degree contract — named into the stress bucket.

TEST(SpmcRing, LinearizabilityOneProducerManyConsumers) {
  SpmcRing q(10);
  testing::run_mpmc_count_exact(q, 1, 7, 120000);
}

TEST(SpmcRing, LinearizabilitySmallRingContention) {
  SpmcRing q(3);  // capacity 8 with 5 consumers: constant wraparound
  testing::run_mpmc_count_exact(q, 1, 5, 80000);
}

// Fig 2 composition: BoundedQueue<T, SpmcRing> (aq is SPMC, fq stays the
// MPMC SCQ — consumers return indices cross-thread), magazines on and off.

TEST(SpmcRing, BoundedMagazinesOnExactlyOnce) {
  BoundedQueue<u64, SpmcRing> q(
      typename BoundedQueue<u64, SpmcRing>::Options{7, {}});
  testing::MpmcConfig cfg;
  cfg.producers = 1;
  cfg.consumers = 6;
  cfg.items_per_producer = 120000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TEST(SpmcRing, BoundedMagazinesOffExactlyOnce) {
  BoundedQueue<u64, SpmcRing> q(typename BoundedQueue<u64, SpmcRing>::Options{
      7, {.enabled = false, .capacity = 16}});
  testing::MpmcConfig cfg;
  cfg.producers = 1;
  cfg.consumers = 6;
  cfg.items_per_producer = 120000;
  testing::run_mpmc_exactly_once(q, cfg);
}

// Death tests fork the process; under TSan that is unreliable, so the
// misuse diagnostics are asserted in the release/asan CI jobs only.
#if defined(__SANITIZE_THREAD__)
#define WCQ_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "death tests fork; skipped under TSan"
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WCQ_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "death tests fork; skipped under TSan"
#else
#define WCQ_SKIP_UNDER_TSAN() (void)0
#endif
#else
#define WCQ_SKIP_UNDER_TSAN() (void)0
#endif

TEST(SpmcRingDeathTest, SecondProducerSessionTraps) {
  WCQ_SKIP_UNDER_TSAN();
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SpmcRing q(4);
        q.enqueue(1);  // binds this thread as the producer
        std::thread([&] { q.enqueue(2); }).join();  // second session
      },
      "second producer session");
}

}  // namespace
}  // namespace wcq
