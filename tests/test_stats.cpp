#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wcq {
namespace {

TEST(Stats, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.cv, 0.0);
}

TEST(Stats, SingleSample) {
  const Summary s = summarize({42.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(Stats, KnownValues) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev of this classic set is sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(s.cv, s.stddev / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, ConstantSeriesHasZeroCv) {
  const Summary s = summarize({3.3, 3.3, 3.3, 3.3});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
}

}  // namespace
}  // namespace wcq
