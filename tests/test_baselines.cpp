// All baseline queues run through the same MPMC correctness suite the core
// queues use (exactly-once, per-producer FIFO, empty semantics), plus
// algorithm-specific checks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baselines/cc_queue.hpp"
#include "baselines/crturn_queue.hpp"
#include "baselines/faa_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/ymc_queue.hpp"
#include "mpmc_harness.hpp"
#include "reclaim/hazard_pointers.hpp"

namespace wcq {
namespace {

template <typename Queue>
class BaselineQueueTest : public ::testing::Test {};

using BaselineTypes =
    ::testing::Types<MSQueue, CCQueue, LCRQ, YMCQueue, CRTurnQueue>;
TYPED_TEST_SUITE(BaselineQueueTest, BaselineTypes);

TYPED_TEST(BaselineQueueTest, StartsEmpty) {
  TypeParam q;
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_FALSE(q.dequeue().has_value());
}

TYPED_TEST(BaselineQueueTest, SequentialFifo) {
  TypeParam q;
  testing::run_sequential_fifo(q, 5000);
}

TYPED_TEST(BaselineQueueTest, BurstWraparound) {
  TypeParam q;
  testing::run_sequential_wraparound(q, 512, 50);
}

TYPED_TEST(BaselineQueueTest, AlternatingEmptyNonEmpty) {
  TypeParam q;
  for (u64 i = 0; i < 2000; ++i) {
    ASSERT_TRUE(q.enqueue(i));
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
    ASSERT_FALSE(q.dequeue().has_value());
  }
}

TYPED_TEST(BaselineQueueTest, MpmcExactlyOnce) {
  TypeParam q;
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  cfg.items_per_producer = 20000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TYPED_TEST(BaselineQueueTest, MpmcAsymmetric) {
  {
    TypeParam q;
    testing::MpmcConfig cfg;
    cfg.producers = 6;
    cfg.consumers = 2;
    cfg.items_per_producer = 10000;
    testing::run_mpmc_exactly_once(q, cfg);
  }
  {
    TypeParam q;
    testing::MpmcConfig cfg;
    cfg.producers = 2;
    cfg.consumers = 6;
    cfg.items_per_producer = 10000;
    testing::run_mpmc_exactly_once(q, cfg);
  }
}

TYPED_TEST(BaselineQueueTest, SpscOrder) {
  TypeParam q;
  const u64 kItems = testing::scale_items(100000);
  std::thread prod([&] {
    Backoff bo;
    for (u64 i = 0; i < kItems; ++i) {
      bo.reset();
      while (!q.enqueue(i)) bo.pause();
    }
  });
  u64 expect = 0;
  Backoff bo;
  while (expect < kItems) {
    if (auto v = q.dequeue()) {
      ASSERT_EQ(*v, expect);
      ++expect;
      bo.reset();
    } else {
      bo.pause();  // empty: wait for the producer
    }
  }
  prod.join();
  EXPECT_FALSE(q.dequeue().has_value());
}

// --- algorithm-specific behaviors -------------------------------------------

TEST(Faa, IsOnlyAThroughputProxy) {
  // FAA is not a real queue (paper §6): it only mimics the F&A traffic of
  // ring queues. Each Dequeue consumes a rank unconditionally, so verify
  // just the counter contract, not value transfer.
  FAAQueue q;
  EXPECT_FALSE(q.dequeue().has_value());  // consumes rank 0
  EXPECT_TRUE(q.enqueue(42));             // produces rank 0 (already passed)
  EXPECT_TRUE(q.enqueue(43));             // produces rank 1
  EXPECT_TRUE(q.dequeue().has_value());   // rank 1 < tail 2: "succeeds"
  EXPECT_FALSE(q.dequeue().has_value());  // rank 2 >= tail 2: empty
}

TEST(Lcrq, ClosesRingsUnderPressureAndRecovers) {
  // A tiny ring closes constantly; the outer list must keep FIFO intact.
  LCRQ q(/*ring_order=*/3);
  testing::run_sequential_fifo(q, 1000);
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  cfg.items_per_producer = 10000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TEST(Lcrq, FullRingClosesAndAppendsAFreshOne) {
  // The memory-behavior hook behind Fig 10: a full (or starved) CRQ closes
  // and a new ring is allocated; elements keep flowing in FIFO order.
  const auto before = alloc_meter::total_allocations();
  LCRQ q(/*ring_order=*/3);  // 8 slots
  for (u64 i = 0; i < 64; ++i) {
    ASSERT_TRUE(q.enqueue(i));  // overflows the first ring several times
  }
  EXPECT_GT(alloc_meter::total_allocations() - before, 1)
      << "expected at least one closed ring to be replaced";
  for (u64 i = 0; i < 64; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i) << "FIFO broken across ring boundary";
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Ymc, SegmentsAreReclaimed) {
  YMCQueue q;
  // Push both indices through many segments; reclamation should keep the
  // linked-segment count bounded near the reclaim cadence, not O(ops).
  const u64 ops = 20 * YMCQueue::kSegCells;
  for (u64 i = 0; i < ops; ++i) {
    ASSERT_TRUE(q.enqueue(i));
    ASSERT_TRUE(q.dequeue().has_value());
  }
  HazardDomain::global().drain();  // quiescent: flush retired segments
  EXPECT_LT(q.live_segments(), 10u) << "segment list grew without bound";
}

TEST(Ymc, PoisonedCellsDoNotLoseElements) {
  // Consumers overshoot producers constantly; every element must survive.
  YMCQueue q;
  testing::MpmcConfig cfg;
  cfg.producers = 2;
  cfg.consumers = 6;
  cfg.items_per_producer = 15000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TEST(CrTurn, EnqueueHelpingUnderContention) {
  // Many producers force the turn-based append path to interleave heavily.
  CRTurnQueue q;
  testing::MpmcConfig cfg;
  cfg.producers = 8;
  cfg.consumers = 2;
  cfg.items_per_producer = 10000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TEST(CcQueue, CombinerBatchesPreserveOrder) {
  CCQueue q;
  // Sequential FIFO exercised through the combiner path repeatedly.
  for (int round = 0; round < 20; ++round) {
    for (u64 i = 0; i < 500; ++i) ASSERT_TRUE(q.enqueue(i));
    for (u64 i = 0; i < 500; ++i) {
      auto v = q.dequeue();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, i);
    }
  }
}

}  // namespace
}  // namespace wcq
