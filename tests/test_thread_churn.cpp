// Thread-churn tests: queues whose users are short-lived threads.
//
// wCQ keeps per-thread help records indexed by the process-wide registry
// tid; tids are recycled when threads exit. These tests verify that record
// reuse across unrelated threads (and across queue types sharing the
// registry) never corrupts queue state — the seq1/seq2 request-generation
// protocol must make a recycled record indistinguishable from a fresh one.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baselines/crturn_queue.hpp"
#include "core/bounded_queue.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {
namespace {

TEST(ThreadChurn, SequentialEphemeralThreads) {
  BoundedQueue<u64> q(6);
  // 300 generations of short-lived producer/consumer pairs; tids recycle.
  for (int gen = 0; gen < 300; ++gen) {
    std::thread prod([&, gen] {
      for (u64 i = 0; i < 50; ++i) {
        ASSERT_TRUE(q.enqueue(static_cast<u64>(gen) * 100 + i));
      }
    });
    prod.join();
    std::thread cons([&, gen] {
      for (u64 i = 0; i < 50; ++i) {
        auto v = q.dequeue();
        ASSERT_TRUE(v.has_value());
        ASSERT_EQ(*v, static_cast<u64>(gen) * 100 + i);
      }
    });
    cons.join();
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(ThreadChurn, ConcurrentWavesWithSlowPath) {
  // Waves of threads come and go while the queue stays live; patience 1
  // forces helping across the recycled records.
  WCQ::Options o;
  o.order = 6;
  o.enq_patience = 1;
  o.deq_patience = 1;
  o.help_delay = 1;
  WCQ q(o);
  std::atomic<u64> balance{0};

  for (int wave = 0; wave < 20; ++wave) {
    std::vector<std::thread> ts;
    std::atomic<u64> produced{0}, consumed{0};
    for (int p = 0; p < 3; ++p) {
      ts.emplace_back([&] {
        for (int i = 0; i < 800; ++i) {
          if (balance.load(std::memory_order_relaxed) < q.capacity() / 2) {
            q.enqueue(1);
            balance.fetch_add(1, std::memory_order_relaxed);
            produced.fetch_add(1, std::memory_order_relaxed);
          } else if (q.dequeue()) {
            balance.fetch_sub(1, std::memory_order_relaxed);
            consumed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : ts) t.join();
    // No invariant on produced/consumed per wave; drained at the end.
  }
  u64 drained = 0;
  while (q.dequeue()) ++drained;
  EXPECT_EQ(drained, balance.load());
}

TEST(ThreadChurn, RegistrySharedAcrossQueueKinds) {
  // The same recycled tids serve a wCQ bounded queue and a CRTurn queue in
  // alternating generations; per-queue records must not interfere.
  BoundedQueue<u64> bq(5);
  CRTurnQueue cq;
  for (int gen = 0; gen < 100; ++gen) {
    std::thread t([&, gen] {
      for (u64 i = 0; i < 20; ++i) {
        if (gen % 2 == 0) {
          ASSERT_TRUE(bq.enqueue(i));
          ASSERT_EQ(bq.dequeue().value(), i);
        } else {
          ASSERT_TRUE(cq.enqueue(i));
          ASSERT_EQ(cq.dequeue().value(), i);
        }
      }
    });
    t.join();
  }
  EXPECT_FALSE(bq.dequeue().has_value());
  EXPECT_FALSE(cq.dequeue().has_value());
}

TEST(ThreadChurn, HighWaterPublicationUnderChurn) {
  // Churn regression for the high-water contract: high_water() must cover
  // every slot already handed out, and must be monotonic, while threads
  // register and exit concurrently. Each churning thread publishes its tid
  // (release) after registering; a reader that acquires the published tid
  // must observe high_water() > tid. (Note the test's own release/acquire
  // hand-off also orders the advance, so the release-vs-relaxed choice on
  // g_high_water itself is not distinguishable here — that pairing is
  // documented at the advance site in thread_registry.cpp and exists for
  // scanners that take high_water() as their only synchronization. This
  // test pins the invariant and would catch an advance that happens after
  // the slot becomes visible, or any non-monotonic update.)
  std::atomic<bool> stop{false};
  std::atomic<unsigned> published_tid{0};  // tid+1, 0 = none yet
  std::atomic<u64> checks{0};

  std::thread reader([&] {
    unsigned last_hw = ThreadRegistry::high_water();
    while (!stop.load(std::memory_order_acquire)) {
      const unsigned seen = published_tid.load(std::memory_order_acquire);
      const unsigned hw = ThreadRegistry::high_water();
      if (seen != 0) {
        ASSERT_GE(hw, seen) << "high_water lags a published registration";
      }
      ASSERT_GE(hw, last_hw) << "high_water must be monotonic";
      last_hw = hw;
      checks.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (int gen = 0; gen < 200; ++gen) {
    std::thread t([&] {
      const unsigned tid = ThreadRegistry::tid();  // registers this thread
      unsigned cur = published_tid.load(std::memory_order_relaxed);
      while (cur < tid + 1 &&
             !published_tid.compare_exchange_weak(
                 cur, tid + 1, std::memory_order_release,
                 std::memory_order_relaxed)) {
      }
    });
    t.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(checks.load(), 0u);
  EXPECT_GE(ThreadRegistry::high_water(), 1u);
}

TEST(ThreadChurn, HelpRequestsSurviveHelperExit) {
  // A requester's helpers may exit (and their tids be recycled) while the
  // request is still pending; the requester must still complete.
  WCQ::Options o;
  o.order = 4;
  o.enq_patience = 1;
  o.deq_patience = 1;
  o.help_delay = 1;
  WCQ q(o);
  std::atomic<bool> stop{false};
  std::atomic<u64> moved{0};

  std::thread longlived([&] {
    u64 in = 0, out = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (in - out < q.capacity()) {
        q.enqueue(in++ % q.capacity());
      }
      if (q.dequeue()) {
        ++out;
        moved.fetch_add(1, std::memory_order_relaxed);
      }
    }
    while (q.dequeue()) {
    }
  });
  // Churning helpers.
  for (int gen = 0; gen < 120; ++gen) {
    std::thread helper([&] {
      for (int i = 0; i < 200; ++i) {
        q.enqueue(0);
        (void)q.dequeue();
      }
    });
    helper.join();
  }
  stop.store(true, std::memory_order_release);
  longlived.join();
  EXPECT_GT(moved.load(), 0u);
}

}  // namespace
}  // namespace wcq
