#include "core/remap.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wcq {
namespace {

struct RemapCase {
  u64 ring_size;
  std::size_t slot_bytes;
};

class RemapTest : public ::testing::TestWithParam<RemapCase> {};

TEST_P(RemapTest, IsAPermutation) {
  const auto [size, bytes] = GetParam();
  CacheRemap remap(size, bytes);
  std::vector<bool> hit(size, false);
  for (u64 i = 0; i < size; ++i) {
    const u64 j = remap(i);
    ASSERT_LT(j, size);
    ASSERT_FALSE(hit[j]) << "position " << j << " mapped twice";
    hit[j] = true;
  }
}

TEST_P(RemapTest, AdjacentPositionsLandOnDifferentLines) {
  const auto [size, bytes] = GetParam();
  CacheRemap remap(size, bytes);
  if (!remap.enabled()) GTEST_SKIP() << "identity map for tiny rings";
  const u64 per_line = kCacheLine / bytes;
  for (u64 i = 0; i + 1 < size; ++i) {
    const u64 line_a = remap(i) / per_line;
    const u64 line_b = remap(i + 1) / per_line;
    ASSERT_NE(line_a, line_b) << "positions " << i << "," << i + 1
                              << " share a cache line";
  }
}

TEST_P(RemapTest, LineReuseDistanceIsMaximal) {
  const auto [size, bytes] = GetParam();
  CacheRemap remap(size, bytes);
  if (!remap.enabled()) GTEST_SKIP();
  const u64 per_line = kCacheLine / bytes;
  const u64 lines = size / per_line;
  // The transpose map revisits a line exactly every `lines` steps.
  for (u64 i = 0; i + lines < size; i += lines / 3 + 1) {
    EXPECT_EQ(remap(i) / per_line, remap(i + lines) / per_line);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RemapTest,
    ::testing::Values(RemapCase{1u << 16, 8}, RemapCase{1u << 16, 16},
                      RemapCase{1u << 6, 8}, RemapCase{1u << 6, 16},
                      RemapCase{16, 8}, RemapCase{4, 16}));

TEST(Remap, DisabledIsIdentity) {
  CacheRemap remap(1 << 10, 8, /*enabled=*/false);
  EXPECT_FALSE(remap.enabled());
  for (u64 i = 0; i < (1 << 10); ++i) EXPECT_EQ(remap(i), i);
}

TEST(Remap, TinyRingFallsBackToIdentity) {
  CacheRemap remap(4, 8);  // 4 entries fit in one line: nothing to spread
  EXPECT_FALSE(remap.enabled());
  for (u64 i = 0; i < 4; ++i) EXPECT_EQ(remap(i), i);
}

}  // namespace
}  // namespace wcq
