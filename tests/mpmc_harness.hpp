// Shared multi-producer/multi-consumer correctness harness.
//
// Every queue in this library (the wCQ/SCQ rings, the Fig 2 bounded queues,
// the unbounded queue, and all six baselines) is exercised through the same
// checks:
//
//   * exactly-once: every enqueued item is dequeued exactly once, nothing
//     is invented, nothing is lost;
//   * per-producer FIFO: items from one producer are observed in order by
//     whichever consumers receive them (FIFO linearizability implies this);
//   * terminal emptiness: after all items are consumed the queue reports
//     empty.
//
// Items are tagged (producer id << 32 | sequence) so both properties are
// checkable from the consumer side alone.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/cpu.hpp"

namespace wcq::testing {

using u64 = std::uint64_t;

struct MpmcConfig {
  unsigned producers = 4;
  unsigned consumers = 4;
  u64 items_per_producer = 20000;
  bool pin = false;
};

inline u64 tag(unsigned producer, u64 seq) {
  return (static_cast<u64>(producer) << 32) | seq;
}

// Queue concept: bool enqueue(u64) (false = full, retry) and
// std::optional<u64> dequeue() (nullopt = empty).
template <typename Queue>
void run_mpmc_exactly_once(Queue& q, const MpmcConfig& cfg) {
  const u64 total = cfg.items_per_producer * cfg.producers;
  std::atomic<u64> consumed{0};
  std::atomic<bool> start{false};

  // Per-consumer logs of observed items, merged and checked afterwards.
  std::vector<std::vector<u64>> logs(cfg.consumers);

  std::vector<std::thread> threads;
  threads.reserve(cfg.producers + cfg.consumers);

  for (unsigned p = 0; p < cfg.producers; ++p) {
    threads.emplace_back([&, p] {
      if (cfg.pin) pin_thread(p);
      while (!start.load(std::memory_order_acquire)) cpu_relax();
      for (u64 i = 0; i < cfg.items_per_producer; ++i) {
        while (!q.enqueue(tag(p, i))) cpu_relax();
      }
    });
  }
  for (unsigned c = 0; c < cfg.consumers; ++c) {
    threads.emplace_back([&, c] {
      if (cfg.pin) pin_thread(cfg.producers + c);
      auto& log = logs[c];
      log.reserve(total / cfg.consumers + 16);
      while (!start.load(std::memory_order_acquire)) cpu_relax();
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (auto v = q.dequeue()) {
          log.push_back(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          cpu_relax();
        }
      }
    });
  }

  start.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  ASSERT_EQ(consumed.load(), total);
  ASSERT_FALSE(q.dequeue().has_value()) << "queue not empty at the end";

  // exactly-once + per-producer FIFO.
  std::vector<std::vector<u64>> seen(cfg.producers);
  for (unsigned c = 0; c < cfg.consumers; ++c) {
    std::vector<u64> last(cfg.producers, 0);
    std::vector<bool> has_last(cfg.producers, false);
    for (u64 v : logs[c]) {
      const unsigned p = static_cast<unsigned>(v >> 32);
      const u64 seq = v & 0xFFFFFFFFu;
      ASSERT_LT(p, cfg.producers) << "invented producer id";
      ASSERT_LT(seq, cfg.items_per_producer) << "invented sequence";
      if (has_last[p]) {
        ASSERT_GT(seq, last[p])
            << "per-producer FIFO violated within one consumer";
      }
      last[p] = seq;
      has_last[p] = true;
      seen[p].push_back(seq);
    }
  }
  for (unsigned p = 0; p < cfg.producers; ++p) {
    ASSERT_EQ(seen[p].size(), cfg.items_per_producer)
        << "producer " << p << " item count mismatch";
    std::vector<bool> mark(cfg.items_per_producer, false);
    for (u64 s : seen[p]) {
      ASSERT_FALSE(mark[s]) << "duplicate delivery of item " << s;
      mark[s] = true;
    }
  }
}

// Single-threaded strict-FIFO check, applicable to every queue type.
template <typename Queue>
void run_sequential_fifo(Queue& q, u64 n) {
  ASSERT_FALSE(q.dequeue().has_value());
  for (u64 i = 0; i < n; ++i) ASSERT_TRUE(q.enqueue(i));
  for (u64 i = 0; i < n; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i) << "FIFO order violated";
  }
  ASSERT_FALSE(q.dequeue().has_value());
}

// Interleaved enqueue/dequeue bursts exercising wraparound many times.
template <typename Queue>
void run_sequential_wraparound(Queue& q, u64 burst, u64 rounds) {
  u64 next_in = 0, next_out = 0;
  for (u64 r = 0; r < rounds; ++r) {
    for (u64 i = 0; i < burst; ++i) ASSERT_TRUE(q.enqueue(next_in++));
    for (u64 i = 0; i < burst; ++i) {
      auto v = q.dequeue();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, next_out++);
    }
    ASSERT_FALSE(q.dequeue().has_value());
  }
}

}  // namespace wcq::testing
