// Shared multi-producer/multi-consumer correctness harness.
//
// Every queue in this library (the wCQ/SCQ rings, the Fig 2 bounded queues,
// the unbounded queue, and all six baselines) is exercised through the same
// checks:
//
//   * exactly-once: every enqueued item is dequeued exactly once, nothing
//     is invented, nothing is lost;
//   * per-producer FIFO: items from one producer are observed in order by
//     whichever consumers receive them (FIFO linearizability implies this);
//   * terminal emptiness: after all items are consumed the queue reports
//     empty.
//
// Items are tagged (producer id << 32 | sequence) so both properties are
// checkable from the consumer side alone.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/align.hpp"  // u64/i64 aliases used below
#include "common/backoff.hpp"
#include "common/cpu.hpp"

namespace wcq::testing {

using u64 = std::uint64_t;

struct MpmcConfig {
  unsigned producers = 4;
  unsigned consumers = 4;
  u64 items_per_producer = 20000;
  bool pin = false;
};

// Scale a per-producer iteration count to the host. The counts written in
// the test files are tuned for an ~8-core machine; a 1-core CI runner gets
// 1/8 of them (still thousands of handoffs through every code path, but
// inside CTest timeouts), a 64-core box gets 8x (a real stress). Exactness
// assertions are unaffected: callers thread the scaled count through both
// the workload and the checks.
inline u64 scale_items(u64 base_per_producer) {
  static const unsigned hw = [] {
    unsigned h = std::thread::hardware_concurrency();
    if (h == 0) h = 1;
    return h < 64u ? h : 64u;
  }();
  constexpr unsigned kRefCores = 8;
  const u64 scaled = base_per_producer * hw / kRefCores;
  return scaled > 0 ? scaled : 1;
}

inline u64 tag(unsigned producer, u64 seq) {
  return (static_cast<u64>(producer) << 32) | seq;
}

// Post-run verification shared by the single-op and bulk harnesses:
// exactly-once always; per-producer FIFO when `check_fifo` (a sharded
// front-end routes one producer across shards, so only exactly-once holds
// globally — its per-shard FIFO is checked separately).
inline void check_consumer_logs(const std::vector<std::vector<u64>>& logs,
                                const MpmcConfig& cfg, u64 items_per_producer,
                                bool check_fifo) {
  std::vector<std::vector<u64>> seen(cfg.producers);
  for (unsigned c = 0; c < cfg.consumers; ++c) {
    std::vector<u64> last(cfg.producers, 0);
    std::vector<bool> has_last(cfg.producers, false);
    for (u64 v : logs[c]) {
      const unsigned p = static_cast<unsigned>(v >> 32);
      const u64 seq = v & 0xFFFFFFFFu;
      ASSERT_LT(p, cfg.producers) << "invented producer id";
      ASSERT_LT(seq, items_per_producer) << "invented sequence";
      if (check_fifo && has_last[p]) {
        ASSERT_GT(seq, last[p])
            << "per-producer FIFO violated within one consumer";
      }
      last[p] = seq;
      has_last[p] = true;
      seen[p].push_back(seq);
    }
  }
  for (unsigned p = 0; p < cfg.producers; ++p) {
    ASSERT_EQ(seen[p].size(), items_per_producer)
        << "producer " << p << " item count mismatch";
    std::vector<bool> mark(items_per_producer, false);
    for (u64 s : seen[p]) {
      ASSERT_FALSE(mark[s]) << "duplicate delivery of item " << s;
      mark[s] = true;
    }
  }
}

// Queue concept: bool enqueue(u64) (false = full, retry) and
// std::optional<u64> dequeue() (nullopt = empty).
template <typename Queue>
void run_mpmc_exactly_once(Queue& q, const MpmcConfig& cfg,
                           bool check_fifo = true) {
  const u64 items_per_producer = scale_items(cfg.items_per_producer);
  const u64 total = items_per_producer * cfg.producers;
  std::atomic<u64> consumed{0};
  std::atomic<bool> start{false};

  // Per-consumer logs of observed items, merged and checked afterwards.
  std::vector<std::vector<u64>> logs(cfg.consumers);

  std::vector<std::thread> threads;
  threads.reserve(cfg.producers + cfg.consumers);

  for (unsigned p = 0; p < cfg.producers; ++p) {
    threads.emplace_back([&, p] {
      if (cfg.pin) pin_thread(p);
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      for (u64 i = 0; i < items_per_producer; ++i) {
        bo.reset();
        while (!q.enqueue(tag(p, i))) bo.pause();  // full: wait for consumers
      }
    });
  }
  for (unsigned c = 0; c < cfg.consumers; ++c) {
    threads.emplace_back([&, c] {
      if (cfg.pin) pin_thread(cfg.producers + c);
      auto& log = logs[c];
      log.reserve(total / cfg.consumers + 16);
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      bo.reset();
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (auto v = q.dequeue()) {
          log.push_back(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
          bo.reset();
        } else {
          bo.pause();  // empty: wait for producers
        }
      }
      // Terminal emptiness, probed from a consumer thread: once `consumed`
      // hit `total` nothing can reappear, and single-consumer rings
      // (MpscRing) bind the dequeue role to this thread — a probe from the
      // orchestrator would be a second consumer session.
      ASSERT_FALSE(q.dequeue().has_value()) << "queue not empty at the end";
    });
  }

  start.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  ASSERT_EQ(consumed.load(), total);
  check_consumer_logs(logs, cfg, items_per_producer, check_fifo);
}

// Bulk-op linearizability harness: producers publish spans through
// enqueue_bulk (span lengths cycle through 1..max_batch, partial success
// retried from the unsent tail), consumers drain through dequeue_bulk. The
// exactly-once and per-producer-FIFO checks are the same as the single-op
// harness — batched spans must preserve program order end to end.
//
// Queue concept: size_t enqueue_bulk(u64*, size_t), size_t
// dequeue_bulk(u64*, size_t), std::optional<u64> dequeue() (for the terminal
// emptiness probe).
template <typename Queue>
void run_mpmc_bulk_exactly_once(Queue& q, const MpmcConfig& cfg,
                                unsigned max_batch = 16,
                                bool check_fifo = true) {
  constexpr unsigned kMaxSpan = 64;
  ASSERT_GE(max_batch, 1u);
  ASSERT_LE(max_batch, kMaxSpan);
  const u64 items_per_producer = scale_items(cfg.items_per_producer);
  const u64 total = items_per_producer * cfg.producers;
  std::atomic<u64> consumed{0};
  std::atomic<bool> start{false};
  std::vector<std::vector<u64>> logs(cfg.consumers);

  std::vector<std::thread> threads;
  threads.reserve(cfg.producers + cfg.consumers);

  for (unsigned p = 0; p < cfg.producers; ++p) {
    threads.emplace_back([&, p] {
      if (cfg.pin) pin_thread(p);
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      u64 buf[kMaxSpan];
      u64 next = 0;
      while (next < items_per_producer) {
        u64 span = 1 + (next + p) % max_batch;
        if (span > items_per_producer - next) span = items_per_producer - next;
        for (u64 k = 0; k < span; ++k) buf[k] = tag(p, next + k);
        std::size_t sent = 0;
        bo.reset();
        while (sent < span) {
          const std::size_t got = q.enqueue_bulk(buf + sent, span - sent);
          if (got == 0) {
            bo.pause();  // full: wait for consumers
          } else {
            bo.reset();
          }
          sent += got;
        }
        next += span;
      }
    });
  }
  for (unsigned c = 0; c < cfg.consumers; ++c) {
    threads.emplace_back([&, c] {
      if (cfg.pin) pin_thread(cfg.producers + c);
      auto& log = logs[c];
      log.reserve(total / cfg.consumers + 16);
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      u64 buf[kMaxSpan];
      u64 round = c;
      bo.reset();
      while (consumed.load(std::memory_order_relaxed) < total) {
        const u64 span = 1 + round++ % max_batch;
        const std::size_t got = q.dequeue_bulk(buf, span);
        if (got > 0) {
          log.insert(log.end(), buf, buf + got);
          consumed.fetch_add(got, std::memory_order_relaxed);
          bo.reset();
        } else {
          bo.pause();  // empty: wait for producers
        }
      }
      // In-thread terminal probe, as in run_mpmc_exactly_once: a consumer
      // role may be thread-bound (single-consumer rings).
      ASSERT_FALSE(q.dequeue().has_value()) << "queue not empty at the end";
    });
  }

  start.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  ASSERT_EQ(consumed.load(), total);
  check_consumer_logs(logs, cfg, items_per_producer, check_fifo);
}

// Count-based MPMC check on a raw index ring: each producer repeatedly
// enqueues its own id; totals per id must match exactly. A credit counter
// enforces the ring precondition (at most capacity() live indices): raw
// SCQ/wCQ Enqueue is only defined under that bound (paper §2, k <= n).
// `per_producer` is host-scaled like run_mpmc_exactly_once.
template <typename Ring>
void run_mpmc_count_exact(Ring& q, unsigned producers, unsigned consumers,
                          u64 per_producer) {
  ASSERT_LE(producers, q.capacity());
  per_producer = scale_items(per_producer);
  std::atomic<u64> consumed{0};
  std::atomic<i64> credits{static_cast<i64>(q.capacity())};
  const u64 total = per_producer * producers;
  std::vector<std::atomic<u64>> counts(producers);
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < producers; ++p) {
    ts.emplace_back([&, p] {
      Backoff bo;
      for (u64 i = 0; i < per_producer; ++i) {
        while (credits.fetch_sub(1, std::memory_order_acquire) <= 0) {
          credits.fetch_add(1, std::memory_order_release);
          bo.pause();  // no credit: wait for a consumer to free one
        }
        bo.reset();
        q.enqueue(p);
      }
    });
  }
  for (unsigned c = 0; c < consumers; ++c) {
    ts.emplace_back([&] {
      Backoff bo;
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (auto v = q.dequeue()) {
          ASSERT_LT(*v, producers);
          counts[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
          credits.fetch_add(1, std::memory_order_release);
          bo.reset();
        } else {
          bo.pause();  // empty: wait for a producer
        }
      }
      // In-thread terminal probe (see run_mpmc_exactly_once): the dequeue
      // role may be thread-bound on single-consumer rings.
      EXPECT_FALSE(q.dequeue().has_value());
    });
  }
  for (auto& t : ts) t.join();
  for (unsigned p = 0; p < producers; ++p) {
    EXPECT_EQ(counts[p].load(), per_producer) << "producer " << p;
  }
}

// Single-threaded strict-FIFO check, applicable to every queue type.
template <typename Queue>
void run_sequential_fifo(Queue& q, u64 n) {
  ASSERT_FALSE(q.dequeue().has_value());
  for (u64 i = 0; i < n; ++i) ASSERT_TRUE(q.enqueue(i));
  for (u64 i = 0; i < n; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i) << "FIFO order violated";
  }
  ASSERT_FALSE(q.dequeue().has_value());
}

// Interleaved enqueue/dequeue bursts exercising wraparound many times.
template <typename Queue>
void run_sequential_wraparound(Queue& q, u64 burst, u64 rounds) {
  u64 next_in = 0, next_out = 0;
  for (u64 r = 0; r < rounds; ++r) {
    for (u64 i = 0; i < burst; ++i) ASSERT_TRUE(q.enqueue(next_in++));
    for (u64 i = 0; i < burst; ++i) {
      auto v = q.dequeue();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, next_out++);
    }
    ASSERT_FALSE(q.dequeue().has_value());
  }
}

}  // namespace wcq::testing
