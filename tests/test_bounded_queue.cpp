// BoundedQueue (paper Fig 2 indirection) tests over both ring types.
#include "core/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/wcq_llsc.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

template <typename Ring>
class BoundedQueueTest : public ::testing::Test {};

using RingTypes = ::testing::Types<WCQ, SCQ, WCQLLSC>;
TYPED_TEST_SUITE(BoundedQueueTest, RingTypes);

TYPED_TEST(BoundedQueueTest, SequentialFifo) {
  BoundedQueue<u64, TypeParam> q(8);
  testing::run_sequential_fifo(q, q.capacity());
}

TYPED_TEST(BoundedQueueTest, Wraparound) {
  BoundedQueue<u64, TypeParam> q(4);
  testing::run_sequential_wraparound(q, q.capacity(), 200);
}

TYPED_TEST(BoundedQueueTest, FullSemantics) {
  BoundedQueue<u64, TypeParam> q(3);
  for (u64 i = 0; i < q.capacity(); ++i) {
    EXPECT_TRUE(q.enqueue(i)) << "queue full too early at " << i;
  }
  EXPECT_FALSE(q.enqueue(999)) << "enqueue must fail when full";
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0u);
  EXPECT_TRUE(q.enqueue(999)) << "one slot freed: enqueue must succeed";
  EXPECT_FALSE(q.enqueue(1000));
}

TYPED_TEST(BoundedQueueTest, MpmcExactlyOnce) {
  BoundedQueue<u64, TypeParam> q(10);
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  cfg.items_per_producer = 30000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TYPED_TEST(BoundedQueueTest, MpmcTinyQueueBackpressure) {
  BoundedQueue<u64, TypeParam> q(2);  // capacity 4: producers hit full often
  testing::MpmcConfig cfg;
  cfg.producers = 3;
  cfg.consumers = 3;
  cfg.items_per_producer = 10000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TYPED_TEST(BoundedQueueTest, AsymmetricProducersConsumers) {
  BoundedQueue<u64, TypeParam> q(8);
  testing::MpmcConfig cfg;
  cfg.producers = 7;
  cfg.consumers = 1;
  cfg.items_per_producer = 10000;
  testing::run_mpmc_exactly_once(q, cfg);
  BoundedQueue<u64, TypeParam> q2(8);
  cfg.producers = 1;
  cfg.consumers = 7;
  testing::run_mpmc_exactly_once(q2, cfg);
}

TYPED_TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>, TypeParam> q(4);
  EXPECT_TRUE(q.enqueue(std::make_unique<int>(41)));
  EXPECT_TRUE(q.enqueue(std::make_unique<int>(42)));
  auto a = q.dequeue();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(**a, 41);
  auto b = q.dequeue();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(**b, 42);
  EXPECT_FALSE(q.dequeue().has_value());
}

TYPED_TEST(BoundedQueueTest, StringPayload) {
  BoundedQueue<std::string, TypeParam> q(4);
  const std::string long_string(1000, 'x');  // heap-allocated payload
  EXPECT_TRUE(q.enqueue(long_string + "1"));
  EXPECT_TRUE(q.enqueue(long_string + "2"));
  EXPECT_EQ(q.dequeue().value(), long_string + "1");
  EXPECT_EQ(q.dequeue().value(), long_string + "2");
}

int g_payload_live = 0;
struct CountedPayload {
  bool owns = true;
  CountedPayload() { ++g_payload_live; }
  CountedPayload(CountedPayload&& o) noexcept {
    ++g_payload_live;
    o.owns = false;
  }
  CountedPayload(const CountedPayload&) = delete;
  ~CountedPayload() { --g_payload_live; }
};

TYPED_TEST(BoundedQueueTest, DestructorReleasesInFlightPayloads) {
  g_payload_live = 0;
  {
    BoundedQueue<CountedPayload, TypeParam> q(4);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q.enqueue(CountedPayload{}));
    }
    ASSERT_TRUE(q.dequeue().has_value());
  }
  EXPECT_EQ(g_payload_live, 0) << "payloads leaked by queue destructor";
}

// Construction/destruction ledger: every constructed instance must be
// destroyed exactly once. The heap canary turns a double-destruction into a
// double-free and a missed destruction into a leak, which the ASan preset
// reports even if the counters were fooled.
int g_ledger_ctors = 0;
int g_ledger_dtors = 0;
struct LedgerPayload {
  int* canary;
  LedgerPayload() : canary(new int(42)) { ++g_ledger_ctors; }
  LedgerPayload(LedgerPayload&& o) noexcept : canary(o.canary) {
    ++g_ledger_ctors;
    o.canary = nullptr;
  }
  LedgerPayload(const LedgerPayload&) = delete;
  LedgerPayload& operator=(LedgerPayload&&) = delete;
  ~LedgerPayload() {
    delete canary;
    canary = nullptr;
    ++g_ledger_dtors;
  }
};

TYPED_TEST(BoundedQueueTest, DestructionWhileNonEmptyIsExactlyOnce) {
  g_ledger_ctors = 0;
  g_ledger_dtors = 0;
  {
    BoundedQueue<LedgerPayload, TypeParam> q(3);
    // Leave the queue non-empty, with history: fill, drain some, refill.
    for (u64 i = 0; i < q.capacity(); ++i) {
      ASSERT_TRUE(q.enqueue(LedgerPayload{}));
    }
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.dequeue().has_value());
    for (int i = 0; i < 2; ++i) ASSERT_TRUE(q.enqueue(LedgerPayload{}));
    ASSERT_GT(g_ledger_ctors, g_ledger_dtors) << "queue should be non-empty";
  }
  EXPECT_EQ(g_ledger_ctors, g_ledger_dtors)
      << "each constructed payload must be destroyed exactly once";
}

// ---- batch operations (DESIGN.md §7) --------------------------------------

TYPED_TEST(BoundedQueueTest, BulkSequentialFifo) {
  BoundedQueue<u64, TypeParam> q(7);
  const u64 n = q.capacity();
  std::vector<u64> in(n), out(n, ~u64{0});
  for (u64 i = 0; i < n; ++i) in[i] = i;
  EXPECT_EQ(q.enqueue_bulk(in.data(), n), n);
  EXPECT_EQ(q.dequeue_bulk(out.data(), n), n);
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], i) << "bulk span must preserve FIFO order";
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TYPED_TEST(BoundedQueueTest, BulkPartialSuccessOnFullAndEmpty) {
  BoundedQueue<u64, TypeParam> q(3);  // capacity 8
  std::vector<u64> in(q.capacity() + 3);
  for (u64 i = 0; i < in.size(); ++i) in[i] = i;
  EXPECT_EQ(q.enqueue_bulk(in.data(), in.size()), q.capacity())
      << "bulk enqueue stops at full, reporting the accepted prefix";
  std::vector<u64> out(in.size(), ~u64{0});
  EXPECT_EQ(q.dequeue_bulk(out.data(), out.size()), q.capacity())
      << "bulk dequeue returns what was present";
  for (u64 i = 0; i < q.capacity(); ++i) ASSERT_EQ(out[i], i);
  EXPECT_EQ(q.dequeue_bulk(out.data(), 4), 0u);
  // Spans crossing the ring boundary many times.
  u64 next_in = 0, next_out = 0;
  for (int round = 0; round < 50; ++round) {
    u64 burst[5];
    for (u64& b : burst) b = next_in++;
    ASSERT_EQ(q.enqueue_bulk(burst, 5), 5u);
    u64 got[5];
    ASSERT_EQ(q.dequeue_bulk(got, 5), 5u);
    for (u64 g : got) ASSERT_EQ(g, next_out++);
  }
}

TYPED_TEST(BoundedQueueTest, BulkMoveOnlyPayloadMovesExactlyTaken) {
  BoundedQueue<std::unique_ptr<int>, TypeParam> q(2);  // capacity 4
  std::unique_ptr<int> in[6];
  for (int i = 0; i < 6; ++i) in[i] = std::make_unique<int>(i);
  const std::size_t taken = q.enqueue_bulk(in, 6);
  EXPECT_EQ(taken, q.capacity());
  for (std::size_t i = 0; i < 6; ++i) {
    if (i < taken) {
      EXPECT_EQ(in[i], nullptr) << "accepted element must be moved-from";
    } else {
      ASSERT_NE(in[i], nullptr) << "rejected element must keep ownership";
      EXPECT_EQ(*in[i], static_cast<int>(i));
    }
  }
  std::unique_ptr<int> out[6];
  EXPECT_EQ(q.dequeue_bulk(out, 6), taken);
  for (std::size_t i = 0; i < taken; ++i) {
    ASSERT_NE(out[i], nullptr);
    EXPECT_EQ(*out[i], static_cast<int>(i));
  }
}

TYPED_TEST(BoundedQueueTest, MpmcBulkExactlyOnce) {
  BoundedQueue<u64, TypeParam> q(10);
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  cfg.items_per_producer = 20000;
  testing::run_mpmc_bulk_exactly_once(q, cfg, /*max_batch=*/16);
}

TYPED_TEST(BoundedQueueTest, MpmcBulkTinyQueueBackpressure) {
  BoundedQueue<u64, TypeParam> q(3);  // bulk spans larger than the queue
  testing::MpmcConfig cfg;
  cfg.producers = 3;
  cfg.consumers = 3;
  cfg.items_per_producer = 6000;
  testing::run_mpmc_bulk_exactly_once(q, cfg, /*max_batch=*/16);
}

}  // namespace
}  // namespace wcq
