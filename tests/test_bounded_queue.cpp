// BoundedQueue (paper Fig 2 indirection) tests over both ring types.
#include "core/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/wcq_llsc.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

template <typename Ring>
class BoundedQueueTest : public ::testing::Test {};

using RingTypes = ::testing::Types<WCQ, SCQ, WCQLLSC>;
TYPED_TEST_SUITE(BoundedQueueTest, RingTypes);

TYPED_TEST(BoundedQueueTest, SequentialFifo) {
  BoundedQueue<u64, TypeParam> q(8);
  testing::run_sequential_fifo(q, q.capacity());
}

TYPED_TEST(BoundedQueueTest, Wraparound) {
  BoundedQueue<u64, TypeParam> q(4);
  testing::run_sequential_wraparound(q, q.capacity(), 200);
}

TYPED_TEST(BoundedQueueTest, FullSemantics) {
  BoundedQueue<u64, TypeParam> q(3);
  for (u64 i = 0; i < q.capacity(); ++i) {
    EXPECT_TRUE(q.enqueue(i)) << "queue full too early at " << i;
  }
  EXPECT_FALSE(q.enqueue(999)) << "enqueue must fail when full";
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0u);
  EXPECT_TRUE(q.enqueue(999)) << "one slot freed: enqueue must succeed";
  EXPECT_FALSE(q.enqueue(1000));
}

TYPED_TEST(BoundedQueueTest, MpmcExactlyOnce) {
  BoundedQueue<u64, TypeParam> q(10);
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  cfg.items_per_producer = 30000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TYPED_TEST(BoundedQueueTest, MpmcTinyQueueBackpressure) {
  BoundedQueue<u64, TypeParam> q(2);  // capacity 4: producers hit full often
  testing::MpmcConfig cfg;
  cfg.producers = 3;
  cfg.consumers = 3;
  cfg.items_per_producer = 10000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TYPED_TEST(BoundedQueueTest, AsymmetricProducersConsumers) {
  BoundedQueue<u64, TypeParam> q(8);
  testing::MpmcConfig cfg;
  cfg.producers = 7;
  cfg.consumers = 1;
  cfg.items_per_producer = 10000;
  testing::run_mpmc_exactly_once(q, cfg);
  BoundedQueue<u64, TypeParam> q2(8);
  cfg.producers = 1;
  cfg.consumers = 7;
  testing::run_mpmc_exactly_once(q2, cfg);
}

TYPED_TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>, TypeParam> q(4);
  EXPECT_TRUE(q.enqueue(std::make_unique<int>(41)));
  EXPECT_TRUE(q.enqueue(std::make_unique<int>(42)));
  auto a = q.dequeue();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(**a, 41);
  auto b = q.dequeue();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(**b, 42);
  EXPECT_FALSE(q.dequeue().has_value());
}

TYPED_TEST(BoundedQueueTest, StringPayload) {
  BoundedQueue<std::string, TypeParam> q(4);
  const std::string long_string(1000, 'x');  // heap-allocated payload
  EXPECT_TRUE(q.enqueue(long_string + "1"));
  EXPECT_TRUE(q.enqueue(long_string + "2"));
  EXPECT_EQ(q.dequeue().value(), long_string + "1");
  EXPECT_EQ(q.dequeue().value(), long_string + "2");
}

int g_payload_live = 0;
struct CountedPayload {
  bool owns = true;
  CountedPayload() { ++g_payload_live; }
  CountedPayload(CountedPayload&& o) noexcept {
    ++g_payload_live;
    o.owns = false;
  }
  CountedPayload(const CountedPayload&) = delete;
  ~CountedPayload() { --g_payload_live; }
};

TYPED_TEST(BoundedQueueTest, DestructorReleasesInFlightPayloads) {
  g_payload_live = 0;
  {
    BoundedQueue<CountedPayload, TypeParam> q(4);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q.enqueue(CountedPayload{}));
    }
    ASSERT_TRUE(q.dequeue().has_value());
  }
  EXPECT_EQ(g_payload_live, 0) << "payloads leaked by queue destructor";
}

}  // namespace
}  // namespace wcq
