// Segment recycling (DESIGN.md §8): ring/bounded reset(), the SegmentPool
// free list, metering honesty for segment-owned bytes, and the
// allocation-free steady state of the pooled UnboundedQueue.
#include "reclaim/segment_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/alloc_meter.hpp"
#include "common/topology.hpp"
#include "core/bounded_queue.hpp"
#include "core/unbounded_queue.hpp"
#include "core/wcq_llsc.hpp"
#include "mpmc_harness.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {
namespace {

using RingTypes = ::testing::Types<WCQ, SCQ, WCQLLSC>;

// ---- ring layer: reset() reopens a drained ring ---------------------------

template <typename Ring>
class RingResetTest : public ::testing::Test {};
TYPED_TEST_SUITE(RingResetTest, RingTypes);

TYPED_TEST(RingResetTest, ReusableAcrossGenerations) {
  TypeParam q(4);
  for (int gen = 0; gen < 5; ++gen) {
    // Use the ring past several wraparounds, then leave stragglers behind.
    for (u64 round = 0; round < 3; ++round) {
      for (u64 i = 0; i < q.capacity(); ++i) {
        q.enqueue(i);
        ASSERT_EQ(q.dequeue().value(), i);
      }
    }
    for (u64 i = 0; i < q.capacity() / 2; ++i) q.enqueue(i);

    q.reset();
    EXPECT_EQ(q.threshold(), -1) << "reset ring must report empty";
    EXPECT_FALSE(q.dequeue().has_value()) << "stragglers survived reset";

    // The full capacity is usable again, in fresh FIFO order.
    for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
    for (u64 i = 0; i < q.capacity(); ++i) {
      auto v = q.dequeue();
      ASSERT_TRUE(v.has_value()) << "generation " << gen << " item " << i;
      ASSERT_EQ(*v, i) << "FIFO broken after reset";
    }
    EXPECT_FALSE(q.dequeue().has_value());
  }
}

// ---- bounded layer: reset() destroys stragglers and refills fq ------------

struct Counted {
  static std::atomic<int> live;
  int v;
  explicit Counted(int x = 0) noexcept : v(x) { live.fetch_add(1); }
  Counted(Counted&& o) noexcept : v(o.v) { live.fetch_add(1); }
  Counted& operator=(Counted&& o) noexcept {
    v = o.v;
    return *this;
  }
  Counted(const Counted&) = delete;
  Counted& operator=(const Counted&) = delete;
  ~Counted() { live.fetch_sub(1); }
};
std::atomic<int> Counted::live{0};

template <typename Ring>
class BoundedResetTest : public ::testing::Test {};
TYPED_TEST_SUITE(BoundedResetTest, RingTypes);

TYPED_TEST(BoundedResetTest, DestroysStragglersAndRefills) {
  ASSERT_EQ(Counted::live.load(), 0);
  {
    BoundedQueue<Counted, TypeParam> q(3);
    for (int gen = 0; gen < 3; ++gen) {
      for (u64 i = 0; i < q.capacity(); ++i) {
        ASSERT_TRUE(q.enqueue(Counted(static_cast<int>(i))));
      }
      ASSERT_FALSE(q.enqueue(Counted(999))) << "full semantics before reset";
      EXPECT_EQ(Counted::live.load(), static_cast<int>(q.capacity()));

      q.reset();
      EXPECT_EQ(Counted::live.load(), 0) << "stragglers not destroyed";
      EXPECT_FALSE(q.dequeue().has_value());

      // Full capacity again: fq was refilled with 0..n-1.
      for (u64 i = 0; i < q.capacity(); ++i) {
        ASSERT_TRUE(q.enqueue(Counted(static_cast<int>(i))))
            << "capacity lost after reset";
      }
      ASSERT_FALSE(q.enqueue(Counted(999)));
      for (u64 i = 0; i < q.capacity(); ++i) {
        auto v = q.dequeue();
        ASSERT_TRUE(v.has_value());
        ASSERT_EQ(static_cast<u64>(v->v), i) << "FIFO broken after reset";
      }
    }
  }
  EXPECT_EQ(Counted::live.load(), 0);
}

// ---- reclaim layer: SegmentPool free list ---------------------------------

TEST(SegmentPoolTest, PutGetRoundtrip) {
  (void)ThreadRegistry::tid();  // cap() scales with registered threads
  SegmentPool<int> pool(8);
  EXPECT_EQ(pool.try_get(), nullptr) << "new pool must be empty";
  EXPECT_EQ(pool.size(), 0u);
  ASSERT_GE(pool.cap(), 2u);

  int a = 1, b = 2;
  EXPECT_TRUE(pool.try_put(&a));
  EXPECT_TRUE(pool.try_put(&b));
  EXPECT_EQ(pool.size(), 2u);

  int* g1 = pool.try_get();
  int* g2 = pool.try_get();
  ASSERT_NE(g1, nullptr);
  ASSERT_NE(g2, nullptr);
  EXPECT_NE(g1, g2) << "pool handed out the same node twice";
  EXPECT_TRUE((g1 == &a && g2 == &b) || (g1 == &b && g2 == &a));
  EXPECT_EQ(pool.try_get(), nullptr);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(SegmentPoolTest, CapBoundsParkedNodes) {
  SegmentPool<int> pool(2);  // slot ceiling below the per-thread cap
  int n[3] = {0, 1, 2};
  EXPECT_EQ(pool.cap(), 2u);
  EXPECT_TRUE(pool.try_put(&n[0]));
  EXPECT_TRUE(pool.try_put(&n[1]));
  EXPECT_FALSE(pool.try_put(&n[2])) << "put past the cap must be rejected";
  EXPECT_EQ(pool.size(), 2u);
}

TEST(SegmentPoolTest, DrainReleasesEverything) {
  SegmentPool<int> pool(4);
  int n[2] = {0, 1};
  ASSERT_TRUE(pool.try_put(&n[0]));
  ASSERT_TRUE(pool.try_put(&n[1]));
  int released = 0;
  pool.drain([&](int*) { ++released; });
  EXPECT_EQ(released, 2);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.try_get(), nullptr);
}

// ---- NUMA partitions (DESIGN.md §12) --------------------------------------

TEST(SegmentPoolTest, PartitionedPutGetStayLocal) {
  (void)ThreadRegistry::tid();
  SegmentPool<int> pool(8, 2);
  EXPECT_EQ(pool.partitions(), 2u);
  int a = 1, b = 2;
  ASSERT_TRUE(pool.try_put(0, &a));
  EXPECT_EQ(pool.size(0), 1u);
  EXPECT_EQ(pool.size(1), 0u);
  // A node-keyed miss is local: partition 1 is empty even though the pool
  // as a whole is not — the caller allocates locally rather than adopting
  // node 0's pages.
  EXPECT_EQ(pool.try_get(1), nullptr);
  EXPECT_EQ(pool.try_get(0), &a);
  ASSERT_TRUE(pool.try_put(1, &b));
  EXPECT_EQ(pool.size(1), 1u);
  EXPECT_EQ(pool.try_get(0), nullptr);
  EXPECT_EQ(pool.try_get(1), &b);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(SegmentPoolTest, PartitionFullRejectsDespiteRoomElsewhere) {
  (void)ThreadRegistry::tid();  // high_water >= 1 so cap() == slots
  SegmentPool<int> pool(4, 2);  // two slots per partition
  int n[3] = {0, 1, 2};
  ASSERT_TRUE(pool.try_put(0, &n[0]));
  ASSERT_TRUE(pool.try_put(0, &n[1]));
  // Partition 0 is full: the put is rejected (caller frees, the §8 overflow
  // path) even though partition 1 has room — pages never migrate through
  // the free list.
  EXPECT_FALSE(pool.try_put(0, &n[2]));
  EXPECT_TRUE(pool.try_put(1, &n[2]));
  EXPECT_EQ(pool.size(0), 2u);
  EXPECT_EQ(pool.size(1), 1u);
}

TEST(SegmentPoolTest, OutOfRangeNodeMapsToPartitionZero) {
  SegmentPool<int> pool(4, 2);
  int a = 1;
  ASSERT_TRUE(pool.try_put(99, &a));  // degrade, never fault
  EXPECT_EQ(pool.size(0), 1u);
  EXPECT_EQ(pool.try_get(99), &a);
}

TEST(SegmentPoolTest, LegacyWholeArrayOpsCrossPartitions) {
  SegmentPool<int> pool(8, 2);
  int b = 2;
  ASSERT_TRUE(pool.try_put(1, &b));
  // The node-less overloads keep the pre-topology whole-array behavior:
  // they see every partition.
  EXPECT_EQ(pool.try_get(), &b);
}

TEST(SegmentPoolTest, DrainResetsPartitionCounts) {
  (void)ThreadRegistry::tid();  // thread-scaled cap must admit three puts
  SegmentPool<int> pool(8, 2);
  int n[3] = {0, 1, 2};
  ASSERT_TRUE(pool.try_put(0, &n[0]));
  ASSERT_TRUE(pool.try_put(1, &n[1]));
  ASSERT_TRUE(pool.try_put(1, &n[2]));
  int released = 0;
  pool.drain([&](int*) { ++released; });
  EXPECT_EQ(released, 3);
  EXPECT_EQ(pool.size(0), 0u);
  EXPECT_EQ(pool.size(1), 0u);
  EXPECT_EQ(pool.try_get(0), nullptr);
  EXPECT_EQ(pool.try_get(1), nullptr);
}

// Ownership-transfer safety under contention: a node claimed from the pool
// is held by exactly one thread at a time, and no node is duplicated or
// lost. (This is the property the Treiber-stack design could not give
// without hazard pointers; the slot array gives it by construction.)
TEST(SegmentPoolTest, ConcurrentOwnershipExactlyOnce) {
  constexpr unsigned kThreads = 4;
  constexpr unsigned kNodesPerThread = 4;
  constexpr unsigned kNodes = kThreads * kNodesPerThread;
  const u64 rounds = testing::scale_items(20000);

  SegmentPool<std::atomic<int>> pool(kNodes);
  std::atomic<int> nodes[kNodes];  // 0 = thread-owned, 1 = pool-owned
  for (auto& n : nodes) n.store(0);

  std::atomic<bool> start{false};
  std::vector<std::thread> ts;
  std::vector<unsigned> held_count(kThreads, 0);
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      std::vector<std::atomic<int>*> held;
      for (unsigned k = 0; k < kNodesPerThread; ++k) {
        held.push_back(&nodes[t * kNodesPerThread + k]);
      }
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      for (u64 r = 0; r < rounds; ++r) {
        if (!held.empty() && (r & 1) == 0) {
          std::atomic<int>* n = held.back();
          int expected = 0;
          ASSERT_TRUE(n->compare_exchange_strong(expected, 1))
              << "double ownership on put";
          if (pool.try_put(n)) {
            held.pop_back();
          } else {
            ASSERT_EQ(n->exchange(0), 1);  // rejected: we still own it
          }
        } else if (std::atomic<int>* n = pool.try_get()) {
          int expected = 1;
          ASSERT_TRUE(n->compare_exchange_strong(expected, 0))
              << "pool handed out a node another thread holds";
          held.push_back(n);
        }
      }
      held_count[t] = static_cast<unsigned>(held.size());
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();

  unsigned held_total = 0;
  for (unsigned c : held_count) held_total += c;
  EXPECT_EQ(held_total + pool.size(), kNodes) << "nodes lost or duplicated";
}

// ---- metering honesty: every byte a segment owns is visible ---------------

TEST(SegmentMeterAuditTest, SegmentBytesAndCountsAllMetered) {
  constexpr unsigned kOrder = 6;
  const std::int64_t live_before = alloc_meter::live_bytes();
  const std::int64_t allocs_before = alloc_meter::total_allocations();
  {
    typename UnboundedQueue<u64>::Options o;
    o.segment_order = kOrder;
    o.recycle = false;
    UnboundedQueue<u64> q(o);
    const std::int64_t delta = alloc_meter::live_bytes() - live_before;
    // Lower bound on what one segment *really* owns beyond its top-level
    // node: two rings' entry arrays (2^(order+1) slots x 16-byte pairs for
    // wCQ) plus the Fig 2 payload array (2^order x 8 bytes). If any of
    // those allocated outside the meter, the delta could not reach this.
    const std::int64_t ring_entries =
        2 * (std::int64_t{16} << (kOrder + 1));        // aq + fq entry pairs
    const std::int64_t payload = std::int64_t{8} << kOrder;
    EXPECT_GE(delta, ring_entries + payload + 1024)
        << "segment-owned bytes are escaping the alloc meter";
    // The churn metric counts events, so the inner arrays must register as
    // allocations too — a segment is several allocations, not one.
    EXPECT_GE(alloc_meter::total_allocations() - allocs_before, 6)
        << "inner segment arrays invisible to the allocation count";
  }
  EXPECT_EQ(alloc_meter::live_bytes(), live_before)
      << "metered bytes leaked across queue lifetime";
}

// ---- unbounded layer: allocation-free steady state ------------------------

template <typename Ring>
class SegmentRecyclingTypedTest : public ::testing::Test {};
TYPED_TEST_SUITE(SegmentRecyclingTypedTest, RingTypes);

// The acceptance property: with the pool enabled, a fill/drain loop over
// many segment generations performs zero metered heap allocations after
// warm-up.
TYPED_TEST(SegmentRecyclingTypedTest, SteadyStateZeroAllocations) {
  typename UnboundedQueue<u64, TypeParam>::Options o;
  o.segment_order = 4;  // 16 elements: every round crosses segments
  UnboundedQueue<u64, TypeParam> q(o);
  auto churn = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (u64 i = 0; i < 64; ++i) ASSERT_TRUE(q.enqueue(i));
      for (u64 i = 0; i < 64; ++i) ASSERT_TRUE(q.dequeue().has_value());
    }
  };
  churn(64);  // warm-up: populate the pool, settle scratch capacities
  const std::int64_t allocs_before = alloc_meter::total_allocations();
  churn(64);  // ~192 segment generations
  EXPECT_EQ(alloc_meter::total_allocations() - allocs_before, 0)
      << "steady-state fill/drain must not allocate with the pool enabled";
  EXPECT_GT(q.pooled_segments(), 0u) << "pool never engaged";
  EXPECT_LE(q.live_segments(), 3u);
}

// With an injected 2-node topology the pool is partitioned, but a thread
// staged on one node still recycles its own segments: steady-state churn
// stays allocation-free through the node-keyed pool path.
TYPED_TEST(SegmentRecyclingTypedTest, SteadyStateZeroAllocationsPartitioned) {
  const Topology topo = *Topology::from_spec("0-1;2-3");
  typename UnboundedQueue<u64, TypeParam>::Options o;
  o.segment_order = 4;
  o.topology = &topo;
  // Staged before construction so the first segment first-touches node 1
  // like everything else; a remote-homed segment would be parked in node
  // 0's partition and never reclaimed from here, eating into the
  // thread-scaled cap for the whole run (a local miss allocates — correct,
  // just uncached).
  ScopedThreadNode on_node1(1);
  UnboundedQueue<u64, TypeParam> q(o);
  auto churn = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (u64 i = 0; i < 64; ++i) ASSERT_TRUE(q.enqueue(i));
      for (u64 i = 0; i < 64; ++i) ASSERT_TRUE(q.dequeue().has_value());
    }
  };
  churn(64);  // warm-up: populate node 1's partition
  const std::int64_t allocs_before = alloc_meter::total_allocations();
  churn(64);
  EXPECT_EQ(alloc_meter::total_allocations() - allocs_before, 0)
      << "node-keyed recycling missed its own partition";
  EXPECT_GT(q.pooled_segments(), 0u);
}

TYPED_TEST(SegmentRecyclingTypedTest, NoPoolKeepsAllocating) {
  typename UnboundedQueue<u64, TypeParam>::Options o;
  o.segment_order = 4;
  o.recycle = false;
  UnboundedQueue<u64, TypeParam> q(o);
  for (int r = 0; r < 8; ++r) {
    for (u64 i = 0; i < 64; ++i) ASSERT_TRUE(q.enqueue(i));
    for (u64 i = 0; i < 64; ++i) ASSERT_TRUE(q.dequeue().has_value());
  }
  const std::int64_t allocs_before = alloc_meter::total_allocations();
  for (int r = 0; r < 8; ++r) {
    for (u64 i = 0; i < 64; ++i) ASSERT_TRUE(q.enqueue(i));
    for (u64 i = 0; i < 64; ++i) ASSERT_TRUE(q.dequeue().has_value());
  }
  EXPECT_GT(alloc_meter::total_allocations() - allocs_before, 8)
      << "without the pool every segment generation must hit the heap";
  EXPECT_EQ(q.pooled_segments(), 0u);
}

// Recycled segments must be indistinguishable from fresh ones under
// contention (the reuse-ABA argument): MPMC exactly-once over tiny pooled
// segments, with a monitor hammering the hazard-protected live_segments()
// walk concurrently — the walk satellite's crash/ASan canary — while both
// the segment count and the metered peak stay bounded.
TYPED_TEST(SegmentRecyclingTypedTest, MpmcChurnBoundedAndWalkSafe) {
  typename UnboundedQueue<u64, TypeParam>::Options o;
  o.segment_order = 2;  // 4 elements: constant finalize/recycle churn
  UnboundedQueue<u64, TypeParam> q(o);

  alloc_meter::reset_peak();
  const std::int64_t live_before = alloc_meter::live_bytes();

  std::atomic<bool> stop{false};
  u64 max_live = 0;
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const u64 n = q.live_segments();
      if (n > max_live) max_live = n;
      std::this_thread::yield();
    }
  });

  testing::MpmcConfig cfg;
  cfg.producers = 3;
  cfg.consumers = 3;
  cfg.items_per_producer = 8000;
  testing::run_mpmc_exactly_once(q, cfg);

  stop.store(true, std::memory_order_release);
  monitor.join();

  // Bounds are deliberately loose: they catch unbounded growth (the failure
  // mode recycling could introduce), not tight occupancy.
  EXPECT_LE(max_live, 4096u) << "segment list grew without bound";
  EXPECT_LE(alloc_meter::peak_bytes() - live_before, std::int64_t{64} << 20)
      << "metered peak exploded during churn";

  q.reclaim_flush();
  EXPECT_LE(q.live_segments(), 4u);
  EXPECT_LE(q.pooled_segments(),
            SegmentPool<int>::kPerThread *
                (static_cast<std::size_t>(ThreadRegistry::high_water()) + 1))
      << "pool exceeded its thread-scaled cap";
}

}  // namespace
}  // namespace wcq
