#include "core/entry.hpp"

#include <gtest/gtest.h>

namespace wcq {
namespace {

class EntryCodecTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EntryCodecTest, Geometry) {
  const unsigned order = GetParam();
  EntryCodec c(order);
  EXPECT_EQ(c.ring_size(), u64{1} << (order + 1));
  EXPECT_EQ(c.half(), u64{1} << order);
  EXPECT_EQ(c.bottom(), c.ring_size() - 2);
  EXPECT_EQ(c.bottom_c(), c.ring_size() - 1);
  // ⊥ and ⊥c never collide with live indices [0, n).
  EXPECT_GE(c.bottom(), c.half());
  EXPECT_FALSE(c.is_live_index(c.bottom()));
  EXPECT_FALSE(c.is_live_index(c.bottom_c()));
  EXPECT_TRUE(c.is_live_index(0));
  EXPECT_TRUE(c.is_live_index(c.half() - 1));
}

TEST_P(EntryCodecTest, PackUnpackRoundTrip) {
  const unsigned order = GetParam();
  EntryCodec c(order);
  const u64 cycles[] = {0, 1, 2, 12345, (u64{1} << 40)};
  const u64 indices[] = {0, 1, c.half() - 1, c.bottom(), c.bottom_c()};
  for (u64 cy : cycles) {
    for (u64 idx : indices) {
      for (bool safe : {false, true}) {
        for (bool enq : {false, true}) {
          const Entry e = c.unpack(c.pack(cy, safe, enq, idx));
          EXPECT_EQ(e.cycle, cy);
          EXPECT_EQ(e.safe, safe);
          EXPECT_EQ(e.enq, enq);
          EXPECT_EQ(e.index, idx);
        }
      }
    }
  }
}

TEST_P(EntryCodecTest, ConsumeMaskPreservesCycleAndSafe) {
  const unsigned order = GetParam();
  EntryCodec c(order);
  // consume = OR with (⊥c | Enq); Cycle and IsSafe must be untouched and
  // the index must become ⊥c with Enq set — the paper's Fig 5 line 3.
  for (u64 cy : {u64{1}, u64{77}, u64{1} << 30}) {
    for (bool safe : {false, true}) {
      for (bool enq : {false, true}) {
        const u64 raw = c.pack(cy, safe, enq, 3 % c.half());
        const Entry e = c.unpack(raw | c.consume_mask());
        EXPECT_EQ(e.cycle, cy);
        EXPECT_EQ(e.safe, safe);
        EXPECT_TRUE(e.enq);
        EXPECT_EQ(e.index, c.bottom_c());
      }
    }
  }
}

TEST_P(EntryCodecTest, CounterDecomposition) {
  const unsigned order = GetParam();
  EntryCodec c(order);
  const u64 R = c.ring_size();
  EXPECT_EQ(c.pos_of(R), 0u);
  EXPECT_EQ(c.cycle_of(R), 1u);  // counters start at R = cycle 1
  EXPECT_EQ(c.pos_of(R + 5), 5u % R);
  EXPECT_EQ(c.cycle_of(3 * R + (7 % R)), 3u);
  // Reconstruction: counter = cycle * R + pos.
  for (u64 ctr : {R, R + 1, 5 * R + 3, u64{1} << 40}) {
    EXPECT_EQ(c.cycle_of(ctr) * R + c.pos_of(ctr), ctr);
  }
}

TEST_P(EntryCodecTest, InitialEntryIsOldestPossible) {
  const unsigned order = GetParam();
  EntryCodec c(order);
  const Entry e = c.unpack(c.initial());
  EXPECT_EQ(e.cycle, 0u);
  EXPECT_TRUE(e.safe);
  EXPECT_TRUE(e.enq);
  EXPECT_EQ(e.index, c.bottom());
}

INSTANTIATE_TEST_SUITE_P(Orders, EntryCodecTest,
                         ::testing::Values(1u, 2u, 3u, 8u, 15u, 20u));

}  // namespace
}  // namespace wcq
