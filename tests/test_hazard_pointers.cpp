#include "reclaim/hazard_pointers.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/alloc_meter.hpp"

namespace wcq {
namespace {

struct Tracked {
  static std::atomic<int> live;
  int payload = 0;
  Tracked() { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
  static void deleter(void* p) { alloc_meter::destroy(static_cast<Tracked*>(p)); }
};
std::atomic<int> Tracked::live{0};

TEST(HazardPointers, ProtectReturnsCurrentValue) {
  HazardDomain d;
  std::atomic<Tracked*> src{alloc_meter::create<Tracked>()};
  Tracked* p = d.protect(0, src);
  EXPECT_EQ(p, src.load());
  d.clear_all();
  alloc_meter::destroy(src.load());
}

TEST(HazardPointers, ProtectedPointerSurvivesRetirement) {
  HazardDomain d;
  Tracked* obj = alloc_meter::create<Tracked>();
  std::atomic<Tracked*> src{obj};
  Tracked* p = d.protect(0, src);
  ASSERT_EQ(p, obj);
  d.retire(obj, &Tracked::deleter);
  // Force many scans; the protected object must not be freed.
  for (int i = 0; i < 10000; ++i) {
    Tracked* junk = alloc_meter::create<Tracked>();
    d.retire(junk, &Tracked::deleter);
  }
  EXPECT_GE(Tracked::live.load(), 1);
  EXPECT_EQ(p->payload, 0);  // still dereferenceable
  d.clear_all();
  d.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardPointers, UnprotectedRetireesGetFreedByScans) {
  HazardDomain d;
  for (int i = 0; i < 20000; ++i) {
    d.retire(alloc_meter::create<Tracked>(), &Tracked::deleter);
  }
  // The scan threshold guarantees the retire list stays bounded.
  EXPECT_LT(d.retired_count(), 10000u);
  d.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardPointers, ConcurrentReadersNeverTouchFreedMemory) {
  // Writers continuously swap and retire the shared object; readers protect
  // and dereference. Any reclamation bug shows up as a crash/ASAN report,
  // and the payload invariant catches torn lifetimes.
  HazardDomain d;
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kSwaps = 20000;
  std::atomic<Tracked*> shared{alloc_meter::create<Tracked>()};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kSwaps; ++i) {
        Tracked* fresh = alloc_meter::create<Tracked>();
        fresh->payload = 1234;
        Tracked* old = shared.exchange(fresh, std::memory_order_acq_rel);
        old->payload = 1234;  // still-valid write before retirement
        d.retire(old, &Tracked::deleter);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        Tracked* p = d.protect(0, shared);
        // Either 0 (fresh) or 1234 (touched); anything else is corruption.
        const int v = p->payload;
        ASSERT_TRUE(v == 0 || v == 1234) << "corrupted payload " << v;
        d.clear(0);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (int r = 0; r < kReaders; ++r) threads[kWriters + r].join();

  alloc_meter::destroy(shared.load());
  d.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
}

}  // namespace
}  // namespace wcq
