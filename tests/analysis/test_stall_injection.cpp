// Stall/fault injection (DESIGN.md §14): suspend one thread indefinitely at
// a scheduling point and verify the progress claims that "wait-free" and
// "close() terminates every waiter" actually make:
//
//   * a suspended peer never blocks others — while the victim sits frozen
//     mid-operation, every other worker finishes its entire workload
//     (steps_during_stall > 0 witnesses real work against the stalled peer,
//     and no watchdog means nobody spun waiting for it);
//   * close() wakes every parked waiter even with a peer stalled — the
//     drain terminates, nothing is lost;
//   * the "killed consumer" pipeline variant — a pipeline-mode consumer that
//     stalls and then abandons its remaining work (the resume handler models
//     the kill: it does nothing further). Producers spill past the dead
//     consumer's shard via the hierarchical sweep and complete every send;
//     the surviving consumer and a post-mortem drain account for every
//     element.
//
// The PctScheduler's stall mode (Config::stall_victim/stall_after) freezes
// the victim the first time it reaches its N-th own scheduling point; the
// victim resumes only when no other worker can run, i.e. after its peers
// proved they never needed it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "pct_scheduler.hpp"
#include "runtime/channel.hpp"
#include "scale/sharded_queue.hpp"

namespace wcq {
namespace {

using analysis_test::PctScheduler;

// Victim receiver frozen mid-dequeue; producer + second receiver complete
// the entire workload against it; close() terminates everyone.
TEST(StallInjection, SuspendedReceiverNeverBlocksOthers) {
  constexpr unsigned kCount = 16;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Channel<std::uint64_t> ch(2u);
    PctScheduler::Config cfg;
    cfg.seed = seed;
    cfg.workers = 3;
    cfg.stall_victim = 2;
    // Vary the freeze site with the seed so the victim stalls at different
    // depths of its dequeue/park machinery across the sweep.
    cfg.stall_after = 1 + (seed * 7) % 60;
    std::uint64_t got_live = 0, got_victim = 0;
    std::uint64_t sum = 0;
    bool stall_seen_by_victim = false;
    {
      PctScheduler sched(cfg);
      std::thread producer([&] {
        sched.attach(0);
        {
          auto h = ch.acquire();
          for (unsigned i = 0; i < kCount; ++i) ch.send(h, i);
          ch.close();
        }
        sched.finish();
      });
      std::thread live([&] {
        sched.attach(1);
        {
          auto h = ch.acquire();
          std::uint64_t out = 0;
          while (ch.recv(h, out) == ChanStatus::kOk) {
            ++got_live;
            sum += out;
          }
        }
        sched.finish();
      });
      std::thread victim([&] {
        sched.attach(2);
        {
          auto h = ch.acquire();
          std::uint64_t out = 0;
          while (ch.recv(h, out) == ChanStatus::kOk) {
            ++got_victim;
            sum += out;
          }
        }
        stall_seen_by_victim = sched.stall_hit();
        sched.finish();
      });
      producer.join();
      live.join();
      victim.join();
      ASSERT_FALSE(sched.watchdog_fired())
          << "a worker waited on the stalled victim, seed " << seed;
      ASSERT_TRUE(sched.stall_hit()) << "stall never triggered, seed " << seed;
      ASSERT_GT(sched.steps_during_stall(), 0u)
          << "no work completed during the stall window, seed " << seed;
    }
    (void)stall_seen_by_victim;
    EXPECT_EQ(got_live + got_victim, kCount) << "seed " << seed;
    EXPECT_EQ(sum, std::uint64_t{kCount} * (kCount - 1) / 2)
        << "seed " << seed;
    EXPECT_EQ(ch.stats().stranded, 0u)
        << "close() lost a parked waiter, seed " << seed;
  }
}

// Victim producer frozen mid-enqueue. The peers cannot reach quiescence
// without it (the victim co-owns the close), so this shape uses the bounded
// suspension: the victim resumes after 2000 peer steps — ample for the other
// producer to finish its whole script and the consumer to drain everything
// available and park — and the bound stays far enough below the virtual-park
// budget (4096) that the parked consumer is woken by the resumed victim's
// next send rather than stranded.
TEST(StallInjection, SuspendedSenderNeverBlocksOthers) {
  constexpr unsigned kCount = 8;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Channel<std::uint64_t> ch(2u);
    PctScheduler::Config cfg;
    cfg.seed = seed;
    cfg.workers = 3;
    cfg.stall_victim = 0;
    cfg.stall_after = 1 + (seed * 11) % 40;
    cfg.stall_duration = 2000;
    std::uint64_t received = 0;
    std::atomic<unsigned> senders_left{2};
    {
      PctScheduler sched(cfg);
      std::vector<std::thread> threads;
      for (unsigned s = 0; s < 2; ++s) {
        threads.emplace_back([&, s] {
          sched.attach(s);
          {
            auto h = ch.acquire();
            for (unsigned i = 0; i < kCount; ++i) {
              ch.send(h, std::uint64_t{s} * kCount + i);
            }
            if (senders_left.fetch_sub(1) == 1) ch.close();
          }
          sched.finish();
        });
      }
      threads.emplace_back([&] {
        sched.attach(2);
        {
          auto h = ch.acquire();
          std::uint64_t out = 0;
          while (ch.recv(h, out) == ChanStatus::kOk) ++received;
        }
        sched.finish();
      });
      for (auto& t : threads) t.join();
      ASSERT_FALSE(sched.watchdog_fired()) << "seed " << seed;
      ASSERT_TRUE(sched.stall_hit()) << "seed " << seed;
      ASSERT_TRUE(sched.stall_resumed()) << "seed " << seed;
      ASSERT_GT(sched.steps_during_stall(), 0u) << "seed " << seed;
    }
    // The resumed victim completes its remaining sends and whichever sender
    // finishes last performs the close — so the full count arrives.
    EXPECT_EQ(received, 2u * kCount) << "seed " << seed;
    EXPECT_EQ(ch.stats().stranded, 0u) << "seed " << seed;
  }
}

// Killed pipeline consumer: consumer 0 stalls and, on resume, abandons its
// loop (models a consumer that died mid-shift). Producers spill past its
// shard through the hierarchical sweep and complete every send; the
// surviving consumer plus a post-mortem drain of the dead shard account for
// every element exactly once.
TEST(StallInjection, KilledPipelineConsumerDoesNotWedgeProducers) {
  using SQ = ShardedQueue<std::uint64_t>;
  constexpr unsigned kCount = 24;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    Channel<std::uint64_t, SQ> ch(SQ::Options{
        .shards = 2, .shard_order = 2, .mode = SQ::Mode::kPipeline});
    PctScheduler::Config cfg;
    cfg.seed = seed;
    cfg.workers = 3;
    cfg.stall_victim = 1;  // consumer on shard 0
    cfg.stall_after = 1 + (seed * 13) % 50;
    std::uint64_t got_live = 0, got_victim = 0;
    std::uint64_t sum = 0;
    {
      PctScheduler sched(cfg);
      std::thread producer([&] {
        sched.attach(0);
        {
          auto h = ch.acquire();
          for (unsigned i = 0; i < kCount; ++i) ch.send(h, i);
          ch.close();
        }
        sched.finish();
      });
      std::thread victim([&] {
        sched.attach(1);
        {
          auto h = ch.acquire_consumer(0);
          std::uint64_t out = 0;
          for (;;) {
            if (sched.stall_resumed()) break;  // "killed": abandon the loop
            const auto s = ch.try_recv(h, out);
            if (s == ChanStatus::kClosed) break;
            if (s == ChanStatus::kOk) {
              ++got_victim;
              sum += out;
            }
          }
        }
        sched.finish();
      });
      std::thread live([&] {
        sched.attach(2);
        {
          auto h = ch.acquire_consumer(1);
          std::uint64_t out = 0;
          while (ch.recv(h, out) == ChanStatus::kOk) {
            ++got_live;
            sum += out;
          }
        }
        sched.finish();
      });
      producer.join();
      victim.join();
      live.join();
      ASSERT_FALSE(sched.watchdog_fired())
          << "producer wedged on the dead consumer's shard, seed " << seed;
      ASSERT_TRUE(sched.stall_hit()) << "seed " << seed;
    }
    // Post-mortem: drain what the dead consumer left in its shard.
    {
      auto h = ch.acquire_consumer(0);
      std::uint64_t out = 0;
      while (ch.try_recv(h, out) == ChanStatus::kOk) {
        ++got_victim;
        sum += out;
      }
    }
    EXPECT_EQ(got_live + got_victim, kCount) << "seed " << seed;
    EXPECT_EQ(sum, std::uint64_t{kCount} * (kCount - 1) / 2)
        << "seed " << seed;
    EXPECT_EQ(ch.stats().stranded, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wcq
