// Schedule-exploration suite (DESIGN.md §11): PCT-randomized, preemption-
// bounded interleavings over small-scope configurations of every ring type,
// asserting linearizability and a bounded-step wait-freedom budget per op.
//
// This binary compiles the (header-only) rings with WCQ_ANALYSIS=1 via a
// per-target define, so the suite runs in the fast tier under every preset;
// the `analysis` preset additionally instruments the library TUs (registry,
// hazard domain) for deeper coverage.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "core/bounded_queue.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wcq_llsc.hpp"
#include "explore.hpp"

namespace wcq {
namespace {

using analysis_test::OpKind;
using analysis_test::PctScheduler;
using analysis_test::Script;
using analysis_test::linearizable_fifo;
using analysis_test::pairs_scripts;
using analysis_test::prodcon_scripts;
using analysis_test::run_schedule;

// Per-op own-step ceiling. Far above any legitimate small-scope op (tens to
// a few hundred steps, slow path included) and far below anything a livelock
// would produce before the watchdog trips — a bounded-step budget, not a
// tight wait-freedom bound.
constexpr std::size_t kOpBudget = 20000;

constexpr unsigned kSeeds = 48;

template <typename Adapter, typename MakeQueue>
void explore(MakeQueue make_queue, const std::vector<Script>& scripts,
             std::size_t capacity) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto q = make_queue();
    PctScheduler::Config cfg;
    cfg.seed = seed;
    cfg.change_points = 1 + static_cast<unsigned>(seed % 4);
    const auto r = run_schedule<Adapter>(*q, scripts, cfg);
    ASSERT_FALSE(r.watchdog_fired) << "scheduler wedged, seed " << seed;
    ASSERT_LE(r.max_op_steps, kOpBudget)
        << "per-op step budget blown, seed " << seed;
    ASSERT_TRUE(linearizable_fifo(r.history, capacity,
                                  Adapter::kAllowSpuriousFull))
        << "non-linearizable history, seed " << seed;
  }
}

TEST(SchedExplore, ScqPairs) {
  explore<analysis_test::RingAdapter<SCQ>>(
      [] { return std::make_unique<SCQ>(2); }, pairs_scripts(3, 2, false), 4);
}

TEST(SchedExplore, ScqProdCon) {
  explore<analysis_test::RingAdapter<SCQ>>(
      [] { return std::make_unique<SCQ>(2); }, prodcon_scripts(3), 4);
}

TEST(SchedExplore, WcqPairs) {
  explore<analysis_test::RingAdapter<WCQ>>(
      [] { return std::make_unique<WCQ>(2); }, pairs_scripts(3, 2, false), 4);
}

TEST(SchedExplore, WcqProdCon) {
  explore<analysis_test::RingAdapter<WCQ>>(
      [] { return std::make_unique<WCQ>(2); }, prodcon_scripts(3), 4);
}

// Patience 1 forces nearly every op through the helped slow path (Fig 7),
// putting the phase-1/phase-2 CAS ladder and the helping protocol under the
// preemption schedule instead of the fast-path F&As.
TEST(SchedExplore, WcqSlowPath) {
  explore<analysis_test::RingAdapter<WCQ>>(
      [] {
        return std::make_unique<WCQ>(
            WCQ::Options{.order = 2, .enq_patience = 1, .deq_patience = 1});
      },
      pairs_scripts(2, 2, false), 4);
}

TEST(SchedExplore, WcqLlscPairs) {
  explore<analysis_test::RingAdapter<WCQLLSC>>(
      [] { return std::make_unique<WCQLLSC>(2); }, pairs_scripts(3, 2, false),
      4);
}

using BoundedU64 = BoundedQueue<std::uint64_t, WCQ>;

TEST(SchedExplore, BoundedMagazinesOff) {
  explore<analysis_test::BoundedAdapter<BoundedU64, false>>(
      [] {
        return std::make_unique<BoundedU64>(BoundedU64::Options{
            .order = 2, .magazine = {.enabled = false, .capacity = 0}});
      },
      pairs_scripts(3, 2, true), 4);
}

// With magazines on, a free index parked mid-put can slip past the reclaim
// sweep, so "full" may be spurious (DESIGN.md §9) — the checker accepts
// full in any state here; loss, duplication and FIFO breaks still fail.
TEST(SchedExplore, BoundedMagazinesOn) {
  explore<analysis_test::BoundedAdapter<BoundedU64, true>>(
      [] {
        return std::make_unique<BoundedU64>(BoundedU64::Options{
            .order = 2, .magazine = {.enabled = true, .capacity = 16}});
      },
      pairs_scripts(3, 2, true), 4);
}

}  // namespace
}  // namespace wcq
