// Mutation self-test for the MPSC consumer path (DESIGN.md §13): this
// binary is compiled with WCQ_ANALYSIS_MUTATE_MPSC, which makes the
// consumer's dead-rank walk skip a not-yet-filled rank WITHOUT ⊥-marking
// the slot. The window: a producer holds Tail rank h but is descheduled
// before its entry CAS; a second producer delivers rank h+1; the consumer
// walks past rank h (Tail > h proves producers exist beyond it) and, under
// the mutation, leaves the slot open. The descheduled producer then lands
// its element behind Head, where it is lost forever — every later dequeue
// on the provably non-empty queue returns empty, which the linearizability
// checker rejects.
//
// This is the detection-power half of the §13 deletion argument: the same
// explorer that finds nothing wrong with the threshold-free consumer
// (test_analysis_mpsc) demonstrably catches a real consumer-path bug when
// one is seeded, so the clean pass is evidence, not blindness.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <memory>

#include "core/mpsc_ring.hpp"
#include "explore.hpp"

#if !defined(WCQ_ANALYSIS_MUTATE_MPSC)
#error "this binary must be compiled with WCQ_ANALYSIS_MUTATE_MPSC"
#endif

namespace wcq {
namespace {

using analysis_test::OpKind;
using analysis_test::PctScheduler;
using analysis_test::Script;
using analysis_test::linearizable_fifo;
using analysis_test::run_schedule;

// The catching interleaving needs one specific preemption (w0 parked
// between its Tail F&A and its entry CAS while w1 and the consumer run to
// completion) plus the consumer outliving w0's resume — a rarer draw than
// the threshold mutation's, so the budget is wider than its 256.
constexpr std::uint64_t kMaxSchedules = 512;

// w0 and w1 race one enqueue each; w2 — the unique consumer — dequeues four
// times. In the window above the consumer sees exactly one element, w0's
// lands dead behind Head, and at least one of the trailing empty dequeues
// starts after both enqueues responded: two committed enqueues, one
// successful dequeue, empty anyway — non-linearizable.
std::vector<Script> mutation_scripts() {
  std::vector<Script> scripts(3);
  scripts[0] = {{OpKind::kEnq, 0}};
  scripts[1] = {{OpKind::kEnq, 1}};
  scripts[2] = {{OpKind::kDeq, 0}, {OpKind::kDeq, 0}, {OpKind::kDeq, 0},
                {OpKind::kDeq, 0}};
  return scripts;
}

TEST(SchedMutationMpsc, UnmarkedDeadRankSkipCaught) {
  const auto scripts = mutation_scripts();
  for (std::uint64_t seed = 1; seed <= kMaxSchedules; ++seed) {
    auto q = std::make_unique<MpscRing>(2);
    PctScheduler::Config cfg;
    cfg.seed = seed;
    cfg.change_points = 1 + static_cast<unsigned>(seed % 4);
    const auto r =
        run_schedule<analysis_test::RingAdapter<MpscRing>>(*q, scripts, cfg);
    ASSERT_FALSE(r.watchdog_fired) << "scheduler wedged, seed " << seed;
    if (!linearizable_fifo(r.history, 4, false)) {
      std::cout << "MpscRing: unmarked dead-rank skip caught at schedule "
                << seed << " of " << kMaxSchedules << "\n";
      SUCCEED();
      return;
    }
  }
  FAIL() << kMaxSchedules
         << " schedules missed the unmarked dead-rank skip — the explorer "
            "has lost its detection power over the MPSC consumer path";
}

// With no scheduler installed the mutated branch still runs, but without
// forced preemption the lost-element window needs a mid-enqueue stall that
// a sequential test never produces: the binary stays correct outside the
// harness and its ordinary round-trip behavior holds.
TEST(SchedMutationMpsc, PassThroughWithoutScheduler) {
  MpscRing q(2);
  q.enqueue(1);
  const auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);
  EXPECT_FALSE(q.dequeue().has_value());
  q.enqueue(2);
  const auto w = q.dequeue();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 2u);
}

}  // namespace
}  // namespace wcq
