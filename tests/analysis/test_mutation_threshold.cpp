// Mutation self-test (DESIGN.md §11): a schedule explorer that cannot detect
// a deliberately broken memory ordering proves nothing. This binary is
// compiled with WCQ_ANALYSIS_MUTATE_THRESHOLD, which routes the threshold
// re-arm in reset_threshold() through analysis::mutate_deferred_store — the
// store parks in the arming thread's one-entry "store buffer" and becomes
// visible only at that thread's next scheduling point, modeling the delayed
// visibility a downgrade to memory_order_relaxed would be allowed on weak
// hardware (DESIGN.md §11, THLD-ARM).
//
// The window it opens: an enqueuer inserts an element and re-arms the
// threshold, but the re-arm is not yet visible; a dequeuer that starts
// *after* the enqueue completed still reads the exhausted threshold and
// returns empty — a false empty on a provably non-empty queue, which the
// linearizability checker rejects. The suite asserts the explorer catches
// this within a bounded number of schedules.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <memory>

#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "explore.hpp"

#if !defined(WCQ_ANALYSIS_MUTATE_THRESHOLD)
#error "this binary must be compiled with WCQ_ANALYSIS_MUTATE_THRESHOLD"
#endif

namespace wcq {
namespace {

using analysis_test::OpKind;
using analysis_test::PctScheduler;
using analysis_test::Script;
using analysis_test::linearizable_fifo;
using analysis_test::run_schedule;

// Schedules allowed before the injected bug must have been flagged. The
// catching interleaving (enqueuer runs to completion before the dequeuer
// starts) needs the enqueuer to hold the higher PCT priority throughout —
// roughly half of all seeds — so 64 is already vast headroom; the full 256
// budget exists to keep the test meaningful if scripts or scheduler
// parameters are tuned later.
constexpr std::uint64_t kMaxSchedules = 256;

// w0: one enqueue — it arms the threshold from its empty-start -1, and that
// arm is the deferred store. Because it is w0's *last* operation, no later
// sched point of w0 ever drains the parked store: in every schedule where w0
// runs to completion first (about half of all priority draws), both of w1's
// dequeues start after the enqueue's response yet still read the exhausted
// threshold — deq->empty with one element committed, non-linearizable.
std::vector<Script> mutation_scripts() {
  std::vector<Script> scripts(2);
  scripts[0] = {{OpKind::kEnq, 0}};
  scripts[1] = {{OpKind::kDeq, 0}, {OpKind::kDeq, 0}};
  return scripts;
}

template <typename Adapter, typename MakeQueue>
void expect_mutation_caught(const char* what, MakeQueue make_queue) {
  const auto scripts = mutation_scripts();
  for (std::uint64_t seed = 1; seed <= kMaxSchedules; ++seed) {
    auto q = make_queue();
    PctScheduler::Config cfg;
    cfg.seed = seed;
    cfg.change_points = 1 + static_cast<unsigned>(seed % 4);
    const auto r = run_schedule<Adapter>(*q, scripts, cfg);
    ASSERT_FALSE(r.watchdog_fired) << "scheduler wedged, seed " << seed;
    if (!linearizable_fifo(r.history, 4, Adapter::kAllowSpuriousFull)) {
      std::cout << what << ": downgraded threshold store caught at schedule "
                << seed << " of " << kMaxSchedules << "\n";
      SUCCEED();
      return;
    }
  }
  FAIL() << what << ": " << kMaxSchedules
         << " schedules missed the injected threshold downgrade — the "
            "explorer has lost its detection power";
}

TEST(SchedMutation, ScqThresholdDowngradeCaught) {
  expect_mutation_caught<analysis_test::RingAdapter<SCQ>>(
      "SCQ", [] { return std::make_unique<SCQ>(2); });
}

TEST(SchedMutation, WcqThresholdDowngradeCaught) {
  expect_mutation_caught<analysis_test::RingAdapter<WCQ>>(
      "WCQ", [] { return std::make_unique<WCQ>(2); });
}

// With no scheduler installed the mutation hook must pass straight through
// to the seq_cst store: a mutated binary still behaves correctly outside the
// harness, so its ordinary unit tests (and this sanity check) stay green.
TEST(SchedMutation, PassThroughWithoutScheduler) {
  SCQ q(2);
  q.enqueue(1);
  const auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);
  EXPECT_FALSE(q.dequeue().has_value());
  q.enqueue(2);  // re-arm after empty: the mutated path, un-deferred
  const auto w = q.dequeue();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 2u);
}

}  // namespace
}  // namespace wcq
