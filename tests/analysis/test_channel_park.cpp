// Park/wake schedule exploration (DESIGN.md §14): the lost-wakeup-freedom
// proof for the eventcount protocol under the blocking Channel facade, run
// the same way PR 6/8 proved ring properties — PCT exploration over the
// WCQ_SCHED_POINT annotations, here including the kParkPrepare / kParkCancel
// / kParkCommit / kParkWake / kChanClose edges compiled into this binary.
//
// The assertion per schedule is threefold:
//   * completeness — every element sent is received exactly once (count and
//     checksum), so no schedule loses or duplicates across the park edges;
//   * stranded == 0 — no virtual park ever exhausted its budget: every
//     committed park had a wake coming (see channel_explore.hpp for why a
//     pending wake always lands well inside the budget);
//   * no watchdog — the blocking loops kept passing scheduling points.
// The companion mutation binaries (test_mutation_dropwake,
// test_mutation_parkcheck) break one protocol edge each and demand the
// OPPOSITE verdict from the same driver, which is what makes a pass here
// evidence rather than vacuity.
#include <gtest/gtest.h>

#include <cstdint>

#include "channel_explore.hpp"

namespace wcq {
namespace {

using analysis_test::run_mpmc_channel;
using analysis_test::run_prodcon_channel;

constexpr std::uint64_t kSeeds = 64;

// Exact-count shape, no close: every wake must come from a per-send notify,
// nothing is mopped up by a close()-time broadcast. The mutation binaries
// run this exact shape.
TEST(ChannelPark, ProdConExactCountEverySeed) {
  constexpr unsigned kCount = 8;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto r = run_prodcon_channel(seed, kCount, /*close_at_end=*/false);
    ASSERT_FALSE(r.watchdog) << "scheduler wedged, seed " << seed;
    ASSERT_EQ(r.received, kCount) << "lost element, seed " << seed;
    ASSERT_EQ(r.checksum, std::uint64_t{kCount} * (kCount - 1) / 2)
        << "corrupted delivery, seed " << seed;
    ASSERT_EQ(r.stranded, 0u)
        << "park outlived its wake (lost wakeup), seed " << seed;
  }
}

// Close-driven drain: the receiver leaves through the kClosed path, so every
// schedule also exercises the close linearization point, the post-close
// authoritative re-dequeue, and the notify_all storm against parked waiters.
TEST(ChannelPark, ProdConCloseDrainEverySeed) {
  constexpr unsigned kCount = 8;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto r = run_prodcon_channel(seed, kCount, /*close_at_end=*/true);
    ASSERT_FALSE(r.watchdog) << "scheduler wedged, seed " << seed;
    ASSERT_EQ(r.received, kCount) << "close lost residual, seed " << seed;
    ASSERT_EQ(r.checksum, std::uint64_t{kCount} * (kCount - 1) / 2)
        << "corrupted delivery, seed " << seed;
    ASSERT_EQ(r.stranded, 0u)
        << "close() left a waiter parked, seed " << seed;
  }
}

// MPMC: notify_one must route wakes correctly with multiple parked waiters
// per direction, and the last sender's close must terminate every receiver.
TEST(ChannelPark, MpmcCloseEverySeed) {
  constexpr unsigned kSenders = 2, kReceivers = 2, kPer = 4;
  constexpr std::uint64_t kN = kSenders * kPer;
  for (std::uint64_t seed = 1; seed <= kSeeds / 2; ++seed) {
    const auto r = run_mpmc_channel(seed, kSenders, kReceivers, kPer);
    ASSERT_FALSE(r.watchdog) << "scheduler wedged, seed " << seed;
    ASSERT_EQ(r.received, kN) << "lost element, seed " << seed;
    ASSERT_EQ(r.checksum, kN * (kN - 1) / 2)
        << "corrupted delivery, seed " << seed;
    ASSERT_EQ(r.stranded, 0u) << "lost wakeup, seed " << seed;
  }
}

// Meta-assertion: the exploration actually drives the park edges. If no
// schedule ever parks, every stranded == 0 above is vacuous.
TEST(ChannelPark, SchedulesActuallyPark) {
  std::uint64_t parks = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto r = run_prodcon_channel(seed, 8, /*close_at_end=*/false);
    parks += r.recv_parks + r.send_parks;
  }
  EXPECT_GT(parks, 0u) << "no schedule parked: the park/wake edges are not "
                          "being explored and the suite proves nothing";
}

}  // namespace
}  // namespace wcq
