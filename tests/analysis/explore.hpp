// Schedule-exploration driver (DESIGN.md §11): runs per-worker op scripts
// against one queue under the PCT scheduler and records everything the
// assertions need — the operation history (for the linearizability check),
// the interleaving trace (for determinism), the per-op own-step maximum (the
// bounded-step wait-freedom budget) and the watchdog flag (wedge detection).
//
// Scope is deliberately small (2-3 workers, order-2 rings): PCT's detection
// probability and the exact checker's cost both scale with history size, and
// the small-scope hypothesis — concurrency bugs manifest in few-thread,
// few-op windows — is what makes this tier informative per CPU-second.
//
// Scripts keep the number of in-flight elements at or below the capacity the
// ring was built with, mirroring the Fig 2 usage contract (a ring holds at
// most `capacity` live indices): ring enqueues then never report full, so
// any full return or FIFO violation the checker sees is a real bug, not a
// contract violation by the harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "lin_check.hpp"
#include "pct_scheduler.hpp"

namespace wcq::analysis_test {

enum class OpKind : std::uint8_t { kEnq, kDeq };

struct ScriptOp {
  OpKind kind;
  std::uint64_t value = 0;  // kEnq only
};

using Script = std::vector<ScriptOp>;

// Each worker alternates enqueue/dequeue, so it holds at most one element in
// flight and `workers` bounds the queue's occupancy. Ring element values
// must stay below the ring's capacity (they are Fig 2 indices); with
// `unique_values` off every worker enqueues its own index, with it on the
// values also encode the pair ordinal (payload-carrying layers, where the
// stronger discrimination tightens the FIFO check).
inline std::vector<Script> pairs_scripts(unsigned workers, unsigned pairs,
                                         bool unique_values) {
  std::vector<Script> scripts(workers);
  for (unsigned w = 0; w < workers; ++w) {
    for (unsigned k = 0; k < pairs; ++k) {
      const std::uint64_t v =
          unique_values ? std::uint64_t{w} * 100 + k : std::uint64_t{w};
      scripts[w].push_back({OpKind::kEnq, v});
      scripts[w].push_back({OpKind::kDeq, 0});
    }
  }
  return scripts;
}

// Two workers, producer/consumer: w0 enqueues `count` distinct values,
// w1 dequeues `count` times (empties included — they must linearize).
// `count` must not exceed the ring capacity.
inline std::vector<Script> prodcon_scripts(unsigned count) {
  std::vector<Script> scripts(2);
  for (unsigned k = 0; k < count; ++k) {
    scripts[0].push_back({OpKind::kEnq, k});
    scripts[1].push_back({OpKind::kDeq, 0});
  }
  return scripts;
}

// Queue adapters: one shape for the bare rings (void enqueue — the Fig 2
// contract says they are never full in-contract) and one for BoundedQueue
// (bool enqueue, spurious full tolerated when magazines are on).
template <typename Ring>
struct RingAdapter {
  using Queue = Ring;
  static constexpr bool kAllowSpuriousFull = false;
  static bool enq(Queue& q, std::uint64_t v) {
    q.enqueue(v);
    return true;
  }
  static std::optional<std::uint64_t> deq(Queue& q) { return q.dequeue(); }
};

template <typename Bounded, bool AllowSpuriousFull>
struct BoundedAdapter {
  using Queue = Bounded;
  static constexpr bool kAllowSpuriousFull = AllowSpuriousFull;
  static bool enq(Queue& q, std::uint64_t v) { return q.enqueue(v); }
  static std::optional<std::uint64_t> deq(Queue& q) { return q.dequeue(); }
};

struct ScheduleResult {
  std::vector<OpRec> history;
  std::vector<std::uint8_t> trace;
  bool watchdog_fired = false;
  std::size_t max_op_steps = 0;
  std::size_t total_steps = 0;
};

// Run one schedule: install the scheduler, execute every script to
// completion, tear down. The queue must be constructed by the caller
// *before* this runs so no construction-time atomics hit the scheduler.
template <typename Adapter>
ScheduleResult run_schedule(typename Adapter::Queue& q,
                            const std::vector<Script>& scripts,
                            PctScheduler::Config cfg) {
  const auto workers = static_cast<unsigned>(scripts.size());
  cfg.workers = workers;
  ScheduleResult result;
  {
    PctScheduler sched(cfg);
    std::atomic<std::uint64_t> clock{0};
    std::vector<std::vector<OpRec>> recs(workers);
    std::vector<std::size_t> max_steps(workers, 0);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        sched.attach(w);
        for (const ScriptOp& op : scripts[w]) {
          const std::size_t s0 = sched.own_steps(w);
          OpRec r;
          r.thread = w;
          r.is_enq = op.kind == OpKind::kEnq;
          r.inv = clock.fetch_add(1, std::memory_order_seq_cst);
          if (r.is_enq) {
            r.value = op.value;
            r.ok = Adapter::enq(q, op.value);
          } else {
            const auto v = Adapter::deq(q);
            r.ok = v.has_value();
            r.value = v.value_or(0);
          }
          r.res = clock.fetch_add(1, std::memory_order_seq_cst);
          recs[w].push_back(r);
          const std::size_t steps = sched.own_steps(w) - s0;
          if (steps > max_steps[w]) max_steps[w] = steps;
        }
        sched.finish();
      });
    }
    for (auto& t : threads) t.join();
    for (unsigned w = 0; w < workers; ++w) {
      result.history.insert(result.history.end(), recs[w].begin(),
                            recs[w].end());
      if (max_steps[w] > result.max_op_steps) {
        result.max_op_steps = max_steps[w];
      }
    }
    result.trace = sched.trace();
    result.watchdog_fired = sched.watchdog_fired();
    result.total_steps = sched.total_steps();
  }  // ~PctScheduler uninstalls the hooks before the queue is torn down
  return result;
}

}  // namespace wcq::analysis_test
