// Channel/park schedule-exploration driver (DESIGN.md §14).
//
// The explore.hpp script driver models one-shot enq/deq ops; blocking
// channel operations do not fit that shape (a blocked send/recv spans many
// scheduling points and its completion depends on a peer's progress), so the
// park/wake suites use these purpose-built runners instead. Each runs one
// producer/consumer (or MPMC) workload over Channel<T> under the PCT
// scheduler and reports exactly what the lost-wakeup assertions need:
//
//   * received/checksum — delivery completeness (nothing lost, nothing
//     invented) across the schedule;
//   * stranded — EventCount's budget-exhausted virtual parks. A park whose
//     wake exists is always released well inside the budget (the quota
//     demotes the spinning parker below every runnable peer, so the waking
//     peer gets the processor thousands of times before the budget ends);
//     a park whose wake was LOST spins the budget down alone. Correct
//     protocol => stranded == 0 on every seed; the dropped-wake and
//     skipped-re-check mutation binaries must drive it > 0 at some seed.
//   * watchdog — the scheduler never wedged (blocking ops keep passing
//     scheduling points: ring ops inside the retry loops, kParkCommit
//     inside virtual parks).
//
// The no-close shape (close_at_end = false) is the mutation-sensitive one:
// the receiver expects exactly `count` elements and the sender never calls
// close(), so the close()-time notify_all cannot paper over a wake that the
// per-send notify lost.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "pct_scheduler.hpp"
#include "runtime/channel.hpp"

namespace wcq::analysis_test {

struct ChanRunResult {
  bool watchdog = false;
  std::uint64_t received = 0;
  std::uint64_t checksum = 0;   // sum of received values
  std::uint64_t stranded = 0;   // lost-wakeup detector (see file comment)
  std::uint64_t recv_parks = 0;
  std::uint64_t send_parks = 0;
};

// w0 sends 0..count-1 (blocking), then optionally closes; w1 receives —
// exactly `count` recvs without close, drain-until-kClosed with it. A small
// ring (default capacity 2) forces parks in both directions.
inline ChanRunResult run_prodcon_channel(std::uint64_t seed, unsigned count,
                                         bool close_at_end,
                                         unsigned order = 1) {
  Channel<std::uint64_t> ch(order);
  PctScheduler::Config cfg;
  cfg.seed = seed;
  cfg.workers = 2;
  cfg.change_points = 1 + static_cast<unsigned>(seed % 4);
  ChanRunResult res;
  {
    PctScheduler sched(cfg);
    std::thread sender([&] {
      sched.attach(0);
      {
        auto h = ch.acquire();
        for (unsigned i = 0; i < count; ++i) ch.send(h, i);
        if (close_at_end) ch.close();
      }
      sched.finish();
    });
    std::thread receiver([&] {
      sched.attach(1);
      {
        auto h = ch.acquire();
        std::uint64_t out = 0;
        if (close_at_end) {
          while (ch.recv(h, out) == ChanStatus::kOk) {
            ++res.received;
            res.checksum += out;
          }
        } else {
          for (unsigned i = 0; i < count; ++i) {
            if (ch.recv(h, out) == ChanStatus::kOk) {
              ++res.received;
              res.checksum += out;
            }
          }
        }
      }
      sched.finish();
    });
    sender.join();
    receiver.join();
    res.watchdog = sched.watchdog_fired();
  }
  const auto st = ch.stats();
  res.stranded = st.stranded;
  res.recv_parks = st.recv_parks;
  res.send_parks = st.send_parks;
  return res;
}

// senders x receivers MPMC: each sender sends `per_sender` distinct values,
// the last one to finish closes; receivers drain until kClosed.
inline ChanRunResult run_mpmc_channel(std::uint64_t seed, unsigned senders,
                                      unsigned receivers, unsigned per_sender,
                                      unsigned order = 1) {
  Channel<std::uint64_t> ch(order);
  PctScheduler::Config cfg;
  cfg.seed = seed;
  cfg.workers = senders + receivers;
  cfg.change_points = 1 + static_cast<unsigned>(seed % 4);
  ChanRunResult res;
  {
    PctScheduler sched(cfg);
    std::atomic<unsigned> senders_left{senders};
    std::vector<std::uint64_t> got(receivers, 0);
    std::vector<std::uint64_t> sum(receivers, 0);
    std::vector<std::thread> threads;
    for (unsigned s = 0; s < senders; ++s) {
      threads.emplace_back([&, s] {
        sched.attach(s);
        {
          auto h = ch.acquire();
          for (unsigned i = 0; i < per_sender; ++i) {
            ch.send(h, std::uint64_t{s} * per_sender + i);
          }
          if (senders_left.fetch_sub(1) == 1) ch.close();
        }
        sched.finish();
      });
    }
    for (unsigned r = 0; r < receivers; ++r) {
      threads.emplace_back([&, r] {
        sched.attach(senders + r);
        {
          auto h = ch.acquire();
          std::uint64_t out = 0;
          while (ch.recv(h, out) == ChanStatus::kOk) {
            ++got[r];
            sum[r] += out;
          }
        }
        sched.finish();
      });
    }
    for (auto& t : threads) t.join();
    for (unsigned r = 0; r < receivers; ++r) {
      res.received += got[r];
      res.checksum += sum[r];
    }
    res.watchdog = sched.watchdog_fired();
  }
  const auto st = ch.stats();
  res.stranded = st.stranded;
  res.recv_parks = st.recv_parks;
  res.send_parks = st.send_parks;
  return res;
}

}  // namespace wcq::analysis_test
