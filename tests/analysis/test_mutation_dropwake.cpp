// Mutation self-test (DESIGN.md §14): drop the post-send wake. This binary
// compiles runtime/channel.hpp with WCQ_ANALYSIS_MUTATE_DROPWAKE, which
// removes the not_empty_.notify_one() from the successful-send path — the
// textbook lost-wakeup bug the eventcount exists to prevent. A receiver that
// committed its park before the send now sleeps through the element.
//
// Under the PCT scheduler the sleep is finite (EventCount's virtual park
// returns spuriously after its budget and tallies stranded), so the injected
// bug surfaces as stranded > 0 at some schedule instead of a hang — that is
// the detection the suite demands within the seed budget. The exact-count,
// no-close workload shape matters: with a close() at the end, close's
// notify_all would eventually mop up the parked receiver and the dropped
// per-send wake could go unnoticed.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>

#include "channel_explore.hpp"

#if !defined(WCQ_ANALYSIS_MUTATE_DROPWAKE)
#error "this binary must be compiled with WCQ_ANALYSIS_MUTATE_DROPWAKE"
#endif

namespace wcq {
namespace {

using analysis_test::run_prodcon_channel;

// The catching interleaving — receiver parks first, sender then runs to
// completion without ever notifying — needs the receiver to start at the
// higher PCT priority, roughly half of all seeds; 256 is vast headroom.
constexpr std::uint64_t kMaxSchedules = 256;

TEST(ChannelMutation, DroppedWakeCaught) {
  for (std::uint64_t seed = 1; seed <= kMaxSchedules; ++seed) {
    const auto r = run_prodcon_channel(seed, 8, /*close_at_end=*/false);
    ASSERT_FALSE(r.watchdog) << "scheduler wedged, seed " << seed;
    // The spurious-return contract keeps the mutated run *functionally*
    // complete — the receiver re-checks after the budget and still drains
    // everything — so completeness must hold even here. Only the stranded
    // counter distinguishes the broken protocol.
    ASSERT_EQ(r.received, 8u) << "seed " << seed;
    if (r.stranded > 0) {
      std::cout << "dropped wake caught at schedule " << seed << " of "
                << kMaxSchedules << " (stranded=" << r.stranded << ")\n";
      SUCCEED();
      return;
    }
  }
  FAIL() << kMaxSchedules
         << " schedules missed the dropped wake — the park/wake explorer "
            "has lost its detection power";
}

// Without a scheduler installed there is no virtual park, so the mutated
// binary must still pass a single-threaded (never-parking) workload: the
// mutation only removes a wake, not queue correctness.
TEST(ChannelMutation, PassThroughWithoutScheduler) {
  Channel<std::uint64_t> ch(2u);
  auto h = ch.acquire();
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(ch.send(h, i), ChanStatus::kOk);
    ASSERT_EQ(ch.recv(h, out), ChanStatus::kOk);
    ASSERT_EQ(out, i);
  }
  EXPECT_EQ(ch.stats().stranded, 0u);
}

}  // namespace
}  // namespace wcq
