// Mutation self-test (DESIGN.md §15): every fence-diet downgrade must ship
// with a falsifiable check, not just prose. This binary is compiled with
// WCQ_ANALYSIS_MUTATE_RELAXED, which over-weakens the §15 SPMC-REARM site —
// the argued seq_cst → release threshold re-arm store in
// SpmcRing::reset_threshold() — one step further, to a relaxed store whose
// visibility is deferred past the arming thread's next scheduling point
// (analysis::mutate_deferred_store, the same store-buffer model the
// THLD-ARM mutation uses).
//
// The window it opens is exactly what the SPMC-REARM argument says release
// still forbids: the producer inserts an element and re-arms, but the arm
// is not yet visible; a consumer that starts *after* the enqueue's response
// still reads the exhausted threshold and returns empty — a false empty on
// a provably non-empty queue, rejected by the linearizability checker. The
// suite asserts the PCT explorer catches this within a bounded number of
// schedules and reports the schedule index, closing the §15 detection-power
// loop for the diet.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <memory>

#include "core/spmc_ring.hpp"
#include "explore.hpp"

#if !defined(WCQ_ANALYSIS_MUTATE_RELAXED)
#error "this binary must be compiled with WCQ_ANALYSIS_MUTATE_RELAXED"
#endif

namespace wcq {
namespace {

using analysis_test::OpKind;
using analysis_test::PctScheduler;
using analysis_test::Script;
using analysis_test::linearizable_fifo;
using analysis_test::run_schedule;

// Same budget reasoning as test_mutation_threshold: the catching
// interleaving (producer runs to completion before the consumer starts)
// needs the producer to hold the higher PCT priority throughout — roughly
// half of all seeds — so 256 is vast headroom.
constexpr std::uint64_t kMaxSchedules = 256;

// Degree-respecting shape (exactly one worker ever enqueues an SpmcRing):
// w0 is the producer whose single enqueue arms the threshold from its
// empty-start -1, and that arm is the deferred store. Because it is w0's
// *last* operation, no later sched point of w0 ever drains the parked
// store: in every schedule where w0 runs to completion first, both of w1's
// dequeues start after the enqueue's response yet still read the exhausted
// threshold — deq->empty with one element committed, non-linearizable.
std::vector<Script> mutation_scripts() {
  std::vector<Script> scripts(2);
  scripts[0] = {{OpKind::kEnq, 0}};
  scripts[1] = {{OpKind::kDeq, 0}, {OpKind::kDeq, 0}};
  return scripts;
}

TEST(SchedMutationRelaxed, SpmcRearmOverWeakeningCaught) {
  const auto scripts = mutation_scripts();
  for (std::uint64_t seed = 1; seed <= kMaxSchedules; ++seed) {
    auto q = std::make_unique<SpmcRing>(2);
    PctScheduler::Config cfg;
    cfg.seed = seed;
    cfg.change_points = 1 + static_cast<unsigned>(seed % 4);
    const auto r =
        run_schedule<analysis_test::RingAdapter<SpmcRing>>(*q, scripts, cfg);
    ASSERT_FALSE(r.watchdog_fired) << "scheduler wedged, seed " << seed;
    if (!linearizable_fifo(
            r.history, 4,
            analysis_test::RingAdapter<SpmcRing>::kAllowSpuriousFull)) {
      std::cout << "SPMC: over-weakened re-arm store caught at schedule "
                << seed << " of " << kMaxSchedules << "\n";
      SUCCEED();
      return;
    }
  }
  FAIL() << "SPMC: " << kMaxSchedules
         << " schedules missed the injected re-arm over-weakening — the "
            "explorer has lost its §15 detection power";
}

// With no scheduler installed the mutation hook must pass straight through
// to the release store: a mutated binary still behaves correctly outside
// the harness, so its ordinary unit tests (and this sanity check) stay
// green.
TEST(SchedMutationRelaxed, PassThroughWithoutScheduler) {
  SpmcRing q(2);
  q.enqueue(1);
  const auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);
  EXPECT_FALSE(q.dequeue().has_value());
  q.enqueue(2);  // re-arm after empty: the mutated path, un-deferred
  const auto w = q.dequeue();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 2u);
}

}  // namespace
}  // namespace wcq
