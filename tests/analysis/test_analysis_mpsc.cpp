// Degree-specialized rings under the schedule explorer (DESIGN.md §13):
// PCT-randomized interleavings over small-scope MpscRing and SpmcRing
// configurations, asserting linearizability and the bounded-step budget.
//
// Script shapes respect the degree contracts — exactly one worker ever
// dequeues an MpscRing and exactly one ever enqueues an SpmcRing (the
// pairs_scripts shape, where every worker does both, would trip the
// SessionGuard trap by design, so it is deliberately absent here).
//
// The load-bearing case is the re-arm comparison: the SAME seeds and the
// SAME script run over SCQ (which re-arms the threshold on every enqueue)
// and over MpscRing (threshold deleted outright, empty decided by a Tail
// comparison). Both explore clean. Paired with test_mutation_threshold —
// where deferring that re-arm on SCQ IS caught — and test_mutation_mpsc —
// where a seeded consumer-path bug in MpscRing IS caught — this is the
// §11-style detection-power argument that the deletion removed a referee
// the single consumer never needed, not a safety net the explorer cannot
// see through.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "core/mpsc_ring.hpp"
#include "core/scq.hpp"
#include "core/spmc_ring.hpp"
#include "explore.hpp"

namespace wcq {
namespace {

using analysis_test::OpKind;
using analysis_test::PctScheduler;
using analysis_test::Script;
using analysis_test::linearizable_fifo;
using analysis_test::prodcon_scripts;
using analysis_test::run_schedule;

// Same ceilings as test_schedule_exploration: the budget is a livelock
// tripwire far above any legitimate small-scope op, and 48 seeds at 1-4
// change points cover the few-preemption windows PCT is built to hit.
constexpr std::size_t kOpBudget = 20000;
constexpr unsigned kSeeds = 48;

template <typename Adapter, typename MakeQueue>
void explore(MakeQueue make_queue, const std::vector<Script>& scripts,
             std::size_t capacity) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto q = make_queue();
    PctScheduler::Config cfg;
    cfg.seed = seed;
    cfg.change_points = 1 + static_cast<unsigned>(seed % 4);
    const auto r = run_schedule<Adapter>(*q, scripts, cfg);
    ASSERT_FALSE(r.watchdog_fired) << "scheduler wedged, seed " << seed;
    ASSERT_LE(r.max_op_steps, kOpBudget)
        << "per-op step budget blown, seed " << seed;
    ASSERT_TRUE(linearizable_fifo(r.history, capacity,
                                  Adapter::kAllowSpuriousFull))
        << "non-linearizable history, seed " << seed;
  }
}

// Two producers racing one consumer — the smallest shape where the
// consumer's dead-rank walk (a producer holds a Tail rank it has not filled
// while a later rank is already delivered) can occur. Values stay below the
// order-2 ring's capacity of 4 and at most 4 elements are ever in flight.
std::vector<Script> two_prod_one_con_scripts() {
  std::vector<Script> scripts(3);
  scripts[0] = {{OpKind::kEnq, 0}, {OpKind::kEnq, 1}};
  scripts[1] = {{OpKind::kEnq, 2}, {OpKind::kEnq, 3}};
  scripts[2] = {{OpKind::kDeq, 0}, {OpKind::kDeq, 0}, {OpKind::kDeq, 0},
                {OpKind::kDeq, 0}, {OpKind::kDeq, 0}};
  return scripts;
}

// The SPMC mirror: one producer, two racing consumers (the side the
// threshold still referees), plus an extra dequeue so empties linearize too.
std::vector<Script> one_prod_two_con_scripts() {
  std::vector<Script> scripts(3);
  scripts[0] = {{OpKind::kEnq, 0}, {OpKind::kEnq, 1}, {OpKind::kEnq, 2}};
  scripts[1] = {{OpKind::kDeq, 0}, {OpKind::kDeq, 0}};
  scripts[2] = {{OpKind::kDeq, 0}, {OpKind::kDeq, 0}};
  return scripts;
}

TEST(SchedExploreDegree, MpscProdCon) {
  explore<analysis_test::RingAdapter<MpscRing>>(
      [] { return std::make_unique<MpscRing>(2); }, prodcon_scripts(3), 4);
}

TEST(SchedExploreDegree, MpscTwoProducersOneConsumer) {
  explore<analysis_test::RingAdapter<MpscRing>>(
      [] { return std::make_unique<MpscRing>(2); }, two_prod_one_con_scripts(),
      4);
}

// The re-arm comparison itself: identical seeds, identical script, SCQ with
// its threshold re-arm vs MpscRing without any threshold at all. SCQ passing
// shows the schedules exercise the re-arm path (deferring it there is caught
// by test_mutation_threshold); MpscRing passing over the same schedules
// shows no interleaving needs it once the consumer is unique — its false
// empties are ruled out by the seq_cst Tail comparison instead.
TEST(SchedExploreDegree, ThresholdRearmRedundantForSingleConsumer) {
  const auto scripts = prodcon_scripts(3);
  explore<analysis_test::RingAdapter<SCQ>>(
      [] { return std::make_unique<SCQ>(2); }, scripts, 4);
  explore<analysis_test::RingAdapter<MpscRing>>(
      [] { return std::make_unique<MpscRing>(2); }, scripts, 4);
}

TEST(SchedExploreDegree, SpmcProdCon) {
  explore<analysis_test::RingAdapter<SpmcRing>>(
      [] { return std::make_unique<SpmcRing>(2); }, prodcon_scripts(3), 4);
}

TEST(SchedExploreDegree, SpmcOneProducerTwoConsumers) {
  explore<analysis_test::RingAdapter<SpmcRing>>(
      [] { return std::make_unique<SpmcRing>(2); }, one_prod_two_con_scripts(),
      4);
}

}  // namespace
}  // namespace wcq
