// PCT-style cooperative scheduler for the analysis tier (DESIGN.md §11).
//
// Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS'10): give
// every thread a random priority, run the highest-priority runnable thread,
// and at d randomly chosen steps demote the running thread below everyone
// else. For programs whose bugs need k ordering constraints, a single run
// finds them with probability >= 1/(n * t^(k-1)) — so a few hundred seeds
// cover the small-scope configs explored here many times over.
//
// This implementation drives the WCQ_SCHED_POINT annotations compiled into
// src/ under WCQ_ANALYSIS=1 (or into an individual test binary via a
// per-target define — the rings are header-only, so any preset can run it):
//
//  * Execution is *serialized*: exactly one attached worker runs between two
//    scheduling points; everyone else blocks on a condition variable. With
//    decisions drawn from a seeded xoshiro stream, the whole interleaving —
//    and therefore the (worker, site) byte trace — is a deterministic
//    function of the seed. Same seed, byte-identical trace; that is what
//    tests/analysis/test_schedule_determinism.cpp asserts.
//
//  * Plain PCT assumes preempted threads stay preempted; lock-free spin
//    loops (a helper waiting on a peer's phase-1 CAS) would then spin under
//    the scheduler forever. A quota demotes any worker that has taken
//    `quota` consecutive steps below all others, so some other thread always
//    gets the processor — the scheduling-fairness analogue the algorithms'
//    lock-freedom arguments assume.
//
//  * A wall-clock watchdog is the wedge net: if no grant can be handed out
//    for `watchdog` (a worker blocked in uninstrumented code, a real
//    deadlock), the scheduler flips to free-running so the test fails with a
//    diagnosis instead of hanging CTest.
//
// Threads the scheduler never attached (the test's main thread constructing
// the queue, detached teardown work) pass through sched points untouched.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "analysis/sched_point.hpp"
#include "common/rng.hpp"

namespace wcq::analysis_test {

class PctScheduler {
 public:
  struct Config {
    std::uint64_t seed = 1;
    unsigned workers = 2;
    // d: how many forced demotions ("change points") the schedule injects,
    // at step indices sampled uniformly from [1, horizon].
    unsigned change_points = 3;
    std::size_t horizon = 600;
    // Forced-demotion quota: consecutive own-steps before the running
    // worker is dropped below everyone else (spin-loop fairness).
    std::size_t quota = 64;
    std::chrono::milliseconds watchdog{5000};
    // Stall injection (DESIGN.md §14): suspend worker `stall_victim` the
    // first time it reaches its `stall_after`-th own step, as if the OS
    // descheduled it indefinitely mid-operation. A stalled worker is never
    // granted the processor; it resumes only when no other worker can run
    // (everyone else finished or parked in uninstrumented code) — so every
    // op the other workers complete in between is completed *against a
    // suspended peer*, which is precisely the wait-freedom claim under test.
    // A "killed" peer (pipeline consumer that never comes back) is the same
    // mechanism with the victim's script abandoning its remaining ops once
    // it observes stall_resumed() — see tests/analysis/test_stall_injection.
    int stall_victim = -1;        // worker index; -1 disables
    std::size_t stall_after = 1;  // own-step count at which the stall hits
    // Optional bounded-suspension mode: resume the victim once the *other*
    // workers have taken this many scheduling steps since the stall (0 =
    // only the quiescence trigger above). Use it for shapes where the peers
    // cannot reach quiescence without the victim (e.g. the victim owns the
    // close()) — the bound must sit well below EventCount's virtual-park
    // budget so a peer parked against the stalled victim is resumed-at
    // rather than stranded.
    std::size_t stall_duration = 0;
  };

  explicit PctScheduler(const Config& cfg) : cfg_(cfg), ws_(cfg.workers) {
    Xoshiro256 rng(cfg.seed);
    // Distinct initial priorities: a random permutation of the workers,
    // offset high so demotion values (counting down from kDemoteBase) always
    // rank below every never-demoted worker.
    std::vector<unsigned> order(cfg.workers);
    for (unsigned i = 0; i < cfg.workers; ++i) order[i] = i;
    for (unsigned i = cfg.workers; i > 1; --i) {
      const auto j = static_cast<unsigned>(rng.bounded(i));
      const unsigned tmp = order[i - 1];
      order[i - 1] = order[j];
      order[j] = tmp;
    }
    for (unsigned rank = 0; rank < cfg.workers; ++rank) {
      ws_[order[rank]].priority = kPriorityBase + cfg.workers - rank;
    }
    for (unsigned c = 0; c < cfg.change_points; ++c) {
      change_steps_.push_back(1 + rng.bounded(cfg.horizon));
    }
    trace_.reserve(1 << 14);
    start_ = std::chrono::steady_clock::now();
    hooks_.yield = &PctScheduler::yield_tramp;
    hooks_.ctx = this;
    analysis::install(&hooks_);
  }

  ~PctScheduler() { analysis::uninstall(); }
  PctScheduler(const PctScheduler&) = delete;
  PctScheduler& operator=(const PctScheduler&) = delete;

  // Worker-side: bind the calling thread to worker index `w` and block until
  // every worker has attached and this one is granted the processor. The
  // all-attached gate makes grant decisions independent of OS thread startup
  // order — a precondition for trace determinism.
  void attach(unsigned w) {
    std::unique_lock<std::mutex> lk(mu_);
    tl_worker() = static_cast<int>(w);
    ws_[w].attached = true;
    ++attached_;
    if (attached_ == cfg_.workers) schedule_locked();
    cv_.notify_all();
    wait_for_grant(lk, w);
  }

  // Worker-side: the worker's script is done. Hands the processor on, then
  // *holds the thread here* until every worker is finished, so thread-exit
  // work (registry release, magazine flush hooks) never interleaves with
  // scheduled code. Deliberately does NOT drain a parked mutation-model
  // store: a downgraded store that never became visible must stay invisible,
  // that is the window the mutation self-test exists to catch.
  void finish() {
    std::unique_lock<std::mutex> lk(mu_);
    const int w = tl_worker();
    ws_[static_cast<unsigned>(w)].finished = true;
    if (current_ == w) schedule_locked();
    cv_.notify_all();
    while (!all_finished_locked() && !free_run_) {
      if (cv_.wait_for(lk, kPoll) == std::cv_status::timeout) check_watchdog();
    }
    tl_worker() = -1;
    cv_.notify_all();
  }

  // Steps this worker has executed (its own sched points). The worker reads
  // its own counter between ops to enforce the per-op wait-freedom budget.
  std::size_t own_steps(unsigned w) {
    std::lock_guard<std::mutex> lk(mu_);
    return ws_[w].steps;
  }

  // Post-run accessors (call after every worker joined).
  const std::vector<std::uint8_t>& trace() const { return trace_; }
  bool watchdog_fired() const { return watchdog_fired_; }
  std::size_t total_steps() const { return total_steps_; }

  // Stall-injection observability (worker- or post-run-side; locked).
  bool stall_hit() {
    std::lock_guard<std::mutex> lk(mu_);
    return stall_hit_;
  }
  bool stall_resumed() {
    std::lock_guard<std::mutex> lk(mu_);
    return stall_resumed_;
  }
  // Steps every worker other than the victim executed while the victim sat
  // suspended — the quantitative wait-freedom witness (> 0 means real work
  // completed against a stalled peer).
  std::size_t steps_during_stall() {
    std::lock_guard<std::mutex> lk(mu_);
    return steps_during_stall_;
  }

 private:
  static constexpr std::uint64_t kPriorityBase = 1u << 20;
  static constexpr std::uint64_t kDemoteBase = 1u << 19;
  static constexpr std::chrono::milliseconds kPoll{100};
  static constexpr std::size_t kTraceCap = 1u << 22;  // bytes; caps memory

  struct WorkerState {
    bool attached = false;
    bool finished = false;
    bool stalled = false;
    std::uint64_t priority = 0;
    std::size_t steps = 0;
    std::size_t consecutive = 0;
  };

  static int& tl_worker() {
    thread_local int w = -1;
    return w;
  }

  static void yield_tramp(void* ctx, analysis::Site site) {
    static_cast<PctScheduler*>(ctx)->on_point(site);
  }

  void on_point(analysis::Site site) {
    const int w = tl_worker();
    if (w < 0) return;  // not a scheduled worker (main thread, teardown)
    std::unique_lock<std::mutex> lk(mu_);
    if (free_run_) return;
    auto& st = ws_[static_cast<unsigned>(w)];
    if (trace_.size() < kTraceCap) {
      trace_.push_back(static_cast<std::uint8_t>(w));
      trace_.push_back(static_cast<std::uint8_t>(site));
    }
    ++total_steps_;
    ++st.steps;
    ++st.consecutive;
    if (stall_hit_ && !stall_resumed_ && w != cfg_.stall_victim) {
      ++steps_during_stall_;
      if (cfg_.stall_duration != 0 &&
          steps_during_stall_ >= cfg_.stall_duration) {
        for (auto& s : ws_) s.stalled = false;
        stall_resumed_ = true;
      }
    }
    if (w == cfg_.stall_victim && !stall_hit_ && st.steps >= cfg_.stall_after) {
      // The victim is suspended *at* this sched point: it keeps the grant
      // request below but schedule_locked will never pick it while stalled,
      // so it blocks here until the resume condition fires.
      st.stalled = true;
      stall_hit_ = true;
    }
    bool demote = false;
    for (const std::size_t s : change_steps_) {
      if (s == total_steps_) demote = true;
    }
    if (st.consecutive >= cfg_.quota) demote = true;
    if (demote) {
      st.priority = demote_next_--;
      st.consecutive = 0;
    }
    schedule_locked();
    cv_.notify_all();
    wait_for_grant(lk, static_cast<unsigned>(w));
  }

  // Grant the highest-priority attached, unfinished, unstalled worker (or
  // nobody). When a stall leaves no grantable worker — every peer of the
  // victim finished — the victim resumes: the suspension was "indefinite"
  // from the peers' point of view (they completed all their work against it)
  // and the resume lets the run terminate so finish()/join() can assert on
  // what happened during the stall window.
  void schedule_locked() {
    if (attached_ < cfg_.workers) return;  // start gate still closed
    current_ = pick_locked();
    if (current_ < 0 && stall_hit_ && !stall_resumed_) {
      for (auto& st : ws_) st.stalled = false;
      stall_resumed_ = true;
      current_ = pick_locked();
    }
  }

  int pick_locked() {
    int best = -1;
    std::uint64_t best_prio = 0;
    for (unsigned i = 0; i < cfg_.workers; ++i) {
      const auto& st = ws_[i];
      if (!st.attached || st.finished || st.stalled) continue;
      if (best < 0 || st.priority > best_prio) {
        best = static_cast<int>(i);
        best_prio = st.priority;
      }
    }
    if (best != current_ && best >= 0) {
      ws_[static_cast<unsigned>(best)].consecutive = 0;
    }
    return best;
  }

  void wait_for_grant(std::unique_lock<std::mutex>& lk, unsigned w) {
    while (!free_run_ && current_ != static_cast<int>(w)) {
      if (cv_.wait_for(lk, kPoll) == std::cv_status::timeout) check_watchdog();
    }
  }

  bool all_finished_locked() const {
    for (const auto& st : ws_) {
      if (!st.finished) return false;
    }
    return true;
  }

  // Called with mu_ held after a poll timeout.
  void check_watchdog() {
    if (std::chrono::steady_clock::now() - start_ > cfg_.watchdog) {
      free_run_ = true;
      watchdog_fired_ = true;
      cv_.notify_all();
    }
  }

  Config cfg_;
  analysis::SchedHooks hooks_{};
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<WorkerState> ws_;
  unsigned attached_ = 0;
  int current_ = -1;
  std::uint64_t demote_next_ = kDemoteBase;
  std::vector<std::size_t> change_steps_;
  std::size_t total_steps_ = 0;
  bool free_run_ = false;
  bool watchdog_fired_ = false;
  bool stall_hit_ = false;
  bool stall_resumed_ = false;
  std::size_t steps_during_stall_ = 0;
  std::vector<std::uint8_t> trace_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wcq::analysis_test
