// Bounded-FIFO linearizability checker (Wing & Gong style enumeration with
// memoization) for the schedule-exploration harness (DESIGN.md §11).
//
// The histories produced by one explored schedule are tiny — a handful of
// workers, a dozen ops — so an exact check is affordable: search for *any*
// total order of the recorded operations that (a) respects real-time order
// (an op that responded before another was invoked must come first) and
// (b) replays correctly against a sequential bounded FIFO queue. Memoizing
// on (linearized-set, queue-content) keeps re-explored interleavings cheap.
//
// Semantics per op kind at its linearization point:
//   enq ok      — queue has a free slot (size < capacity); value appended
//   enq full    — only legal when size == capacity, unless the queue layer
//                 documents spurious fulls (BoundedQueue with magazines: a
//                 free index parked in a peer's in-flight magazine put can
//                 slip past the reclaim sweep, DESIGN.md §9) — then it is
//                 accepted in any state via `allow_spurious_full`
//   deq ok(v)   — v is at the head; removed
//   deq empty   — queue holds nothing
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace wcq::analysis_test {

struct OpRec {
  unsigned thread = 0;
  bool is_enq = false;
  bool ok = false;           // enq: accepted; deq: produced a value
  std::uint64_t value = 0;   // enq: argument; deq: result when ok
  std::uint64_t inv = 0;     // invocation timestamp (shared event clock)
  std::uint64_t res = 0;     // response timestamp
};

class LinChecker {
 public:
  LinChecker(std::vector<OpRec> ops, std::size_t capacity,
             bool allow_spurious_full)
      : ops_(std::move(ops)),
        capacity_(capacity),
        allow_spurious_full_(allow_spurious_full) {}

  // True when some linearization of the history exists.
  bool check() {
    if (ops_.size() > 63) return false;  // bitmask bound; keep scopes small
    seen_.clear();
    std::vector<std::uint64_t> queue;
    return dfs(0, queue);
  }

 private:
  bool dfs(std::uint64_t done, std::vector<std::uint64_t>& queue) {
    if (done == (std::uint64_t{1} << ops_.size()) - 1) return true;
    std::string key = encode(done, queue);
    if (seen_.count(key) != 0) return false;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((done >> i) & 1) continue;
      if (!minimal(done, i)) continue;
      const OpRec& op = ops_[i];
      if (op.is_enq) {
        if (op.ok) {
          if (queue.size() >= capacity_) continue;
          queue.push_back(op.value);
          if (dfs(done | (std::uint64_t{1} << i), queue)) return true;
          queue.pop_back();
        } else {
          if (!allow_spurious_full_ && queue.size() != capacity_) continue;
          if (dfs(done | (std::uint64_t{1} << i), queue)) return true;
        }
      } else {
        if (op.ok) {
          if (queue.empty() || queue.front() != op.value) continue;
          queue.erase(queue.begin());
          if (dfs(done | (std::uint64_t{1} << i), queue)) return true;
          queue.insert(queue.begin(), op.value);
        } else {
          if (!queue.empty()) continue;
          if (dfs(done | (std::uint64_t{1} << i), queue)) return true;
        }
      }
    }
    seen_.insert(std::move(key));
    return false;
  }

  // Real-time order: op i may linearize next only if every op that responded
  // before i's invocation has already been linearized.
  bool minimal(std::uint64_t done, std::size_t i) const {
    for (std::size_t j = 0; j < ops_.size(); ++j) {
      if (j == i || ((done >> j) & 1)) continue;
      if (ops_[j].res < ops_[i].inv) return false;
    }
    return true;
  }

  std::string encode(std::uint64_t done,
                     const std::vector<std::uint64_t>& queue) const {
    std::string key(reinterpret_cast<const char*>(&done), sizeof(done));
    key.append(reinterpret_cast<const char*>(queue.data()),
               queue.size() * sizeof(std::uint64_t));
    return key;
  }

  std::vector<OpRec> ops_;
  std::size_t capacity_;
  bool allow_spurious_full_;
  std::unordered_set<std::string> seen_;
};

inline bool linearizable_fifo(std::vector<OpRec> ops, std::size_t capacity,
                              bool allow_spurious_full = false) {
  return LinChecker(std::move(ops), capacity, allow_spurious_full).check();
}

}  // namespace wcq::analysis_test
