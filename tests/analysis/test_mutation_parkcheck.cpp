// Mutation self-test (DESIGN.md §14): skip the re-check between prepare and
// park. This binary compiles runtime/channel.hpp with
// WCQ_ANALYSIS_MUTATE_SKIP_RECHECK, which removes the receiver's dequeue
// re-check (and closed re-check) between prepare_wait and commit_wait — the
// check-then-park race every condition-wait protocol must close. The window:
// the sender's final send+notify lands after the receiver's last failed
// main-loop dequeue but before its prepare_wait; the notify sees zero
// announced waiters and stays silent, the receiver then parks on an epoch
// that will never move.
//
// The window is a handful of scheduling points wide (failed dequeue ->
// prepare), so unlike the dropped-wake mutation it needs a demotion to land
// inside it; PCT's change points and the spin-quota demotions hit it within
// the seed budget. Detection is the same currency: EventCount's budget-
// bounded virtual park turns the eternal sleep into stranded > 0.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>

#include "channel_explore.hpp"

#if !defined(WCQ_ANALYSIS_MUTATE_SKIP_RECHECK)
#error "this binary must be compiled with WCQ_ANALYSIS_MUTATE_SKIP_RECHECK"
#endif

namespace wcq {
namespace {

using analysis_test::run_prodcon_channel;

constexpr std::uint64_t kMaxSchedules = 512;

TEST(ChannelMutation, SkippedRecheckCaught) {
  std::uint64_t parked_schedules = 0;
  for (std::uint64_t seed = 1; seed <= kMaxSchedules; ++seed) {
    const auto r = run_prodcon_channel(seed, 8, /*close_at_end=*/false);
    ASSERT_FALSE(r.watchdog) << "scheduler wedged, seed " << seed;
    ASSERT_EQ(r.received, 8u) << "seed " << seed;
    if (r.recv_parks + r.send_parks > 0) ++parked_schedules;
    if (r.stranded > 0) {
      std::cout << "skipped pre-park re-check caught at schedule " << seed
                << " of " << kMaxSchedules << " (stranded=" << r.stranded
                << ", parked schedules so far " << parked_schedules << ")\n";
      SUCCEED();
      return;
    }
  }
  FAIL() << kMaxSchedules
         << " schedules missed the skipped re-check (schedules that parked: "
         << parked_schedules
         << ") — the park/wake explorer has lost its detection power";
}

// Single-threaded (never-parking) sanity: the skipped re-check only matters
// on the park path, so an unscheduled run stays fully correct.
TEST(ChannelMutation, PassThroughWithoutScheduler) {
  Channel<std::uint64_t> ch(2u);
  auto h = ch.acquire();
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(ch.send(h, i), ChanStatus::kOk);
    ASSERT_EQ(ch.recv(h, out), ChanStatus::kOk);
    ASSERT_EQ(out, i);
  }
  EXPECT_EQ(ch.stats().stranded, 0u);
}

}  // namespace
}  // namespace wcq
