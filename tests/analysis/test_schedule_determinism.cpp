// Scheduler determinism (DESIGN.md §11): the interleaving explored by one
// seed is a pure function of that seed. Byte-identical traces are what make
// an exploration failure reproducible — re-run the seed, replay the exact
// schedule under a debugger.
//
// The one process-global input the trace depends on besides the seed is the
// ThreadRegistry high-water mark (helping and reclaim scans size their loops
// by it, and it only grows). Each test runs a throwaway warm-up schedule
// first so the mark is already at its plateau when the compared runs execute.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "core/bounded_queue.hpp"
#include "core/wcq.hpp"
#include "explore.hpp"

namespace wcq {
namespace {

using analysis_test::PctScheduler;
using analysis_test::ScheduleResult;
using analysis_test::Script;
using analysis_test::pairs_scripts;
using analysis_test::run_schedule;

using BoundedU64 = BoundedQueue<std::uint64_t, WCQ>;

template <typename Adapter, typename MakeQueue>
ScheduleResult one_run(MakeQueue make_queue, const std::vector<Script>& scripts,
                       std::uint64_t seed) {
  auto q = make_queue();
  PctScheduler::Config cfg;
  cfg.seed = seed;
  return run_schedule<Adapter>(*q, scripts, cfg);
}

template <typename Adapter, typename MakeQueue>
void expect_same_seed_same_trace(MakeQueue make_queue,
                                 const std::vector<Script>& scripts) {
  // Warm-up: plateaus the registry high-water mark (and any other grow-once
  // process state) before the compared runs.
  (void)one_run<Adapter>(make_queue, scripts, 7);

  const auto a = one_run<Adapter>(make_queue, scripts, 42);
  const auto b = one_run<Adapter>(make_queue, scripts, 42);
  ASSERT_FALSE(a.watchdog_fired);
  ASSERT_FALSE(b.watchdog_fired);
  ASSERT_GT(a.trace.size(), 0u) << "no sched points hit: instrumentation off?";
  EXPECT_EQ(a.trace, b.trace) << "same seed must replay byte-identically";
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].thread, b.history[i].thread);
    EXPECT_EQ(a.history[i].is_enq, b.history[i].is_enq);
    EXPECT_EQ(a.history[i].ok, b.history[i].ok);
    EXPECT_EQ(a.history[i].value, b.history[i].value);
  }
}

TEST(SchedDeterminism, SameSeedSameTraceWcq) {
  expect_same_seed_same_trace<analysis_test::RingAdapter<WCQ>>(
      [] { return std::make_unique<WCQ>(2); }, pairs_scripts(3, 2, false));
}

TEST(SchedDeterminism, SameSeedSameTraceBoundedMagazines) {
  expect_same_seed_same_trace<
      analysis_test::BoundedAdapter<BoundedU64, true>>(
      [] {
        return std::make_unique<BoundedU64>(BoundedU64::Options{
            .order = 2, .magazine = {.enabled = true, .capacity = 16}});
      },
      pairs_scripts(3, 2, true));
}

// Different seeds must actually explore different interleavings — a
// scheduler that ignores its seed would pass the identity checks above
// while exploring nothing. Across several seed pairs, at least one pair of
// traces must differ.
TEST(SchedDeterminism, DifferentSeedsExploreDifferentTraces) {
  const auto scripts = pairs_scripts(3, 2, false);
  auto make = [] { return std::make_unique<WCQ>(2); };
  (void)one_run<analysis_test::RingAdapter<WCQ>>(make, scripts, 7);  // warm-up
  bool any_difference = false;
  for (std::uint64_t seed = 1; seed <= 4 && !any_difference; ++seed) {
    const auto a =
        one_run<analysis_test::RingAdapter<WCQ>>(make, scripts, seed);
    const auto b =
        one_run<analysis_test::RingAdapter<WCQ>>(make, scripts, seed + 100);
    any_difference = a.trace != b.trace;
  }
  EXPECT_TRUE(any_difference)
      << "8 seeds produced identical interleavings; scheduler ignores seed?";
}

}  // namespace
}  // namespace wcq
