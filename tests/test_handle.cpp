// Session-handle suite (DESIGN.md §10): explicit per-thread handles across
// every layer — acquisition, flush-on-destroy, linearizability under
// explicit handles on all three ring types (magazines on and off), the
// thread-pool churn scenario the handle API exists for, and the
// lifetime-misuse diagnostics.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "core/bounded_queue.hpp"
#include "core/scq.hpp"
#include "core/unbounded_queue.hpp"
#include "core/wcq.hpp"
#include "core/wcq_llsc.hpp"
#include "mpmc_harness.hpp"
#include "runtime/thread_registry.hpp"
#include "scale/sharded_queue.hpp"

namespace wcq {
namespace {

using testing::MpmcConfig;
using testing::check_consumer_logs;
using testing::scale_items;
using testing::tag;

// --- basic session mechanics ------------------------------------------------

TEST(HandleBasic, AcquireReleaseAccounting) {
  BoundedQueue<u64> q(typename BoundedQueue<u64>::Options{6});
  EXPECT_EQ(q.live_handles(), 0);
  {
    auto h = q.acquire();
    EXPECT_EQ(h.tid(), ThreadRegistry::tid());
    EXPECT_TRUE(h.owned());
    EXPECT_EQ(q.live_handles(), 1);
    auto h2 = q.acquire();  // multiple sessions per thread are legal
    EXPECT_EQ(q.live_handles(), 2);
    auto h3 = std::move(h2);  // ownership moves, count unchanged
    EXPECT_EQ(q.live_handles(), 2);
  }
  EXPECT_EQ(q.live_handles(), 0);
}

TEST(HandleBasic, ViewHandlesAreUnownedAndUncounted) {
  BoundedQueue<u64> q(typename BoundedQueue<u64>::Options{6});
  auto v = q.handle_for(ThreadRegistry::tid());
  EXPECT_FALSE(v.owned());
  EXPECT_EQ(q.live_handles(), 0);
}

TEST(HandleBasic, OperationsThroughHandleRoundTrip) {
  BoundedQueue<u64> q(typename BoundedQueue<u64>::Options{6});
  auto h = q.acquire();
  for (u64 i = 0; i < 3 * q.capacity(); ++i) {
    ASSERT_TRUE(q.enqueue(h, i));
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  // Implicit and explicit APIs interleave freely on one queue.
  ASSERT_TRUE(q.enqueue(7));
  EXPECT_EQ(q.dequeue(h).value(), 7u);
  ASSERT_TRUE(q.enqueue(h, 8));
  EXPECT_EQ(q.dequeue().value(), 8u);
}

TEST(HandleBasic, BulkThroughHandleRoundTrip) {
  BoundedQueue<u64> q(typename BoundedQueue<u64>::Options{7});
  auto h = q.acquire();
  u64 in[96], out[96];
  for (u64 i = 0; i < 96; ++i) in[i] = 1000 + i;
  ASSERT_EQ(q.enqueue_bulk(h, in, 96), 96u);
  std::size_t got = 0;
  while (got < 96) {
    const std::size_t k = q.dequeue_bulk(h, out + got, 96 - got);
    if (k == 0) break;
    got += k;
  }
  ASSERT_EQ(got, 96u);
  for (u64 i = 0; i < 96; ++i) EXPECT_EQ(out[i], 1000 + i);
}

// Destroying an owned handle flushes its magazine back to fq immediately —
// the exit-hook flush moved onto handle destruction (the hook stays as the
// implicit-path fallback).
TEST(HandleBasic, DestructionFlushesMagazine) {
  typename BoundedQueue<u64>::Options opt{8};
  opt.magazine.capacity = 16;
  BoundedQueue<u64> q(opt);
  ASSERT_GT(q.magazine_capacity(), 0u);
  {
    auto h = q.acquire();
    // A dequeue parks the freed index in the session's magazine.
    ASSERT_TRUE(q.enqueue(h, 42));
    ASSERT_TRUE(q.dequeue(h).has_value());
    EXPECT_GT(q.magazine_cached(), 0u);
  }
  EXPECT_EQ(q.magazine_cached(), 0u)
      << "handle destruction must drain the session's magazine to fq";
  // Capacity is exact afterwards: every index is claimable from fq alone.
  u64 n = 0;
  while (q.enqueue(n)) ++n;
  EXPECT_EQ(n, q.capacity());
}

TEST(HandleBasic, WcqRingHandleTidMatches) {
  WCQ q(4);
  auto h = q.handle();
  EXPECT_EQ(h.tid(), ThreadRegistry::tid());
  q.enqueue(h, 3);
  EXPECT_EQ(q.dequeue(h).value(), 3u);
}

TEST(HandleBasic, ShardedHandleCachesHomeShard) {
  ShardedQueue<u64> q(4, 6);
  auto h = q.acquire();
  EXPECT_EQ(h.home_shard(), q.home_shard());
  ASSERT_TRUE(q.enqueue(h, 11));
  EXPECT_EQ(q.dequeue(h).value(), 11u);
}

// Releasing a sharded session flushes this tid's magazine in every shard
// (the same ownership transfer as the BoundedQueue handle).
TEST(HandleBasic, ShardedReleaseFlushesShardMagazines) {
  typename ShardedQueue<u64>::Options opt;
  opt.shards = 2;
  opt.shard_order = 8;
  opt.magazine.capacity = 16;
  ShardedQueue<u64> q(opt);
  {
    auto h = q.acquire();
    ASSERT_TRUE(q.enqueue(h, 5));
    ASSERT_TRUE(q.dequeue(h).has_value());
    std::size_t cached = 0;
    for (unsigned s = 0; s < q.shard_count(); ++s) {
      cached += q.shard(s).magazine_cached();
    }
    EXPECT_GT(cached, 0u);
  }
  for (unsigned s = 0; s < q.shard_count(); ++s) {
    EXPECT_EQ(q.shard(s).magazine_cached(), 0u)
        << "sharded session release must drain shard " << s;
  }
}

// --- explicit-handle linearizability over all three ring types --------------

// MPMC exactly-once + per-producer FIFO, with every worker holding an
// explicit session handle for its whole lifetime (the harness's implicit
// twin is tests/test_bounded_queue.cpp). Magazines on and off.
template <typename Ring>
void run_handle_mpmc(bool magazines) {
  typename BoundedQueue<u64, Ring>::Options opt{8};
  opt.magazine.enabled = magazines;
  BoundedQueue<u64, Ring> q(opt);
  MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  const u64 items_per_producer = scale_items(8000);
  const u64 total = items_per_producer * cfg.producers;
  std::atomic<u64> consumed{0};
  std::atomic<bool> start{false};
  std::vector<std::vector<u64>> logs(cfg.consumers);

  std::vector<std::thread> threads;
  threads.reserve(cfg.producers + cfg.consumers);
  for (unsigned p = 0; p < cfg.producers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.acquire();
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      for (u64 i = 0; i < items_per_producer; ++i) {
        bo.reset();
        while (!q.enqueue(h, tag(p, i))) bo.pause();
      }
    });
  }
  for (unsigned c = 0; c < cfg.consumers; ++c) {
    threads.emplace_back([&, c] {
      auto h = q.acquire();
      auto& log = logs[c];
      log.reserve(total / cfg.consumers + 16);
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      bo.reset();
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (auto v = q.dequeue(h)) {
          log.push_back(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
          bo.reset();
        } else {
          bo.pause();
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  ASSERT_EQ(consumed.load(), total);
  ASSERT_FALSE(q.dequeue().has_value()) << "queue not empty at the end";
  ASSERT_EQ(q.live_handles(), 0);
  check_consumer_logs(logs, cfg, items_per_producer, /*check_fifo=*/true);
}

template <typename Ring>
class HandleRingTest : public ::testing::Test {};

using HandleRingTypes = ::testing::Types<WCQ, WCQLLSC, SCQ>;
TYPED_TEST_SUITE(HandleRingTest, HandleRingTypes);

TYPED_TEST(HandleRingTest, MpmcExplicitHandleExactlyOnceMagazinesOn) {
  run_handle_mpmc<TypeParam>(/*magazines=*/true);
}

TYPED_TEST(HandleRingTest, MpmcExplicitHandleExactlyOnceMagazinesOff) {
  run_handle_mpmc<TypeParam>(/*magazines=*/false);
}

// Sharded front-end under explicit handles: exactly-once globally (no
// global FIFO across shards, per the §7 ordering contract).
TEST(HandleSharded, MpmcExplicitHandleExactlyOnce) {
  ShardedQueue<u64> q(4, 8);
  MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  const u64 items_per_producer = scale_items(8000);
  const u64 total = items_per_producer * cfg.producers;
  std::atomic<u64> consumed{0};
  std::atomic<bool> start{false};
  std::vector<std::vector<u64>> logs(cfg.consumers);
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < cfg.producers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.acquire();
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      for (u64 i = 0; i < items_per_producer; ++i) {
        bo.reset();
        while (!q.enqueue(h, tag(p, i))) bo.pause();
      }
    });
  }
  for (unsigned c = 0; c < cfg.consumers; ++c) {
    threads.emplace_back([&, c] {
      auto h = q.acquire();
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      bo.reset();
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (auto v = q.dequeue(h)) {
          logs[c].push_back(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
          bo.reset();
        } else {
          bo.pause();
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  ASSERT_EQ(consumed.load(), total);
  ASSERT_FALSE(q.dequeue().has_value());
  check_consumer_logs(logs, cfg, items_per_producer, /*check_fifo=*/false);
}

// Unbounded queue under explicit handles with tiny segments: the session
// tid threads through segment churn (each segment rebuilds its view from
// it), so heavy append/unlink traffic must stay exactly-once.
TEST(HandleUnbounded, MpmcExplicitHandleExactlyOnceTinySegments) {
  typename UnboundedQueue<u64>::Options opt;
  opt.segment_order = 4;
  UnboundedQueue<u64> q(opt);
  MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  const u64 items_per_producer = scale_items(6000);
  const u64 total = items_per_producer * cfg.producers;
  std::atomic<u64> consumed{0};
  std::atomic<bool> start{false};
  std::vector<std::vector<u64>> logs(cfg.consumers);
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < cfg.producers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.acquire();
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      for (u64 i = 0; i < items_per_producer; ++i) {
        ASSERT_TRUE(q.enqueue(h, tag(p, i)));
      }
    });
  }
  for (unsigned c = 0; c < cfg.consumers; ++c) {
    threads.emplace_back([&, c] {
      auto h = q.acquire();
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      bo.reset();
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (auto v = q.dequeue(h)) {
          logs[c].push_back(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
          bo.reset();
        } else {
          bo.pause();
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  ASSERT_EQ(consumed.load(), total);
  ASSERT_FALSE(q.dequeue().has_value());
  check_consumer_logs(logs, cfg, items_per_producer, /*check_fifo=*/true);
}

// --- thread-pool scenario ----------------------------------------------------
//
// The workload the handle API is for: many short-lived pool workers, far
// more over the run than ThreadRegistry::kMaxThreads, each acquiring a
// session, working, and releasing it as it exits. Sessions flush their
// magazines on destruction and dead tids are recycled, so across waves and
// queue generations (reset() between them) capacity stays exact — no index
// leaks into a dead magazine, none is duplicated by the flush/reset race.
TEST(HandleChurn, PoolWorkersAcrossGenerationsCapacityExact) {
  typename BoundedQueue<u64>::Options opt{6};  // capacity 64
  opt.magazine.capacity = 16;
  BoundedQueue<u64> q(opt);
  constexpr unsigned kWave = 4;
  // > kMaxThreads workers in total, sequentially recycled tids.
  const unsigned total_workers = ThreadRegistry::kMaxThreads + 16;
  const unsigned waves = (total_workers + kWave - 1) / kWave;
  unsigned launched = 0;
  for (unsigned w = 0; w < waves; ++w) {
    std::vector<std::thread> pool;
    for (unsigned i = 0; i < kWave && launched < total_workers; ++i, ++launched) {
      pool.emplace_back([&q] {
        auto h = q.acquire();
        // Mixed work: enough dequeues to populate the magazine, releases
        // interleaved with claims.
        for (u64 k = 0; k < 200; ++k) {
          if (q.enqueue(h, k)) {
            if ((k & 1) == 0) (void)q.dequeue(h);
          } else {
            (void)q.dequeue(h);
          }
        }
        // Worker exits with the session: destruction flushes the magazine.
      });
    }
    for (auto& t : pool) t.join();
    if ((w & 7) == 7) {
      // New queue generation mid-churn: the reset serializes with any
      // handle/exit flush on the flush lock (DESIGN.md §9/§10).
      q.reset();
    }
  }
  ASSERT_EQ(q.live_handles(), 0);
  // Drain whatever the last waves left, then prove capacity is exact: all
  // indices are claimable, none leaked into dead magazines, none invented.
  while (q.dequeue().has_value()) {
  }
  u64 n = 0;
  while (q.enqueue(n)) ++n;
  EXPECT_EQ(n, q.capacity()) << "capacity drifted across handle churn";
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(q.dequeue().value(), i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

// --- lifetime misuse ---------------------------------------------------------

// Death tests fork the process; under TSan that is unreliable (and the
// runtime may refuse), so the misuse diagnostics are asserted in the
// release/asan CI jobs only.
#if defined(__SANITIZE_THREAD__)
#define WCQ_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "death tests fork; skipped under TSan"
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WCQ_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "death tests fork; skipped under TSan"
#else
#define WCQ_SKIP_UNDER_TSAN() (void)0
#endif
#else
#define WCQ_SKIP_UNDER_TSAN() (void)0
#endif

TEST(HandleLifetimeDeathTest, BoundedQueueDestroyedWithLiveHandleAborts) {
  WCQ_SKIP_UNDER_TSAN();
  EXPECT_DEATH(
      {
        auto* q = new BoundedQueue<u64>(typename BoundedQueue<u64>::Options{4});
        auto h = q->acquire();
        delete q;  // handle outlives queue: diagnosed abort, not a dangle
      },
      "live session handle");
}

TEST(HandleLifetimeDeathTest, ShardedQueueDestroyedWithLiveHandleAborts) {
  WCQ_SKIP_UNDER_TSAN();
  EXPECT_DEATH(
      {
        auto* q = new ShardedQueue<u64>(2, 4);
        auto h = q->acquire();
        delete q;
      },
      "live session handle");
}

TEST(HandleLifetimeDeathTest, UnboundedQueueDestroyedWithLiveHandleAborts) {
  WCQ_SKIP_UNDER_TSAN();
  EXPECT_DEATH(
      {
        auto* q = new UnboundedQueue<u64>(4u);
        auto h = q->acquire();
        delete q;
      },
      "live session handle");
}

// Queue-outlives-handle is the correct order and must be silent.
TEST(HandleLifetimeDeathTest, QueueOutlivesHandleIsFine) {
  BoundedQueue<u64> q(typename BoundedQueue<u64>::Options{4});
  {
    auto h = q.acquire();
    ASSERT_TRUE(q.enqueue(h, 1));
  }
  EXPECT_EQ(q.dequeue().value(), 1u);
}

// A tid past the ring's record array is rejected (trap), same as the
// implicit path's documented hard limit.
TEST(HandleLifetimeDeathTest, RingHandleForOutOfRangeTidTraps) {
  WCQ_SKIP_UNDER_TSAN();
  EXPECT_DEATH(
      {
        WCQ::Options o;
        o.order = 4;
        o.max_threads = 1;
        WCQ q(o);
        (void)q.handle_for(1);
      },
      "");
}

}  // namespace
}  // namespace wcq
