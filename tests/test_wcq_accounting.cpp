// Rank-accounting regression tests for the wCQ slow path.
//
// Every Head/Tail counter value ("rank") is handed out exactly once, so a
// correct execution must produce and consume each rank at most once, and a
// produced rank must eventually be consumed (no orphans). This harness taps
// WCQ's debug hooks to enforce those invariants globally — it is the test
// that caught the three pseudocode-level races documented in DESIGN.md §3
// (⊥-at-own-cycle, exit-without-FIN, baseline re-processing), which
// manifested as produced-but-never-consumed ranks roughly once per 10^4
// operations in these configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "core/wcq.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

constexpr u64 kMaxRank = 1u << 22;

struct RankLog {
  // bit 0: produced, bit 1: consumed; one cell per rank.
  std::unique_ptr<std::atomic<unsigned char>[]> bits{
      new std::atomic<unsigned char>[kMaxRank]};
  std::atomic<u64> double_produce{0};
  std::atomic<u64> double_consume{0};

  RankLog() {
    for (u64 i = 0; i < kMaxRank; ++i) bits[i].store(0);
  }

  static void on_event(void* ctx, int kind, u64 rank, u64) {
    auto* self = static_cast<RankLog*>(ctx);
    if (rank >= kMaxRank) return;
    if (kind == WCQ::kEvProducedFast || kind == WCQ::kEvProducedSlow) {
      if (self->bits[rank].fetch_or(1) & 1) self->double_produce.fetch_add(1);
    } else if (kind == WCQ::kEvConsumed) {
      if (self->bits[rank].fetch_or(2) & 2) self->double_consume.fetch_add(1);
    }
  }

  u64 orphaned() const {
    u64 n = 0;
    for (u64 r = 0; r < kMaxRank; ++r) {
      if (bits[r].load() == 1) ++n;  // produced, never consumed
    }
    return n;
  }
};

struct AccountingCase {
  unsigned order;
  unsigned producers;
  unsigned consumers;
  int patience;
  u64 items_per_producer;
};

std::ostream& operator<<(std::ostream& os, const AccountingCase& c) {
  return os << "order" << c.order << "_p" << c.producers << "c" << c.consumers
            << "_pat" << c.patience;
}

class WcqAccounting : public ::testing::TestWithParam<AccountingCase> {};

TEST_P(WcqAccounting, EveryProducedRankConsumedExactlyOnce) {
  const AccountingCase& c = GetParam();
  WCQ::Options o;
  o.order = c.order;
  o.enq_patience = c.patience;
  o.deq_patience = c.patience;
  o.help_delay = 1;
  WCQ q(o);
  RankLog log;
  q.debug_hooks.ctx = &log;
  q.debug_hooks.event = &RankLog::on_event;

  std::atomic<u64> consumed{0};
  std::atomic<i64> credits{static_cast<i64>(q.capacity())};
  // Scale down on small hosts only: the RankLog window (kMaxRank) was sized
  // for the seed counts, so never scale above them.
  const u64 items_per_producer =
      std::min(testing::scale_items(c.items_per_producer),
               c.items_per_producer);
  const u64 total = items_per_producer * c.producers;
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < c.producers; ++p) {
    ts.emplace_back([&, p] {
      Backoff bo;
      for (u64 i = 0; i < items_per_producer; ++i) {
        while (credits.fetch_sub(1, std::memory_order_acquire) <= 0) {
          credits.fetch_add(1, std::memory_order_release);
          bo.pause();  // no credit: wait for a consumer to free one
        }
        bo.reset();
        q.enqueue(p % q.capacity());
      }
    });
  }
  for (unsigned cc = 0; cc < c.consumers; ++cc) {
    ts.emplace_back([&] {
      Backoff bo;
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (q.dequeue()) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          credits.fetch_add(1, std::memory_order_release);
          bo.reset();
        } else {
          bo.pause();  // empty: wait for a producer
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  EXPECT_EQ(log.double_produce.load(), 0u) << "a rank was produced twice";
  EXPECT_EQ(log.double_consume.load(), 0u) << "a rank was consumed twice";
  EXPECT_EQ(log.orphaned(), 0u)
      << "produced-but-never-consumed ranks: elements were lost";
  EXPECT_EQ(consumed.load(), total);
  EXPECT_FALSE(q.dequeue().has_value());
}

INSTANTIATE_TEST_SUITE_P(
    LossRegressions, WcqAccounting,
    ::testing::Values(
        // The configuration that exposed exit-without-FIN (deviation 4).
        AccountingCase{2, 3, 3, 1, 5000},
        // Asymmetric shapes that exposed ⊥-at-own-cycle (deviation 3).
        AccountingCase{8, 7, 1, 1, 6000}, AccountingCase{8, 1, 7, 1, 6000},
        // Mixed fast/slow traffic.
        AccountingCase{4, 4, 4, 4, 8000},
        // Paper-default patience: slow path rare but must stay exact.
        AccountingCase{8, 6, 6, 16, 10000}));

}  // namespace
}  // namespace wcq
