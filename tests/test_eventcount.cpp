// EventCount: the prepare/cancel/commit parking protocol underneath the
// blocking Channel facade (DESIGN.md §14). These tests pin the single-
// threaded protocol invariants (waiter accounting, no-waiter notify staying
// epoch-silent) and the cross-thread guarantees the Dekker fence pair buys:
// a wake racing the park is never lost, deadline parks terminate, and a
// notify storm wakes every parked thread exactly once per park.
#include "runtime/eventcount.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/backoff.hpp"

namespace wcq {
namespace {

using namespace std::chrono_literals;

TEST(EventCount, PrepareCancelBalancesWaiters) {
  EventCount ec;
  EXPECT_EQ(ec.waiters(), 0u);
  const auto t = ec.prepare_wait();
  (void)t;
  EXPECT_EQ(ec.waiters(), 1u);
  ec.cancel_wait();
  EXPECT_EQ(ec.waiters(), 0u);
  EXPECT_EQ(ec.parks(), 0u);
}

TEST(EventCount, NotifyWithoutWaitersIsSilent) {
  // The non-contended fast path: no waiter announced means notify must not
  // touch the epoch (no RMW), which is what the Channel zero-overhead guard
  // depends on.
  EventCount ec;
  ec.notify_one();
  ec.notify_all();
  EXPECT_EQ(ec.notifies(), 0u);
  const auto t1 = ec.prepare_wait();
  ec.cancel_wait();
  const auto t2 = ec.prepare_wait();
  ec.cancel_wait();
  EXPECT_EQ(t1, t2) << "silent notifies must not advance the epoch";
}

TEST(EventCount, CommitReturnsOnNotify) {
  EventCount ec;
  std::atomic<bool> ready{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    for (;;) {
      const auto t = ec.prepare_wait();
      if (ready.load(std::memory_order_seq_cst)) {
        ec.cancel_wait();
        break;
      }
      ec.commit_wait(t);
    }
    woke.store(true, std::memory_order_release);
  });
  // Let the waiter reach the park with high probability, then publish+wake.
  while (ec.waiters() == 0) std::this_thread::yield();
  ready.store(true, std::memory_order_seq_cst);
  ec.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(ec.waiters(), 0u);
}

TEST(EventCount, WakeRacingPrepareIsNotLost) {
  // Hammer the exact window the fence pair protects: the notifier publishes
  // and notifies concurrently with the waiter's prepare/re-check/commit. A
  // lost wakeup hangs the waiter; kIters successful handoffs under the CTest
  // timeout is the assertion.
  EventCount ec;
  std::atomic<int> flag{0};
  constexpr int kIters = 20000;
  std::thread waiter([&] {
    for (int i = 0; i < kIters; ++i) {
      for (;;) {
        if (flag.load(std::memory_order_seq_cst) > i) break;
        const auto t = ec.prepare_wait();
        if (flag.load(std::memory_order_seq_cst) > i) {
          ec.cancel_wait();
          break;
        }
        ec.commit_wait(t);
      }
    }
  });
  std::thread notifier([&] {
    for (int i = 0; i < kIters; ++i) {
      flag.store(i + 1, std::memory_order_seq_cst);
      ec.notify_one();
      if ((i & 1023) == 0) std::this_thread::yield();
    }
  });
  waiter.join();
  notifier.join();
  EXPECT_EQ(ec.waiters(), 0u);
}

TEST(EventCount, DeadlineParkTimesOut) {
  EventCount ec;
  const auto t = ec.prepare_wait();
  const auto deadline = std::chrono::steady_clock::now() + 30ms;
  const bool woke = ec.commit_wait_until(t, deadline);
  EXPECT_FALSE(woke) << "no notify was sent; the park must report timeout";
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
  EXPECT_EQ(ec.waiters(), 0u);
  EXPECT_EQ(ec.parks(), 1u);
}

TEST(EventCount, DeadlineParkWakesEarlyOnNotify) {
  EventCount ec;
  std::atomic<bool> ready{false};
  std::thread waiter([&] {
    for (;;) {
      const auto t = ec.prepare_wait();
      if (ready.load(std::memory_order_seq_cst)) {
        ec.cancel_wait();
        return;
      }
      // Far deadline: if the wake is lost this trips the CTest timeout, not
      // a silent pass via expiry.
      ec.commit_wait_until(
          t, std::chrono::steady_clock::now() + std::chrono::hours(1));
    }
  });
  while (ec.waiters() == 0) std::this_thread::yield();
  ready.store(true, std::memory_order_seq_cst);
  ec.notify_one();
  waiter.join();
  EXPECT_EQ(ec.waiters(), 0u);
}

TEST(EventCount, NotifyAllWakesEveryParkedThread) {
  EventCount ec;
  constexpr unsigned kThreads = 8;
  std::atomic<bool> go{false};
  std::atomic<unsigned> woke{0};
  std::vector<std::thread> ts;
  for (unsigned i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      for (;;) {
        const auto t = ec.prepare_wait();
        if (go.load(std::memory_order_seq_cst)) {
          ec.cancel_wait();
          break;
        }
        ec.commit_wait(t);
      }
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Wait until every thread has at least announced itself, then broadcast.
  Backoff bo;
  while (ec.waiters() < kThreads) bo.pause();
  go.store(true, std::memory_order_seq_cst);
  ec.notify_all();
  for (auto& t : ts) t.join();
  EXPECT_EQ(woke.load(), kThreads);
  EXPECT_EQ(ec.waiters(), 0u);
}

}  // namespace
}  // namespace wcq
