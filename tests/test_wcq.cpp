// wCQ (paper Figs 4-7) unit and concurrency tests, including slow-path-only
// configurations (patience = 1) that force every operation through the
// helping machinery.
#include "core/wcq.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

WCQ::Options slow_only(unsigned order) {
  WCQ::Options o;
  o.order = order;
  o.enq_patience = 1;
  o.deq_patience = 1;
  o.help_delay = 1;  // check for help requests on every operation
  return o;
}

TEST(Wcq, StartsEmpty) {
  WCQ q(4);
  EXPECT_EQ(q.capacity(), 16u);
  EXPECT_EQ(q.threshold(), -1);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Wcq, SingleElementRoundTrip) {
  WCQ q(4);
  q.enqueue(9);
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Wcq, FifoOrderWithinCapacity) {
  WCQ q(6);
  for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
  for (u64 i = 0; i < q.capacity(); ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Wcq, WraparoundManyCycles) {
  WCQ q(3);
  for (u64 i = 0; i < 10000; ++i) {
    q.enqueue(i % q.capacity());
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
}

TEST(Wcq, EmptyFastPathAfterDrain) {
  WCQ q(4);
  q.enqueue(1);
  ASSERT_TRUE(q.dequeue().has_value());
  for (u64 i = 0; i < 4 * q.capacity(); ++i) {
    ASSERT_FALSE(q.dequeue().has_value());
  }
  EXPECT_LT(q.threshold(), 0);
  const u64 head_before = q.head();
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_EQ(q.head(), head_before);
}

// --- slow-path-forced sequential behavior ----------------------------------
// With patience 1 the fast path is attempted exactly once per operation; a
// single thread then always succeeds in the slow path alone (its own
// cooperative group of one), exercising slow_F&A, Note and Enq handling.

TEST(WcqSlowPath, SequentialRoundTrips) {
  WCQ q(slow_only(4));
  for (u64 i = 0; i < 2000; ++i) {
    q.enqueue(i % q.capacity());
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
  EXPECT_FALSE(q.any_pending());
}

TEST(WcqSlowPath, FifoOrder) {
  WCQ q(slow_only(5));
  for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
  for (u64 i = 0; i < q.capacity(); ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
}

TEST(WcqSlowPath, EmptyDequeueTerminates) {
  WCQ q(slow_only(4));
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(q.dequeue().has_value());
  }
  q.enqueue(3);
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 3u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(q.dequeue().has_value());
  }
}

// --- concurrent ------------------------------------------------------------

// The count-based MPMC loop lives in mpmc_harness.hpp; wCQ additionally
// checks that no help request is left pending once the queue quiesces.
void mpmc_count_test(WCQ& q, unsigned producers, unsigned consumers,
                     u64 per_producer) {
  testing::run_mpmc_count_exact(q, producers, consumers, per_producer);
  EXPECT_FALSE(q.any_pending());
}

TEST(Wcq, MpmcExactCounts) {
  WCQ q(10);
  mpmc_count_test(q, 4, 4, 50000);
}

TEST(Wcq, MpmcSmallRingHighContention) {
  WCQ q(WCQ::Options{.order = 3});
  mpmc_count_test(q, 3, 3, 30000);
}

TEST(Wcq, MpmcManyConsumersOnEmptyish) {
  WCQ q(6);
  mpmc_count_test(q, 1, 7, 40000);
}

TEST(WcqSlowPath, MpmcAllSlowPath) {
  // Every operation of every thread goes through the helping machinery.
  WCQ q(slow_only(8));
  mpmc_count_test(q, 4, 4, 8000);
}

TEST(WcqSlowPath, MpmcAllSlowPathTinyRing) {
  WCQ q(slow_only(2));  // capacity 4 under 6 threads: maximal interference
  mpmc_count_test(q, 3, 3, 5000);
}

TEST(WcqSlowPath, MixedFastAndSlowThreads) {
  // Threads alternate between two queues sharing thread records layouts;
  // here: same queue, but producers use default patience (fast path) while
  // consumers run patience-1 (slow path), mixing both regimes.
  WCQ q(WCQ::Options{.order = 6, .enq_patience = 16, .deq_patience = 1,
                     .help_delay = 1});
  mpmc_count_test(q, 4, 4, 15000);
}

TEST(Wcq, StressManyThreadsDefaultConfig) {
  WCQ q(WCQ::Options{.order = 9});
  mpmc_count_test(q, 8, 8, 30000);
}

}  // namespace
}  // namespace wcq
