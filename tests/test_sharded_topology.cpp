// Topology-aware ShardedQueue tests (DESIGN.md §12).
//
// Everything here injects a simulated Topology through
// ShardedQueue::Options::topology and stages threads on nominal nodes with
// ScopedThreadNode, so the multi-node placement logic runs deterministically
// on any host:
//   * placement: contiguous shard->node groups,
//   * visit order: local group (rotated to the home shard) before remote
//     groups, nearest node first, each shard exactly once,
//   * remote_steal accounting: successful remote completions only,
//   * handle caching: node and sweep are fixed at acquire(),
//   * the MPMC exactly-once / per-shard-FIFO contracts survive cross-node
//     traffic and stealing.
#include "scale/sharded_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "common/op_counters.hpp"
#include "common/topology.hpp"
#include "mpmc_harness.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {
namespace {

Topology two_node() { return *Topology::from_spec("0-1;2-3"); }

template <typename T = u64>
ShardedQueue<T> make_queue(const Topology& topo, unsigned shards,
                           unsigned order) {
  typename ShardedQueue<T>::Options opt;
  opt.shards = shards;
  opt.shard_order = order;
  opt.topology = &topo;
  return ShardedQueue<T>(std::move(opt));
}

TEST(ShardedTopology, ShardsPartitionAcrossNodesContiguously) {
  const Topology topo = two_node();
  auto q4 = make_queue(topo, 4, 4);
  EXPECT_EQ(q4.shard_node(0), 0u);
  EXPECT_EQ(q4.shard_node(1), 0u);
  EXPECT_EQ(q4.shard_node(2), 1u);
  EXPECT_EQ(q4.shard_node(3), 1u);
  auto q8 = make_queue(topo, 8, 4);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(q8.shard_node(i), i < 4 ? 0u : 1u) << "shard " << i;
  }
}

TEST(ShardedTopology, VisitOrderLocalBeforeRemoteEachShardOnce) {
  const Topology topo = two_node();
  auto q = make_queue(topo, 4, 4);
  // Node 0 owns shards {0,1}, node 1 owns {2,3}; tid rotates the local
  // leading segment, the remote tail is the canonical group order.
  EXPECT_EQ(q.sweep_order(0, 0), (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(q.sweep_order(0, 1), (std::vector<unsigned>{1, 0, 2, 3}));
  EXPECT_EQ(q.sweep_order(1, 0), (std::vector<unsigned>{2, 3, 0, 1}));
  EXPECT_EQ(q.sweep_order(1, 5), (std::vector<unsigned>{3, 2, 0, 1}));
  // Bounded sweep: every (node, tid) visits each shard exactly once.
  for (unsigned node = 0; node < 2; ++node) {
    for (unsigned tid = 0; tid < 8; ++tid) {
      auto sweep = q.sweep_order(node, tid);
      ASSERT_EQ(sweep.size(), q.shard_count());
      EXPECT_EQ(sweep.front(), q.home_shard_for(node, tid));
      std::sort(sweep.begin(), sweep.end());
      EXPECT_EQ(sweep, (std::vector<unsigned>{0, 1, 2, 3}));
    }
  }
}

TEST(ShardedTopology, VisitOrderFlatTopologyMatchesLegacyRing) {
  // One node: the hierarchy degenerates to the pre-topology ring sweep
  // starting at tid & (shards-1).
  const Topology topo = Topology::flat(4);
  auto q = make_queue(topo, 4, 4);
  for (unsigned tid = 0; tid < 8; ++tid) {
    const auto sweep = q.sweep_order(0, tid);
    for (unsigned s = 0; s < 4; ++s) {
      EXPECT_EQ(sweep[s], (tid + s) & 3u) << "tid " << tid << " step " << s;
    }
  }
}

TEST(ShardedTopology, VisitOrderCrossesNearestNodeFirst) {
  // The asym fixture's distance matrix says node 2's nearest remote is node
  // 1 (d=21) then node 0 (d=31) — the reverse of ring order. 4 shards over
  // 3 nodes: node 0 owns {0,1}, node 1 owns {2}, node 2 owns {3}.
  const auto topo = Topology::from_sysfs(
      std::string(WCQ_TEST_FIXTURE_DIR) + "/sysfs/asym", /*simulated=*/true);
  ASSERT_TRUE(topo.has_value());
  auto q = make_queue(*topo, 4, 4);
  EXPECT_EQ(q.shard_node(2), 1u);
  EXPECT_EQ(q.shard_node(3), 2u);
  EXPECT_EQ(q.sweep_order(2, 0), (std::vector<unsigned>{3, 2, 0, 1}));
}

TEST(ShardedTopology, NodesWithoutShardsStartAtNearestPopulatedNode) {
  // 4 nodes, 2 shards: nodes 1 and 3 own nothing. Their sweeps start at the
  // nearest populated node's group and still cover every shard once.
  const auto topo = Topology::from_spec("0;1;2;3");
  ASSERT_TRUE(topo.has_value());
  auto q = make_queue(*topo, 2, 4);
  EXPECT_EQ(q.shard_node(0), 0u);
  EXPECT_EQ(q.shard_node(1), 2u);
  // Ring remote order for node 1 is [2, 3, 0]; node 2 owns shard 1.
  EXPECT_EQ(q.sweep_order(1, 7), (std::vector<unsigned>{1, 0}));
  EXPECT_EQ(q.home_shard_for(1, 3), 1u);
  EXPECT_EQ(q.home_shard_for(3, 3), 0u);  // node 3's nearest is node 0
}

TEST(ShardedTopology, HomeShardFollowsStagedNode) {
  const Topology topo = two_node();
  auto q = make_queue(topo, 4, 4);
  const unsigned tid = ThreadRegistry::tid();
  {
    ScopedThreadNode on_node0(0);
    EXPECT_EQ(q.home_shard(), q.home_shard_for(0, tid));
    EXPECT_EQ(q.shard_node(q.home_shard()), 0u);
  }
  {
    ScopedThreadNode on_node1(1);
    EXPECT_EQ(q.home_shard(), q.home_shard_for(1, tid));
    EXPECT_EQ(q.shard_node(q.home_shard()), 1u);
  }
}

TEST(ShardedTopology, RemoteStealCountsOnlySuccessfulRemoteOps) {
  const Topology topo = two_node();
  auto q = make_queue(topo, 4, 4);
  ScopedThreadNode on_node1(1);
  const u64 base = opcount::snapshot().remote_steal;

  // A failed full sweep probes every remote shard but completes nothing.
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_EQ(opcount::snapshot().remote_steal, base);

  // Local traffic: enqueue lands on the home shard (node 1), dequeue finds
  // it there. No interconnect crossing, no count.
  ASSERT_TRUE(q.enqueue(7));
  ASSERT_EQ(q.dequeue(), std::optional<u64>(7));
  EXPECT_EQ(opcount::snapshot().remote_steal, base);

  // An element planted on a node-0 shard is only reachable by stealing.
  ASSERT_TRUE(q.shard(0).enqueue(42));
  ASSERT_EQ(q.dequeue(), std::optional<u64>(42));
  EXPECT_EQ(opcount::snapshot().remote_steal, base + 1);
}

TEST(ShardedTopology, RemoteSpillOnEnqueueCountsAsSteal) {
  // 2 shards, one per node; stage on node 1 so shard 1 is home. Filling it
  // locally is free; the first spill onto node 0's shard crosses the
  // interconnect and must count.
  const Topology topo = two_node();
  auto q = make_queue(topo, 2, 3);
  ScopedThreadNode on_node1(1);
  const u64 base = opcount::snapshot().remote_steal;
  const u64 cap = q.shard(1).capacity();
  for (u64 i = 0; i < cap; ++i) ASSERT_TRUE(q.enqueue(i));
  EXPECT_EQ(opcount::snapshot().remote_steal, base);
  ASSERT_TRUE(q.enqueue(cap));  // home full: spills to shard 0 (node 0)
  EXPECT_EQ(opcount::snapshot().remote_steal, base + 1);
}

TEST(ShardedTopology, HandleCachesNodeAndSweepAtAcquire) {
  const Topology topo = two_node();
  auto q = make_queue(topo, 4, 4);
  ScopedThreadNode on_node1(1);
  auto h = q.acquire();
  EXPECT_EQ(h.node(), 1u);
  EXPECT_EQ(h.home_shard(), q.home_shard_for(1, h.tid()));
  EXPECT_EQ(q.shard_node(h.home_shard()), 1u);

  // The session keeps its acquire()-time placement after the thread
  // migrates: ops and their remote accounting stay relative to node 1.
  ScopedThreadNode migrated(0);
  const u64 base = opcount::snapshot().remote_steal;
  ASSERT_TRUE(q.shard(h.home_shard()).enqueue(11));
  ASSERT_EQ(q.dequeue(h), std::optional<u64>(11));  // home hit: not remote
  EXPECT_EQ(opcount::snapshot().remote_steal, base);
  ASSERT_TRUE(q.shard(0).enqueue(22));  // node 0: remote *to the handle*
  ASSERT_EQ(q.dequeue(h), std::optional<u64>(22));
  EXPECT_EQ(opcount::snapshot().remote_steal, base + 1);
}

// ---- cross-node MPMC (stress tier via the *Mpmc* name pattern) -------------

// Adapter staging each harness thread on a nominal node (tid % nodes) for
// the duration of every operation, so producers and consumers split across
// the simulated topology and the steal path carries real traffic.
template <typename Q>
struct NodeStaged {
  Q& q;
  unsigned nodes;
  unsigned stage() const { return ThreadRegistry::tid() % nodes; }
  bool enqueue(u64 v) {
    ScopedThreadNode s(stage());
    return q.enqueue(v);
  }
  std::optional<u64> dequeue() {
    ScopedThreadNode s(stage());
    return q.dequeue();
  }
  std::size_t enqueue_bulk(u64* first, std::size_t n) {
    ScopedThreadNode s(stage());
    return q.enqueue_bulk(first, n);
  }
  std::size_t dequeue_bulk(u64* out, std::size_t n) {
    ScopedThreadNode s(stage());
    return q.dequeue_bulk(out, n);
  }
};

TEST(ShardedTopologyMpmc, ExactlyOnceAcrossTwoNodes) {
  const Topology topo = two_node();
  auto q = make_queue(topo, 4, 10);
  NodeStaged<decltype(q)> staged{q, topo.node_count()};
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  cfg.items_per_producer = 20000;
  testing::run_mpmc_exactly_once(staged, cfg, /*check_fifo=*/false);
}

TEST(ShardedTopologyMpmc, ExactlyOnceTinyShardsCrossNodeBackpressure) {
  // 16 slots total: constant spill and steal across the node boundary.
  const Topology topo = two_node();
  auto q = make_queue(topo, 4, 2);
  NodeStaged<decltype(q)> staged{q, topo.node_count()};
  testing::MpmcConfig cfg;
  cfg.producers = 3;
  cfg.consumers = 3;
  cfg.items_per_producer = 8000;
  testing::run_mpmc_exactly_once(staged, cfg, /*check_fifo=*/false);
}

TEST(ShardedTopologyMpmc, BulkExactlyOnceAcrossTwoNodes) {
  const Topology topo = two_node();
  auto q = make_queue(topo, 4, 9);
  NodeStaged<decltype(q)> staged{q, topo.node_count()};
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  cfg.items_per_producer = 16000;
  testing::run_mpmc_bulk_exactly_once(staged, cfg, /*max_batch=*/16,
                                      /*check_fifo=*/false);
}

TEST(ShardedTopologyMpmc, HandleSessionsAcrossTwoNodes) {
  // Sessions acquired on both nodes: two producers and two consumers, each
  // with a handle homed on its staged node; exactly-once must hold through
  // the cached sweeps.
  const Topology topo = two_node();
  auto q = make_queue(topo, 4, 10);
  constexpr unsigned kProducers = 2, kConsumers = 2;
  const u64 per_producer = testing::scale_items(16000);
  const u64 total = per_producer * kProducers;
  std::atomic<u64> consumed{0};
  std::vector<std::vector<u64>> logs(kConsumers);
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      ScopedThreadNode stage(p % 2);
      auto h = q.acquire();
      Backoff bo;
      for (u64 i = 0; i < per_producer; ++i) {
        bo.reset();
        while (!q.enqueue(h, testing::tag(p, i))) bo.pause();
      }
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&, c] {
      ScopedThreadNode stage(c % 2);
      auto h = q.acquire();
      auto& log = logs[c];
      Backoff bo;
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (auto v = q.dequeue(h)) {
          log.push_back(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
          bo.reset();
        } else {
          bo.pause();
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  ASSERT_EQ(consumed.load(), total);
  EXPECT_FALSE(q.dequeue().has_value());
  testing::MpmcConfig cfg;
  cfg.producers = kProducers;
  cfg.consumers = kConsumers;
  testing::check_consumer_logs(logs, cfg, per_producer, /*check_fifo=*/false);
}

TEST(ShardedTopologyMpmc, PerShardFifoAcrossTwoNodes) {
  // Producers staged on alternating nodes; after the run each shard must
  // still hold every producer's items in increasing sequence order — the
  // hierarchical sweep reroutes items but never reorders one producer's
  // items within a shard.
  const Topology topo = two_node();
  auto q = make_queue(topo, 4, 12);
  constexpr unsigned kProducers = 4;
  const u64 per_producer =
      std::min<u64>(testing::scale_items(8000),
                    q.capacity() / (2 * kProducers));
  std::atomic<bool> start{false};
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      ScopedThreadNode stage(p % 2);
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      for (u64 i = 0; i < per_producer; ++i) {
        bo.reset();
        while (!q.enqueue(testing::tag(p, i))) bo.pause();
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();

  u64 total = 0;
  for (unsigned s = 0; s < q.shard_count(); ++s) {
    std::map<unsigned, u64> last_seq;
    while (auto v = q.shard(s).dequeue()) {
      const unsigned p = static_cast<unsigned>(*v >> 32);
      const u64 seq = *v & 0xFFFFFFFFu;
      ASSERT_LT(p, kProducers);
      const auto it = last_seq.find(p);
      if (it != last_seq.end()) {
        ASSERT_GT(seq, it->second)
            << "per-shard FIFO violated in shard " << s << " producer " << p;
      }
      last_seq[p] = seq;
      ++total;
    }
  }
  EXPECT_EQ(total, kProducers * per_producer);
  EXPECT_FALSE(q.dequeue().has_value());
}

}  // namespace
}  // namespace wcq
