// Property sweeps for wCQ: the exactly-once/per-producer-FIFO property must
// hold across the whole configuration space — ring sizes from minimal to
// large, fast-path-only through slow-path-only, symmetric and asymmetric
// thread mixes. TEST_P keeps each point an isolated, named test.
#include <gtest/gtest.h>

#include <tuple>

#include "core/bounded_queue.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

struct SweepCase {
  unsigned order;
  unsigned producers;
  unsigned consumers;
  int enq_patience;
  int deq_patience;
  unsigned help_delay;
  u64 items;
};

std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
  return os << "order" << c.order << "_p" << c.producers << "c" << c.consumers
            << "_ep" << c.enq_patience << "dp" << c.deq_patience << "hd"
            << c.help_delay;
}

// A BoundedQueue built over a WCQ with explicit options (the default
// BoundedQueue ctor cannot pass Options through).
class TunedQueue {
 public:
  explicit TunedQueue(const SweepCase& c)
      : aq_(ring_opts(c)), fq_(ring_opts(c)), data_(u64{1} << c.order) {
    for (u64 i = 0; i < data_.size(); ++i) fq_.enqueue(i);
  }

  bool enqueue(u64 v) {
    const auto idx = fq_.dequeue();
    if (!idx) return false;
    data_[*idx] = v;
    aq_.enqueue(*idx);
    return true;
  }

  std::optional<u64> dequeue() {
    const auto idx = aq_.dequeue();
    if (!idx) return std::nullopt;
    const u64 v = data_[*idx];
    fq_.enqueue(*idx);
    return v;
  }

 private:
  static WCQ::Options ring_opts(const SweepCase& c) {
    WCQ::Options o;
    o.order = c.order;
    o.enq_patience = c.enq_patience;
    o.deq_patience = c.deq_patience;
    o.help_delay = c.help_delay;
    return o;
  }
  WCQ aq_;
  WCQ fq_;
  std::vector<u64> data_;
};

class WcqSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(WcqSweep, ExactlyOnceAndPerProducerFifo) {
  const SweepCase& c = GetParam();
  TunedQueue q(c);
  testing::MpmcConfig cfg;
  cfg.producers = c.producers;
  cfg.consumers = c.consumers;
  cfg.items_per_producer = c.items;
  testing::run_mpmc_exactly_once(q, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    PatienceSpectrum, WcqSweep,
    ::testing::Values(
        // paper defaults: slow path rare
        SweepCase{8, 4, 4, 16, 64, 16, 20000},
        // no patience at all: every op through the helping machinery
        SweepCase{8, 4, 4, 1, 1, 1, 4000},
        // asymmetric patience: only dequeues go slow
        SweepCase{8, 4, 4, 16, 1, 1, 8000},
        // only enqueues go slow
        SweepCase{8, 4, 4, 1, 64, 1, 8000},
        // large help delay: helping is rare but must still be correct
        SweepCase{8, 4, 4, 2, 2, 64, 8000}));

INSTANTIATE_TEST_SUITE_P(
    RingSizes, WcqSweep,
    ::testing::Values(
        SweepCase{1, 2, 2, 2, 2, 1, 3000},   // capacity 2: minimal ring
        SweepCase{2, 3, 3, 2, 2, 1, 4000},   // capacity 4
        SweepCase{4, 4, 4, 4, 4, 4, 8000},   // capacity 16
        SweepCase{12, 4, 4, 16, 64, 16, 20000}));  // capacity 4096

INSTANTIATE_TEST_SUITE_P(
    ThreadMixes, WcqSweep,
    ::testing::Values(
        SweepCase{6, 1, 1, 4, 4, 2, 20000},  // SPSC
        SweepCase{6, 7, 1, 4, 4, 2, 6000},   // many-to-one
        SweepCase{6, 1, 7, 4, 4, 2, 20000},  // one-to-many
        SweepCase{6, 6, 6, 4, 4, 2, 6000},   // square, oversubscribed-ish
        SweepCase{6, 2, 6, 1, 1, 1, 4000},   // slow-path, consumer-heavy
        SweepCase{6, 6, 2, 1, 1, 1, 4000})); // slow-path, producer-heavy

}  // namespace
}  // namespace wcq
