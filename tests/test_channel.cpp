// Channel<T>: the blocking facade over the wait-free queues (DESIGN.md §14).
//
// Coverage here is three-layered:
//   * single-threaded semantics — status codes, deadline variants, stats
//     accounting, drain-after-close ordering;
//   * the close/drain edge cases the ISSUE names — close-while-full with
//     parked senders, close-while-empty with parked receivers, concurrent
//     close from two threads, recv-after-close draining exactly the
//     residual count;
//   * the fast-path overhead guard — N non-contended channel ops must cost
//     exactly the same ring F&As as N raw BoundedQueue ops (counter-based,
//     deterministic on a 1-core host), the check_ringops.py-style claim
//     that parking support is free until someone actually parks.
#include "runtime/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/op_counters.hpp"
#include "scale/sharded_queue.hpp"

namespace wcq {
namespace {

using namespace std::chrono_literals;

TEST(Channel, TrySendTryRecvRoundTrip) {
  Channel<std::uint64_t> ch(4u);
  auto h = ch.acquire();
  std::uint64_t v = 41;
  EXPECT_EQ(ch.try_send(h, v), ChanStatus::kOk);
  std::uint64_t out = 0;
  EXPECT_EQ(ch.try_recv(h, out), ChanStatus::kOk);
  EXPECT_EQ(out, 41u);
  EXPECT_EQ(ch.try_recv(h, out), ChanStatus::kEmpty);
}

TEST(Channel, TrySendFullPreservesValue) {
  Channel<std::uint64_t> ch(2u);
  auto h = ch.acquire();
  std::uint64_t v = 0;
  while (true) {
    std::uint64_t x = 7;
    if (ch.try_send(h, x) != ChanStatus::kOk) break;
    ++v;
  }
  EXPECT_EQ(v, ch.capacity());
  std::uint64_t keep = 99;
  EXPECT_EQ(ch.try_send(h, keep), ChanStatus::kFull);
  EXPECT_EQ(keep, 99u) << "rejected element must not be consumed";
}

TEST(Channel, BlockingRoundTripSingleThread) {
  Channel<std::uint64_t> ch(4u);
  auto h = ch.acquire();
  EXPECT_EQ(ch.send(h, 5), ChanStatus::kOk);
  std::uint64_t out = 0;
  EXPECT_EQ(ch.recv(h, out), ChanStatus::kOk);
  EXPECT_EQ(out, 5u);
}

TEST(Channel, RecvForTimesOutOnEmpty) {
  Channel<std::uint64_t> ch(4u);
  auto h = ch.acquire();
  std::uint64_t out = 0;
  const auto before = std::chrono::steady_clock::now();
  EXPECT_EQ(ch.recv_for(h, out, 20ms), ChanStatus::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - before, 20ms);
  EXPECT_EQ(ch.stats().recv_timeouts, 1u);
}

TEST(Channel, SendForTimesOutOnFull) {
  Channel<std::uint64_t> ch(2u);
  auto h = ch.acquire();
  for (std::uint64_t i = 0; i < ch.capacity(); ++i) {
    ASSERT_EQ(ch.send(h, i), ChanStatus::kOk);
  }
  EXPECT_EQ(ch.send_for(h, 123, 20ms), ChanStatus::kTimeout);
  EXPECT_EQ(ch.stats().send_timeouts, 1u);
  // The timed-out element was not half-committed: draining yields exactly
  // capacity() elements.
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < ch.capacity(); ++i) {
    ASSERT_EQ(ch.try_recv(h, out), ChanStatus::kOk);
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(ch.try_recv(h, out), ChanStatus::kEmpty);
}

TEST(Channel, CloseRejectsSendersAndDrainsReceivers) {
  Channel<std::uint64_t> ch(4u);
  auto h = ch.acquire();
  EXPECT_EQ(ch.send(h, 1), ChanStatus::kOk);
  EXPECT_EQ(ch.send(h, 2), ChanStatus::kOk);
  EXPECT_TRUE(ch.close());
  EXPECT_FALSE(ch.close()) << "close must be idempotent";
  std::uint64_t v = 3;
  EXPECT_EQ(ch.try_send(h, v), ChanStatus::kClosed);
  EXPECT_EQ(ch.send(h, 4), ChanStatus::kClosed);
  EXPECT_EQ(ch.stats().closed_send_rejects, 2u);
  // Residual drain: both pre-close elements, in order, then kClosed forever.
  std::uint64_t out = 0;
  EXPECT_EQ(ch.recv(h, out), ChanStatus::kOk);
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(ch.try_recv(h, out), ChanStatus::kOk);
  EXPECT_EQ(out, 2u);
  EXPECT_EQ(ch.recv(h, out), ChanStatus::kClosed);
  EXPECT_EQ(ch.try_recv(h, out), ChanStatus::kClosed);
}

TEST(Channel, CloseWhileEmptyWakesParkedReceivers) {
  Channel<std::uint64_t> ch(4u);
  constexpr unsigned kReceivers = 4;
  std::atomic<unsigned> closed_seen{0};
  std::vector<std::thread> ts;
  for (unsigned i = 0; i < kReceivers; ++i) {
    ts.emplace_back([&] {
      auto h = ch.acquire();
      std::uint64_t out = 0;
      EXPECT_EQ(ch.recv(h, out), ChanStatus::kClosed);
      closed_seen.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Wait for every receiver to actually park (spin phases exhausted), then
  // close. Each must wake exactly once with kClosed — a lost wake here hangs
  // the join under the CTest timeout.
  while (ch.stats().recv_parks < kReceivers) std::this_thread::yield();
  ch.close();
  for (auto& t : ts) t.join();
  EXPECT_EQ(closed_seen.load(), kReceivers);
}

TEST(Channel, CloseWhileFullWakesParkedSenders) {
  Channel<std::uint64_t> ch(2u);
  {
    auto h = ch.acquire();
    for (std::uint64_t i = 0; i < ch.capacity(); ++i) {
      ASSERT_EQ(ch.send(h, i), ChanStatus::kOk);
    }
  }
  constexpr unsigned kSenders = 4;
  std::atomic<unsigned> closed_seen{0};
  std::vector<std::thread> ts;
  for (unsigned i = 0; i < kSenders; ++i) {
    ts.emplace_back([&] {
      auto h = ch.acquire();
      EXPECT_EQ(ch.send(h, 999), ChanStatus::kClosed);
      closed_seen.fetch_add(1, std::memory_order_relaxed);
    });
  }
  while (ch.stats().send_parks < kSenders) std::this_thread::yield();
  ch.close();
  for (auto& t : ts) t.join();
  EXPECT_EQ(closed_seen.load(), kSenders);
  // The channel was full before the blocked senders arrived; none of their
  // elements may have leaked in.
  auto h = ch.acquire();
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < ch.capacity(); ++i) {
    ASSERT_EQ(ch.recv(h, out), ChanStatus::kOk);
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(ch.recv(h, out), ChanStatus::kClosed);
}

TEST(Channel, ConcurrentCloseFromTwoThreads) {
  Channel<std::uint64_t> ch(4u);
  {
    auto h = ch.acquire();
    ASSERT_EQ(ch.send(h, 7), ChanStatus::kOk);
  }
  std::atomic<int> winners{0};
  std::thread a([&] {
    if (ch.close()) winners.fetch_add(1, std::memory_order_relaxed);
  });
  std::thread b([&] {
    if (ch.close()) winners.fetch_add(1, std::memory_order_relaxed);
  });
  a.join();
  b.join();
  EXPECT_EQ(winners.load(), 1) << "exactly one close() performs the close";
  auto h = ch.acquire();
  std::uint64_t out = 0;
  EXPECT_EQ(ch.recv(h, out), ChanStatus::kOk);
  EXPECT_EQ(out, 7u);
  EXPECT_EQ(ch.recv(h, out), ChanStatus::kClosed);
}

TEST(Channel, RecvAfterCloseDrainsExactlyResidual) {
  // Producers stop, channel closes, then receivers drain: the total received
  // must be exactly the number of accepted sends — no element lost to the
  // close, none invented.
  Channel<std::uint64_t> ch(6u);
  constexpr unsigned kProducers = 3;
  constexpr std::uint64_t kPerProducer = 5000;
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto h = ch.acquire();
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        if (ch.send(h, p * kPerProducer + i) == ChanStatus::kOk) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::atomic<std::uint64_t> received{0};
  std::vector<std::thread> consumers;
  for (unsigned c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      auto h = ch.acquire();
      std::uint64_t out = 0;
      while (ch.recv(h, out) == ChanStatus::kOk) {
        received.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  ch.close();  // all sends quiesced: the residual is exactly accepted-received
  for (auto& t : consumers) t.join();
  EXPECT_EQ(received.load(), accepted.load());
  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(ch.stats().accepted_after_close, 0u)
      << "no send raced the close in this shape";
}

TEST(Channel, MpmcBlockingExactlyOnceDelivery) {
  // The general blocking MPMC shape: senders park on full, receivers park on
  // empty, close() terminates the consumers. Every element is delivered
  // exactly once (checksum) and nobody hangs.
  Channel<std::uint64_t> ch(3u);  // capacity 8: forces both park directions
  constexpr unsigned kSenders = 3;
  constexpr unsigned kReceivers = 3;
  constexpr std::uint64_t kPerSender = 20000;
  std::vector<std::thread> ts;
  std::atomic<unsigned> senders_left{kSenders};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> count{0};
  for (unsigned s = 0; s < kSenders; ++s) {
    ts.emplace_back([&, s] {
      auto h = ch.acquire();
      for (std::uint64_t i = 0; i < kPerSender; ++i) {
        ASSERT_EQ(ch.send(h, s * kPerSender + i), ChanStatus::kOk);
      }
      if (senders_left.fetch_sub(1) == 1) ch.close();
    });
  }
  for (unsigned r = 0; r < kReceivers; ++r) {
    ts.emplace_back([&] {
      auto h = ch.acquire();
      std::uint64_t out = 0;
      while (ch.recv(h, out) == ChanStatus::kOk) {
        sum.fetch_add(out, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : ts) t.join();
  const std::uint64_t n = kSenders * kPerSender;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(Channel, ShardedBackendRoundTripAndClose) {
  Channel<std::uint64_t, ShardedQueue<std::uint64_t>> ch(
      typename ShardedQueue<std::uint64_t>::Options{2, 4});
  auto h = ch.acquire();
  // Stay below the aggregate capacity (2 shards x 16): this is a
  // single-threaded shape, so a blocking send on full would never return.
  const std::uint64_t n = ch.capacity() - 2;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(ch.send(h, i), ChanStatus::kOk);
  }
  ch.close();
  std::uint64_t out = 0;
  std::uint64_t sum = 0;
  std::uint64_t got = 0;
  while (ch.recv(h, out) == ChanStatus::kOk) {
    sum += out;
    ++got;
  }
  EXPECT_EQ(got, n);
  EXPECT_EQ(sum, n * (n - 1) / 2);
  EXPECT_EQ(ch.recv(h, out), ChanStatus::kClosed);
}

TEST(Channel, FastPathAddsZeroRingFaas) {
  // The parked path must be free until someone parks: N non-contended
  // channel send/recv pairs cost exactly the same shared-ring F&As as N raw
  // BoundedQueue enqueue/dequeue pairs. Thread-local counters make this
  // deterministic on any host, including 1-core CI.
  constexpr std::uint64_t kOps = 1000;
  const auto measure = [](auto&& op) {
    const auto before = opcount::snapshot();
    op();
    const auto after = opcount::snapshot();
    return after.faa - before.faa;
  };
  BoundedQueue<std::uint64_t> raw(6u);
  const std::uint64_t raw_faa = measure([&] {
    auto h = raw.acquire();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      ASSERT_TRUE(raw.enqueue(h, i));
      ASSERT_TRUE(raw.dequeue(h).has_value());
    }
  });
  Channel<std::uint64_t> ch(6u);
  const std::uint64_t chan_faa = measure([&] {
    auto h = ch.acquire();
    std::uint64_t out = 0;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      ASSERT_EQ(ch.send(h, i), ChanStatus::kOk);
      ASSERT_EQ(ch.recv(h, out), ChanStatus::kOk);
    }
  });
  EXPECT_EQ(chan_faa, raw_faa)
      << "blocking facade added ring F&As on the non-contended fast path";
  const auto st = ch.stats();
  EXPECT_EQ(st.send_parks + st.recv_parks, 0u)
      << "nothing should park in a single-threaded ping-pong";
}

TEST(Channel, StatsSurfaceDegradedModes) {
  Channel<std::uint64_t> ch(2u);
  auto h = ch.acquire();
  std::uint64_t out = 0;
  EXPECT_EQ(ch.recv_for(h, out, 1ms), ChanStatus::kTimeout);
  for (std::uint64_t i = 0; i < ch.capacity(); ++i) {
    ASSERT_EQ(ch.send(h, i), ChanStatus::kOk);
  }
  EXPECT_EQ(ch.send_for(h, 9, 1ms), ChanStatus::kTimeout);
  ch.close();
  std::uint64_t v = 1;
  EXPECT_EQ(ch.try_send(h, v), ChanStatus::kClosed);
  const auto st = ch.stats();
  EXPECT_EQ(st.recv_timeouts, 1u);
  EXPECT_EQ(st.send_timeouts, 1u);
  EXPECT_EQ(st.closed_send_rejects, 1u);
  EXPECT_EQ(st.stranded, 0u);
}

}  // namespace
}  // namespace wcq
