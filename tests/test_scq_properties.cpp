// Property sweeps for SCQ (the paper's Fig 3 substrate): the exactly-once /
// per-producer-FIFO property across ring sizes and thread mixes, through
// the Fig 2 indirection (which is how SCQ is meant to be consumed).
#include <gtest/gtest.h>

#include "core/bounded_queue.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

struct ScqCase {
  unsigned order;
  unsigned producers;
  unsigned consumers;
  u64 items;
  bool remap;
};

std::ostream& operator<<(std::ostream& os, const ScqCase& c) {
  return os << "order" << c.order << "_p" << c.producers << "c" << c.consumers
            << (c.remap ? "_remap" : "_noremap");
}

class ScqSweep : public ::testing::TestWithParam<ScqCase> {};

// Bounded queue glued over SCQ rings with explicit remap control.
class ScqBounded {
 public:
  explicit ScqBounded(const ScqCase& c)
      : aq_(c.order, c.remap), fq_(c.order, c.remap),
        data_(u64{1} << c.order) {
    for (u64 i = 0; i < data_.size(); ++i) fq_.enqueue(i);
  }
  bool enqueue(u64 v) {
    const auto idx = fq_.dequeue();
    if (!idx) return false;
    data_[*idx] = v;
    aq_.enqueue(*idx);
    return true;
  }
  std::optional<u64> dequeue() {
    const auto idx = aq_.dequeue();
    if (!idx) return std::nullopt;
    const u64 v = data_[*idx];
    fq_.enqueue(*idx);
    return v;
  }

 private:
  SCQ aq_;
  SCQ fq_;
  std::vector<u64> data_;
};

TEST_P(ScqSweep, ExactlyOnceAndPerProducerFifo) {
  const ScqCase& c = GetParam();
  ScqBounded q(c);
  testing::MpmcConfig cfg;
  cfg.producers = c.producers;
  cfg.consumers = c.consumers;
  cfg.items_per_producer = c.items;
  testing::run_mpmc_exactly_once(q, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    RingSizes, ScqSweep,
    ::testing::Values(ScqCase{1, 2, 2, 5000, true},
                      ScqCase{2, 3, 3, 8000, true},
                      ScqCase{4, 4, 4, 15000, true},
                      ScqCase{10, 4, 4, 30000, true},
                      ScqCase{14, 4, 4, 30000, true}));

INSTANTIATE_TEST_SUITE_P(
    ThreadMixes, ScqSweep,
    ::testing::Values(ScqCase{6, 1, 1, 40000, true},
                      ScqCase{6, 7, 1, 8000, true},
                      ScqCase{6, 1, 7, 40000, true},
                      ScqCase{6, 6, 6, 8000, true}));

INSTANTIATE_TEST_SUITE_P(
    RemapOff, ScqSweep,
    ::testing::Values(ScqCase{4, 4, 4, 10000, false},
                      ScqCase{8, 6, 2, 8000, false}));

}  // namespace
}  // namespace wcq
