// Failure-injection sweep for the portable wCQ: correctness must be
// insensitive to the spurious-SC failure rate (weak LL/SC, paper §4). Runs
// the MPMC exactly-once check at rates from 0 to 0.7 and verifies the
// injector actually fired.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "core/wcq_llsc.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

class LlscFailureSweep : public ::testing::TestWithParam<double> {
 protected:
  void TearDown() override { LLSCSim::set_spurious_failure_rate(0.0); }
};

TEST_P(LlscFailureSweep, ExactCountsUnderInjectedFailures) {
  const double rate = GetParam();
  LLSCSim::set_spurious_failure_rate(rate);
  const u64 before = LLSCSim::injected_failures();
  const u64 attempts_before = LLSCSim::sc_attempts();

  WCQLLSC::Options o;
  o.order = 4;
  o.enq_patience = 1;  // slow path everywhere: all updates via LL/SC
  o.deq_patience = 1;
  o.help_delay = 1;
  WCQLLSC q(o);

  testing::run_mpmc_count_exact(q, 3, 3, 3000);
  // Injection only happens on LL/SC updates, which the slow path issues on
  // genuine contention; a 1-core host may legitimately produce almost none
  // (the single fast-path attempt usually succeeds because nothing truly
  // runs in parallel). Only with a statistically sufficient SC population
  // is a silent injector a wiring bug. (The deterministic injector check
  // lives in test_llsc.cpp: InjectedFailuresOccurAtConfiguredRate.)
  const u64 attempts = LLSCSim::sc_attempts() - attempts_before;
  if (rate >= 0.05 && attempts >= 1000) {
    EXPECT_GT(LLSCSim::injected_failures(), before)
        << "injector configured but never fired across " << attempts
        << " eligible SCs";
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, LlscFailureSweep,
                         ::testing::Values(0.0, 0.05, 0.2, 0.45, 0.7));

}  // namespace
}  // namespace wcq
