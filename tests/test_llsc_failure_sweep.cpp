// Failure-injection sweep for the portable wCQ: correctness must be
// insensitive to the spurious-SC failure rate (weak LL/SC, paper §4). Runs
// the MPMC exactly-once check at rates from 0 to 0.7 and verifies the
// injector actually fired.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/cpu.hpp"
#include "core/wcq_llsc.hpp"

namespace wcq {
namespace {

class LlscFailureSweep : public ::testing::TestWithParam<double> {
 protected:
  void TearDown() override { LLSCSim::set_spurious_failure_rate(0.0); }
};

TEST_P(LlscFailureSweep, ExactCountsUnderInjectedFailures) {
  const double rate = GetParam();
  LLSCSim::set_spurious_failure_rate(rate);
  const u64 before = LLSCSim::injected_failures();

  WCQLLSC::Options o;
  o.order = 4;
  o.enq_patience = 1;  // slow path everywhere: all updates via LL/SC
  o.deq_patience = 1;
  o.help_delay = 1;
  WCQLLSC q(o);

  constexpr unsigned kProducers = 3;
  constexpr unsigned kConsumers = 3;
  constexpr u64 kPer = 3000;
  std::atomic<u64> consumed{0};
  std::atomic<i64> credits{static_cast<i64>(q.capacity())};
  std::vector<std::atomic<u64>> counts(kProducers);
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      for (u64 i = 0; i < kPer; ++i) {
        while (credits.fetch_sub(1, std::memory_order_acquire) <= 0) {
          credits.fetch_add(1, std::memory_order_release);
          cpu_relax();
        }
        q.enqueue(p);
      }
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&] {
      while (consumed.load(std::memory_order_relaxed) < kPer * kProducers) {
        if (auto v = q.dequeue()) {
          counts[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
          credits.fetch_add(1, std::memory_order_release);
        } else {
          cpu_relax();
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  for (unsigned p = 0; p < kProducers; ++p) {
    EXPECT_EQ(counts[p].load(), kPer);
  }
  EXPECT_FALSE(q.dequeue().has_value());
  if (rate > 0.0) {
    EXPECT_GT(LLSCSim::injected_failures(), before)
        << "injector configured but never fired";
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, LlscFailureSweep,
                         ::testing::Values(0.0, 0.05, 0.2, 0.45, 0.7));

}  // namespace
}  // namespace wcq
