// Unbounded queue (paper Appendix A): FIFO across segment boundaries,
// exactly-once under contention, and bounded segment-list growth.
#include "core/unbounded_queue.hpp"

#include <gtest/gtest.h>

#include "core/wcq_llsc.hpp"
#include "mpmc_harness.hpp"
#include "reclaim/hazard_pointers.hpp"

namespace wcq {
namespace {

template <typename Ring>
class UnboundedQueueTest : public ::testing::Test {};

using RingTypes = ::testing::Types<WCQ, SCQ, WCQLLSC>;
TYPED_TEST_SUITE(UnboundedQueueTest, RingTypes);

TYPED_TEST(UnboundedQueueTest, StartsEmpty) {
  UnboundedQueue<u64, TypeParam> q(4);
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_EQ(q.live_segments(), 1u);
}

TYPED_TEST(UnboundedQueueTest, GrowsPastOneSegment) {
  UnboundedQueue<u64, TypeParam> q(3);  // 8 elements per segment
  for (u64 i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.enqueue(i));
  }
  EXPECT_GT(q.live_segments(), 1u);
  for (u64 i = 0; i < 100; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i) << "FIFO broken across segment boundary";
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TYPED_TEST(UnboundedQueueTest, SequentialFifoLong) {
  UnboundedQueue<u64, TypeParam> q(4);
  testing::run_sequential_fifo(q, 20000);
}

TYPED_TEST(UnboundedQueueTest, BurstWraparound) {
  UnboundedQueue<u64, TypeParam> q(4);
  testing::run_sequential_wraparound(q, 100, 100);
}

TYPED_TEST(UnboundedQueueTest, SegmentsAreReclaimed) {
  UnboundedQueue<u64, TypeParam> q(3);
  for (int round = 0; round < 200; ++round) {
    for (u64 i = 0; i < 32; ++i) ASSERT_TRUE(q.enqueue(i));
    for (u64 i = 0; i < 32; ++i) ASSERT_TRUE(q.dequeue().has_value());
  }
  q.reclaim_flush();  // quiescent: flush retired segments
  EXPECT_LT(q.live_segments(), 10u) << "drained segments not unlinked";
}

TYPED_TEST(UnboundedQueueTest, MpmcExactlyOnce) {
  UnboundedQueue<u64, TypeParam> q(6);
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  cfg.items_per_producer = 20000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TYPED_TEST(UnboundedQueueTest, MpmcTinySegmentsHighChurn) {
  // Segment of 4: constant finalize/append/unlink churn under contention.
  UnboundedQueue<u64, TypeParam> q(2);
  testing::MpmcConfig cfg;
  cfg.producers = 3;
  cfg.consumers = 3;
  cfg.items_per_producer = 8000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TYPED_TEST(UnboundedQueueTest, MpmcAsymmetric) {
  UnboundedQueue<u64, TypeParam> q(5);
  testing::MpmcConfig cfg;
  cfg.producers = 6;
  cfg.consumers = 2;
  cfg.items_per_producer = 10000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TYPED_TEST(UnboundedQueueTest, NoBackpressureEver) {
  // Unlike BoundedQueue, enqueue never reports full.
  UnboundedQueue<u64, TypeParam> q(2);
  for (u64 i = 0; i < 5000; ++i) {
    ASSERT_TRUE(q.enqueue(i));
  }
  for (u64 i = 0; i < 5000; ++i) {
    ASSERT_EQ(q.dequeue().value(), i);
  }
}

}  // namespace
}  // namespace wcq
