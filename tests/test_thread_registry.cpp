#include "runtime/thread_registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace wcq {
namespace {

TEST(ThreadRegistry, TidIsStablePerThread) {
  const unsigned a = ThreadRegistry::tid();
  const unsigned b = ThreadRegistry::tid();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, ThreadRegistry::kMaxThreads);
  EXPECT_GE(ThreadRegistry::high_water(), a + 1);
}

TEST(ThreadRegistry, DistinctTidsAcrossLiveThreads) {
  constexpr unsigned kThreads = 16;
  std::vector<unsigned> tids(kThreads);
  std::atomic<unsigned> arrived{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  for (unsigned i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      tids[i] = ThreadRegistry::tid();
      arrived.fetch_add(1);
      while (!go.load()) {
      }  // hold the slot until everyone registered
    });
  }
  while (arrived.load() < kThreads) {
  }
  go.store(true);
  for (auto& t : ts) t.join();
  std::set<unsigned> unique(tids.begin(), tids.end());
  EXPECT_EQ(unique.size(), kThreads);
}

TEST(ThreadRegistry, SlotsAreRecycledAfterThreadExit) {
  // Run many short-lived threads sequentially; the slot pool must not grow
  // without bound (this is what keeps per-queue record arrays small).
  const unsigned hw_before = ThreadRegistry::high_water();
  for (int i = 0; i < 200; ++i) {
    std::thread([] { (void)ThreadRegistry::tid(); }).join();
  }
  // At most a couple of extra slots (gtest internals may register too).
  EXPECT_LE(ThreadRegistry::high_water(), hw_before + 4);
}

TEST(ThreadRegistry, LiveThreadsCountsHeldSlots) {
  const unsigned before = ThreadRegistry::live_threads();
  std::atomic<bool> go{false};
  std::atomic<bool> registered{false};
  std::thread t([&] {
    (void)ThreadRegistry::tid();
    registered.store(true);
    while (!go.load()) {
    }
  });
  while (!registered.load()) {
  }
  EXPECT_GE(ThreadRegistry::live_threads(), before + 1);
  go.store(true);
  t.join();
}

}  // namespace
}  // namespace wcq
