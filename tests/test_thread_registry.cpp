#include "runtime/thread_registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace wcq {
namespace {

TEST(ThreadRegistry, TidIsStablePerThread) {
  const unsigned a = ThreadRegistry::tid();
  const unsigned b = ThreadRegistry::tid();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, ThreadRegistry::kMaxThreads);
  EXPECT_GE(ThreadRegistry::high_water(), a + 1);
}

TEST(ThreadRegistry, DistinctTidsAcrossLiveThreads) {
  constexpr unsigned kThreads = 16;
  std::vector<unsigned> tids(kThreads);
  std::atomic<unsigned> arrived{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  for (unsigned i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      tids[i] = ThreadRegistry::tid();
      arrived.fetch_add(1);
      while (!go.load()) {
      }  // hold the slot until everyone registered
    });
  }
  while (arrived.load() < kThreads) {
  }
  go.store(true);
  for (auto& t : ts) t.join();
  std::set<unsigned> unique(tids.begin(), tids.end());
  EXPECT_EQ(unique.size(), kThreads);
}

TEST(ThreadRegistry, SlotsAreRecycledAfterThreadExit) {
  // Run many short-lived threads sequentially; the slot pool must not grow
  // without bound (this is what keeps per-queue record arrays small).
  const unsigned hw_before = ThreadRegistry::high_water();
  for (int i = 0; i < 200; ++i) {
    std::thread([] { (void)ThreadRegistry::tid(); }).join();
  }
  // At most a couple of extra slots (gtest internals may register too).
  EXPECT_LE(ThreadRegistry::high_water(), hw_before + 4);
}

struct HookLog {
  std::atomic<unsigned> fires{0};
  std::atomic<unsigned> last_tid{~0u};
};

void record_hook(void* ctx, unsigned tid) {
  auto* log = static_cast<HookLog*>(ctx);
  log->fires.fetch_add(1);
  log->last_tid.store(tid);
}

TEST(ThreadRegistry, ExitHookFiresOnRegisteredThreadExit) {
  HookLog log;
  const auto handle = ThreadRegistry::register_exit_hook(&record_hook, &log);
  unsigned worker_tid = ~0u;
  std::thread t([&] { worker_tid = ThreadRegistry::tid(); });
  t.join();
  EXPECT_EQ(log.fires.load(), 1u) << "hook must fire exactly once per exit";
  EXPECT_EQ(log.last_tid.load(), worker_tid)
      << "hook must receive the exiting thread's tid";
  ThreadRegistry::unregister_exit_hook(handle);
}

TEST(ThreadRegistry, UnregisteredHookNeverFiresAgain) {
  HookLog log;
  const auto handle = ThreadRegistry::register_exit_hook(&record_hook, &log);
  std::thread([&] { (void)ThreadRegistry::tid(); }).join();
  ASSERT_EQ(log.fires.load(), 1u);
  ThreadRegistry::unregister_exit_hook(handle);
  std::thread([&] { (void)ThreadRegistry::tid(); }).join();
  EXPECT_EQ(log.fires.load(), 1u) << "hook fired after unregister";
  // Unregistering a dead handle is a harmless no-op.
  ThreadRegistry::unregister_exit_hook(handle);
}

TEST(ThreadRegistry, AllRegisteredHooksFirePerExit) {
  HookLog a, b;
  const auto ha = ThreadRegistry::register_exit_hook(&record_hook, &a);
  const auto hb = ThreadRegistry::register_exit_hook(&record_hook, &b);
  for (int i = 0; i < 3; ++i) {
    std::thread([&] { (void)ThreadRegistry::tid(); }).join();
  }
  EXPECT_EQ(a.fires.load(), 3u);
  EXPECT_EQ(b.fires.load(), 3u);
  ThreadRegistry::unregister_exit_hook(ha);
  ThreadRegistry::unregister_exit_hook(hb);
}

TEST(ThreadRegistry, UnregisterWaitsForInFlightHook) {
  // unregister_exit_hook must block until a running invocation completes —
  // that is what lets a queue destructor tear down the hook's context
  // safely. The hook parks until released; unregister from the main thread
  // must not return while it is parked.
  struct GateLog {
    std::atomic<bool> entered{false};
    std::atomic<bool> release{false};
    std::atomic<bool> finished{false};
  } gate;
  const auto handle = ThreadRegistry::register_exit_hook(
      [](void* ctx, unsigned) {
        auto* g = static_cast<GateLog*>(ctx);
        g->entered.store(true);
        while (!g->release.load()) {
          std::this_thread::yield();
        }
        g->finished.store(true);
      },
      &gate);
  std::thread worker([] { (void)ThreadRegistry::tid(); });
  while (!gate.entered.load()) {
    std::this_thread::yield();
  }
  std::atomic<bool> unregistered{false};
  std::thread unreg([&] {
    ThreadRegistry::unregister_exit_hook(handle);
    unregistered.store(true);
  });
  // The hook is parked inside its invocation; unregister must not complete.
  for (int i = 0; i < 100; ++i) std::this_thread::yield();
  EXPECT_FALSE(unregistered.load())
      << "unregister returned while the hook was still running";
  gate.release.store(true);
  unreg.join();
  EXPECT_TRUE(gate.finished.load());
  worker.join();
}

TEST(ThreadRegistry, LiveThreadsCountsHeldSlots) {
  const unsigned before = ThreadRegistry::live_threads();
  std::atomic<bool> go{false};
  std::atomic<bool> registered{false};
  std::thread t([&] {
    (void)ThreadRegistry::tid();
    registered.store(true);
    while (!go.load()) {
    }
  });
  while (!registered.load()) {
  }
  EXPECT_GE(ThreadRegistry::live_threads(), before + 1);
  go.store(true);
  t.join();
}

}  // namespace
}  // namespace wcq
