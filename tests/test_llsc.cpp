// Simulated weak LL/SC (paper §4) behavioral tests.
#include "portability/llsc.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wcq {
namespace {

class LlscTest : public ::testing::Test {
 protected:
  void TearDown() override { LLSCSim::set_spurious_failure_rate(0.0); }
};

TEST_F(LlscTest, LoadLinkedSnapshotsBothWords) {
  AtomicPair128 g;
  g.lo.store(11);
  g.hi.store(22);
  const Pair128 snap = LLSCSim::load_linked(g);
  EXPECT_EQ(snap.lo, 11u);
  EXPECT_EQ(snap.hi, 22u);
}

TEST_F(LlscTest, StoreConditionalSucceedsWhenUntouched) {
  AtomicPair128 g;
  g.lo.store(1);
  g.hi.store(2);
  LLSCSim::load_linked(g);
  EXPECT_TRUE(LLSCSim::store_conditional_lo(g, 100));
  EXPECT_EQ(g.lo.load(), 100u);
  EXPECT_EQ(g.hi.load(), 2u);  // other word untouched
}

TEST_F(LlscTest, StoreConditionalHiPreservesLo) {
  AtomicPair128 g;
  g.lo.store(7);
  g.hi.store(8);
  LLSCSim::load_linked(g);
  EXPECT_TRUE(LLSCSim::store_conditional_hi(g, 99));
  EXPECT_EQ(g.lo.load(), 7u);
  EXPECT_EQ(g.hi.load(), 99u);
}

TEST_F(LlscTest, ReservationIsSingleShot) {
  AtomicPair128 g;
  g.lo.store(1);
  g.hi.store(2);
  LLSCSim::load_linked(g);
  EXPECT_TRUE(LLSCSim::store_conditional_lo(g, 10));
  // Second SC without a fresh LL must fail.
  EXPECT_FALSE(LLSCSim::store_conditional_lo(g, 20));
  EXPECT_EQ(g.lo.load(), 10u);
}

TEST_F(LlscTest, ScFailsWithoutReservation) {
  AtomicPair128 g;
  g.lo.store(0);
  g.hi.store(0);
  EXPECT_FALSE(LLSCSim::store_conditional_lo(g, 1));
}

TEST_F(LlscTest, ScFailsIfSameWordChanged) {
  AtomicPair128 g;
  g.lo.store(5);
  g.hi.store(6);
  LLSCSim::load_linked(g);
  g.lo.store(50);  // interference
  EXPECT_FALSE(LLSCSim::store_conditional_lo(g, 7));
  EXPECT_EQ(g.lo.load(), 50u);
}

TEST_F(LlscTest, ScFailsIfOtherWordInGranuleChanged) {
  // The reservation granule spans both words: writing the *other* word must
  // kill the reservation — the false-sharing semantics §4 relies on.
  AtomicPair128 g;
  g.lo.store(5);
  g.hi.store(6);
  LLSCSim::load_linked(g);
  g.hi.store(60);
  EXPECT_FALSE(LLSCSim::store_conditional_lo(g, 7));
  EXPECT_EQ(g.lo.load(), 5u);
  EXPECT_EQ(g.hi.load(), 60u);
}

TEST_F(LlscTest, ReservationIsPerGranule) {
  AtomicPair128 a, b;
  a.lo.store(1);
  a.hi.store(1);
  b.lo.store(2);
  b.hi.store(2);
  LLSCSim::load_linked(a);
  EXPECT_FALSE(LLSCSim::store_conditional_lo(b, 9)) << "wrong granule";
  EXPECT_TRUE(LLSCSim::store_conditional_lo(a, 9));
}

TEST_F(LlscTest, InjectedFailuresOccurAtConfiguredRate) {
  AtomicPair128 g;
  g.lo.store(0);
  g.hi.store(0);
  LLSCSim::set_spurious_failure_rate(0.5);
  const u64 before = LLSCSim::injected_failures();
  int failures = 0;
  constexpr int kTries = 4000;
  for (int i = 0; i < kTries; ++i) {
    LLSCSim::load_linked(g);
    if (!LLSCSim::store_conditional_lo(g, static_cast<u64>(i))) ++failures;
  }
  const u64 injected = LLSCSim::injected_failures() - before;
  EXPECT_EQ(static_cast<u64>(failures), injected);  // no real interference
  EXPECT_GT(failures, kTries / 4);
  EXPECT_LT(failures, 3 * kTries / 4);
}

TEST_F(LlscTest, ConcurrentCountersViaLlScAreExact) {
  AtomicPair128 g;
  g.lo.store(0);
  g.hi.store(0);
  constexpr int kThreads = 6;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIncrements; ++i) {
        for (;;) {
          const Pair128 snap = LLSCSim::load_linked(g);
          const bool ok = (t % 2 == 0)
                              ? LLSCSim::store_conditional_lo(g, snap.lo + 1)
                              : LLSCSim::store_conditional_hi(g, snap.hi + 1);
          if (ok) break;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(g.lo.load() + g.hi.load(),
            static_cast<u64>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace wcq
