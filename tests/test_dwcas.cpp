#include "common/dwcas.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wcq {
namespace {

TEST(Dwcas, SuccessAndFailure) {
  AtomicPair128 p;
  p.lo.store(1);
  p.hi.store(2);
  Pair128 expected{1, 2};
  EXPECT_TRUE(dwcas(p, expected, Pair128{3, 4}));
  EXPECT_EQ(p.lo.load(), 3u);
  EXPECT_EQ(p.hi.load(), 4u);

  Pair128 wrong{1, 2};
  EXPECT_FALSE(dwcas(p, wrong, Pair128{5, 6}));
  // Failure reports the observed value.
  EXPECT_EQ(wrong.lo, 3u);
  EXPECT_EQ(wrong.hi, 4u);
  EXPECT_EQ(p.lo.load(), 3u);
}

TEST(Dwcas, FailsWhenOnlyOneWordDiffers) {
  AtomicPair128 p;
  p.lo.store(10);
  p.hi.store(20);
  Pair128 lo_wrong{11, 20};
  EXPECT_FALSE(dwcas(p, lo_wrong, Pair128{0, 0}));
  Pair128 hi_wrong{10, 21};
  EXPECT_FALSE(dwcas(p, hi_wrong, Pair128{0, 0}));
  Pair128 right{10, 20};
  EXPECT_TRUE(dwcas(p, right, Pair128{0, 0}));
}

TEST(Dwcas, AtomicLoadMatches) {
  AtomicPair128 p;
  p.lo.store(123);
  p.hi.store(456);
  const Pair128 v = dwload_atomic(p);
  EXPECT_EQ(v.lo, 123u);
  EXPECT_EQ(v.hi, 456u);
}

// Both words must move together under contention: each thread increments
// the pair {n, 2n}; any observed pair must preserve hi == 2*lo.
TEST(Dwcas, PairInvariantUnderContention) {
  AtomicPair128 p;
  p.lo.store(0);
  p.hi.store(0);
  constexpr int kThreads = 8;
  constexpr int kIters = 50000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        Pair128 cur = p.load_torn();
        for (;;) {
          const Pair128 next{cur.lo + 1, (cur.lo + 1) * 2};
          if (dwcas(p, cur, next)) break;
          // `cur` now holds the observed value; it must itself be coherent.
          ASSERT_EQ(cur.hi, cur.lo * 2);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(p.lo.load(), static_cast<u64>(kThreads) * kIters);
  EXPECT_EQ(p.hi.load(), 2 * static_cast<u64>(kThreads) * kIters);
}

// PR 10 (DESIGN.md §15, DWCAS-ORDER): dwcas takes a memory_order so argued
// call sites can pay less than seq_cst. Success/failure semantics and the
// observed-value writeback must be identical at every order, on every
// backend (x86 ignores the hint — cmpxchg16b is a full barrier; LSE picks
// casp/caspa/caspl/caspal; the __atomic fallback maps to a success/failure
// pair).
class DwcasOrderSweep : public ::testing::TestWithParam<std::memory_order> {};

TEST_P(DwcasOrderSweep, SuccessFailureAndWritebackAtEveryOrder) {
  const std::memory_order mo = GetParam();
  AtomicPair128 p;
  p.lo.store(1);
  p.hi.store(2);
  Pair128 expected{1, 2};
  EXPECT_TRUE(dwcas(p, expected, Pair128{3, 4}, mo));
  EXPECT_EQ(p.lo.load(), 3u);
  EXPECT_EQ(p.hi.load(), 4u);

  Pair128 wrong{1, 2};
  EXPECT_FALSE(dwcas(p, wrong, Pair128{5, 6}, mo));
  EXPECT_EQ(wrong.lo, 3u);  // failure reports the observed value
  EXPECT_EQ(wrong.hi, 4u);
  EXPECT_EQ(p.lo.load(), 3u);
  EXPECT_EQ(p.hi.load(), 4u);

  Pair128 lo_wrong{9, 4};
  EXPECT_FALSE(dwcas(p, lo_wrong, Pair128{0, 0}, mo));
  Pair128 hi_wrong{3, 9};
  EXPECT_FALSE(dwcas(p, hi_wrong, Pair128{0, 0}, mo));
  Pair128 right{3, 4};
  EXPECT_TRUE(dwcas(p, right, Pair128{0, 0}, mo));
  EXPECT_EQ(p.lo.load(), 0u);
  EXPECT_EQ(p.hi.load(), 0u);
}

TEST_P(DwcasOrderSweep, PairInvariantUnderContentionAtEveryOrder) {
  // Atomicity (both words move together) must not depend on the ordering
  // argument — even relaxed CAS2 is still one indivisible 16-byte update.
  const std::memory_order mo = GetParam();
  AtomicPair128 p;
  p.lo.store(0);
  p.hi.store(0);
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        Pair128 cur = p.load_torn();
        for (;;) {
          const Pair128 next{cur.lo + 1, (cur.lo + 1) * 2};
          if (dwcas(p, cur, next, mo)) break;
          ASSERT_EQ(cur.hi, cur.lo * 2);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(p.lo.load(), static_cast<u64>(kThreads) * kIters);
  EXPECT_EQ(p.hi.load(), 2 * static_cast<u64>(kThreads) * kIters);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, DwcasOrderSweep,
    ::testing::Values(std::memory_order_relaxed, std::memory_order_acquire,
                      std::memory_order_release, std::memory_order_acq_rel,
                      std::memory_order_seq_cst),
    [](const ::testing::TestParamInfo<std::memory_order>& info) {
      switch (info.param) {
        case std::memory_order_relaxed: return std::string("relaxed");
        case std::memory_order_acquire: return std::string("acquire");
        case std::memory_order_release: return std::string("release");
        case std::memory_order_acq_rel: return std::string("acq_rel");
        default: return std::string("seq_cst");
      }
    });

TEST(Dwcas, SingleWordFetchAddCoexistsWithCas2) {
  // wCQ's fast path F&As the counter word while slow paths CAS2 the pair;
  // verify the mixed-width usage behaves (lo moves, hi preserved).
  AtomicPair128 p;
  p.lo.store(100);
  p.hi.store(777);
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        if (i % 2 == 0) {
          p.lo.fetch_add(1);
        } else {
          Pair128 cur = p.load_torn();
          const Pair128 next{cur.lo + 1, cur.hi};
          dwcas(p, cur, next);  // may fail; fine
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(p.hi.load(), 777u);
  EXPECT_GE(p.lo.load(), 100u + kThreads * kIters / 2);
}

}  // namespace
}  // namespace wcq
