// MpscRing (DESIGN.md §13) unit, counter, and concurrency tests: the SCQ
// derivative whose single-consumer side runs on plain loads and release
// stores — no Head F&A, no threshold, no consume fetch_or. The counter
// tests pin the "deleted, not just cheap" claim (the bench gate asserts the
// same zeros end to end); the death tests pin the session contract.
#include "core/mpsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "common/op_counters.hpp"
#include "core/bounded_queue.hpp"
#include "core/unbounded_queue.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

TEST(MpscRing, StartsEmpty) {
  MpscRing q(4);
  EXPECT_EQ(q.capacity(), 16u);
  EXPECT_EQ(q.ring_size(), 32u);
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(MpscRing, SingleElementRoundTrip) {
  MpscRing q(4);
  q.enqueue(7);
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(MpscRing, FifoOrderWithinCapacity) {
  MpscRing q(6);
  for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
  for (u64 i = 0; i < q.capacity(); ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(MpscRing, WraparoundManyCycles) {
  MpscRing q(3);  // capacity 8, ring 16: many wraps below
  for (u64 i = 0; i < 10000; ++i) {
    q.enqueue(i % q.capacity());
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(MpscRing, FullCapacityIsUsable) {
  MpscRing q(8);
  for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
  u64 count = 0;
  while (q.dequeue().has_value()) ++count;
  EXPECT_EQ(count, q.capacity());
}

TEST(MpscRing, EmptyDequeueLeavesHeadAlone) {
  // Without a threshold the empty exit is the tail<=head comparison; it
  // must not burn ranks (the SCQ property the deletion has to preserve).
  MpscRing q(4);
  q.enqueue(1);
  ASSERT_TRUE(q.dequeue().has_value());
  const u64 head_before = q.head();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(q.dequeue().has_value());
  }
  EXPECT_EQ(q.head(), head_before) << "empty dequeues advanced Head";
  q.enqueue(3);
  EXPECT_EQ(q.dequeue().value(), 3u);
}

TEST(MpscRing, BulkRoundTripPreservesFifo) {
  MpscRing q(6);
  u64 in[48], out[48];
  for (u64 i = 0; i < 48; ++i) in[i] = i;
  q.enqueue_bulk(in, 48);
  std::size_t got = 0;
  while (got < 48) {
    const std::size_t k = q.dequeue_bulk(out + got, 48 - got);
    if (k == 0) break;
    got += k;
  }
  ASSERT_EQ(got, 48u);
  for (u64 i = 0; i < 48; ++i) ASSERT_EQ(out[i], i);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(MpscRing, ConsumerPathCountsNothing) {
  // The deletion argument, as a counter fact: dequeues — hit, miss, and
  // bulk — perform zero shared F&As and zero threshold RMWs. Producers
  // still pay the SCQ span F&A. This is the unit-level twin of the
  // bench/check_pipeline.py consumer-zeros gate.
  MpscRing q(6);
  u64 in[32], out[32];
  for (u64 i = 0; i < 32; ++i) in[i] = i;
  const auto before_enq = opcount::snapshot();
  q.enqueue_bulk(in, 32);
  const auto after_enq = opcount::snapshot();
  EXPECT_EQ(after_enq.faa - before_enq.faa, 1u)
      << "bulk enqueue must reserve the whole span with one F&A";

  const auto before = opcount::snapshot();
  EXPECT_EQ(q.dequeue_bulk(out, 16), 16u);
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(q.dequeue().has_value());
  for (int i = 0; i < 50; ++i) ASSERT_FALSE(q.dequeue().has_value());
  const auto after = opcount::snapshot();
  EXPECT_EQ(after.faa - before.faa, 0u) << "consumer path issued a Head F&A";
  EXPECT_EQ(after.threshold - before.threshold, 0u)
      << "consumer path issued a threshold RMW";
}

TEST(MpscRing, HandleOpsRoundTrip) {
  MpscRing q(5);
  auto h = q.handle();
  for (u64 i = 0; i < 4 * q.capacity(); ++i) {
    q.enqueue(h, i % q.capacity());
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
}

TEST(MpscRing, ResetUnbindsConsumerSession) {
  // reset() clears the consumer binding (segment-recycling contract): a
  // different thread may become the consumer of the reset ring.
  MpscRing q(4);
  q.enqueue(1);
  ASSERT_TRUE(q.dequeue().has_value());  // binds this thread
  q.reset();
  q.enqueue(9);
  std::thread t([&] {
    auto v = q.dequeue();  // would trap if the old binding survived reset
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9u);
  });
  t.join();
}

TEST(MpscRing, ReleaseSessionsRebinds) {
  MpscRing q(4);
  q.enqueue(1);
  ASSERT_TRUE(q.dequeue().has_value());
  q.release_sessions();
  q.enqueue(2);
  std::thread t([&] { EXPECT_EQ(q.dequeue().value(), 2u); });
  t.join();
}

// Multi-producer/single-consumer exact-count checks (the ring's whole
// degree contract) — named into the stress bucket.

TEST(MpscRing, LinearizabilityManyProducersOneConsumer) {
  MpscRing q(10);
  testing::run_mpmc_count_exact(q, 7, 1, 30000);
}

TEST(MpscRing, LinearizabilitySmallRingContention) {
  MpscRing q(3);  // capacity 8 with 5 producers: constant wraparound
  testing::run_mpmc_count_exact(q, 5, 1, 20000);
}

TEST(MpscRing, SpscExactOrderPipeline) {
  // With one producer the ring degenerates to SPSC and must preserve exact
  // global FIFO, not just per-producer order.
  MpscRing q(4);
  const u64 kItems = testing::scale_items(200000);
  std::atomic<i64> credits{static_cast<i64>(q.capacity())};
  std::thread prod([&] {
    Backoff bo;
    for (u64 i = 0; i < kItems; ++i) {
      while (credits.fetch_sub(1, std::memory_order_acquire) <= 0) {
        credits.fetch_add(1, std::memory_order_release);
        bo.pause();
      }
      bo.reset();
      q.enqueue(i % q.capacity());
    }
  });
  u64 expect = 0;
  Backoff bo;
  while (expect < kItems) {
    if (auto v = q.dequeue()) {
      ASSERT_EQ(*v, expect % q.capacity());
      ++expect;
      credits.fetch_add(1, std::memory_order_release);
      bo.reset();
    } else {
      bo.pause();
    }
  }
  prod.join();
  EXPECT_FALSE(q.dequeue().has_value());
}

// Fig 2 composition: BoundedQueue<T, MpscRing> (aq is MPSC, fq stays the
// MPMC SCQ — DefaultFreeRing) under the shared exactly-once harness, with
// magazines both on and off.

TEST(MpscRing, BoundedMagazinesOnExactlyOnce) {
  BoundedQueue<u64, MpscRing> q(
      typename BoundedQueue<u64, MpscRing>::Options{7, {}});
  testing::MpmcConfig cfg;
  cfg.producers = 6;
  cfg.consumers = 1;
  cfg.items_per_producer = 20000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TEST(MpscRing, BoundedMagazinesOffExactlyOnce) {
  BoundedQueue<u64, MpscRing> q(typename BoundedQueue<u64, MpscRing>::Options{
      7, {.enabled = false, .capacity = 16}});
  testing::MpmcConfig cfg;
  cfg.producers = 6;
  cfg.consumers = 1;
  cfg.items_per_producer = 20000;
  testing::run_mpmc_exactly_once(q, cfg);
}

TEST(MpscRing, UnboundedSegmentChurnExactlyOnce) {
  // Appendix A composition: small segments force constant retire/recycle,
  // so the consumer binds (and reset() unbinds) many segment rings over the
  // run — the pool-recycling half of the session contract.
  UnboundedQueue<u64, MpscRing> q(3u);
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 1;
  cfg.items_per_producer = 15000;
  testing::run_mpmc_exactly_once(q, cfg);
}

// Death tests fork the process; under TSan that is unreliable (and the
// runtime may refuse), so the misuse diagnostics are asserted in the
// release/asan CI jobs only.
#if defined(__SANITIZE_THREAD__)
#define WCQ_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "death tests fork; skipped under TSan"
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WCQ_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "death tests fork; skipped under TSan"
#else
#define WCQ_SKIP_UNDER_TSAN() (void)0
#endif
#else
#define WCQ_SKIP_UNDER_TSAN() (void)0
#endif

TEST(MpscRingDeathTest, SecondConsumerSessionTraps) {
  WCQ_SKIP_UNDER_TSAN();
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        MpscRing q(4);
        q.enqueue(1);
        (void)q.dequeue();  // binds this thread as the consumer
        std::thread([&] { (void)q.dequeue(); }).join();  // second session
      },
      "second consumer session");
}

}  // namespace
}  // namespace wcq
