// wCQ portable variant (paper §4, Fig 9): the full correctness suite runs
// over the LL/SC reservation-granule model, including with injected
// sporadic SC failures (weak LL/SC semantics).
#include "core/wcq_llsc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

class WcqLlscTest : public ::testing::Test {
 protected:
  void TearDown() override { LLSCSim::set_spurious_failure_rate(0.0); }
};

WCQLLSC::Options slow_only(unsigned order) {
  WCQLLSC::Options o;
  o.order = order;
  o.enq_patience = 1;
  o.deq_patience = 1;
  o.help_delay = 1;
  return o;
}

TEST_F(WcqLlscTest, SequentialRoundTrips) {
  WCQLLSC q(4);
  for (u64 i = 0; i < 5000; ++i) {
    q.enqueue(i % q.capacity());
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST_F(WcqLlscTest, FifoOrder) {
  WCQLLSC q(6);
  for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
  for (u64 i = 0; i < q.capacity(); ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
}

TEST_F(WcqLlscTest, SlowPathWithSpuriousFailures) {
  // Weak LL/SC: every slow-path entry update can fail sporadically. The
  // paper requires only that wCQ tolerates weak-CAS semantics; exactness of
  // the delivered values is the check.
  LLSCSim::set_spurious_failure_rate(0.3);
  WCQLLSC q(slow_only(4));
  for (u64 i = 0; i < 2000; ++i) {
    q.enqueue(i % q.capacity());
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
}

TEST_F(WcqLlscTest, MpmcExactCounts) {
  WCQLLSC q(9);
  testing::run_mpmc_count_exact(q, 4, 4, 20000);
}

TEST_F(WcqLlscTest, MpmcAllSlowPathTinyRing) {
  WCQLLSC q(slow_only(2));
  testing::run_mpmc_count_exact(q, 3, 3, 4000);
}

TEST_F(WcqLlscTest, MpmcWithInjectedScFailures) {
  LLSCSim::set_spurious_failure_rate(0.2);
  const u64 injected_before = LLSCSim::injected_failures();
  const u64 attempts_before = LLSCSim::sc_attempts();
  WCQLLSC q(slow_only(3));
  testing::run_mpmc_count_exact(q, 3, 3, 4000);
  // See test_llsc_failure_sweep.cpp: on a 1-core host the slow path may
  // issue too few LL/SC updates for injection to be statistically certain.
  if (LLSCSim::sc_attempts() - attempts_before >= 1000) {
    EXPECT_GT(LLSCSim::injected_failures(), injected_before);
  }
}

TEST_F(WcqLlscTest, MpmcHeavyFailureRate) {
  LLSCSim::set_spurious_failure_rate(0.5);
  WCQLLSC q(slow_only(4));
  testing::run_mpmc_count_exact(q, 2, 2, 3000);
}

}  // namespace
}  // namespace wcq
