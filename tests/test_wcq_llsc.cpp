// wCQ portable variant (paper §4, Fig 9): the full correctness suite runs
// over the LL/SC reservation-granule model, including with injected
// sporadic SC failures (weak LL/SC semantics).
#include "core/wcq_llsc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/cpu.hpp"

namespace wcq {
namespace {

class WcqLlscTest : public ::testing::Test {
 protected:
  void TearDown() override { LLSCSim::set_spurious_failure_rate(0.0); }
};

WCQLLSC::Options slow_only(unsigned order) {
  WCQLLSC::Options o;
  o.order = order;
  o.enq_patience = 1;
  o.deq_patience = 1;
  o.help_delay = 1;
  return o;
}

TEST_F(WcqLlscTest, SequentialRoundTrips) {
  WCQLLSC q(4);
  for (u64 i = 0; i < 5000; ++i) {
    q.enqueue(i % q.capacity());
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST_F(WcqLlscTest, FifoOrder) {
  WCQLLSC q(6);
  for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
  for (u64 i = 0; i < q.capacity(); ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
}

TEST_F(WcqLlscTest, SlowPathWithSpuriousFailures) {
  // Weak LL/SC: every slow-path entry update can fail sporadically. The
  // paper requires only that wCQ tolerates weak-CAS semantics; exactness of
  // the delivered values is the check.
  LLSCSim::set_spurious_failure_rate(0.3);
  WCQLLSC q(slow_only(4));
  for (u64 i = 0; i < 2000; ++i) {
    q.enqueue(i % q.capacity());
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
}

void mpmc_count_test(WCQLLSC& q, unsigned producers, unsigned consumers,
                     u64 per_producer) {
  std::atomic<u64> consumed{0};
  std::atomic<i64> credits{static_cast<i64>(q.capacity())};
  const u64 total = per_producer * producers;
  std::vector<std::atomic<u64>> counts(producers);
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < producers; ++p) {
    ts.emplace_back([&, p] {
      for (u64 i = 0; i < per_producer; ++i) {
        while (credits.fetch_sub(1, std::memory_order_acquire) <= 0) {
          credits.fetch_add(1, std::memory_order_release);
          cpu_relax();
        }
        q.enqueue(p);
      }
    });
  }
  for (unsigned c = 0; c < consumers; ++c) {
    ts.emplace_back([&] {
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (auto v = q.dequeue()) {
          ASSERT_LT(*v, producers);
          counts[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
          credits.fetch_add(1, std::memory_order_release);
        } else {
          cpu_relax();
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  for (unsigned p = 0; p < producers; ++p) {
    EXPECT_EQ(counts[p].load(), per_producer) << "producer " << p;
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST_F(WcqLlscTest, MpmcExactCounts) {
  WCQLLSC q(9);
  mpmc_count_test(q, 4, 4, 20000);
}

TEST_F(WcqLlscTest, MpmcAllSlowPathTinyRing) {
  WCQLLSC q(slow_only(2));
  mpmc_count_test(q, 3, 3, 4000);
}

TEST_F(WcqLlscTest, MpmcWithInjectedScFailures) {
  LLSCSim::set_spurious_failure_rate(0.2);
  WCQLLSC q(slow_only(3));
  mpmc_count_test(q, 3, 3, 4000);
  EXPECT_GT(LLSCSim::injected_failures(), 0u);
}

TEST_F(WcqLlscTest, MpmcHeavyFailureRate) {
  LLSCSim::set_spurious_failure_rate(0.5);
  WCQLLSC q(slow_only(4));
  mpmc_count_test(q, 2, 2, 3000);
}

}  // namespace
}  // namespace wcq
