// Typed suite over the index rings (wCQ with CAS2, wCQ with simulated
// LL/SC, wCQ with native LL/SC where the ISA provides it, SCQ):
// ring-specific semantics every variant must share.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wcq_llsc.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

template <typename Ring>
class RingTypedTest : public ::testing::Test {};

// Named instantiations so CI can select backends by regex (the aarch64 job
// picks LL/SC rows with -R Llsc); the default Types<...>/0 indices can't.
class RingNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, WCQ>) {
      return "Wcq";
    } else if constexpr (std::is_same_v<T, WCQLLSC>) {
      return "WcqLlscSim";
    } else if constexpr (std::is_same_v<T, SCQ>) {
      return "Scq";
    } else {
      return "WcqLlscNative";
    }
  }
};

#if defined(WCQ_HAS_NATIVE_LLSC)
using RingTypes = ::testing::Types<WCQ, WCQLLSC, WCQLLSCNative, SCQ>;
#else
using RingTypes = ::testing::Types<WCQ, WCQLLSC, SCQ>;
#endif
TYPED_TEST_SUITE(RingTypedTest, RingTypes, RingNames);

TYPED_TEST(RingTypedTest, GeometryAndInitialState) {
  TypeParam q(5);
  EXPECT_EQ(q.capacity(), 32u);
  EXPECT_EQ(q.ring_size(), 64u);
  EXPECT_EQ(q.threshold(), -1);
  EXPECT_EQ(q.head(), q.tail());
  EXPECT_FALSE(q.dequeue().has_value());
}

TYPED_TEST(RingTypedTest, ThresholdLifecycle) {
  TypeParam q(4);
  // Enqueue resets the threshold to 3n-1; failed dequeues decay it below 0,
  // after which dequeue is a constant-time load (the Fig 11a property).
  q.enqueue(0);
  EXPECT_EQ(q.threshold(), static_cast<i64>(3 * q.capacity() - 1));
  ASSERT_TRUE(q.dequeue().has_value());
  for (u64 i = 0; i <= 4 * q.capacity(); ++i) {
    ASSERT_FALSE(q.dequeue().has_value());
  }
  EXPECT_LT(q.threshold(), 0);
  const u64 head_before = q.head();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(q.dequeue().has_value());
  }
  EXPECT_EQ(q.head(), head_before) << "empty dequeues still touched Head";
  // One enqueue revives the queue.
  q.enqueue(3);
  EXPECT_EQ(q.dequeue().value(), 3u);
}

TYPED_TEST(RingTypedTest, CountersAdvanceMonotonically) {
  TypeParam q(4);
  u64 last_tail = q.tail();
  for (int i = 0; i < 200; ++i) {
    q.enqueue(static_cast<u64>(i) % q.capacity());
    ASSERT_GE(q.tail(), last_tail);
    last_tail = q.tail();
    ASSERT_TRUE(q.dequeue().has_value());
  }
}

TYPED_TEST(RingTypedTest, InterleavedPartialDrains) {
  TypeParam q(4);
  u64 in = 0, out = 0;
  const u64 cap = q.capacity();
  // Saw-tooth occupancy: fill to k, drain to k/2, repeatedly, with exact
  // FIFO verification across many wraparounds.
  for (int round = 0; round < 400; ++round) {
    const u64 target = 1 + (static_cast<u64>(round) % cap);
    while (in - out < target) q.enqueue(in++ % cap);
    const u64 keep = target / 2;
    while (in - out > keep) {
      auto v = q.dequeue();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, out++ % cap);
    }
  }
  while (out < in) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, out++ % cap);
  }
}

TYPED_TEST(RingTypedTest, MpmcCountsExact) {
  TypeParam q(7);
  testing::run_mpmc_count_exact(q, 4, 4, 15000);
}

// Every ring now shares the DESIGN.md §7 bulk contract (SCQ gained it with
// the session-handle PR): spans insert everything, bulk dequeues preserve
// FIFO, and interleaving bulk with single ops keeps exact order.
TYPED_TEST(RingTypedTest, BulkAndSingleOpsInterleaveFifo) {
  TypeParam q(6);
  const u64 cap = q.capacity();
  u64 in[16], out[16];
  u64 next_in = 0, next_out = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t span = 1 + (static_cast<std::size_t>(round) % 16);
    for (std::size_t i = 0; i < span; ++i) in[i] = (next_in + i) % cap;
    q.enqueue_bulk(in, span);
    next_in += span;
    q.enqueue(next_in++ % cap);
    std::size_t got = 0;
    while (got < span) {
      const std::size_t k = q.dequeue_bulk(out + got, span - got);
      if (k == 0) break;
      got += k;
    }
    ASSERT_EQ(got, span);
    for (std::size_t i = 0; i < span; ++i) {
      ASSERT_EQ(out[i], next_out % cap);
      ++next_out;
    }
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, next_out++ % cap);
  }
  ASSERT_FALSE(q.dequeue().has_value());
}

// Explicit ring sessions: same FIFO contract through handle-taking ops.
TYPED_TEST(RingTypedTest, HandleOpsRoundTrip) {
  TypeParam q(5);
  auto h = q.handle();
  for (u64 i = 0; i < 4 * q.capacity(); ++i) {
    q.enqueue(h, i % q.capacity());
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
}

TYPED_TEST(RingTypedTest, EmptyDequeueStorm) {
  // Many threads hammering an empty ring must all observe empty and leave
  // the ring usable.
  TypeParam q(6);
  std::vector<std::thread> ts;
  std::atomic<u64> nonempty{0};
  for (int t = 0; t < 6; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        if (q.dequeue()) nonempty.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(nonempty.load(), 0u);
  q.enqueue(5);
  EXPECT_EQ(q.dequeue().value(), 5u);
}

}  // namespace
}  // namespace wcq
