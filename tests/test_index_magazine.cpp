// Per-thread free-index magazines (scale/index_magazine.hpp, DESIGN.md §9).
//
// The magazine layer relaxes BoundedQueue's "full" detection (fq empty is no
// longer authoritative — cached indices must be swept) and adds two new ways
// for an index to travel: a cross-thread steal at the full edge and a
// thread-exit flush back to fq. These tests pin the invariant all of that
// must preserve: every one of the queue's capacity() indices is exactly-once
// — reachable after any interleaving of caching, stealing, thread exit and
// queue reset, and never duplicated.
#include "scale/index_magazine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/bounded_queue.hpp"
#include "core/unbounded_queue.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {
namespace {

TEST(IndexMagazineUnit, DisabledSetIsInert) {
  IndexMagazines none;
  EXPECT_FALSE(none.enabled());
  EXPECT_EQ(none.capacity(), 0u);
  EXPECT_EQ(none.cached_total(), 0u);
  u64 buf[4];
  EXPECT_EQ(none.drain_tid(0, buf, 4), 0u);

  IndexMagazines zero(0, ThreadRegistry::kMaxThreads);
  EXPECT_FALSE(zero.enabled());
}

TEST(IndexMagazineUnit, PutTakeRoundTrip) {
  IndexMagazines mags(8, ThreadRegistry::kMaxThreads);
  ASSERT_TRUE(mags.enabled());
  for (u64 i = 0; i < 5; ++i) {
    ASSERT_TRUE(mags.try_put(100 + i));
  }
  EXPECT_EQ(mags.cached_total(), 5u);
  std::set<u64> got;
  u64 v;
  while (mags.try_take(v)) got.insert(v);
  EXPECT_EQ(got, (std::set<u64>{100, 101, 102, 103, 104}));
  EXPECT_EQ(mags.cached_total(), 0u);
  EXPECT_FALSE(mags.try_take(v));
}

TEST(IndexMagazineUnit, CapacityBound) {
  IndexMagazines mags(4, ThreadRegistry::kMaxThreads);
  for (u64 i = 0; i < 4; ++i) ASSERT_TRUE(mags.try_put(i));
  EXPECT_FALSE(mags.try_put(99)) << "a full magazine must reject puts";
  u64 buf[8];
  EXPECT_EQ(mags.take_some(buf, 8), 4u);
  EXPECT_TRUE(mags.try_put(99));
}

TEST(IndexMagazineUnit, ConfigCapacityClampsToMaxSlots) {
  IndexMagazines mags(1000, ThreadRegistry::kMaxThreads);
  EXPECT_EQ(mags.capacity(), IndexMagazines::kMaxSlots);
}

TEST(IndexMagazineUnit, StealTakesFromPeerNotSelf) {
  IndexMagazines mags(4, ThreadRegistry::kMaxThreads);
  // Our own cached indices are not steal targets (steal is the full-edge
  // path that runs after try_take already missed).
  ASSERT_TRUE(mags.try_put(7));
  u64 v;
  EXPECT_FALSE(mags.steal(v));
  ASSERT_TRUE(mags.try_take(v));

  // A parked peer's cached indices are.
  std::atomic<bool> parked{false}, release{false};
  std::thread peer([&] {
    ASSERT_TRUE(mags.try_put(41));
    ASSERT_TRUE(mags.try_put(42));
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
    }
    // Whatever main did not steal is still drainable by the owner.
    u64 rest[4];
    const std::size_t left = mags.take_some(rest, 4);
    EXPECT_EQ(left, 1u);
  });
  while (!parked.load(std::memory_order_acquire)) {
  }
  ASSERT_TRUE(mags.steal(v));
  EXPECT_TRUE(v == 41 || v == 42);
  release.store(true, std::memory_order_release);
  peer.join();
  EXPECT_EQ(mags.cached_total(), 0u);
}

TEST(IndexMagazineUnit, DrainTidCollectsEverySlot) {
  IndexMagazines mags(6, ThreadRegistry::kMaxThreads);
  unsigned peer_tid = 0;
  std::thread peer([&] {
    peer_tid = ThreadRegistry::tid();
    for (u64 i = 0; i < 6; ++i) ASSERT_TRUE(mags.try_put(i));
  });
  peer.join();
  u64 buf[IndexMagazines::kMaxSlots];
  const std::size_t got =
      mags.drain_tid(peer_tid, buf, IndexMagazines::kMaxSlots);
  EXPECT_EQ(got, 6u);
  EXPECT_EQ(mags.cached_total(), 0u);
}

// --- BoundedQueue integration ----------------------------------------------

TEST(BoundedMagazine, OptionsClampAndToggle) {
  // capacity/4 clamp: a 2^4 = 16-element queue gets at most 4 slots.
  BoundedQueue<u64> small(
      BoundedQueue<u64>::Options{4, {.enabled = true, .capacity = 64}});
  EXPECT_EQ(small.magazine_capacity(), 4u);
  // Tiny rings disable themselves (capacity/4 < 1).
  BoundedQueue<u64> tiny(BoundedQueue<u64>::Options{1, {}});
  EXPECT_EQ(tiny.magazine_capacity(), 0u);
  // Off reproduces the plain double ring.
  BoundedQueue<u64> off(
      BoundedQueue<u64>::Options{6, {.enabled = false, .capacity = 16}});
  EXPECT_EQ(off.magazine_capacity(), 0u);
  for (u64 i = 0; i < off.capacity(); ++i) ASSERT_TRUE(off.enqueue(i));
  EXPECT_FALSE(off.enqueue(0));
  EXPECT_EQ(off.magazine_cached(), 0u);
}

TEST(BoundedMagazine, FullSemanticsStayExact) {
  // The magazine-relaxed "full" must still be exact in quiescent state:
  // claim order is magazine -> fq -> reclaim steal, so a single thread sees
  // precisely capacity() successes.
  BoundedQueue<u64> q(BoundedQueue<u64>::Options{3, {}});
  for (u64 i = 0; i < q.capacity(); ++i) {
    EXPECT_TRUE(q.enqueue(i)) << "queue full too early at " << i;
  }
  EXPECT_FALSE(q.enqueue(999)) << "enqueue must fail when full";
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0u);
  // The freed index is cached in this thread's magazine, not in fq.
  EXPECT_TRUE(q.enqueue(999)) << "one slot freed: enqueue must succeed";
  EXPECT_FALSE(q.enqueue(1000));
}

TEST(BoundedMagazine, StealRecoversCachedIndicesAtFullEdge) {
  // A parked consumer holds freed indices in its magazine; a producer that
  // finds fq empty must reclaim them rather than report full (the relaxed
  // contract's "cached-but-unused indices cannot wedge the queue").
  BoundedQueue<u64> q(BoundedQueue<u64>::Options{4, {}});  // cap 16, mag 4
  ASSERT_EQ(q.magazine_capacity(), 4u);
  for (u64 i = 0; i < q.capacity(); ++i) ASSERT_TRUE(q.enqueue(i));

  std::atomic<bool> parked{false}, release{false};
  std::thread consumer([&] {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(q.dequeue().has_value());
    }
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
    }
  });
  while (!parked.load(std::memory_order_acquire)) {
  }
  // All free indices live in the parked consumer's magazine now.
  EXPECT_EQ(q.magazine_cached(), 3u);
  for (u64 i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.enqueue(100 + i)) << "steal must recover cached index " << i;
  }
  EXPECT_FALSE(q.enqueue(999)) << "after the steals the queue is truly full";
  release.store(true, std::memory_order_release);
  consumer.join();
}

TEST(BoundedMagazine, ExitHookFlushesDyingThreadsMagazine) {
  BoundedQueue<u64> q(BoundedQueue<u64>::Options{4, {}});  // cap 16, mag 4
  std::thread worker([&] {
    for (u64 i = 0; i < 8; ++i) ASSERT_TRUE(q.enqueue(i));
    for (u64 i = 0; i < 8; ++i) ASSERT_TRUE(q.dequeue().has_value());
    // The worker's magazine now caches freed indices...
    EXPECT_GT(q.magazine_cached(), 0u);
  });
  worker.join();
  // ...and its exit hook flushed them back to fq.
  EXPECT_EQ(q.magazine_cached(), 0u) << "exit flush did not run";
  for (u64 i = 0; i < q.capacity(); ++i) {
    ASSERT_TRUE(q.enqueue(i)) << "flushed index unreachable at " << i;
  }
  EXPECT_FALSE(q.enqueue(999));
}

TEST(BoundedMagazine, BulkPathsUseAndRefillMagazines) {
  BoundedQueue<u64> q(BoundedQueue<u64>::Options{6, {}});  // cap 64, mag 16
  const u64 n = q.capacity();
  std::vector<u64> in(n), out(n, ~u64{0});
  for (u64 i = 0; i < n; ++i) in[i] = i;
  EXPECT_EQ(q.enqueue_bulk(in.data(), n), n);
  EXPECT_EQ(q.dequeue_bulk(out.data(), n), n);
  for (u64 i = 0; i < n; ++i) ASSERT_EQ(out[i], i);
  // The bulk release topped the magazine up; bulk claim must use it again.
  EXPECT_GT(q.magazine_cached(), 0u);
  EXPECT_EQ(q.enqueue_bulk(in.data(), n), n);
  EXPECT_EQ(q.dequeue_bulk(out.data(), n), n);
  EXPECT_FALSE(q.dequeue().has_value());
}

int g_ledger_ctors = 0;
int g_ledger_dtors = 0;
struct LedgerPayload {
  int* canary;
  LedgerPayload() : canary(new int(42)) { ++g_ledger_ctors; }
  LedgerPayload(LedgerPayload&& o) noexcept : canary(o.canary) {
    ++g_ledger_ctors;
    o.canary = nullptr;
  }
  LedgerPayload(const LedgerPayload&) = delete;
  LedgerPayload& operator=(LedgerPayload&&) = delete;
  ~LedgerPayload() {
    delete canary;
    canary = nullptr;
    ++g_ledger_dtors;
  }
};

TEST(BoundedMagazine, DestructionExactlyOnceWithCachedIndices) {
  // Destroy a queue whose free indices are scattered across fq, a live
  // thread's magazine (flushed by exit) and this thread's magazine, with
  // payloads still in flight. Every constructed payload must be destroyed
  // exactly once (the heap canary turns a miss into an ASan report).
  g_ledger_ctors = 0;
  g_ledger_dtors = 0;
  {
    BoundedQueue<LedgerPayload> q(
        BoundedQueue<LedgerPayload>::Options{4, {}});  // cap 16, mag 4
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.enqueue(LedgerPayload{}));
    std::thread consumer([&] {
      for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.dequeue().has_value());
    });
    consumer.join();
    for (int i = 0; i < 2; ++i) ASSERT_TRUE(q.dequeue().has_value());
    ASSERT_GT(g_ledger_ctors, g_ledger_dtors) << "queue should be non-empty";
  }
  EXPECT_EQ(g_ledger_ctors, g_ledger_dtors)
      << "each constructed payload must be destroyed exactly once";
}

// Thread-churn exactness (the ISSUE 4 acceptance test): waves of short-lived
// threads cache and free indices mid-traffic; after quiesce the queue must
// still have exactly capacity() reachable indices — none leaked in a dead
// thread's magazine, none duplicated by the exit flush racing the sweep.
TEST(IndexMagazineChurnTest, ThreadWavesCapacityExactAfterQuiesce) {
  BoundedQueue<u64> q(BoundedQueue<u64>::Options{6, {}});  // cap 64, mag 16
  ASSERT_EQ(q.magazine_capacity(), 16u);
  for (int wave = 0; wave < 12; ++wave) {
    std::vector<std::thread> ts;
    for (int t = 0; t < 3; ++t) {
      ts.emplace_back([&, wave, t] {
        Xoshiro256 rng{static_cast<u64>(wave) * 31 + t + 1};
        for (int i = 0; i < 1500; ++i) {
          if (rng.coin()) {
            (void)q.enqueue(rng.next());  // full is fine mid-traffic
          } else {
            (void)q.dequeue();
          }
        }
      });
    }
    for (auto& t : ts) t.join();
  }
  // Quiesce: drain whatever the waves left behind.
  u64 drained = 0;
  while (q.dequeue().has_value()) ++drained;
  EXPECT_LE(drained, q.capacity());
  // Capacity exactness: every index is claimable, and not one more.
  for (u64 i = 0; i < q.capacity(); ++i) {
    ASSERT_TRUE(q.enqueue(i)) << "index leaked across thread churn at " << i;
  }
  EXPECT_FALSE(q.enqueue(999)) << "index duplicated across thread churn";
  for (u64 i = 0; i < q.capacity(); ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i) << "FIFO broken after churn";
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

// Flush-vs-reset race coverage: segment recycling resets BoundedQueues on
// the dequeue path while exiting threads flush magazines into the same
// segments — exactly the interleaving the per-queue flush lock serializes
// (DESIGN.md §9). Exactly-once accounting plus the post-quiesce FIFO drain
// catch a duplicated or lost index; tsan (CI picks) catches the race itself.
TEST(IndexMagazineChurnTest, SegmentRecycleUnderThreadChurn) {
  UnboundedQueue<u64>::Options opt;
  opt.segment_order = 3;  // 8/segment: constant finalize/recycle/reset
  UnboundedQueue<u64> q(opt);
  std::atomic<u64> enqueued{0}, dequeued{0};
  for (int wave = 0; wave < 10; ++wave) {
    std::vector<std::thread> ts;
    for (int t = 0; t < 3; ++t) {
      ts.emplace_back([&, wave, t] {
        Xoshiro256 rng{static_cast<u64>(wave) * 17 + t + 1};
        for (int i = 0; i < 1200; ++i) {
          if (rng.coin()) {
            ASSERT_TRUE(q.enqueue(rng.next()));
            enqueued.fetch_add(1, std::memory_order_relaxed);
          } else if (q.dequeue().has_value()) {
            dequeued.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : ts) t.join();
  }
  u64 drained = 0;
  while (q.dequeue().has_value()) ++drained;
  EXPECT_EQ(enqueued.load() - dequeued.load(), drained)
      << "element lost or duplicated across recycle/exit interleavings";
}

// --- UnboundedQueue integration --------------------------------------------

int g_copy_count = 0;
struct CopyCounter {
  u64 v = 0;
  CopyCounter() = default;
  explicit CopyCounter(u64 x) : v(x) {}
  CopyCounter(const CopyCounter& o) : v(o.v) { ++g_copy_count; }
  CopyCounter(CopyCounter&& o) noexcept : v(o.v) {}
  CopyCounter& operator=(const CopyCounter& o) {
    v = o.v;
    ++g_copy_count;
    return *this;
  }
  CopyCounter& operator=(CopyCounter&& o) noexcept {
    v = o.v;
    return *this;
  }
};

TEST(UnboundedMagazine, EnqueueChainMovesNotCopies) {
  // The old chain (T value -> Segment::enqueue(const T&) -> by-value ring
  // enqueue) copied every payload twice; the enqueue_movable chain must not
  // copy at all, including across segment finalize/append transitions.
  g_copy_count = 0;
  UnboundedQueue<CopyCounter> q(2);  // 4 elements/segment: constant appends
  for (u64 i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.enqueue(CopyCounter{i}));
  }
  EXPECT_EQ(g_copy_count, 0) << "unbounded enqueue copied a payload";
  for (u64 i = 0; i < 100; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(v->v, i);
  }
  EXPECT_EQ(g_copy_count, 0);
}

TEST(UnboundedMagazine, MoveOnlyPayload) {
  // Compiles only with the moving chain (unique_ptr has no copy ctor).
  UnboundedQueue<std::unique_ptr<u64>> q(2);
  for (u64 i = 0; i < 40; ++i) {
    ASSERT_TRUE(q.enqueue(std::make_unique<u64>(i)));
  }
  for (u64 i = 0; i < 40; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(**v, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(UnboundedMagazine, SegmentsStillFinalizeAndRecycle) {
  // Magazines must not delay segment finalization past exact capacity: a
  // fill/drain loop over small segments still recycles through the pool
  // (steady-state allocation-freedom is separately pinned by
  // SegmentRecyclingTypedTest.SteadyStateZeroAllocations, which runs with
  // the same default-enabled magazines).
  UnboundedQueue<u64>::Options opt;
  opt.segment_order = 4;
  ASSERT_TRUE(opt.magazine.enabled);
  UnboundedQueue<u64> q(opt);
  for (int round = 0; round < 50; ++round) {
    for (u64 i = 0; i < 64; ++i) ASSERT_TRUE(q.enqueue(i));
    for (u64 i = 0; i < 64; ++i) {
      auto v = q.dequeue();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, i);
    }
  }
  q.reclaim_flush();
  EXPECT_LT(q.live_segments(), 8u) << "segments not finalizing/unlinking";
  EXPECT_GT(q.pooled_segments(), 0u) << "segments not reaching the pool";
}

TEST(UnboundedMagazine, DisabledMagazineMatchesDefaultBehavior) {
  UnboundedQueue<u64>::Options opt;
  opt.segment_order = 3;
  opt.magazine.enabled = false;
  UnboundedQueue<u64> q(opt);
  for (u64 i = 0; i < 200; ++i) ASSERT_TRUE(q.enqueue(i));
  for (u64 i = 0; i < 200; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

}  // namespace
}  // namespace wcq
