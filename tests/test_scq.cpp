// SCQ (paper Fig 3) unit and concurrency tests.
#include "core/scq.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

TEST(Scq, StartsEmpty) {
  SCQ q(4);
  EXPECT_EQ(q.capacity(), 16u);
  EXPECT_EQ(q.ring_size(), 32u);
  EXPECT_EQ(q.threshold(), -1);
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Scq, SingleElementRoundTrip) {
  SCQ q(4);
  q.enqueue(7);
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Scq, FifoOrderWithinCapacity) {
  SCQ q(6);
  for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
  for (u64 i = 0; i < q.capacity(); ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Scq, ThresholdResetOnEnqueue) {
  SCQ q(4);
  q.enqueue(0);
  EXPECT_EQ(q.threshold(), static_cast<i64>(3 * q.capacity() - 1));
}

TEST(Scq, EmptyFastPathAfterDrain) {
  SCQ q(4);
  for (int round = 0; round < 3; ++round) {
    q.enqueue(1);
    ASSERT_TRUE(q.dequeue().has_value());
    // Drive the threshold negative with failed dequeues...
    for (u64 i = 0; i < 4 * q.capacity(); ++i) {
      ASSERT_FALSE(q.dequeue().has_value());
    }
    EXPECT_LT(q.threshold(), 0);
    // ...after which dequeue returns immediately without touching Head.
    const u64 head_before = q.head();
    EXPECT_FALSE(q.dequeue().has_value());
    EXPECT_EQ(q.head(), head_before);
  }
}

TEST(Scq, WraparoundManyCycles) {
  SCQ q(3);  // capacity 8, ring 16: many wraps below
  for (u64 i = 0; i < 10000; ++i) {
    q.enqueue(i % q.capacity());
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Scq, BurstWraparound) {
  SCQ q(5);
  const u64 cap = q.capacity();
  for (int round = 0; round < 300; ++round) {
    for (u64 i = 0; i < cap; ++i) q.enqueue(i);
    for (u64 i = 0; i < cap; ++i) {
      auto v = q.dequeue();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, i);
    }
    ASSERT_FALSE(q.dequeue().has_value());
  }
}

TEST(Scq, FullCapacityIsUsable) {
  // The ring holds 2n slots; all n logical indices may be enqueued at once.
  SCQ q(8);
  for (u64 i = 0; i < q.capacity(); ++i) q.enqueue(i);
  u64 count = 0;
  while (q.dequeue().has_value()) ++count;
  EXPECT_EQ(count, q.capacity());
}

TEST(Scq, BulkRoundTripPreservesFifo) {
  SCQ q(6);
  u64 in[48], out[48];
  for (u64 i = 0; i < 48; ++i) in[i] = i;
  q.enqueue_bulk(in, 48);
  std::size_t got = 0;
  while (got < 48) {
    const std::size_t k = q.dequeue_bulk(out + got, 48 - got);
    if (k == 0) break;
    got += k;
  }
  ASSERT_EQ(got, 48u);
  for (u64 i = 0; i < 48; ++i) ASSERT_EQ(out[i], i);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Scq, BulkSpanCostsOneFaa) {
  // The DESIGN.md §7 bulk contract SCQ now shares with BasicWCQ: one Tail
  // (resp. Head) F&A per span instead of one per element. Uncontended, so
  // the counter delta is deterministic.
  SCQ q(8);
  u64 in[32], out[32];
  for (u64 i = 0; i < 32; ++i) in[i] = i;
  const auto before_enq = opcount::snapshot();
  q.enqueue_bulk(in, 32);
  const auto after_enq = opcount::snapshot();
  EXPECT_EQ(after_enq.faa - before_enq.faa, 1u)
      << "bulk enqueue must reserve the whole span with one F&A";
  const auto before_deq = opcount::snapshot();
  const std::size_t got = q.dequeue_bulk(out, 32);
  const auto after_deq = opcount::snapshot();
  EXPECT_EQ(got, 32u);
  EXPECT_EQ(after_deq.faa - before_deq.faa, 1u)
      << "bulk dequeue must reserve the whole span with one F&A";
}

TEST(Scq, BulkDequeueOnEmptyBurnsNothing) {
  SCQ q(5);
  q.enqueue(1);
  ASSERT_TRUE(q.dequeue().has_value());
  // Decay the threshold to the empty fast-exit.
  for (u64 i = 0; i <= 4 * q.capacity(); ++i) {
    ASSERT_FALSE(q.dequeue().has_value());
  }
  const u64 head_before = q.head();
  u64 out[8];
  EXPECT_EQ(q.dequeue_bulk(out, 8), 0u);
  EXPECT_EQ(q.head(), head_before) << "empty bulk dequeue burned ranks";
}

TEST(Scq, RemapOffStillCorrect) {
  SCQ q(5, /*cache_remap=*/false);
  for (u64 i = 0; i < 2000; ++i) {
    q.enqueue(i % q.capacity());
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % q.capacity());
  }
}

// Count-based MPMC checks live in mpmc_harness.hpp (run_mpmc_count_exact).

TEST(Scq, MpmcExactCounts) {
  SCQ q(10);
  testing::run_mpmc_count_exact(q, 4, 4, 50000);
}

TEST(Scq, MpmcSmallRingHighContention) {
  SCQ q(3);  // capacity 8 with 6 threads: constant wraparound pressure
  testing::run_mpmc_count_exact(q, 3, 3, 30000);
}

TEST(Scq, MpmcManyConsumersOnEmptyish) {
  SCQ q(6);
  testing::run_mpmc_count_exact(q, 1, 7, 40000);
}

TEST(Scq, SpscPipeline) {
  SCQ q(4);
  const u64 kItems = testing::scale_items(200000);
  std::atomic<i64> credits{static_cast<i64>(q.capacity())};
  std::thread prod([&] {
    Backoff bo;
    for (u64 i = 0; i < kItems; ++i) {
      while (credits.fetch_sub(1, std::memory_order_acquire) <= 0) {
        credits.fetch_add(1, std::memory_order_release);
        bo.pause();
      }
      bo.reset();
      q.enqueue(i % q.capacity());
    }
  });
  u64 received = 0;
  u64 expect = 0;
  Backoff bo;
  while (received < kItems) {
    if (auto v = q.dequeue()) {
      ASSERT_EQ(*v, expect % q.capacity());  // SPSC preserves exact order
      ++expect;
      ++received;
      credits.fetch_add(1, std::memory_order_release);
      bo.reset();
    } else {
      bo.pause();
    }
  }
  prod.join();
  EXPECT_FALSE(q.dequeue().has_value());
}

}  // namespace
}  // namespace wcq
