// Native LL/SC backend suite (DESIGN.md §15, LLSC-NATIVE).
//
// Compiles on every ISA: the typed entry-ops suite always runs against the
// simulator, and additionally against LLSCNative (real LDAXP/STLXP) when the
// build is aarch64. The aarch64-qemu CI job is where the native rows
// actually execute; qemu-user implements STXP as a value comparison, so the
// split-API tests are deterministic there, while on real hardware the same
// assertions hold because every success check is written as a bounded retry
// (spurious monitor loss is legal; *persistent* success never arriving is
// the bug).
//
// Storm tests arm llsc_inject — the shared injection knob — so the same
// spurious-failure population exercises the simulator's CAS2 path and the
// native backend's genuine early-return-before-STXP path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/dwcas.hpp"
#include "core/wcq_llsc.hpp"
#include "mpmc_harness.hpp"
#include "portability/llsc_native.hpp"

namespace wcq {
namespace {

// The backend matrix the binary selected is part of every bench/CI result;
// pin the reporting strings so a stray edit can't silently rename a column.
TEST(NativeBackendMatrix, ReportsSelectedBackends) {
  const std::string llsc = llsc_backend_name();
  const std::string cas2 = dwcas_backend_name();
#if defined(WCQ_HAS_NATIVE_LLSC)
  EXPECT_EQ(llsc, "ldxp-stxp");
#else
  EXPECT_EQ(llsc, "sim-cas2");
#endif
  EXPECT_TRUE(cas2 == "cmpxchg16b" || cas2 == "lse-casp" ||
              cas2 == "__atomic")
      << cas2;
#if defined(__x86_64__) && !defined(WCQ_NO_INLINE_CAS2)
  EXPECT_EQ(cas2, "cmpxchg16b");
#endif
}

// ---- typed suite over the entry-op backends -------------------------------

template <typename Backend>
class LlscBackendTyped : public ::testing::Test {
 protected:
  void TearDown() override { llsc_inject::set_rate(0.0); }
};

class BackendNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, LLSCSim>) {
      return "Sim";
    } else {
      return "Native";
    }
  }
};

#if defined(WCQ_HAS_NATIVE_LLSC)
using BackendTypes = ::testing::Types<LLSCSim, LLSCNative>;
#else
using BackendTypes = ::testing::Types<LLSCSim>;
#endif
TYPED_TEST_SUITE(LlscBackendTyped, BackendTypes, BackendNames);

// CAS-shaped helpers the ring actually calls; success is retried because a
// native SC may fail spuriously even uncontended (monitor loss is legal).
template <typename Backend>
bool eventually_update_value(AtomicPair128& g, const Pair128& expected,
                             u64 new_value) {
  for (int i = 0; i < 1000; ++i) {
    if (BasicLlscEntryOps<Backend>::update_value(g, expected, new_value)) {
      return true;
    }
    // A failed attempt must not have mutated the granule.
    if (g.lo.load() != expected.lo || g.hi.load() != expected.hi) return false;
  }
  return false;
}

template <typename Backend>
bool eventually_update_note(AtomicPair128& g, const Pair128& expected,
                            u64 new_note) {
  for (int i = 0; i < 1000; ++i) {
    if (BasicLlscEntryOps<Backend>::update_note(g, expected, new_note)) {
      return true;
    }
    if (g.lo.load() != expected.lo || g.hi.load() != expected.hi) return false;
  }
  return false;
}

TYPED_TEST(LlscBackendTyped, UpdateValuePreservesNoteWord) {
  AtomicPair128 g;
  g.lo.store(11);
  g.hi.store(22);
  ASSERT_TRUE(eventually_update_value<TypeParam>(g, Pair128{11, 22}, 100));
  EXPECT_EQ(g.lo.load(), 100u);
  EXPECT_EQ(g.hi.load(), 22u);
}

TYPED_TEST(LlscBackendTyped, UpdateNotePreservesValueWord) {
  AtomicPair128 g;
  g.lo.store(7);
  g.hi.store(8);
  ASSERT_TRUE(eventually_update_note<TypeParam>(g, Pair128{7, 8}, 99));
  EXPECT_EQ(g.lo.load(), 7u);
  EXPECT_EQ(g.hi.load(), 99u);
}

TYPED_TEST(LlscBackendTyped, MismatchFailsWithoutMutating) {
  AtomicPair128 g;
  g.lo.store(5);
  g.hi.store(6);
  // Either word differing must fail — deterministically, on every backend:
  // the compare happens under the reservation before any store issues.
  EXPECT_FALSE(
      BasicLlscEntryOps<TypeParam>::update_value(g, Pair128{50, 6}, 1));
  EXPECT_FALSE(
      BasicLlscEntryOps<TypeParam>::update_value(g, Pair128{5, 60}, 1));
  EXPECT_FALSE(
      BasicLlscEntryOps<TypeParam>::update_note(g, Pair128{50, 60}, 1));
  EXPECT_EQ(g.lo.load(), 5u);
  EXPECT_EQ(g.hi.load(), 6u);
}

TYPED_TEST(LlscBackendTyped, SpuriousScInjectionFiresAndIsCounted) {
  AtomicPair128 g;
  g.lo.store(0);
  g.hi.store(0);
  llsc_inject::set_rate(0.5);
  const u64 injected_before = llsc_inject::injected();
  const u64 attempts_before = llsc_inject::attempts();
  constexpr int kTries = 4000;
  u64 next = 0;
  for (int i = 0; i < kTries; ++i) {
    if (BasicLlscEntryOps<TypeParam>::update_value(g, Pair128{next, 0},
                                                   next + 1)) {
      ++next;
    }
  }
  llsc_inject::set_rate(0.0);
  const u64 injected = llsc_inject::injected() - injected_before;
  const u64 attempts = llsc_inject::attempts() - attempts_before;
  // Every injected failure left the granule untouched: successes alone
  // advanced the counter.
  EXPECT_EQ(g.lo.load(), next);
  EXPECT_GE(attempts, static_cast<u64>(kTries));
  EXPECT_GT(injected, static_cast<u64>(kTries) / 4);
  EXPECT_LT(injected, 3 * static_cast<u64>(kTries) / 4);
}

TYPED_TEST(LlscBackendTyped, SpuriousScStormCountersStayExact) {
  // Concurrent LL/SC counters with a 30% injected failure rate: exactness
  // must be insensitive to spurious SC failure (real stxp early-outs on the
  // native backend, CAS2 snapshot misses on the simulator).
  AtomicPair128 g;
  g.lo.store(0);
  g.hi.store(0);
  llsc_inject::set_rate(0.3);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 8000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIncrements; ++i) {
        for (;;) {
          const Pair128 snap = dwload_atomic(g);
          const bool ok =
              (t % 2 == 0)
                  ? BasicLlscEntryOps<TypeParam>::update_value(g, snap,
                                                               snap.lo + 1)
                  : BasicLlscEntryOps<TypeParam>::update_note(g, snap,
                                                              snap.hi + 1);
          if (ok) break;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  llsc_inject::set_rate(0.0);
  EXPECT_EQ(g.lo.load() + g.hi.load(),
            static_cast<u64>(kThreads) * kIncrements);
}

#if defined(WCQ_HAS_NATIVE_LLSC)

// ---- split-API semantics, native only -------------------------------------
// Deterministic under qemu (value-comparison STXP); retry-wrapped where a
// real monitor could spuriously clear.

class LlscNativeSplit : public ::testing::Test {
 protected:
  void TearDown() override { llsc_inject::set_rate(0.0); }
};

TEST_F(LlscNativeSplit, LoadLinkedSnapshotsBothWords) {
  AtomicPair128 g;
  g.lo.store(11);
  g.hi.store(22);
  const Pair128 snap = LLSCNative::load_linked(g);
  EXPECT_EQ(snap.lo, 11u);
  EXPECT_EQ(snap.hi, 22u);
}

TEST_F(LlscNativeSplit, StoreConditionalEventuallySucceedsUntouched) {
  AtomicPair128 g;
  g.lo.store(1);
  g.hi.store(2);
  bool ok = false;
  for (int i = 0; i < 1000 && !ok; ++i) {
    LLSCNative::load_linked(g);
    ok = LLSCNative::store_conditional_lo(g, 100);
  }
  ASSERT_TRUE(ok);
  EXPECT_EQ(g.lo.load(), 100u);
  EXPECT_EQ(g.hi.load(), 2u);
}

TEST_F(LlscNativeSplit, ReservationIsSingleShot) {
  AtomicPair128 g;
  g.lo.store(1);
  g.hi.store(2);
  bool ok = false;
  for (int i = 0; i < 1000 && !ok; ++i) {
    LLSCNative::load_linked(g);
    ok = LLSCNative::store_conditional_lo(g, 10);
  }
  ASSERT_TRUE(ok);
  // Second SC without a fresh LL must fail — the software reservation is
  // consumed, and take_reservation issued no new LDAXP.
  EXPECT_FALSE(LLSCNative::store_conditional_lo(g, 20));
  EXPECT_EQ(g.lo.load(), 10u);
}

TEST_F(LlscNativeSplit, ScFailsOnWrongGranule) {
  AtomicPair128 a, b;
  a.lo.store(1);
  a.hi.store(1);
  b.lo.store(2);
  b.hi.store(2);
  LLSCNative::load_linked(a);
  EXPECT_FALSE(LLSCNative::store_conditional_lo(b, 9)) << "wrong granule";
  EXPECT_EQ(b.lo.load(), 2u);
}

TEST_F(LlscNativeSplit, InjectedFailureConsumesReservation) {
  AtomicPair128 g;
  g.lo.store(0);
  g.hi.store(0);
  llsc_inject::set_rate(1.0);
  LLSCNative::load_linked(g);
  EXPECT_FALSE(LLSCNative::store_conditional_lo(g, 1));
  llsc_inject::set_rate(0.0);
  // The injected failure cleared both the software reservation and (via
  // clrex) the hardware monitor: a retry without a fresh LL must also fail.
  EXPECT_FALSE(LLSCNative::store_conditional_lo(g, 1));
  EXPECT_EQ(g.lo.load(), 0u);
}

// ---- whole-ring exercise over the native backend ---------------------------

TEST(NativeBackendWcq, MpmcExactCountsUnderInjectedFailures) {
  llsc_inject::set_rate(0.3);
  WCQLLSCNative::Options o;
  o.order = 4;
  o.enq_patience = 1;  // slow path everywhere: all updates via native LL/SC
  o.deq_patience = 1;
  o.help_delay = 1;
  WCQLLSCNative q(o);
  testing::run_mpmc_count_exact(q, 3, 3, 3000);
  llsc_inject::set_rate(0.0);
}

TEST(NativeBackendWcq, SingleThreadFifoAcrossWraparound) {
  WCQLLSCNative q(4);
  const u64 cap = q.capacity();
  for (u64 i = 0; i < 6 * cap; ++i) {
    q.enqueue(i % cap);
    const auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i % cap);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

#endif  // WCQ_HAS_NATIVE_LLSC

}  // namespace
}  // namespace wcq
