// FIFO linearizability property checks on recorded concurrent histories.
//
// Each operation logs an (invocation, response) timestamp interval plus its
// kind and value (values are globally distinct). For FIFO queues with
// distinct values the following conditions are necessary for
// linearizability, and violations of any of them are definitive bugs:
//
//   L1  a dequeued value was enqueued, exactly once;
//   L2  deq(x) cannot respond before enq(x) was invoked;
//   L3  FIFO real-time order: if enq(x) responded before enq(y) was invoked
//       and both values are dequeued, deq(y) must not respond before deq(x)
//       was invoked;
//   L4  an empty-returning dequeue cannot run entirely inside a window in
//       which some value was provably present for the whole time
//       (enqueued-and-responded before the dequeue's invocation, dequeued
//       only after the dequeue's response).
//
// These are checked over histories from the wait-free BoundedQueue under
// several thread mixes, including slow-path-forced configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/backoff.hpp"
#include "common/cpu.hpp"
#include "core/bounded_queue.hpp"
#include "mpmc_harness.hpp"

namespace wcq {
namespace {

using Clock = std::chrono::steady_clock;

struct Op {
  enum Kind { kEnq, kDeqValue, kDeqEmpty } kind;
  u64 value = 0;
  Clock::time_point invoke;
  Clock::time_point response;
};

struct History {
  std::vector<std::vector<Op>> per_thread;

  std::vector<Op> merged() const {
    std::vector<Op> all;
    for (const auto& v : per_thread) {
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  }
};

template <typename Queue>
History record_history(Queue& q, unsigned producers, unsigned consumers,
                       u64 items_per_producer) {
  History h;
  h.per_thread.resize(producers + consumers);
  std::atomic<u64> consumed{0};
  // Scale down on small hosts only: the single-threaded
  // check_fifo_properties verifier is superlinear in history size (the L4
  // empty-window sampling scans the whole enqueue map), so an 8x history on
  // a many-core machine would pay its cost in the one-threaded check phase.
  const u64 per_producer =
      std::min(testing::scale_items(items_per_producer), items_per_producer);
  const u64 total = per_producer * producers;
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < producers; ++p) {
    ts.emplace_back([&, p] {
      auto& log = h.per_thread[p];
      log.reserve(per_producer);
      Backoff bo;
      while (!go.load(std::memory_order_acquire)) bo.pause();
      for (u64 i = 0; i < per_producer; ++i) {
        const u64 v = (static_cast<u64>(p) << 32) | i;
        Op op{Op::kEnq, v, Clock::now(), {}};
        bo.reset();
        while (!q.enqueue(v)) bo.pause();  // full: wait for consumers
        op.response = Clock::now();
        log.push_back(op);
      }
    });
  }
  for (unsigned c = 0; c < consumers; ++c) {
    ts.emplace_back([&, c] {
      auto& log = h.per_thread[producers + c];
      Backoff bo;
      while (!go.load(std::memory_order_acquire)) bo.pause();
      bo.reset();
      while (consumed.load(std::memory_order_relaxed) < total) {
        Op op{Op::kDeqEmpty, 0, Clock::now(), {}};
        const auto v = q.dequeue();
        op.response = Clock::now();
        if (v) {
          op.kind = Op::kDeqValue;
          op.value = *v;
          consumed.fetch_add(1, std::memory_order_relaxed);
          log.push_back(op);
          bo.reset();
        } else {
          if (log.size() < 200000) {
            log.push_back(op);  // bounded: empty results arrive in floods
          }
          bo.pause();  // empty: wait for producers
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();
  return h;
}

void check_fifo_properties(const History& h) {
  std::vector<Op> ops = h.merged();
  // Index enqueues and value-dequeues by value.
  std::unordered_map<u64, const Op*> enq, deq;
  std::vector<const Op*> empties;
  for (const auto& op : ops) {
    switch (op.kind) {
      case Op::kEnq:
        ASSERT_TRUE(enq.emplace(op.value, &op).second)
            << "duplicate enqueue of value " << op.value;
        break;
      case Op::kDeqValue:
        ASSERT_TRUE(deq.emplace(op.value, &op).second)
            << "value " << op.value << " dequeued twice (L1)";
        break;
      case Op::kDeqEmpty:
        empties.push_back(&op);
        break;
    }
  }
  // L1/L2.
  for (const auto& [v, d] : deq) {
    auto it = enq.find(v);
    ASSERT_NE(it, enq.end()) << "value " << v << " dequeued, never enqueued";
    ASSERT_GE(d->response.time_since_epoch().count(),
              it->second->invoke.time_since_epoch().count())
        << "deq(" << v << ") responded before enq was invoked (L2)";
  }
  // L3 over per-producer sequences (enqueues of one producer are strictly
  // ordered in real time, so pairwise checks along each sequence suffice to
  // catch reordering; cross-producer pairs are additionally sampled).
  for (const auto& thread_ops : h.per_thread) {
    const Op* prev = nullptr;
    for (const auto& op : thread_ops) {
      if (op.kind != Op::kEnq) continue;
      if (prev != nullptr) {
        auto dx = deq.find(prev->value);
        auto dy = deq.find(op.value);
        if (dx != deq.end() && dy != deq.end()) {
          ASSERT_FALSE(dy->second->response < dx->second->invoke)
              << "FIFO violated: later-enqueued " << op.value
              << " fully dequeued before earlier " << prev->value << " (L3)";
        }
      }
      prev = &op;
    }
  }
  // L4: sample empty dequeues against values provably present throughout.
  std::size_t checked = 0;
  for (const Op* e : empties) {
    if (++checked > 5000) break;  // bounded cost
    for (const auto& [v, enq_op] : enq) {
      auto d = deq.find(v);
      if (d == deq.end()) continue;
      if (enq_op->response < e->invoke && e->response < d->second->invoke) {
        FAIL() << "dequeue returned empty while value " << v
               << " was present for the whole operation (L4)";
      }
    }
  }
}

TEST(Linearizability, FastPathHistory) {
  // Magazines explicitly off: this suite pins the plain Fig 2 double-ring
  // behavior (the magazine-enabled analogues are below).
  BoundedQueue<u64> q(
      BoundedQueue<u64>::Options{8, {.enabled = false, .capacity = 0}});
  History h = record_history(q, 3, 3, 15000);
  check_fifo_properties(h);
}

TEST(Linearizability, MagazineFastPathHistory) {
  // Per-thread index magazines on (DESIGN.md §9): free indices recirculate
  // through thread-private caches and cross-thread steals instead of fq's
  // FIFO, which must be unobservable — L1 (exactly-once) catches a lost or
  // duplicated index, L2-L4 catch any ordering/emptiness leak through the
  // relaxed "full" contract.
  BoundedQueue<u64> q(BoundedQueue<u64>::Options{8, {}});
  ASSERT_GT(q.magazine_capacity(), 0u);
  History h = record_history(q, 3, 3, 15000);
  check_fifo_properties(h);
}

TEST(Linearizability, MagazineTinyQueueHistory) {
  // Tiny capacity forces the full edge constantly: every producer exercises
  // the refill-miss -> authoritative fq check -> reclaim-steal path while
  // consumers churn their magazines, the exact window in which the relaxed
  // "full" contract could lose or duplicate an element.
  BoundedQueue<u64> q(
      BoundedQueue<u64>::Options{4, {.enabled = true, .capacity = 4}});
  ASSERT_EQ(q.magazine_capacity(), 4u);
  History h = record_history(q, 3, 3, 8000);
  check_fifo_properties(h);
}

TEST(Linearizability, SlowPathForcedHistory) {
  // patience-1 rings inside a hand-rolled bounded queue.
  struct Slow {
    WCQ aq, fq;
    std::vector<u64> data;
    explicit Slow(unsigned order)
        : aq(opts(order)), fq(opts(order)), data(u64{1} << order) {
      for (u64 i = 0; i < data.size(); ++i) fq.enqueue(i);
    }
    static WCQ::Options opts(unsigned order) {
      WCQ::Options o;
      o.order = order;
      o.enq_patience = 1;
      o.deq_patience = 1;
      o.help_delay = 1;
      return o;
    }
    bool enqueue(u64 v) {
      auto idx = fq.dequeue();
      if (!idx) return false;
      data[*idx] = v;
      aq.enqueue(*idx);
      return true;
    }
    std::optional<u64> dequeue() {
      auto idx = aq.dequeue();
      if (!idx) return std::nullopt;
      const u64 v = data[*idx];
      fq.enqueue(*idx);
      return v;
    }
  };
  Slow q(6);
  History h = record_history(q, 3, 3, 5000);
  check_fifo_properties(h);
}

TEST(Linearizability, AsymmetricHistory) {
  BoundedQueue<u64> q(6);
  History h = record_history(q, 6, 2, 8000);
  check_fifo_properties(h);
}

}  // namespace
}  // namespace wcq
