#include "common/alloc_meter.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wcq {
namespace {

TEST(AllocMeter, LiveBytesTrackAllocations) {
  const auto before = alloc_meter::live_bytes();
  void* a = alloc_meter::allocate(1000);
  void* b = alloc_meter::allocate(24);
  EXPECT_EQ(alloc_meter::live_bytes() - before, 1024);
  alloc_meter::deallocate(a, 1000);
  EXPECT_EQ(alloc_meter::live_bytes() - before, 24);
  alloc_meter::deallocate(b, 24);
  EXPECT_EQ(alloc_meter::live_bytes() - before, 0);
}

TEST(AllocMeter, PeakIsMonotoneUntilReset) {
  alloc_meter::reset_peak();
  const auto base = alloc_meter::peak_bytes();
  void* a = alloc_meter::allocate(1 << 20);
  EXPECT_GE(alloc_meter::peak_bytes(), base + (1 << 20));
  alloc_meter::deallocate(a, 1 << 20);
  EXPECT_GE(alloc_meter::peak_bytes(), base + (1 << 20));  // peak sticks
  alloc_meter::reset_peak();
  EXPECT_LT(alloc_meter::peak_bytes(), base + (1 << 20));
}

TEST(AllocMeter, CreateDestroyRunConstructors) {
  struct Obj {
    int* target;
    explicit Obj(int* t) : target(t) { *target = 1; }
    ~Obj() { *target = 2; }
  };
  int flag = 0;
  Obj* o = alloc_meter::create<Obj>(&flag);
  EXPECT_EQ(flag, 1);
  alloc_meter::destroy(o);
  EXPECT_EQ(flag, 2);
}

TEST(AllocMeter, MeteredAllocatorWithVector) {
  const auto before = alloc_meter::live_bytes();
  {
    std::vector<int, alloc_meter::MeteredAllocator<int>> v;
    v.resize(10000);
    EXPECT_GE(alloc_meter::live_bytes() - before,
              static_cast<std::int64_t>(10000 * sizeof(int)));
  }
  EXPECT_EQ(alloc_meter::live_bytes() - before, 0);
}

TEST(AllocMeter, ConcurrentAccountingBalances) {
  const auto before = alloc_meter::live_bytes();
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        void* p = alloc_meter::allocate(64);
        alloc_meter::deallocate(p, 64);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(alloc_meter::live_bytes() - before, 0);
}

}  // namespace
}  // namespace wcq
