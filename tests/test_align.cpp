#include "common/align.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

namespace wcq {
namespace {

TEST(Align, CacheAlignedOccupiesFullLine) {
  EXPECT_EQ(sizeof(CacheAligned<std::uint32_t>), kCacheLine);
  EXPECT_EQ(sizeof(CacheAligned<std::uint64_t>), kCacheLine);
  EXPECT_EQ(alignof(CacheAligned<std::uint64_t>), kCacheLine);
  struct Big {
    char b[80];
  };
  EXPECT_EQ(sizeof(CacheAligned<Big>), 2 * kCacheLine);
}

TEST(Align, AlignedArrayAlignment) {
  AlignedArray<std::atomic<std::uint64_t>> a(1000, kCacheLine);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % kCacheLine, 0u);
  EXPECT_EQ(a.size(), 1000u);
  a[0].store(42);
  a[999].store(7);
  EXPECT_EQ(a[0].load(), 42u);
  EXPECT_EQ(a[999].load(), 7u);
}

int g_counted_live = 0;
struct Counted {
  Counted() { ++g_counted_live; }
  ~Counted() { --g_counted_live; }
};

TEST(Align, AlignedArrayConstructsElements) {
  {
    AlignedArray<Counted> a(17, 64);
    EXPECT_EQ(g_counted_live, 17);
  }
  EXPECT_EQ(g_counted_live, 0);
}

TEST(Align, AlignedArrayMove) {
  AlignedArray<int> a(8, 64);
  a[3] = 99;
  AlignedArray<int> b(std::move(a));
  EXPECT_EQ(b[3], 99);
  EXPECT_EQ(a.data(), nullptr);
  AlignedArray<int> c;
  c = std::move(b);
  EXPECT_EQ(c[3], 99);
}

TEST(Align, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(63));
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(65536), 16u);
}

TEST(Align, RoundUp) {
  EXPECT_EQ((AlignedArray<int>::round_up(0, 64)), 0u);
  EXPECT_EQ((AlignedArray<int>::round_up(1, 64)), 64u);
  EXPECT_EQ((AlignedArray<int>::round_up(64, 64)), 64u);
  EXPECT_EQ((AlignedArray<int>::round_up(65, 64)), 128u);
}

}  // namespace
}  // namespace wcq
