// ShardedQueue (src/scale/, DESIGN.md §7) tests.
//
// The composition's contract is weaker than a single queue's — no global
// FIFO across shards — so the checks split into:
//   * exactly-once under MPMC traffic (the count-style harness guarantee),
//   * per-shard FIFO: items that went through one shard stay in per-producer
//     order inside it,
//   * sweep semantics: emptiness/fullness only after a full steal sweep,
//   * batch partial-success semantics at the full/empty edges.
#include "scale/sharded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "mpmc_harness.hpp"
#include "runtime/thread_registry.hpp"

namespace wcq {
namespace {

TEST(ShardedQueue, ShardCountRoundsUpToPowerOfTwo) {
  ShardedQueue<u64> q3(3, 4);
  EXPECT_EQ(q3.shard_count(), 4u);
  ShardedQueue<u64> q0(0, 4);
  EXPECT_EQ(q0.shard_count(), 1u);
  ShardedQueue<u64> q8(8, 4);
  EXPECT_EQ(q8.shard_count(), 8u);
  EXPECT_EQ(q8.capacity(), 8u * q8.shard(0).capacity());
}

TEST(ShardedQueue, SingleThreadFifo) {
  // One thread keeps one home shard, so single-threaded use is strict FIFO.
  ShardedQueue<u64> q(4, 6);
  testing::run_sequential_fifo(q, q.shard(0).capacity());
}

TEST(ShardedQueue, SingleThreadWraparound) {
  ShardedQueue<u64> q(2, 4);
  testing::run_sequential_wraparound(q, q.shard(0).capacity(), 100);
}

TEST(ShardedQueue, SpillsToOtherShardsWhenHomeFull) {
  ShardedQueue<u64> q(4, 3);
  // A single thread can fill the ENTIRE composition: once home is full the
  // sweep spills to the other shards; enqueue fails only when all are full.
  for (u64 i = 0; i < q.capacity(); ++i) {
    ASSERT_TRUE(q.enqueue(i)) << "spill failed at " << i;
  }
  EXPECT_FALSE(q.enqueue(999)) << "all shards full: enqueue must fail";
  // Everything is retrievable (home + steal sweep), exactly once.
  std::vector<bool> seen(q.capacity(), false);
  for (u64 i = 0; i < q.capacity(); ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_LT(*v, q.capacity());
    ASSERT_FALSE(seen[*v]);
    seen[*v] = true;
  }
  EXPECT_FALSE(q.dequeue().has_value()) << "empty only after full sweep";
}

TEST(ShardedQueue, StealFindsElementFromForeignShard) {
  ShardedQueue<u64> q(8, 4);
  // Plant one element in every shard directly; a consumer thread (whatever
  // its home shard) must find all of them via the steal sweep.
  for (unsigned s = 0; s < q.shard_count(); ++s) {
    ASSERT_TRUE(q.shard(s).enqueue(u64{s} + 100));
  }
  std::thread consumer([&] {
    std::vector<bool> found(q.shard_count(), false);
    for (unsigned s = 0; s < q.shard_count(); ++s) {
      auto v = q.dequeue();
      ASSERT_TRUE(v.has_value()) << "steal sweep missed an element";
      found[*v - 100] = true;
    }
    for (unsigned s = 0; s < q.shard_count(); ++s) EXPECT_TRUE(found[s]);
    EXPECT_FALSE(q.dequeue().has_value());
  });
  consumer.join();
}

TEST(ShardedQueue, BulkPartialSuccessAtFullAndEmpty) {
  ShardedQueue<u64> q(2, 3);  // capacity 16 total
  std::vector<u64> in(q.capacity() + 5);
  for (u64 i = 0; i < in.size(); ++i) in[i] = i;
  // Overfilling span: exactly capacity() accepted, the tail rejected.
  EXPECT_EQ(q.enqueue_bulk(in.data(), in.size()), q.capacity());
  EXPECT_FALSE(q.enqueue(777));
  // Over-draining span: exactly capacity() returned.
  std::vector<u64> out(in.size(), ~u64{0});
  const std::size_t got = q.dequeue_bulk(out.data(), out.size());
  EXPECT_EQ(got, q.capacity());
  std::vector<bool> seen(q.capacity(), false);
  for (std::size_t i = 0; i < got; ++i) {
    ASSERT_LT(out[i], q.capacity());
    ASSERT_FALSE(seen[out[i]]);
    seen[out[i]] = true;
  }
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_EQ(q.dequeue_bulk(out.data(), 4), 0u) << "bulk dequeue on empty";
}

TEST(ShardedQueue, MoveOnlyPayload) {
  ShardedQueue<std::unique_ptr<int>, WCQ> q(2, 3);
  ASSERT_TRUE(q.enqueue(std::make_unique<int>(7)));
  // Fill home so a later enqueue must spill: ownership must survive the
  // failed enqueue_movable attempts along the sweep.
  while (q.enqueue(std::make_unique<int>(0))) {
  }
  u64 drained = 0;
  while (q.dequeue()) ++drained;
  EXPECT_EQ(drained, q.capacity());
}

// ---- multi-threaded (stress tier via the *Mpmc* name pattern) -------------

TEST(ShardedQueueMpmc, ExactlyOnceFourPlusThreads) {
  ShardedQueue<u64> q(4, 10);
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  cfg.items_per_producer = 20000;
  // Exactly-once holds globally; FIFO does not cross shards.
  testing::run_mpmc_exactly_once(q, cfg, /*check_fifo=*/false);
}

TEST(ShardedQueueMpmc, ExactlyOnceTinyShardsBackpressure) {
  ShardedQueue<u64> q(4, 2);  // 16 slots total: constant spill + steal
  testing::MpmcConfig cfg;
  cfg.producers = 3;
  cfg.consumers = 3;
  cfg.items_per_producer = 8000;
  testing::run_mpmc_exactly_once(q, cfg, /*check_fifo=*/false);
}

TEST(ShardedQueueMpmc, BulkExactlyOnce) {
  ShardedQueue<u64> q(4, 9);
  testing::MpmcConfig cfg;
  cfg.producers = 4;
  cfg.consumers = 4;
  cfg.items_per_producer = 16000;
  testing::run_mpmc_bulk_exactly_once(q, cfg, /*max_batch=*/16,
                                      /*check_fifo=*/false);
}

TEST(ShardedQueueMpmc, PerShardFifoFourProducers) {
  // Producers stamp (producer, seq) tags; after the run each shard is
  // drained directly and every producer's sequence must be increasing
  // WITHIN that shard — the ordering contract the front-end does promise.
  ShardedQueue<u64> q(4, 12);
  constexpr unsigned kProducers = 4;
  // Spill is fine: a sequential producer's items land in each shard in
  // program order no matter how the sweep routes them, so the per-shard
  // check holds with or without overflow into neighbors. When the scaled
  // item count outgrows the composition a concurrent drainer makes room,
  // checking the same property on the prefix it consumes.
  const u64 per_producer = testing::scale_items(20000);
  const bool fits = kProducers * per_producer <= q.capacity() / 2;
  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::atomic<u64> drained_during{0};
  std::thread drainer;  // only needed when the items outgrow the capacity
  std::map<unsigned, std::map<unsigned, u64>> drain_last;  // shard -> p -> seq
  if (!fits) {
    drainer = std::thread([&] {
      // Drain from each shard directly (not via the sweep) so the per-shard
      // FIFO property can be checked on the fly for the drained prefix.
      Backoff bo;
      while (!done.load(std::memory_order_acquire)) {
        bool any = false;
        for (unsigned s = 0; s < q.shard_count(); ++s) {
          if (auto v = q.shard(s).dequeue()) {
            const unsigned p = static_cast<unsigned>(*v >> 32);
            const u64 seq = *v & 0xFFFFFFFFu;
            auto& last = drain_last[s];
            const auto it = last.find(p);
            if (it != last.end()) {
              ASSERT_GT(seq, it->second) << "per-shard FIFO (drain) shard "
                                         << s << " producer " << p;
            }
            last[p] = seq;
            drained_during.fetch_add(1, std::memory_order_relaxed);
            any = true;
          }
        }
        if (any) {
          bo.reset();
        } else {
          bo.pause();
        }
      }
    });
  }
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      Backoff bo;
      while (!start.load(std::memory_order_acquire)) bo.pause();
      for (u64 i = 0; i < per_producer; ++i) {
        bo.reset();
        while (!q.enqueue(testing::tag(p, i))) bo.pause();
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();
  done.store(true, std::memory_order_release);
  if (drainer.joinable()) drainer.join();

  u64 total = drained_during.load();
  for (unsigned s = 0; s < q.shard_count(); ++s) {
    std::map<unsigned, u64> last_seq;
    while (auto v = q.shard(s).dequeue()) {
      const unsigned p = static_cast<unsigned>(*v >> 32);
      const u64 seq = *v & 0xFFFFFFFFu;
      ASSERT_LT(p, kProducers);
      const auto it = last_seq.find(p);
      if (it != last_seq.end()) {
        ASSERT_GT(seq, it->second)
            << "per-shard FIFO violated in shard " << s << " producer " << p;
      }
      last_seq[p] = seq;
      ++total;
    }
  }
  EXPECT_EQ(total, kProducers * per_producer);
  EXPECT_FALSE(q.dequeue().has_value());
}

// ---- Mode::kPipeline (DESIGN.md §13): MPSC shards, owning consumers ----

using PipelineQueue = ShardedQueue<u64, MpscRing>;

PipelineQueue::Options pipeline_options(unsigned shards,
                                        unsigned shard_order) {
  PipelineQueue::Options o;
  o.shards = shards;
  o.shard_order = shard_order;
  o.mode = PipelineQueue::Mode::kPipeline;
  return o;
}

TEST(ShardedQueue, PipelineSingleConsumerDrainsAllShards) {
  // One consumer session per shard, all held by this thread: everything a
  // producer spread across the shards is retrievable through the owning
  // sessions, exactly once.
  PipelineQueue q(pipeline_options(4, 6));  // 4 x 64: room for all 200
  std::vector<PipelineQueue::Handle> own;
  for (unsigned s = 0; s < q.shard_count(); ++s) {
    own.push_back(q.acquire_consumer(s));
  }
  for (u64 i = 0; i < 200; ++i) ASSERT_TRUE(q.enqueue(i));
  std::vector<bool> seen(200, false);
  u64 got = 0;
  while (got < 200) {
    bool any = false;
    for (auto& h : own) {
      while (auto v = q.dequeue(h)) {
        ASSERT_LT(*v, 200u);
        ASSERT_FALSE(seen[*v]) << "duplicate delivery";
        seen[*v] = true;
        ++got;
        any = true;
      }
    }
    ASSERT_TRUE(any) << "shards empty with items missing";
  }
  for (auto& h : own) EXPECT_FALSE(q.dequeue(h).has_value());
}

TEST(ShardedQueue, PipelineConsumerSweepIsPinnedToItsShard) {
  // An owning-consumer session drains exactly its shard — no steal sweep —
  // so a neighbour shard's item is invisible to it.
  PipelineQueue q(pipeline_options(2, 5));
  auto c0 = q.acquire_consumer(0);
  auto c1 = q.acquire_consumer(1);
  ASSERT_TRUE(c0.is_consumer());
  q.shard(1).enqueue(77);
  EXPECT_FALSE(q.dequeue(c0).has_value())
      << "consumer 0 stole from shard 1";
  EXPECT_EQ(q.dequeue(c1).value(), 77u);
}

TEST(ShardedQueue, PipelineConcurrentProducersExactlyOnce) {
  // The bench adapter's shape: hashing producers (implicit sessions, spill
  // sweep producer-side) against per-shard owning consumers on dedicated
  // threads, exact delivery counts.
  PipelineQueue q(pipeline_options(4, 6));
  constexpr unsigned kProducers = 4;
  const u64 per_producer = testing::scale_items(20000);
  const u64 total = kProducers * per_producer;
  std::atomic<u64> consumed{0};
  std::vector<std::atomic<u64>> counts(kProducers);
  std::vector<std::thread> ts;
  for (unsigned s = 0; s < q.shard_count(); ++s) {
    ts.emplace_back([&, s] {
      auto h = q.acquire_consumer(s);
      Backoff bo;
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (auto v = q.dequeue(h)) {
          counts[static_cast<unsigned>(*v >> 32)].fetch_add(
              1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
          bo.reset();
        } else {
          bo.pause();
        }
      }
      EXPECT_FALSE(q.dequeue(h).has_value());
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      Backoff bo;
      for (u64 i = 0; i < per_producer; ++i) {
        bo.reset();
        while (!q.enqueue(testing::tag(p, i))) bo.pause();
      }
    });
  }
  for (auto& t : ts) t.join();
  for (unsigned p = 0; p < kProducers; ++p) {
    EXPECT_EQ(counts[p].load(), per_producer) << "producer " << p;
  }
}

TEST(ShardedQueue, PipelineModeStillAcceptsProducerHandles) {
  // acquire() handles remain valid for the enqueue side in pipeline mode.
  PipelineQueue q(pipeline_options(2, 5));
  auto p = q.acquire();
  auto c0 = q.acquire_consumer(0);
  auto c1 = q.acquire_consumer(1);
  ASSERT_FALSE(p.is_consumer());
  for (u64 i = 0; i < 32; ++i) ASSERT_TRUE(q.enqueue(p, i));
  u64 got = 0;
  while (q.dequeue(c0).has_value() || q.dequeue(c1).has_value()) ++got;
  EXPECT_EQ(got, 32u);
}

#if defined(__SANITIZE_THREAD__)
#define WCQ_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "death tests fork; skipped under TSan"
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WCQ_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "death tests fork; skipped under TSan"
#else
#define WCQ_SKIP_UNDER_TSAN() (void)0
#endif
#else
#define WCQ_SKIP_UNDER_TSAN() (void)0
#endif

TEST(ShardedQueueDeathTest, PipelineDequeueWithoutConsumerSessionTraps) {
  WCQ_SKIP_UNDER_TSAN();
  EXPECT_DEATH(
      {
        PipelineQueue q(pipeline_options(2, 5));
        q.enqueue(1);
        (void)q.dequeue();  // implicit dequeue in pipeline mode: diagnosed
      },
      "acquire_consumer");
}

TEST(ShardedQueueDeathTest, PipelineSecondConsumerOnOneShardTraps) {
  WCQ_SKIP_UNDER_TSAN();
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        PipelineQueue q(pipeline_options(2, 5));
        auto c = q.acquire_consumer(0);
        q.enqueue(1);
        while (!q.dequeue(c).has_value()) {
        }  // binds this thread to shard 0's ring
        std::thread([&] {
          auto c2 = q.acquire_consumer(0);  // second owner of shard 0
          q.enqueue(2);
          while (!q.dequeue(c2).has_value()) {
          }
        }).join();
      },
      "second consumer session");
}

}  // namespace
}  // namespace wcq
