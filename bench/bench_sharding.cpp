// Sharded front-end sweep (src/scale/, DESIGN.md §7): how the sharded
// wCQ composition scales with shard count, and what the batch path buys.
//
//   S1  shard-count sweep on the burst workload — bursty occupancy with
//       backpressure, the traffic shape the sharded front-end targets; the
//       plain wCQ ring is the 1-shard baseline.
//   S2  batch-vs-single on the p5050 workload — the bulk paths amortize the
//       ring F&A and threshold traffic, so batch >= 8 should sit at or
//       above the single-op series for the same queue.
//
// Flags as the other drivers, plus --batch=N (default 8 here) and
// WCQ_BENCH_SHARDS / WCQ_BENCH_SHARD_ORDER for the sharded defaults.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/adapters.hpp"
#include "harness/runner.hpp"

namespace wcq::bench {
namespace {

template <typename Adapter>
Series run_named(const BenchParams& p, std::string name) {
  Series s;
  s.name = std::move(name);
  for (unsigned t : p.thread_counts) {
    std::fprintf(stderr, "  [%s] %u thread(s)...\n", s.name.c_str(), t);
    s.points.push_back(measure_point<Adapter>(p, t));
  }
  return s;
}

void run_sharding(BenchParams p, bool batch_explicit) {
  // This driver exists for the batch path, so an *unset* batch defaults to
  // 8; an explicit --batch=1 / WCQ_BENCH_BATCH=1 is honored (single-op
  // sweep).
  if (p.batch <= 1 && !batch_explicit) p.batch = 8;
  JsonReport report;

  // S1: shard sweep, burst workload, batch path on.
  {
    BenchParams q = p;
    q.workload = Workload::kBurst;
    print_preamble("Sharding S1",
                   "shard-count sweep, burst workload (batch path)", q);
    std::printf("# batch=%u shard_order=%u\n", q.batch,
                sharded_shard_order());
    std::vector<Series> series;
    series.push_back(run_named<WcqAdapter>(q, "wCQ-ring"));
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
      g_sharded_shards = shards;
      series.push_back(run_named<ShardedAdapter>(
          q, "shards=" + std::to_string(shards)));
    }
    g_sharded_shards = 0;
    print_throughput_table(series, q.thread_counts);
    print_cv_note(series);
    report.add_panel("S1 shard sweep (burst)", q, series);
    std::printf("\n");
  }

  // S2: batch path vs single-op on p5050 (the accounting-honest comparison:
  // both series report executed ops, see harness/measure.hpp).
  {
    BenchParams q = p;
    q.workload = Workload::kP5050;
    print_preamble("Sharding S2", "batch vs single-op, p5050 workload", q);
    BenchParams single = q;
    single.batch = 1;
    Series wcq_single = run_named<WcqAdapter>(single, "wCQ batch=1");
    Series sharded_single =
        run_named<ShardedAdapter>(single, "Sharded batch=1");
    std::vector<Series> series;
    series.push_back(wcq_single);
    series.push_back(sharded_single);
    if (q.batch > 1) {
      series.push_back(run_named<WcqAdapter>(
          q, "wCQ batch=" + std::to_string(q.batch)));
      series.push_back(run_named<ShardedAdapter>(
          q, "Sharded batch=" + std::to_string(q.batch)));
    }
    print_throughput_table(series, q.thread_counts);
    print_cv_note(series);
    report.add_panel("S2 batch vs single (p5050)", q, series);
    // The mixed panel above carries q.batch; record the single-op baseline
    // under its own batch=1 params so the JSON is self-describing.
    report.add_panel("S2 single-op baseline (p5050)", single,
                     {wcq_single, sharded_single});
  }

  if (!p.json_path.empty()) report.write(p.json_path);
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  wcq::bench::BenchParams p = wcq::bench::BenchParams::parse(argc, argv);
  bool batch_explicit = std::getenv("WCQ_BENCH_BATCH") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--batch=", 8) == 0) batch_explicit = true;
  }
  wcq::bench::run_sharding(p, batch_explicit);
  return 0;
}
