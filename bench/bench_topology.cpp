// Topology placement sweep (src/common/topology.hpp, DESIGN.md §12): what
// the pin policy does to the sharded front-end's throughput and to where
// its operations complete.
//
//   T1  pin-policy sweep on the p5050 workload — the same sharded queue
//       measured under rr, compact, scatter and node:0 placement. Per-node
//       Mops show where the work ran; the remote-steal column shows how
//       often payload crossed the interconnect. Under node:0 every worker
//       homes on a node-0 shard and the other nodes' shards are never
//       populated, so remote steals are exactly 0 — the deterministic
//       property bench/check_topology.py gates CI on (it holds on the
//       1-core runner because WCQ_TOPOLOGY simulates the 2-node shape and
//       placement flows through the thread-node override, not real
//       affinity).
//
// Flags as the other drivers; --pin-policy sets the *default* series and is
// otherwise superseded by the per-series policies below. Run under
// WCQ_TOPOLOGY="0-1;2-3" to see the multi-node behavior on any host.
#include <cstdio>
#include <string>
#include <vector>

#include "common/topology.hpp"
#include "harness/adapters.hpp"
#include "harness/runner.hpp"

namespace wcq::bench {
namespace {

template <typename Adapter>
Series run_named(const BenchParams& p, std::string name) {
  Series s;
  s.name = std::move(name);
  for (unsigned t : p.thread_counts) {
    std::fprintf(stderr, "  [%s] %u thread(s)...\n", s.name.c_str(), t);
    s.points.push_back(measure_point<Adapter>(p, t));
  }
  return s;
}

void run_topology(BenchParams p) {
  const Topology& topo = Topology::instance();
  JsonReport report;

  BenchParams q = p;
  q.workload = Workload::kP5050;
  print_preamble("Topology T1",
                 "pin-policy sweep, p5050 workload, sharded front-end", q);
  std::printf("# topology: %u node(s), %u cpu(s)%s, shards=%u\n",
              topo.node_count(), topo.cpu_count(),
              topo.simulated() ? " (simulated via WCQ_TOPOLOGY)" : "",
              sharded_shard_count());

  std::vector<std::string> policies = {"rr", "compact", "scatter", "node:0"};
  std::vector<Series> series;
  for (const auto& pol : policies) {
    BenchParams r = q;
    r.pin_policy = pol;
    series.push_back(run_named<ShardedAdapter>(r, "Sharded " + pol));
  }
  print_throughput_table(series, q.thread_counts);
  print_node_table(series, q.thread_counts);
  print_cv_note(series);
  report.add_panel("T1 pin-policy sweep (p5050, sharded)", q, series);

  if (!p.json_path.empty()) report.write(p.json_path);
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  wcq::bench::run_topology(wcq::bench::BenchParams::parse(argc, argv));
  return 0;
}
