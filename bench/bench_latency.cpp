// Open-loop latency bench for the blocking facade (DESIGN.md §14): a load
// generator that draws every arrival timestamp AHEAD of the run (Poisson
// process, seeded xorshift) and measures enqueue→dequeue latency from the
// *scheduled* arrival, not the actual send. That is the coordinated-omission
// fix: if the producer falls behind (channel backpressure, scheduler delay),
// the backlog shows up in the recorded latencies instead of silently
// stretching the inter-arrival gaps.
//
// Two consumer series over the same schedule:
//
//   spin  try_recv + Backoff::pause() — burns CPU while idle, never parks;
//   park  blocking recv() — spins briefly (the channel's spin-then-park
//         policy), then parks on the eventcount futex.
//
// Per series the JSON reports p50/p90/p99/p999/mean/max latency plus the
// full accounting the CI gate (bench/check_latency.py) verifies: sent ==
// received, lost == 0, percentiles monotone, and the channel's degraded-
// mode counters (parks, notifies, timeouts, closed rejects,
// accepted_after_close, stranded).
//
// This driver is intentionally NOT built on the throughput harness's
// measure_point/Series machinery — open-loop latency has its own schema
// (samples, not Mops) — but it accepts the same smoke flags (--ops, --runs,
// --json, --no-pin, --threads is accepted and ignored: the open-loop model
// is one generator + one consumer by construction). Extra knobs:
//   --rate=<hz>      mean arrival rate (default 200000)
//   WCQ_BENCH_ORDER  channel capacity order (default 10 -> 1024 slots)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "harness/workloads.hpp"
#include "runtime/channel.hpp"

namespace wcq::bench {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

// Deterministic per-run PRNG for the arrival schedule.
struct XorShift64 {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  // Uniform in (0, 1] — never 0, so log() below is finite.
  double unit() {
    return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740992.0;
  }
};

// Exponential inter-arrival offsets (a Poisson process at `rate_hz`), drawn
// before the run starts so the schedule cannot react to backpressure.
std::vector<std::uint64_t> draw_offsets(std::uint64_t ops, double rate_hz,
                                        std::uint64_t seed) {
  std::vector<std::uint64_t> offsets;
  offsets.reserve(ops);
  XorShift64 rng{seed * 0x9e3779b97f4a7c15ull + 1};
  double t = 0.0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    t += -std::log(rng.unit()) / rate_hz * 1e9;
    offsets.push_back(static_cast<std::uint64_t>(t));
  }
  return offsets;
}

struct SeriesResult {
  std::string name;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::vector<std::uint64_t> lat_ns;  // pooled over runs
  Channel<std::uint64_t>::Stats stats{};
};

struct Percentiles {
  double p50, p90, p99, p999, mean, max;
};

Percentiles percentiles(std::vector<std::uint64_t>& v) {
  Percentiles r{0, 0, 0, 0, 0, 0};
  if (v.empty()) return r;
  std::sort(v.begin(), v.end());
  auto at = [&](double q) {
    const auto n = v.size();
    auto idx = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
    if (idx == 0) idx = 1;
    if (idx > n) idx = n;
    return static_cast<double>(v[idx - 1]);
  };
  double sum = 0;
  for (auto x : v) sum += static_cast<double>(x);
  r.p50 = at(0.50);
  r.p90 = at(0.90);
  r.p99 = at(0.99);
  r.p999 = at(0.999);
  r.mean = sum / static_cast<double>(v.size());
  r.max = static_cast<double>(v.back());
  return r;
}

// One run of the generator against one consumer mode. The payload is the
// absolute scheduled arrival time (steady-clock ns), so the consumer
// computes latency without sharing any other state with the producer.
void one_run(bool park_consumer, std::uint64_t ops,
             const std::vector<std::uint64_t>& offsets, unsigned order,
             SeriesResult& out) {
  Channel<std::uint64_t> ch(order);
  std::vector<std::uint64_t> lat;
  lat.reserve(ops);

  std::thread consumer([&] {
    auto h = ch.acquire();
    std::uint64_t sched = 0;
    if (park_consumer) {
      while (ch.recv(h, sched) == ChanStatus::kOk) {
        lat.push_back(now_ns() - sched);
      }
    } else {
      Backoff bo;
      for (;;) {
        const auto s = ch.try_recv(h, sched);
        if (s == ChanStatus::kOk) {
          lat.push_back(now_ns() - sched);
          bo.reset();
        } else if (s == ChanStatus::kClosed) {
          break;
        } else {
          bo.pause();
        }
      }
    }
  });

  {
    auto h = ch.acquire();
    const std::uint64_t t0 = now_ns();
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::uint64_t sched = t0 + offsets[i];
      // Busy-wait to the scheduled arrival: the generator's own delay must
      // not depend on the consumer (open loop).
      while (now_ns() < sched) {
      }
      ch.send(h, sched);
      ++out.sent;
    }
    ch.close();
  }
  consumer.join();

  out.received += lat.size();
  out.lat_ns.insert(out.lat_ns.end(), lat.begin(), lat.end());
  const auto st = ch.stats();
  out.stats.send_parks += st.send_parks;
  out.stats.recv_parks += st.recv_parks;
  out.stats.send_notifies += st.send_notifies;
  out.stats.recv_notifies += st.recv_notifies;
  out.stats.send_timeouts += st.send_timeouts;
  out.stats.recv_timeouts += st.recv_timeouts;
  out.stats.closed_send_rejects += st.closed_send_rejects;
  out.stats.accepted_after_close += st.accepted_after_close;
  out.stats.stranded += st.stranded;
}

void write_series_json(std::FILE* f, const SeriesResult& s,
                       const Percentiles& p, bool last) {
  std::fprintf(
      f,
      "    {\"name\": \"%s\", \"sent\": %llu, \"received\": %llu, "
      "\"lost\": %lld,\n"
      "     \"latency_ns\": {\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, "
      "\"p999\": %.1f, \"mean\": %.1f, \"max\": %.1f, \"samples\": %zu},\n"
      "     \"channel\": {\"send_parks\": %llu, \"recv_parks\": %llu, "
      "\"send_notifies\": %llu, \"recv_notifies\": %llu, "
      "\"send_timeouts\": %llu, \"recv_timeouts\": %llu, "
      "\"closed_send_rejects\": %llu, \"accepted_after_close\": %llu, "
      "\"stranded\": %llu}}%s\n",
      s.name.c_str(), static_cast<unsigned long long>(s.sent),
      static_cast<unsigned long long>(s.received),
      static_cast<long long>(s.sent) - static_cast<long long>(s.received),
      p.p50, p.p90, p.p99, p.p999, p.mean, p.max, s.lat_ns.size(),
      static_cast<unsigned long long>(s.stats.send_parks),
      static_cast<unsigned long long>(s.stats.recv_parks),
      static_cast<unsigned long long>(s.stats.send_notifies),
      static_cast<unsigned long long>(s.stats.recv_notifies),
      static_cast<unsigned long long>(s.stats.send_timeouts),
      static_cast<unsigned long long>(s.stats.recv_timeouts),
      static_cast<unsigned long long>(s.stats.closed_send_rejects),
      static_cast<unsigned long long>(s.stats.accepted_after_close),
      static_cast<unsigned long long>(s.stats.stranded), last ? "" : ",");
}

int run(int argc, char** argv) {
  BenchParams p = BenchParams::parse(argc, argv);
  double rate_hz = 200000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rate=", 7) == 0) {
      rate_hz = std::atof(argv[i] + 7);
    }
  }
  if (rate_hz <= 0) rate_hz = 200000.0;
  unsigned order = 10;
  if (const char* e = std::getenv("WCQ_BENCH_ORDER")) {
    order = static_cast<unsigned>(std::atoi(e));
    if (order == 0 || order > 20) order = 10;
  }

  std::fprintf(stderr,
               "bench_latency: open-loop %.0f ops/s, %llu ops x %u run(s), "
               "capacity %u (1 generator + 1 consumer per series)\n",
               rate_hz, static_cast<unsigned long long>(p.ops), p.runs,
               1u << order);

  std::vector<SeriesResult> results;
  for (const bool park : {false, true}) {
    SeriesResult s;
    s.name = park ? "park" : "spin";
    for (unsigned run = 0; run < p.runs; ++run) {
      // Same per-run schedule for both series: the A/B compares consumer
      // policy, not arrival noise.
      const auto offsets = draw_offsets(p.ops, rate_hz, run + 1);
      std::fprintf(stderr, "  [%s] run %u/%u...\n", s.name.c_str(), run + 1,
                   p.runs);
      one_run(park, p.ops, offsets, order, s);
    }
    results.push_back(std::move(s));
  }

  std::printf("# bench_latency: enqueue->dequeue latency from scheduled "
              "arrival (open loop, %.0f ops/s)\n",
              rate_hz);
  std::printf("%-6s %10s %10s %6s %12s %12s %12s %12s %10s %10s\n", "series",
              "sent", "received", "lost", "p50(ns)", "p99(ns)", "p999(ns)",
              "max(ns)", "parks", "stranded");
  std::vector<Percentiles> pcts;
  for (auto& s : results) {
    const auto pct = percentiles(s.lat_ns);
    std::printf("%-6s %10llu %10llu %6lld %12.0f %12.0f %12.0f %12.0f "
                "%10llu %10llu\n",
                s.name.c_str(), static_cast<unsigned long long>(s.sent),
                static_cast<unsigned long long>(s.received),
                static_cast<long long>(s.sent) -
                    static_cast<long long>(s.received),
                pct.p50, pct.p99, pct.p999, pct.max,
                static_cast<unsigned long long>(s.stats.send_parks +
                                                s.stats.recv_parks),
                static_cast<unsigned long long>(s.stats.stranded));
    pcts.push_back(pct);
  }

  if (!p.json_path.empty()) {
    std::FILE* f = std::fopen(p.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_latency: cannot open %s\n",
                   p.json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"latency\",\n  \"ops_per_run\": %llu,\n"
                 "  \"runs\": %u,\n  \"rate_hz\": %.1f,\n"
                 "  \"capacity\": %u,\n  \"series\": [\n",
                 static_cast<unsigned long long>(p.ops), p.runs, rate_hz,
                 1u << order);
    for (std::size_t i = 0; i < results.size(); ++i) {
      write_series_json(f, results[i], pcts[i], i + 1 == results.size());
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "bench_latency: wrote %s\n", p.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) { return wcq::bench::run(argc, argv); }
