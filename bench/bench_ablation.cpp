// Ablations for the design choices DESIGN.md calls out:
//
//   A1  MAX_PATIENCE sweep — how often the slow path fires and what it
//       costs (paper §6 picks 16/64 so the slow path is "relatively
//       infrequent"; patience 1 forces it on every operation).
//   A2  Cache_Remap on/off — the false-sharing permutation's contribution
//       under contended pairwise traffic (paper §2).
//   A3  HELP_DELAY sweep — helping-check amortization (Fig 6).
//   A4  Entry width — SCQ's 8-byte entries vs wCQ's 16-byte pairs on a
//       single thread (the effect behind the paper's Fig 11c remark that
//       wCQ's larger entries reduce cache contention between neighbors).
#include <cstdio>
#include <vector>

#include "harness/adapters.hpp"
#include "harness/runner.hpp"

namespace wcq::bench {
namespace {

WCQ::Options g_tuned_opts;

struct TunedWcqAdapter {
  static constexpr const char* kName = "wCQ-tuned";
  using Queue = WCQ;
  static Queue* create() { return new Queue(g_tuned_opts); }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) {
    q.enqueue(v & (q.capacity() - 1));
    return true;
  }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
};

double measure_wcq(const BenchParams& p, const WCQ::Options& o,
                   unsigned threads) {
  g_tuned_opts = o;
  return measure_point<TunedWcqAdapter>(p, threads).mops.mean;
}

void run_ablations(const BenchParams& p) {
  const unsigned threads =
      p.thread_counts.empty() ? 4 : p.thread_counts[p.thread_counts.size() / 2];
  print_preamble("Ablations", "wCQ design-choice sweeps (pairs workload)", p);
  std::printf("# measured at %u threads\n\n", threads);

  std::printf("## A1: MAX_PATIENCE sweep (enq/deq patience, Mops/s)\n");
  for (int pat : {1, 2, 4, 16, 64}) {
    WCQ::Options o;
    o.order = ring_order();
    o.enq_patience = pat;
    o.deq_patience = pat;
    std::fprintf(stderr, "  [A1] patience %d...\n", pat);
    std::printf("patience=%-3d %8.2f\n", pat, measure_wcq(p, o, threads));
  }
  {
    WCQ::Options paper;
    paper.order = ring_order();
    std::printf("paper(16/64) %8.2f\n\n", measure_wcq(p, paper, threads));
  }

  std::printf("## A2: Cache_Remap on/off (Mops/s)\n");
  for (bool remap : {true, false}) {
    WCQ::Options o;
    o.order = ring_order();
    o.cache_remap = remap;
    std::fprintf(stderr, "  [A2] remap %d...\n", remap ? 1 : 0);
    std::printf("remap=%-5s %8.2f\n", remap ? "on" : "off",
                measure_wcq(p, o, threads));
  }
  std::printf("\n");

  std::printf("## A3: HELP_DELAY sweep at patience 2 (Mops/s)\n");
  for (unsigned hd : {1u, 4u, 16u, 64u}) {
    WCQ::Options o;
    o.order = ring_order();
    o.enq_patience = 2;
    o.deq_patience = 2;
    o.help_delay = hd;
    std::fprintf(stderr, "  [A3] help_delay %u...\n", hd);
    std::printf("help_delay=%-3u %8.2f\n", hd, measure_wcq(p, o, threads));
  }
  std::printf("\n");

  std::printf("## A4: entry width, single-threaded pairs (Mops/s)\n");
  std::fprintf(stderr, "  [A4] SCQ (8B entries)...\n");
  const double scq = measure_point<ScqAdapter>(p, 1).mops.mean;
  std::fprintf(stderr, "  [A4] wCQ (16B pairs)...\n");
  const double wcq_m = measure_point<WcqAdapter>(p, 1).mops.mean;
  std::printf("SCQ  (8-byte entries)  %8.2f\nwCQ (16-byte pairs)    %8.2f\n",
              scq, wcq_m);
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  wcq::bench::BenchParams p = wcq::bench::BenchParams::parse(argc, argv);
  p.workload = wcq::bench::Workload::kPairs;
  wcq::bench::run_ablations(p);
  return 0;
}
