#!/usr/bin/env python3
"""Assert the magazine and session-handle counter targets from a bench report.

Reads the JSON written by bench_magazine (--json=...) and requires that, on
the p5050 panel, the magazine-enabled "Bounded" series issues at least
--min-reduction fewer shared Head/Tail F&As per logical operation than the
"Bounded-nomag" baseline, at every measured thread count. The metric is a
counter, not wall-clock, so this check is deterministic enough to gate CI on
a noisy 1-core host (DESIGN.md §9).

With --max-registry (and a report produced by `bench_magazine --handles`)
it additionally gates the explicit-session path (DESIGN.md §10): the
"Bounded-handle" series must perform at most --max-registry
registry/thread_local lookups per operation at every measured thread count
— the acceptance bar for the handle refactor. Also counter-based, so it
holds on 1-core CI.

Usage: check_ringops.py REPORT.json [--min-reduction 0.40] [--workload p5050]
                        [--max-registry 1.0] [--handle-series Bounded-handle]
Exit status: 0 on pass, 1 on a missed target or malformed report.
"""

import argparse
import json
import sys

MAG_SERIES = "Bounded"
BASE_SERIES = "Bounded-nomag"
HANDLE_SERIES = "Bounded-handle"


def series_points(panel, name):
    for series in panel.get("series", []):
        if series.get("name") == name:
            return {p["threads"]: p for p in series.get("points", [])}
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="JSON written by bench_magazine --json=...")
    ap.add_argument("--min-reduction", type=float, default=0.40,
                    help="required fractional drop in ring F&As per op "
                         "(default: 0.40, the PR 4 acceptance bar)")
    ap.add_argument("--workload", default="p5050",
                    help="panel workload to check (default: p5050)")
    ap.add_argument("--max-registry", type=float, default=None,
                    help="if set, the handle series must perform at most "
                         "this many registry/thread_local lookups per op "
                         "(the PR 5 acceptance bar is 1.0)")
    ap.add_argument("--handle-series", default=HANDLE_SERIES,
                    help=f"series name for the registry gate "
                         f"(default: {HANDLE_SERIES})")
    args = ap.parse_args()

    with open(args.report) as f:
        report = json.load(f)

    panels = [p for p in report.get("panels", [])
              if p.get("workload") == args.workload]
    if not panels:
        print(f"check_ringops: no '{args.workload}' panel in {args.report}")
        return 1

    failures = 0
    checked = 0
    for panel in panels:
        mag = series_points(panel, MAG_SERIES)
        base = series_points(panel, BASE_SERIES)
        if mag is None or base is None:
            print(f"check_ringops: panel '{panel.get('caption')}' lacks "
                  f"'{MAG_SERIES}'/'{BASE_SERIES}' series")
            return 1
        for threads in sorted(base):
            if threads not in mag:
                continue
            base_faa = base[threads]["ring_faa_per_op_mean"]
            mag_faa = mag[threads]["ring_faa_per_op_mean"]
            if base_faa <= 0:
                print(f"check_ringops: baseline ring_faa is {base_faa} at "
                      f"{threads} thread(s) — counters broken?")
                return 1
            reduction = 1.0 - mag_faa / base_faa
            checked += 1
            verdict = "ok" if reduction >= args.min_reduction else "FAIL"
            print(f"check_ringops: [{panel.get('caption')}] threads={threads} "
                  f"faa/op {base_faa:.3f} -> {mag_faa:.3f} "
                  f"(-{reduction * 100.0:.1f}%, need "
                  f"{args.min_reduction * 100.0:.0f}%) {verdict}")
            if reduction < args.min_reduction:
                failures += 1

        if args.max_registry is not None:
            handle = series_points(panel, args.handle_series)
            if handle is None:
                print(f"check_ringops: panel '{panel.get('caption')}' lacks "
                      f"'{args.handle_series}' series (run bench_magazine "
                      f"--handles)")
                return 1
            for threads in sorted(handle):
                reg = handle[threads].get("registry_per_op_mean")
                if reg is None:
                    print("check_ringops: report lacks registry_per_op_mean "
                          "— counters out of date?")
                    return 1
                checked += 1
                verdict = "ok" if reg <= args.max_registry else "FAIL"
                print(f"check_ringops: [{panel.get('caption')}] "
                      f"threads={threads} registry/op {reg:.3f} "
                      f"(max {args.max_registry:.2f}) {verdict}")
                if reg > args.max_registry:
                    failures += 1

    if checked == 0:
        print("check_ringops: no comparable points found")
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
