// Degree-specialized ring A/B (src/core/{mpsc,spmc}_ring.hpp, DESIGN.md
// §13): what deleting the consumer-side F&A/threshold machinery buys when
// the workload actually has one consumer (or one producer).
//
//   P1  p8to1 fan-in — the minority role is the single consumer. Series:
//       the raw MpscRing against the full-MPMC SCQ it was derived from,
//       and ShardedQueue Mode::kPipeline (MPSC shards, pinned owning
//       consumers) against the full-MPMC Sharded-wCQ at the same shard
//       count. The sharded pair is the PR acceptance A/B: committed as
//       BENCH_PR8.json and gated at >= 1.2x by bench/check_pipeline.py.
//   P2  p1to8 fan-out — the minority role is the single producer; the raw
//       SpmcRing against SCQ.
//
// Raw Mpsc/Spmc points are only measured where the minority role is exactly
// one worker (skewed_minority(threads) == 1) — a wider minority would be a
// second consumer/producer session, which those rings trap by design. The
// sharded/SCQ series have no such restriction; the pipeline adapter divides
// the shards among skewed_minority(threads) consumers, communicated per
// point through g_pipeline_consumers.
//
// Beyond throughput, the roles table / JSON carry the per-role counter
// split: the MPSC consumer column must read exactly 0 F&As and 0 threshold
// RMWs per op — the deterministic, 1-core-safe CI gate in check_pipeline.py.
//
// Sizing caveat: the skewed workloads enqueue without a matching drain, so
// cumulative production can exceed ring capacity. The sharded adapters
// report full as real backpressure (a counted attempt), but the raw-ring
// adapters loop on full — and once the lone consumer has finished its
// attempt quota nothing drains, so the producers would spin forever. Keep
// --ops below the raw ring capacity (or raise WCQ_BENCH_ORDER); the driver
// warns when a sweep is configured past that bound.
//
// Flags as the other drivers; WCQ_BENCH_ORDER / WCQ_BENCH_SHARDS /
// WCQ_BENCH_SHARD_ORDER size the rings and the sharded pair.
#include <cstdio>
#include <vector>

#include "harness/adapters.hpp"
#include "harness/runner.hpp"

namespace wcq::bench {
namespace {

// One series over the thread sweep. `minority_one_only` marks the raw
// degree-restricted rings: points whose minority role is wider than one
// worker are skipped (printed as "-" in the tables), not measured-and-
// trapped. Every point publishes its consumer count for the pipeline
// adapter before measuring.
template <typename Adapter>
void run_sweep(const BenchParams& p, bool minority_one_only,
               std::vector<Series>& out) {
  if (!p.selected(Adapter::kName)) return;
  Series s;
  s.name = Adapter::kName;
  for (unsigned t : p.thread_counts) {
    const unsigned minority = skewed_minority(t);
    if (minority_one_only && minority != 1) {
      std::fprintf(stderr,
                   "  [%s] %u thread(s): skipped (minority role is %u wide; "
                   "the ring admits exactly one)\n",
                   s.name.c_str(), t, minority);
      continue;
    }
    g_pipeline_consumers = minority;
    std::fprintf(stderr, "  [%s] %u thread(s)...\n", s.name.c_str(), t);
    s.points.push_back(measure_point<Adapter>(p, t));
  }
  out.push_back(std::move(s));
}

void run_pipeline(const BenchParams& p) {
  // Conservative bound (produced <= ops): past raw ring capacity the
  // producer-majority points can fill the ring after the consumer's quota
  // is spent, and the raw adapters' looping enqueue never returns.
  const u64 raw_capacity = u64{1} << ring_order();
  if (p.ops > raw_capacity) {
    std::fprintf(stderr,
                 "bench_pipeline: WARNING --ops=%llu exceeds raw ring "
                 "capacity %llu; skewed points may never terminate "
                 "(raise WCQ_BENCH_ORDER or lower --ops)\n",
                 static_cast<unsigned long long>(p.ops),
                 static_cast<unsigned long long>(raw_capacity));
  }
  JsonReport report;
  {
    BenchParams q = p;
    q.workload = Workload::kP8to1;
    print_preamble("Pipeline P1",
                   "fan-in p8to1: MPSC ring / pipeline shards vs MPMC", q);
    std::printf("# order=%u shards=%u shard_order=%u\n", ring_order(),
                sharded_shard_count(), sharded_shard_order());
    std::vector<Series> series;
    run_sweep<MpscAdapter>(q, /*minority_one_only=*/true, series);
    run_sweep<ScqAdapter>(q, false, series);
    run_sweep<ShardedPipelineAdapter>(q, false, series);
    run_sweep<ShardedAdapter>(q, false, series);
    print_throughput_table(series, q.thread_counts);
    print_ringops_table(series, q.thread_counts);
    print_roles_table(series, q.thread_counts);
    print_cv_note(series);
    report.add_panel("fan-in p8to1: MPSC ring / pipeline shards vs MPMC", q,
                     series);
    std::printf("\n");
  }
  {
    BenchParams q = p;
    q.workload = Workload::kP1to8;
    print_preamble("Pipeline P2", "fan-out p1to8: SPMC ring vs MPMC", q);
    std::printf("# order=%u\n", ring_order());
    std::vector<Series> series;
    run_sweep<SpmcAdapter>(q, /*minority_one_only=*/true, series);
    run_sweep<ScqAdapter>(q, false, series);
    print_throughput_table(series, q.thread_counts);
    print_ringops_table(series, q.thread_counts);
    print_roles_table(series, q.thread_counts);
    print_cv_note(series);
    report.add_panel("fan-out p1to8: SPMC ring vs MPMC", q, series);
  }
  if (!p.json_path.empty()) report.write(p.json_path);
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  wcq::bench::BenchParams p = wcq::bench::BenchParams::parse(argc, argv);
  wcq::bench::run_pipeline(p);
  return 0;
}
