// Index-magazine A/B sweep (src/scale/index_magazine.hpp, DESIGN.md §9):
// what per-thread free-index caching buys the Fig 2 double-ring hot path.
//
//   M1  p5050 workload — every op is Enqueue or Dequeue with p=1/2; the
//       magazine occupancy random-walks, so refills/spills actually happen.
//   M2  pairs workload — Enqueue immediately followed by Dequeue; the
//       steady-state best case (the freed index is re-claimed by the same
//       thread, fq traffic amortizes to ~zero).
//
// Each panel compares "Bounded" (magazines on) against "Bounded-nomag" (the
// plain double ring) and prints two tables: throughput and *shared-ring
// F&As per logical operation*. The second is the honest metric on small
// hosts — the magazines exist to remove coherence traffic, and the counter
// measures exactly that, independent of scheduler noise. CI asserts the
// reduction from the JSON report via bench/check_ringops.py.
//
// --handles adds a third series, "Bounded-handle": the same queue driven
// through explicit per-worker session handles (DESIGN.md §10). Its A/B
// metric is the registry-lookup counter — implicit ops resolve the
// thread_local tid once per op (~1/op), handle ops only pay the amortized
// help-check refresh — and check_ringops.py gates it at ≤1 lookup/op.
//
// Flags as the other drivers; WCQ_BENCH_BOUNDED_ORDER / WCQ_BENCH_MAGAZINE
// set the queue capacity and magazine size.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/adapters.hpp"
#include "harness/runner.hpp"

namespace wcq::bench {
namespace {

template <typename Adapter>
Series run_named(const BenchParams& p, std::string name) {
  Series s;
  s.name = std::move(name);
  for (unsigned t : p.thread_counts) {
    std::fprintf(stderr, "  [%s] %u thread(s)...\n", s.name.c_str(), t);
    s.points.push_back(measure_point<Adapter>(p, t));
  }
  return s;
}

void run_panel(const BenchParams& p, Workload w, const char* figure,
               const char* caption, bool handles, JsonReport& report) {
  BenchParams q = p;
  q.workload = w;
  print_preamble(figure, caption, q);
  std::printf("# order=%u magazine=%zu\n", bounded_order(),
              bounded_magazine_capacity());
  std::vector<Series> series;
  series.push_back(run_named<BoundedAdapter>(q, BoundedAdapter::kName));
  series.push_back(
      run_named<BoundedNoMagAdapter>(q, BoundedNoMagAdapter::kName));
  if (handles) {
    series.push_back(
        run_named<BoundedHandleAdapter>(q, BoundedHandleAdapter::kName));
  }
  print_throughput_table(series, q.thread_counts);
  print_ringops_table(series, q.thread_counts);
  if (handles) print_registry_table(series, q.thread_counts);
  print_cv_note(series);
  report.add_panel(caption, q, series);
  std::printf("\n");
}

void run_magazine(const BenchParams& p, bool handles) {
  JsonReport report;
  run_panel(p, Workload::kP5050, "Magazine M1",
            "magazine A/B, p5050 workload", handles, report);
  run_panel(p, Workload::kPairs, "Magazine M2",
            "magazine A/B, pairs workload", handles, report);
  if (!p.json_path.empty()) report.write(p.json_path);
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  wcq::bench::BenchParams p = wcq::bench::BenchParams::parse(argc, argv);
  bool handles = false;  // driver-local flag; parse() ignores unknown flags
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--handles") == 0) handles = true;
  }
  wcq::bench::run_magazine(p, handles);
  return 0;
}
