// Figure 11 (x86-64): the three throughput panels of the paper's main
// evaluation, across the full comparison set.
//
//   11a  empty-dequeue throughput   (Dequeue on an empty queue, tight loop)
//   11b  pairwise enqueue-dequeue   (Enqueue; Dequeue; repeat)
//   11c  50%/50% random             (coin-flip per operation)
//
// With no --workload flag all three panels run. Expected shape (paper §6):
// wCQ ≈ SCQ everywhere; 11a: wCQ/SCQ far ahead via the Threshold
// short-circuit, FAA poor (RMW invalidations); 11b/11c: F&A-based queues
// (wCQ/SCQ/LCRQ/YMC, bounded by FAA) above MSQueue/CCQueue/CRTurn.
#include <cstdio>
#include <cstring>

#include "harness/adapters.hpp"
#include "harness/runner.hpp"

namespace wcq::bench {
namespace {

void run_panel(BenchParams p, Workload w, const char* figure,
               const char* caption, JsonReport& report) {
  p.workload = w;
  print_preamble(figure, caption, p);
  std::vector<Series> series;
  run_series<FaaAdapter>(p, series);
  run_series<WcqAdapter>(p, series);
  run_series<ScqAdapter>(p, series);
  run_series<LcrqAdapter>(p, series);
  run_series<YmcAdapter>(p, series);
  run_series<CcAdapter>(p, series);
  run_series<CrTurnAdapter>(p, series);
  run_series<MsAdapter>(p, series);
  print_throughput_table(series, p.thread_counts);
  print_cv_note(series);
  report.add_panel(caption, p, series);
  std::printf("\n");
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  using namespace wcq::bench;
  BenchParams p = BenchParams::parse(argc, argv);
  JsonReport report;
  bool explicit_workload = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workload", 10) == 0) explicit_workload = true;
  }
  if (explicit_workload) {
    run_panel(p, p.workload, "Figure 11", "selected panel", report);
  } else {
    run_panel(p, Workload::kEmptyDeq, "Figure 11a",
              "empty Dequeue throughput, x86-64", report);
    run_panel(p, Workload::kPairs, "Figure 11b",
              "pairwise Enqueue-Dequeue, x86-64", report);
    run_panel(p, Workload::kP5050, "Figure 11c",
              "50%/50% Enqueue-Dequeue, x86-64", report);
  }
  if (!p.json_path.empty()) report.write(p.json_path);
  return 0;
}
