#!/usr/bin/env python3
"""Assert the topology-placement counter targets from a bench report.

Reads the JSON written by bench_topology (--json=...) and requires that, on
the p5050 panel, the node-confined series ("Sharded node:0" by default)
completed exactly zero operations on a remote node's shard at every measured
thread count. Under node:<k> placement every worker's home shard is local
and the other nodes' shards are never populated, so any remote completion
is a broken home-shard mapping or sweep order — this is a determinism
property of the placement, not a performance threshold, which is what makes
it gateable on a noisy 1-core CI host under a simulated WCQ_TOPOLOGY shape
(DESIGN.md §12).

The report must also carry per-node throughput (node_mops_mean) for the
gated series, proving placement attribution ran; under node:0 all
throughput must sit in node 0's bucket.

Usage: check_topology.py REPORT.json [--workload p5050]
                         [--series "Sharded node:0"] [--node 0]
Exit status: 0 on pass, 1 on a missed target or malformed report.
"""

import argparse
import json
import sys

GATED_SERIES = "Sharded node:0"


def series_points(panel, name):
    for series in panel.get("series", []):
        if series.get("name") == name:
            return {p["threads"]: p for p in series.get("points", [])}
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="JSON written by bench_topology --json=...")
    ap.add_argument("--workload", default="p5050",
                    help="panel workload to check (default: p5050)")
    ap.add_argument("--series", default=GATED_SERIES,
                    help=f"node-confined series name "
                         f"(default: {GATED_SERIES!r})")
    ap.add_argument("--node", type=int, default=0,
                    help="node the series is confined to (default: 0)")
    args = ap.parse_args()

    with open(args.report) as f:
        report = json.load(f)

    panels = [p for p in report.get("panels", [])
              if p.get("workload") == args.workload]
    if not panels:
        print(f"check_topology: no '{args.workload}' panel in {args.report}")
        return 1

    failures = 0
    checked = 0
    for panel in panels:
        pts = series_points(panel, args.series)
        if pts is None:
            print(f"check_topology: panel '{panel.get('caption')}' lacks "
                  f"'{args.series}' series")
            return 1
        for threads in sorted(pts):
            pt = pts[threads]
            steal = pt.get("remote_steal_per_op_mean")
            if steal is None:
                print("check_topology: report lacks remote_steal_per_op_mean "
                      "— counters out of date?")
                return 1
            checked += 1
            verdict = "ok" if steal == 0.0 else "FAIL"
            print(f"check_topology: [{panel.get('caption')}] "
                  f"threads={threads} remote_steal/op {steal:.6f} "
                  f"(need 0) {verdict}")
            if steal != 0.0:
                failures += 1

            nodes = pt.get("node_mops_mean")
            if not nodes:
                print(f"check_topology: threads={threads} lacks per-node "
                      f"throughput (bench run unpinned?)")
                failures += 1
                continue
            total = sum(nodes)
            local = nodes[args.node] if args.node < len(nodes) else 0.0
            if total > 0 and local != total:
                print(f"check_topology: threads={threads} throughput "
                      f"leaked off node {args.node}: {nodes} FAIL")
                failures += 1

    if checked == 0:
        print("check_topology: no comparable points found")
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
