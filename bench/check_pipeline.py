#!/usr/bin/env python3
"""Assert the degree-specialization targets from a bench_pipeline report.

Two gates, both against the JSON written by bench_pipeline (--json=...):

Zeros gate (always): on the p8to1 panel, the raw MPSC ring's consumer role
must report *exactly* zero shared Head/Tail F&As and zero threshold RMWs
per consumer-executed op. The MPSC consumer path (DESIGN.md §13) contains
no counted site at all — Head is a plain load + release store and the
threshold was deleted, not merely made cheap — so the counter sums are
integer zero on any host, 1-core CI included. Any nonzero value means an
RMW crept back into the consumer path.

Speedup gate (--min-speedup): Mode::kPipeline MPSC shards must beat the
full-MPMC sharded baseline by the given throughput factor at every thread
count both series measured. Wall-clock ratios are not CI-stable, so this
gate runs against the committed BENCH_PR8.json (produced on a quiet host),
not against the smoke run — the PR 8 acceptance bar is 1.2x on p8to1.

Usage: check_pipeline.py REPORT.json [--workload p8to1] [--series Mpsc]
                         [--min-speedup 1.2]
                         [--pipeline-series Sharded-pipeline]
                         [--baseline-series Sharded-wCQ]
Exit status: 0 on pass, 1 on a missed target or malformed report.
"""

import argparse
import json
import sys

# Exact-zero tolerance: the means come through printf("%.6f") on integer-
# zero counter sums, so anything above rounding noise is a real RMW.
ZERO_TOL = 1e-9


def series_points(panel, name):
    for series in panel.get("series", []):
        if series.get("name") == name:
            return {p["threads"]: p for p in series.get("points", [])}
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="JSON written by bench_pipeline --json=...")
    ap.add_argument("--workload", default="p8to1",
                    help="panel workload to check (default: p8to1)")
    ap.add_argument("--series", default="Mpsc",
                    help="series for the consumer-zeros gate (default: Mpsc)")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="if set, the pipeline series must beat the baseline "
                         "by this throughput factor at every common thread "
                         "count (the PR 8 acceptance bar is 1.2)")
    ap.add_argument("--pipeline-series", default="Sharded-pipeline",
                    help="speedup-gate numerator (default: Sharded-pipeline)")
    ap.add_argument("--baseline-series", default="Sharded-wCQ",
                    help="speedup-gate denominator (default: Sharded-wCQ)")
    args = ap.parse_args()

    with open(args.report) as f:
        report = json.load(f)

    panels = [p for p in report.get("panels", [])
              if p.get("workload") == args.workload]
    if not panels:
        print(f"check_pipeline: no '{args.workload}' panel in {args.report}")
        return 1

    failures = 0
    checked = 0
    for panel in panels:
        caption = panel.get("caption")
        pts = series_points(panel, args.series)
        if pts is None:
            print(f"check_pipeline: panel '{caption}' lacks "
                  f"'{args.series}' series")
            return 1
        if not pts:
            print(f"check_pipeline: '{args.series}' series has no points "
                  f"(all sweep points skipped?)")
            return 1
        for threads in sorted(pts):
            faa = pts[threads].get("cons_faa_per_op_mean")
            thld = pts[threads].get("cons_thld_per_op_mean")
            if faa is None or thld is None:
                print("check_pipeline: report lacks cons_*_per_op_mean "
                      "— counters out of date?")
                return 1
            checked += 1
            ok = abs(faa) <= ZERO_TOL and abs(thld) <= ZERO_TOL
            print(f"check_pipeline: [{caption}] threads={threads} consumer "
                  f"faa/op {faa:.6f} thld/op {thld:.6f} (need exactly 0) "
                  f"{'ok' if ok else 'FAIL'}")
            if not ok:
                failures += 1

        if args.min_speedup is not None:
            pipe = series_points(panel, args.pipeline_series)
            base = series_points(panel, args.baseline_series)
            if pipe is None or base is None:
                print(f"check_pipeline: panel '{caption}' lacks "
                      f"'{args.pipeline_series}'/'{args.baseline_series}' "
                      f"series")
                return 1
            common = sorted(set(pipe) & set(base))
            if not common:
                print("check_pipeline: no common thread counts for the "
                      "speedup gate")
                return 1
            for threads in common:
                base_mops = base[threads]["mops_mean"]
                pipe_mops = pipe[threads]["mops_mean"]
                if base_mops <= 0:
                    print(f"check_pipeline: baseline mops is {base_mops} at "
                          f"{threads} thread(s) — report broken?")
                    return 1
                ratio = pipe_mops / base_mops
                checked += 1
                ok = ratio >= args.min_speedup
                print(f"check_pipeline: [{caption}] threads={threads} "
                      f"{base_mops:.2f} -> {pipe_mops:.2f} Mops "
                      f"({ratio:.2f}x, need {args.min_speedup:.2f}x) "
                      f"{'ok' if ok else 'FAIL'}")
                if not ok:
                    failures += 1

    if checked == 0:
        print("check_pipeline: no comparable points found")
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
