// Google-benchmark microbenchmarks: per-operation latency of the paper's
// queues, uncontended and under benchmark-managed thread groups. These
// complement the figure harnesses with statistically managed per-op costs.
#include <benchmark/benchmark.h>

#include "harness/adapters.hpp"

namespace wcq::bench {
namespace {

template <typename Adapter>
void BM_PairSingleThread(benchmark::State& state) {
  typename Adapter::Queue* q = Adapter::create();
  u64 out = 0;
  for (auto _ : state) {
    Adapter::enqueue(*q, 1);
    benchmark::DoNotOptimize(Adapter::dequeue(*q, out));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  Adapter::destroy(q);
}

template <typename Adapter>
void BM_EmptyDequeue(benchmark::State& state) {
  typename Adapter::Queue* q = Adapter::create();
  u64 out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Adapter::dequeue(*q, out));
  }
  state.SetItemsProcessed(state.iterations());
  Adapter::destroy(q);
}

template <typename Adapter>
void BM_PairContended(benchmark::State& state) {
  static typename Adapter::Queue* q = nullptr;
  if (state.thread_index() == 0) q = Adapter::create();
  u64 out = 0;
  for (auto _ : state) {
    Adapter::enqueue(*q, 1);
    benchmark::DoNotOptimize(Adapter::dequeue(*q, out));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  if (state.thread_index() == 0) {
    // Torn down after all threads exit the loop.
    Adapter::destroy(q);
    q = nullptr;
  }
}

#define WCQ_MICRO(Adapter)                                       \
  BENCHMARK_TEMPLATE(BM_PairSingleThread, Adapter);              \
  BENCHMARK_TEMPLATE(BM_EmptyDequeue, Adapter);                  \
  BENCHMARK_TEMPLATE(BM_PairContended, Adapter)->Threads(4)->UseRealTime();

WCQ_MICRO(WcqAdapter);
WCQ_MICRO(WcqLlscAdapter);
WCQ_MICRO(ScqAdapter);
WCQ_MICRO(FaaAdapter);
WCQ_MICRO(LcrqAdapter);
WCQ_MICRO(YmcAdapter);
WCQ_MICRO(MsAdapter);
WCQ_MICRO(CcAdapter);
WCQ_MICRO(CrTurnAdapter);
WCQ_MICRO(UnboundedAdapter);

}  // namespace
}  // namespace wcq::bench

BENCHMARK_MAIN();
