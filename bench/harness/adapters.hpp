// Queue adapters for the benchmark harness: every queue from the paper's
// comparison set behind one uniform shape, constructed with the paper's §6
// parameters (ring 2^16 slots for wCQ/SCQ i.e. order 15; MAX_PATIENCE 16/64;
// LCRQ rings 2^12; YMC segments 2^10).
//
// WCQ_BENCH_ORDER overrides the wCQ/SCQ ring order for quick experiments.
#pragma once

#include "baselines/cc_queue.hpp"
#include "baselines/crturn_queue.hpp"
#include "baselines/faa_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/ymc_queue.hpp"
#include "common/env.hpp"
#include "core/scq.hpp"
#include "core/unbounded_queue.hpp"
#include "core/wcq.hpp"
#include "core/wcq_llsc.hpp"

namespace wcq::bench {

inline unsigned ring_order() {
  return static_cast<unsigned>(env_u64("WCQ_BENCH_ORDER", 15));
}

// Rings transfer indices < capacity; the harness masks payloads (the
// paper's benchmark does the same — throughput, not payload, is measured).
struct WcqAdapter {
  static constexpr const char* kName = "wCQ";
  using Queue = WCQ;
  static Queue* create() {
    WCQ::Options o;
    o.order = ring_order();
    return new Queue(o);
  }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) {
    q.enqueue(v & (q.capacity() - 1));
    return true;
  }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
};

struct WcqLlscAdapter {
  static constexpr const char* kName = "wCQ-LLSC";
  using Queue = WCQLLSC;
  static Queue* create() {
    WCQLLSC::Options o;
    o.order = ring_order();
    return new Queue(o);
  }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) {
    q.enqueue(v & (q.capacity() - 1));
    return true;
  }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
};

struct ScqAdapter {
  static constexpr const char* kName = "SCQ";
  using Queue = SCQ;
  static Queue* create() { return new Queue(ring_order()); }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) {
    q.enqueue(v & (q.capacity() - 1));
    return true;
  }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
};

template <typename Q, const char* Name>
struct SimpleAdapter {
  static constexpr const char* kName = Name;
  using Queue = Q;
  static Queue* create() { return new Queue(); }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) { return q.enqueue(v); }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
};

inline constexpr char kFaaName[] = "FAA";
inline constexpr char kMsName[] = "MSQueue";
inline constexpr char kCcName[] = "CCQueue";
inline constexpr char kLcrqName[] = "LCRQ";
inline constexpr char kYmcName[] = "YMC";
inline constexpr char kCrTurnName[] = "CRTurn";
inline constexpr char kUnboundedName[] = "UwCQ";

using FaaAdapter = SimpleAdapter<FAAQueue, kFaaName>;
using MsAdapter = SimpleAdapter<MSQueue, kMsName>;
using CcAdapter = SimpleAdapter<CCQueue, kCcName>;
using LcrqAdapter = SimpleAdapter<LCRQ, kLcrqName>;
using YmcAdapter = SimpleAdapter<YMCQueue, kYmcName>;
using CrTurnAdapter = SimpleAdapter<CRTurnQueue, kCrTurnName>;
using UnboundedAdapter = SimpleAdapter<UnboundedQueue<u64>, kUnboundedName>;

}  // namespace wcq::bench
