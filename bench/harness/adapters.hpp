// Queue adapters for the benchmark harness: every queue from the paper's
// comparison set behind one uniform shape, constructed with the paper's §6
// parameters (ring 2^16 slots for wCQ/SCQ i.e. order 15; MAX_PATIENCE 16/64;
// LCRQ rings 2^12; YMC segments 2^10).
//
// WCQ_BENCH_ORDER overrides the wCQ/SCQ ring order for quick experiments.
#pragma once

#include <cstddef>

#include "baselines/cc_queue.hpp"
#include "baselines/crturn_queue.hpp"
#include "baselines/faa_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/ymc_queue.hpp"
#include "common/env.hpp"
#include "core/bounded_queue.hpp"
#include "core/mpsc_ring.hpp"
#include "core/scq.hpp"
#include "core/spmc_ring.hpp"
#include "core/unbounded_queue.hpp"
#include "core/wcq.hpp"
#include "core/wcq_llsc.hpp"
#include "scale/index_magazine.hpp"
#include "scale/sharded_queue.hpp"

namespace wcq::bench {

inline unsigned ring_order() {
  return static_cast<unsigned>(env_u64("WCQ_BENCH_ORDER", 15));
}

// Sharded front-end parameters. The shard count can be overridden
// programmatically (bench_sharding's sweep) ahead of the env/default.
inline unsigned g_sharded_shards = 0;  // 0 = use WCQ_BENCH_SHARDS (default 4)

inline unsigned sharded_shard_count() {
  if (g_sharded_shards != 0) return g_sharded_shards;
  return static_cast<unsigned>(env_u64("WCQ_BENCH_SHARDS", 4));
}

inline unsigned sharded_shard_order() {
  return static_cast<unsigned>(env_u64("WCQ_BENCH_SHARD_ORDER", 12));
}

namespace detail {

// Ring adapters transfer indices < capacity; bulk spans are masked through a
// fixed chunk so the adapter keeps the harness's "payload is arbitrary"
// contract without allocating.
template <typename Queue>
std::size_t ring_enqueue_bulk(Queue& q, const u64* v, std::size_t n) {
  constexpr std::size_t kChunk = 64;
  u64 masked[kChunk];
  const u64 mask = q.capacity() - 1;
  std::size_t done = 0;
  while (done < n) {
    const std::size_t span = n - done < kChunk ? n - done : kChunk;
    for (std::size_t i = 0; i < span; ++i) masked[i] = v[done + i] & mask;
    q.enqueue_bulk(masked, span);
    done += span;
  }
  return n;  // ring bulk enqueue inserts everything
}

}  // namespace detail

// Rings transfer indices < capacity; the harness masks payloads (the
// paper's benchmark does the same — throughput, not payload, is measured).
struct WcqAdapter {
  static constexpr const char* kName = "wCQ";
  using Queue = WCQ;
  static Queue* create() {
    WCQ::Options o;
    o.order = ring_order();
    return new Queue(o);
  }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) {
    q.enqueue(v & (q.capacity() - 1));
    return true;
  }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
  static std::size_t enqueue_bulk(Queue& q, const u64* v, std::size_t n) {
    return detail::ring_enqueue_bulk(q, v, n);
  }
  static std::size_t dequeue_bulk(Queue& q, u64* out, std::size_t n) {
    return q.dequeue_bulk(out, n);
  }
};

struct WcqLlscAdapter {
  static constexpr const char* kName = "wCQ-LLSC";
  using Queue = WCQLLSC;
  static Queue* create() {
    WCQLLSC::Options o;
    o.order = ring_order();
    return new Queue(o);
  }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) {
    q.enqueue(v & (q.capacity() - 1));
    return true;
  }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
  static std::size_t enqueue_bulk(Queue& q, const u64* v, std::size_t n) {
    return detail::ring_enqueue_bulk(q, v, n);
  }
  static std::size_t dequeue_bulk(Queue& q, u64* out, std::size_t n) {
    return q.dequeue_bulk(out, n);
  }
};

#if defined(WCQ_HAS_NATIVE_LLSC)
// Native AArch64 exclusive pairs (DESIGN.md §15, LLSC-NATIVE) — same ring,
// the granule ops go through ldaxp/stlxp instead of the simulated
// reservation table. Only exists on aarch64 builds; the harness picks it
// up automatically there and the panel gains a fourth backend column.
struct WcqLlscNativeAdapter {
  static constexpr const char* kName = "wCQ-LLSC-native";
  using Queue = WCQLLSCNative;
  static Queue* create() {
    WCQLLSCNative::Options o;
    o.order = ring_order();
    return new Queue(o);
  }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) {
    q.enqueue(v & (q.capacity() - 1));
    return true;
  }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
  static std::size_t enqueue_bulk(Queue& q, const u64* v, std::size_t n) {
    return detail::ring_enqueue_bulk(q, v, n);
  }
  static std::size_t dequeue_bulk(Queue& q, u64* out, std::size_t n) {
    return q.dequeue_bulk(out, n);
  }
};
#endif  // WCQ_HAS_NATIVE_LLSC

struct ScqAdapter {
  static constexpr const char* kName = "SCQ";
  using Queue = SCQ;
  static Queue* create() { return new Queue(ring_order()); }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) {
    q.enqueue(v & (q.capacity() - 1));
    return true;
  }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
  static std::size_t enqueue_bulk(Queue& q, const u64* v, std::size_t n) {
    return detail::ring_enqueue_bulk(q, v, n);
  }
  static std::size_t dequeue_bulk(Queue& q, u64* out, std::size_t n) {
    return q.dequeue_bulk(out, n);
  }
};

template <typename Q, const char* Name>
struct SimpleAdapter {
  static constexpr const char* kName = Name;
  using Queue = Q;
  static Queue* create() { return new Queue(); }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) { return q.enqueue(v); }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
};

inline constexpr char kFaaName[] = "FAA";
inline constexpr char kMsName[] = "MSQueue";
inline constexpr char kCcName[] = "CCQueue";
inline constexpr char kLcrqName[] = "LCRQ";
inline constexpr char kYmcName[] = "YMC";
inline constexpr char kCrTurnName[] = "CRTurn";

// Unbounded (Appendix A) queue, as an A/B pair over the segment pool
// (DESIGN.md §8): "UwCQ" recycles retired segments, "UwCQ-nopool" is the
// malloc/free-per-segment behavior. WCQ_BENCH_SEGMENT_ORDER (default 10,
// the paper's YMC segment size) sets elements per segment; small orders
// (4-6) maximize segment churn and make the pool's allocation-count win
// visible even in short runs.
inline unsigned unbounded_segment_order() {
  return static_cast<unsigned>(env_u64("WCQ_BENCH_SEGMENT_ORDER", 10));
}

template <bool Recycle, const char* Name>
struct UnboundedQueueAdapter {
  static constexpr const char* kName = Name;
  using Queue = UnboundedQueue<u64>;
  static Queue* create() {
    typename Queue::Options o;
    o.segment_order = unbounded_segment_order();
    o.recycle = Recycle;
    return new Queue(o);
  }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) { return q.enqueue(v); }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
};

inline constexpr char kUnboundedName[] = "UwCQ";
inline constexpr char kUnboundedNoPoolName[] = "UwCQ-nopool";

// Fig 2 bounded value queue, as an A/B pair over the per-thread index
// magazines (DESIGN.md §9): "Bounded" claims/recycles free indices through
// its magazine, "Bounded-nomag" is the plain double-ring behavior. The
// shared-ring F&A counters (ring_faa in the report) are the comparison
// metric — the magazine's amortization claim is about coherence traffic,
// not wall-clock, so it holds on 1-core CI hosts too.
// WCQ_BENCH_BOUNDED_ORDER (default 12) sets capacity; WCQ_BENCH_MAGAZINE
// (default 16) the per-thread magazine slots.
inline unsigned bounded_order() {
  return static_cast<unsigned>(env_u64("WCQ_BENCH_BOUNDED_ORDER", 12));
}

inline std::size_t bounded_magazine_capacity() {
  return static_cast<std::size_t>(env_u64("WCQ_BENCH_MAGAZINE", 16));
}

template <bool Mag, const char* Name>
struct BoundedQueueAdapter {
  static constexpr const char* kName = Name;
  using Queue = BoundedQueue<u64, WCQ>;
  static Queue* create() {
    typename Queue::Options o{bounded_order()};
    o.magazine.enabled = Mag;
    o.magazine.capacity = bounded_magazine_capacity();
    return new Queue(o);
  }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) { return q.enqueue(v); }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
  static std::size_t enqueue_bulk(Queue& q, const u64* v, std::size_t n) {
    return q.enqueue_bulk(v, n);
  }
  static std::size_t dequeue_bulk(Queue& q, u64* out, std::size_t n) {
    return q.dequeue_bulk(out, n);
  }
};

inline constexpr char kBoundedName[] = "Bounded";
inline constexpr char kBoundedNoMagName[] = "Bounded-nomag";

using BoundedAdapter = BoundedQueueAdapter<true, kBoundedName>;
using BoundedNoMagAdapter = BoundedQueueAdapter<false, kBoundedNoMagName>;

// Explicit-session variant of the Fig 2 bounded queue (DESIGN.md §10):
// identical configuration to "Bounded", but every worker acquires one
// session handle at attach time and every operation takes it. The A/B
// metric is `registry` (tid()/high_water() lookups per op): the implicit
// path resolves the thread_local tid once per operation, the handle path
// only on the amortized help-check refresh — the per-op difference the
// handle refactor exists to produce, and wall-clock-independent like the
// magazine counters. CI gates the handle series at ≤1 lookup/op.
struct BoundedHandleAdapter {
  static constexpr const char* kName = "Bounded-handle";
  using Queue = BoundedQueue<u64, WCQ>;
  using Handle = typename Queue::Handle;
  static Queue* create() {
    typename Queue::Options o{bounded_order()};
    o.magazine.enabled = true;
    o.magazine.capacity = bounded_magazine_capacity();
    return new Queue(o);
  }
  static void destroy(Queue* q) { delete q; }
  static Handle attach(Queue& q) { return q.acquire(); }
  static bool enqueue(Queue& q, Handle& h, u64 v) { return q.enqueue(h, v); }
  static bool dequeue(Queue& q, Handle& h, u64& out) {
    auto v = q.dequeue(h);
    if (!v) return false;
    out = *v;
    return true;
  }
  static std::size_t enqueue_bulk(Queue& q, Handle& h, const u64* v,
                                  std::size_t n) {
    return q.enqueue_bulk(h, v, n);
  }
  static std::size_t dequeue_bulk(Queue& q, Handle& h, u64* out,
                                  std::size_t n) {
    return q.dequeue_bulk(h, out, n);
  }
};

// Sharded front-end (src/scale/): a value queue (no index masking), shard
// count from g_sharded_shards / WCQ_BENCH_SHARDS, per-shard capacity
// 2^WCQ_BENCH_SHARD_ORDER. Full is real backpressure here, so enqueue's
// boolean matters to the workloads.
struct ShardedAdapter {
  static constexpr const char* kName = "Sharded-wCQ";
  using Queue = ShardedQueue<u64, WCQ>;
  static Queue* create() {
    return new Queue(sharded_shard_count(), sharded_shard_order());
  }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) { return q.enqueue(v); }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
  static std::size_t enqueue_bulk(Queue& q, const u64* v, std::size_t n) {
    return q.enqueue_bulk(v, n);
  }
  static std::size_t dequeue_bulk(Queue& q, u64* out, std::size_t n) {
    return q.dequeue_bulk(out, n);
  }
};

// Degree-specialized rings (DESIGN.md §13). Valid only under workloads that
// respect the degree restriction — bench_pipeline runs Mpsc on p8to1 points
// with exactly one consumer-role worker and Spmc on p1to8 points with one
// producer; any other shape trips the rings' SessionGuard by design.
struct MpscAdapter {
  static constexpr const char* kName = "Mpsc";
  using Queue = MpscRing;
  static Queue* create() { return new Queue(ring_order()); }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) {
    q.enqueue(v & (q.capacity() - 1));
    return true;
  }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
  static std::size_t enqueue_bulk(Queue& q, const u64* v, std::size_t n) {
    return detail::ring_enqueue_bulk(q, v, n);
  }
  static std::size_t dequeue_bulk(Queue& q, u64* out, std::size_t n) {
    return q.dequeue_bulk(out, n);
  }
};

struct SpmcAdapter {
  static constexpr const char* kName = "Spmc";
  using Queue = SpmcRing;
  static Queue* create() { return new Queue(ring_order()); }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& q, u64 v) {
    q.enqueue(v & (q.capacity() - 1));
    return true;
  }
  static bool dequeue(Queue& q, u64& out) {
    auto v = q.dequeue();
    if (!v) return false;
    out = *v;
    return true;
  }
  static std::size_t enqueue_bulk(Queue& q, const u64* v, std::size_t n) {
    return detail::ring_enqueue_bulk(q, v, n);
  }
  static std::size_t dequeue_bulk(Queue& q, u64* out, std::size_t n) {
    return q.dequeue_bulk(out, n);
  }
};

// Consumer-role count for the Sharded-pipeline adapter; bench_pipeline sets
// it per point to the skewed workload's minority size so consumers divide
// the shards among themselves (consumer c owns shards i ≡ c mod consumers).
inline unsigned g_pipeline_consumers = 1;

// Mode::kPipeline over MpscRing shards (DESIGN.md §13): producers go
// through the normal hashing/steal sweep; each dequeuing worker claims a
// consumer slot on its first dequeue and drains only the shards it owns,
// through acquire_consumer sessions. The claim is thread_local and the
// harness spawns fresh workers per measurement run, so each run starts with
// a clean assignment; the TLS handles are destroyed at worker exit, before
// the run's Adapter::destroy. A/B against ShardedAdapter at the same shard
// count measures exactly the MPSC-shard win (the ≥20% BENCH_PR8.json gate).
struct ShardedPipelineAdapter {
  static constexpr const char* kName = "Sharded-pipeline";
  using Shards = ShardedQueue<u64, MpscRing>;
  struct Queue {
    Shards q;
    std::atomic<unsigned> next_consumer{0};
    explicit Queue(typename Shards::Options o) : q(o) {}
  };
  static Queue* create() {
    typename Shards::Options o;
    o.shards = sharded_shard_count();
    o.shard_order = sharded_shard_order();
    o.mode = Shards::Mode::kPipeline;
    return new Queue(o);
  }
  static void destroy(Queue* q) { delete q; }
  static bool enqueue(Queue& qq, u64 v) { return qq.q.enqueue(v); }
  static std::size_t enqueue_bulk(Queue& qq, const u64* v, std::size_t n) {
    return qq.q.enqueue_bulk(v, n);
  }
  static bool dequeue(Queue& qq, u64& out) {
    for (auto& h : own(qq)) {
      if (auto v = qq.q.dequeue(h)) {
        out = *v;
        return true;
      }
    }
    return false;
  }
  static std::size_t dequeue_bulk(Queue& qq, u64* out, std::size_t n) {
    std::size_t done = 0;
    for (auto& h : own(qq)) {
      if (done >= n) break;
      done += qq.q.dequeue_bulk(h, out + done, n - done);
    }
    return done;
  }

 private:
  // This worker's owned-shard sessions for `qq`, claimed on first use.
  static std::vector<typename Shards::Handle>& own(Queue& qq) {
    thread_local std::vector<typename Shards::Handle> handles;
    thread_local Queue* bound = nullptr;
    if (bound != &qq) {
      handles.clear();
      const unsigned consumers =
          g_pipeline_consumers > 0 ? g_pipeline_consumers : 1;
      const unsigned c =
          qq.next_consumer.fetch_add(1, std::memory_order_relaxed) %
          consumers;
      for (unsigned i = c; i < qq.q.shard_count(); i += consumers) {
        handles.push_back(qq.q.acquire_consumer(i));
      }
      bound = &qq;
    }
    return handles;
  }
};

using FaaAdapter = SimpleAdapter<FAAQueue, kFaaName>;
using MsAdapter = SimpleAdapter<MSQueue, kMsName>;
using CcAdapter = SimpleAdapter<CCQueue, kCcName>;
using LcrqAdapter = SimpleAdapter<LCRQ, kLcrqName>;
using YmcAdapter = SimpleAdapter<YMCQueue, kYmcName>;
using CrTurnAdapter = SimpleAdapter<CRTurnQueue, kCrTurnName>;
using UnboundedAdapter = UnboundedQueueAdapter<true, kUnboundedName>;
using UnboundedNoPoolAdapter =
    UnboundedQueueAdapter<false, kUnboundedNoPoolName>;

}  // namespace wcq::bench
