#include "harness/workloads.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/cpu.hpp"
#include "common/env.hpp"

namespace wcq::bench {

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kPairs:
      return "pairs";
    case Workload::kP5050:
      return "p5050";
    case Workload::kEmptyDeq:
      return "empty";
    case Workload::kMemory:
      return "memory";
    case Workload::kBurst:
      return "burst";
    case Workload::kP8to1:
      return "p8to1";
    case Workload::kP1to8:
      return "p1to8";
  }
  return "?";
}

std::vector<unsigned> default_thread_counts() {
  const unsigned n = cpu_count();
  std::vector<unsigned> out;
  for (unsigned t = 1; t < n; t *= 2) out.push_back(t);
  if (out.empty() || out.back() != n) out.push_back(n);
  out.push_back(2 * n);  // oversubscribed tail (the paper's 144-thread point)
  return out;
}

namespace {

std::vector<unsigned> parse_list(const std::string& s) {
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(static_cast<unsigned>(std::stoul(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<std::string> parse_names(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool flag_value(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

BenchParams BenchParams::parse(int argc, char** argv) {
  BenchParams p;
  p.thread_counts = default_thread_counts();
  p.ops = env_u64("WCQ_BENCH_OPS", p.ops);
  p.runs = static_cast<unsigned>(env_u64("WCQ_BENCH_RUNS", p.runs));
  p.pin = env_flag("WCQ_BENCH_PIN", p.pin);
  p.pin_policy = env_str("WCQ_BENCH_PIN_POLICY", p.pin_policy);
  p.batch = static_cast<unsigned>(env_u64("WCQ_BENCH_BATCH", p.batch));
  if (env_flag("WCQ_BENCH_FULL", false)) {
    p.ops = 10'000'000;
    p.runs = 10;
  }
  const std::string env_threads = env_str("WCQ_BENCH_THREADS", "");
  if (!env_threads.empty()) p.thread_counts = parse_list(env_threads);

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argv[i], "--threads", v)) {
      p.thread_counts = parse_list(v);
    } else if (flag_value(argv[i], "--ops", v)) {
      p.ops = std::stoull(v);
    } else if (flag_value(argv[i], "--runs", v)) {
      p.runs = static_cast<unsigned>(std::stoul(v));
    } else if (flag_value(argv[i], "--workload", v)) {
      if (v == "pairs") p.workload = Workload::kPairs;
      else if (v == "p5050") p.workload = Workload::kP5050;
      else if (v == "empty") p.workload = Workload::kEmptyDeq;
      else if (v == "memory") p.workload = Workload::kMemory;
      else if (v == "burst") p.workload = Workload::kBurst;
      else if (v == "p8to1") p.workload = Workload::kP8to1;
      else if (v == "p1to8") p.workload = Workload::kP1to8;
    } else if (flag_value(argv[i], "--batch", v)) {
      p.batch = static_cast<unsigned>(std::stoul(v));
    } else if (flag_value(argv[i], "--json", v)) {
      p.json_path = v;
    } else if (flag_value(argv[i], "--pin-policy", v)) {
      p.pin_policy = v;
    } else if (flag_value(argv[i], "--only", v)) {
      p.only = parse_names(v);
    } else if (std::strcmp(argv[i], "--no-pin") == 0) {
      p.pin = false;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      p.ops = 10'000'000;
      p.runs = 10;
    }
  }
  if (p.thread_counts.empty()) p.thread_counts = default_thread_counts();
  if (p.runs == 0) p.runs = 1;
  if (p.batch == 0) p.batch = 1;
  if (p.batch > kMaxBatch) p.batch = kMaxBatch;
  if (!Topology::parse_pin_spec(p.pin_policy)) {
    std::fprintf(stderr, "wcq-bench: unknown pin policy '%s', using rr\n",
                 p.pin_policy.c_str());
    p.pin_policy = "rr";
  }
  return p;
}

bool BenchParams::selected(const std::string& queue_name) const {
  if (only.empty()) return true;
  return std::find(only.begin(), only.end(), queue_name) != only.end();
}

}  // namespace wcq::bench
