#include "harness/runner.hpp"

#include <cstddef>
#include <cstdio>

namespace wcq::bench {

void print_preamble(const char* figure, const char* caption,
                    const BenchParams& p) {
  std::printf("# %s — %s\n", figure, caption);
  std::printf("# workload=%s ops=%llu runs=%u pin=%d policy=%s\n",
              workload_name(p.workload),
              static_cast<unsigned long long>(p.ops), p.runs, p.pin ? 1 : 0,
              p.pin_policy.c_str());
  std::printf(
      "# (paper scale: WCQ_BENCH_FULL=1 or --full → 10 runs x 10M ops)\n");
}

namespace {

const PointResult* find_point(const Series& s, unsigned threads) {
  for (const auto& pt : s.points) {
    if (pt.threads == threads) return &pt;
  }
  return nullptr;
}

}  // namespace

void print_throughput_table(const std::vector<Series>& series,
                            const std::vector<unsigned>& threads) {
  std::printf("threads");
  for (const auto& s : series) std::printf(",%s", s.name.c_str());
  std::printf("   (Mops/sec)\n");
  for (unsigned t : threads) {
    std::printf("%7u", t);
    for (const auto& s : series) {
      const PointResult* pt = find_point(s, t);
      if (pt != nullptr) {
        std::printf(",%.2f", pt->mops.mean);
      } else {
        std::printf(",-");
      }
    }
    std::printf("\n");
  }
}

void print_memory_table(const std::vector<Series>& series,
                        const std::vector<unsigned>& threads) {
  std::printf("threads");
  for (const auto& s : series) std::printf(",%s", s.name.c_str());
  std::printf("   (peak MB allocated during run)\n");
  for (unsigned t : threads) {
    std::printf("%7u", t);
    for (const auto& s : series) {
      const PointResult* pt = find_point(s, t);
      if (pt != nullptr) {
        std::printf(",%.2f", pt->peak_bytes.mean / 1e6);
      } else {
        std::printf(",-");
      }
    }
    std::printf("\n");
  }
}

void print_allocation_table(const std::vector<Series>& series,
                            const std::vector<unsigned>& threads) {
  std::printf("threads");
  for (const auto& s : series) std::printf(",%s", s.name.c_str());
  std::printf("   (allocations per run, count)\n");
  for (unsigned t : threads) {
    std::printf("%7u", t);
    for (const auto& s : series) {
      const PointResult* pt = find_point(s, t);
      if (pt != nullptr) {
        std::printf(",%.0f", pt->allocs.mean);
      } else {
        std::printf(",-");
      }
    }
    std::printf("\n");
  }
}

void print_ringops_table(const std::vector<Series>& series,
                         const std::vector<unsigned>& threads) {
  std::printf("threads");
  for (const auto& s : series) std::printf(",%s", s.name.c_str());
  std::printf("   (shared Head/Tail F&As per op)\n");
  for (unsigned t : threads) {
    std::printf("%7u", t);
    for (const auto& s : series) {
      const PointResult* pt = find_point(s, t);
      if (pt != nullptr) {
        std::printf(",%.3f", pt->ring_faa.mean);
      } else {
        std::printf(",-");
      }
    }
    std::printf("\n");
  }
}

void print_registry_table(const std::vector<Series>& series,
                          const std::vector<unsigned>& threads) {
  std::printf("threads");
  for (const auto& s : series) std::printf(",%s", s.name.c_str());
  std::printf("   (registry/thread_local lookups per op)\n");
  for (unsigned t : threads) {
    std::printf("%7u", t);
    for (const auto& s : series) {
      const PointResult* pt = find_point(s, t);
      if (pt != nullptr) {
        std::printf(",%.3f", pt->registry.mean);
      } else {
        std::printf(",-");
      }
    }
    std::printf("\n");
  }
}

void print_node_table(const std::vector<Series>& series,
                      const std::vector<unsigned>& threads) {
  std::printf("threads");
  for (const auto& s : series) {
    std::printf(",%s[node*|steals]", s.name.c_str());
  }
  std::printf("   (per-node Mops | remote steals per op)\n");
  for (unsigned t : threads) {
    std::printf("%7u", t);
    for (const auto& s : series) {
      const PointResult* pt = find_point(s, t);
      if (pt == nullptr) {
        std::printf(",-");
        continue;
      }
      std::printf(",");
      if (pt->node_mops.empty()) {
        std::printf("unpinned");
      } else {
        for (std::size_t k = 0; k < pt->node_mops.size(); ++k) {
          std::printf("%s%.2f", k == 0 ? "" : "/", pt->node_mops[k].mean);
        }
      }
      std::printf("|%.3f", pt->remote_steal.mean);
    }
    std::printf("\n");
  }
}

void print_roles_table(const std::vector<Series>& series,
                       const std::vector<unsigned>& threads) {
  std::printf("threads");
  for (const auto& s : series) {
    std::printf(",%s[cons faa|thld / prod faa|thld]", s.name.c_str());
  }
  std::printf("   (per role-executed op)\n");
  for (unsigned t : threads) {
    std::printf("%7u", t);
    for (const auto& s : series) {
      const PointResult* pt = find_point(s, t);
      if (pt == nullptr) {
        std::printf(",-");
        continue;
      }
      std::printf(",%.3f|%.3f / %.3f|%.3f", pt->cons_faa.mean,
                  pt->cons_thld.mean, pt->prod_faa.mean, pt->prod_thld.mean);
    }
    std::printf("\n");
  }
}

void print_cv_note(const std::vector<Series>& series) {
  double worst = 0.0;
  for (const auto& s : series) {
    for (const auto& pt : s.points) {
      if (pt.mops.cv > worst) worst = pt.mops.cv;
    }
  }
  std::printf("# worst coefficient of variation across points: %.4f%s\n",
              worst, worst < 0.01 ? " (<0.01, as in the paper)" : "");
}

void JsonReport::add_panel(const std::string& caption, const BenchParams& p,
                           const std::vector<Series>& series) {
  Panel panel;
  panel.caption = caption;
  panel.workload = workload_name(p.workload);
  panel.ops = p.ops;
  panel.runs = p.runs;
  panel.batch = p.batch;
  panel.series = series;
  panels_.push_back(std::move(panel));
}

bool JsonReport::write(const std::string& path) const {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonReport: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"panels\": [\n");
  for (std::size_t pi = 0; pi < panels_.size(); ++pi) {
    const Panel& p = panels_[pi];
    std::fprintf(f,
                 "    {\"caption\": \"%s\", \"workload\": \"%s\", "
                 "\"ops\": %llu, \"runs\": %u, \"batch\": %u,\n"
                 "     \"series\": [\n",
                 p.caption.c_str(), p.workload.c_str(),
                 static_cast<unsigned long long>(p.ops), p.runs, p.batch);
    for (std::size_t si = 0; si < p.series.size(); ++si) {
      const Series& s = p.series[si];
      std::fprintf(f, "      {\"name\": \"%s\", \"points\": [\n",
                   s.name.c_str());
      for (std::size_t qi = 0; qi < s.points.size(); ++qi) {
        const PointResult& pt = s.points[qi];
        std::fprintf(f,
                     "        {\"threads\": %u, \"mops_mean\": %.6f, "
                     "\"mops_cv\": %.6f, \"live_bytes_mean\": %.1f, "
                     "\"peak_bytes_mean\": %.1f, \"rss_bytes_mean\": %.1f, "
                     "\"allocs_mean\": %.1f, \"ring_faa_per_op_mean\": %.6f, "
                     "\"ring_thld_per_op_mean\": %.6f, "
                     "\"registry_per_op_mean\": %.6f, "
                     "\"remote_steal_per_op_mean\": %.6f, "
                     "\"cons_faa_per_op_mean\": %.6f, "
                     "\"cons_thld_per_op_mean\": %.6f, "
                     "\"prod_faa_per_op_mean\": %.6f, "
                     "\"prod_thld_per_op_mean\": %.6f, "
                     "\"node_mops_mean\": [",
                     pt.threads, pt.mops.mean, pt.mops.cv, pt.live_bytes.mean,
                     pt.peak_bytes.mean, pt.rss_bytes.mean, pt.allocs.mean,
                     pt.ring_faa.mean, pt.ring_thld.mean, pt.registry.mean,
                     pt.remote_steal.mean, pt.cons_faa.mean, pt.cons_thld.mean,
                     pt.prod_faa.mean, pt.prod_thld.mean);
        for (std::size_t k = 0; k < pt.node_mops.size(); ++k) {
          std::fprintf(f, "%s%.6f", k == 0 ? "" : ", ",
                       pt.node_mops[k].mean);
        }
        std::fprintf(f, "]}%s\n", qi + 1 < s.points.size() ? "," : "");
      }
      std::fprintf(f, "      ]}%s\n",
                   si + 1 < p.series.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", pi + 1 < panels_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "JsonReport: wrote %s\n", path.c_str());
  return true;
}

}  // namespace wcq::bench
