#include "harness/runner.hpp"

#include <cstdio>

namespace wcq::bench {

void print_preamble(const char* figure, const char* caption,
                    const BenchParams& p) {
  std::printf("# %s — %s\n", figure, caption);
  std::printf("# workload=%s ops=%llu runs=%u pin=%d\n",
              workload_name(p.workload),
              static_cast<unsigned long long>(p.ops), p.runs, p.pin ? 1 : 0);
  std::printf(
      "# (paper scale: WCQ_BENCH_FULL=1 or --full → 10 runs x 10M ops)\n");
}

namespace {

const PointResult* find_point(const Series& s, unsigned threads) {
  for (const auto& pt : s.points) {
    if (pt.threads == threads) return &pt;
  }
  return nullptr;
}

}  // namespace

void print_throughput_table(const std::vector<Series>& series,
                            const std::vector<unsigned>& threads) {
  std::printf("threads");
  for (const auto& s : series) std::printf(",%s", s.name.c_str());
  std::printf("   (Mops/sec)\n");
  for (unsigned t : threads) {
    std::printf("%7u", t);
    for (const auto& s : series) {
      const PointResult* pt = find_point(s, t);
      if (pt != nullptr) {
        std::printf(",%.2f", pt->mops.mean);
      } else {
        std::printf(",-");
      }
    }
    std::printf("\n");
  }
}

void print_memory_table(const std::vector<Series>& series,
                        const std::vector<unsigned>& threads) {
  std::printf("threads");
  for (const auto& s : series) std::printf(",%s", s.name.c_str());
  std::printf("   (peak MB allocated during run)\n");
  for (unsigned t : threads) {
    std::printf("%7u", t);
    for (const auto& s : series) {
      const PointResult* pt = find_point(s, t);
      if (pt != nullptr) {
        std::printf(",%.2f", static_cast<double>(pt->peak_bytes) / 1e6);
      } else {
        std::printf(",-");
      }
    }
    std::printf("\n");
  }
}

void print_cv_note(const std::vector<Series>& series) {
  double worst = 0.0;
  for (const auto& s : series) {
    for (const auto& pt : s.points) {
      if (pt.mops.cv > worst) worst = pt.mops.cv;
    }
  }
  std::printf("# worst coefficient of variation across points: %.4f%s\n",
              worst, worst < 0.01 ? " (<0.01, as in the paper)" : "");
}

}  // namespace wcq::bench
