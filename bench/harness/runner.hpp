// Table-driven bench runner: sweeps thread counts for a set of queue
// adapters and prints one paper-style series per queue.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/measure.hpp"
#include "harness/workloads.hpp"

namespace wcq::bench {

struct Series {
  std::string name;
  std::vector<PointResult> points;
};

void print_preamble(const char* figure, const char* caption,
                    const BenchParams& p);
void print_throughput_table(const std::vector<Series>& series,
                            const std::vector<unsigned>& threads);
void print_memory_table(const std::vector<Series>& series,
                        const std::vector<unsigned>& threads);
void print_cv_note(const std::vector<Series>& series);

// Measure one adapter across the sweep (skipped if filtered out by --only).
template <typename Adapter>
void run_series(const BenchParams& p, std::vector<Series>& out) {
  if (!p.selected(Adapter::kName)) return;
  Series s;
  s.name = Adapter::kName;
  for (unsigned t : p.thread_counts) {
    std::fprintf(stderr, "  [%s] %u thread(s)...\n", Adapter::kName, t);
    s.points.push_back(measure_point<Adapter>(p, t));
  }
  out.push_back(std::move(s));
}

}  // namespace wcq::bench
