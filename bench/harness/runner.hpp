// Table-driven bench runner: sweeps thread counts for a set of queue
// adapters and prints one paper-style series per queue.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/measure.hpp"
#include "harness/workloads.hpp"

namespace wcq::bench {

struct Series {
  std::string name;
  std::vector<PointResult> points;
};

void print_preamble(const char* figure, const char* caption,
                    const BenchParams& p);
void print_throughput_table(const std::vector<Series>& series,
                            const std::vector<unsigned>& threads);
void print_memory_table(const std::vector<Series>& series,
                        const std::vector<unsigned>& threads);
// Metered allocation events per run (count): the churn metric behind the
// Fig 10 curve. A recycling queue's count stays at its warm-up value while
// an allocate-per-segment queue's grows with operations.
void print_allocation_table(const std::vector<Series>& series,
                            const std::vector<unsigned>& threads);
// Shared Head/Tail F&As per executed logical operation: the magazine
// amortization metric (DESIGN.md §9), wall-clock-independent so it stays
// meaningful on the 1-core CI host.
void print_ringops_table(const std::vector<Series>& series,
                         const std::vector<unsigned>& threads);
// ThreadRegistry tid()/high_water() lookups per executed operation: the
// session-handle metric (DESIGN.md §10). Implicit APIs resolve the
// thread_local tid once per op (~1); explicit handles only pay the
// amortized help-check refresh (~1/HELP_DELAY).
void print_registry_table(const std::vector<Series>& series,
                          const std::vector<unsigned>& threads);
// Topology placement metrics (DESIGN.md §12): per-node Mops under the pin
// policy plus ShardedQueue ops that completed on a remote node's shard per
// executed op (0.000 everywhere under node-confined placement — the
// bench/check_topology.py CI gate).
void print_node_table(const std::vector<Series>& series,
                      const std::vector<unsigned>& threads);
// Role-split ring counters for the skewed workloads (p8to1/p1to8,
// DESIGN.md §13): consumer-role and producer-role F&As + threshold RMWs per
// op executed by that role. The consumer column is the degree-specialization
// claim — an MPSC consumer path must print 0.000|0.000 — and is gated by
// bench/check_pipeline.py.
void print_roles_table(const std::vector<Series>& series,
                       const std::vector<unsigned>& threads);
void print_cv_note(const std::vector<Series>& series);

// Machine-readable run report: drivers add one panel per table they print
// and write the whole thing when BenchParams::json_path is set (CI uploads
// the smoke-run reports as workflow artifacts).
class JsonReport {
 public:
  void add_panel(const std::string& caption, const BenchParams& p,
                 const std::vector<Series>& series);
  // Writes the collected panels; no-op when path is empty. Returns false
  // (with a note on stderr) if the file cannot be opened.
  bool write(const std::string& path) const;

 private:
  struct Panel {
    std::string caption;
    std::string workload;
    std::uint64_t ops = 0;
    unsigned runs = 0;
    unsigned batch = 1;
    std::vector<Series> series;
  };
  std::vector<Panel> panels_;
};

// Measure one adapter across the sweep (skipped if filtered out by --only).
template <typename Adapter>
void run_series(const BenchParams& p, std::vector<Series>& out) {
  if (!p.selected(Adapter::kName)) return;
  Series s;
  s.name = Adapter::kName;
  for (unsigned t : p.thread_counts) {
    std::fprintf(stderr, "  [%s] %u thread(s)...\n", Adapter::kName, t);
    s.points.push_back(measure_point<Adapter>(p, t));
  }
  out.push_back(std::move(s));
}

}  // namespace wcq::bench
