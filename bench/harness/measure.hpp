// Templated measurement core: runs one (queue, workload, thread-count) point
// and returns throughput plus memory counters.
//
// Queue concept (provided by harness/adapters.hpp wrappers):
//   struct Adapter {
//     static constexpr const char* kName;
//     using Queue = ...;
//     static Queue* create();            // fresh instance, paper parameters
//     static void destroy(Queue*);
//     static bool enqueue(Queue&, u64);  // false = full (retried by workload)
//     static bool dequeue(Queue&, u64&); // false = empty
//     // Optional batch path, used when BenchParams::batch > 1:
//     static std::size_t enqueue_bulk(Queue&, const u64*, std::size_t);
//     static std::size_t dequeue_bulk(Queue&, u64*, std::size_t);
//     // Optional explicit-session path (DESIGN.md §10): when attach() is
//     // present every operation takes the handle instead; each worker
//     // attaches once, outside the measured loop.
//     static Handle attach(Queue&);
//     static bool enqueue(Queue&, Handle&, u64);
//     static bool dequeue(Queue&, Handle&, u64&);
//   };
//
// Accounting contract: every workload loop counts the operations it actually
// attempted (a full/empty attempt counts, exactly as in the paper's
// methodology; an operation the loop never issued does not), each worker
// returns its count, and the reported throughput divides the summed executed
// ops — never the requested `p.ops` — by the wall time. Memory counters are
// sampled per run and summarized across runs like the throughput samples.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/alloc_meter.hpp"
#include "common/cpu.hpp"
#include "common/op_counters.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "harness/workloads.hpp"
#include "reclaim/hazard_pointers.hpp"

namespace wcq::bench {

using u64 = std::uint64_t;

struct PointResult {
  unsigned threads = 0;
  Summary mops;        // millions of executed operations per second, per run
  Summary live_bytes;  // allocator-live delta after each run
  Summary peak_bytes;  // allocator peak during each run
  Summary rss_bytes;   // process RSS sampled after each run
  Summary allocs;      // metered allocation events per run (count, not bytes;
                       // includes queue construction — a recycling queue's
                       // count converges to its warm-up allocations while a
                       // churning one keeps growing with ops)
  Summary ring_faa;    // shared Head/Tail F&As per executed logical op
                       // (opcount; the magazine amortization metric —
                       // wall-clock-independent, so meaningful on 1-core CI)
  Summary ring_thld;   // shared Threshold RMWs/stores per executed op
  Summary registry;    // ThreadRegistry tid()/high_water() lookups per op
                       // (the session-handle metric, DESIGN.md §10; the CI
                       // gate holds the handle path at ≤1 per op)
  Summary remote_steal;  // ShardedQueue ops completed on a remote node's
                         // shard, per executed op (DESIGN.md §12; 0 for
                         // non-sharded queues, and the node-partitioned CI
                         // gate holds node:<k> placement at exactly 0)
  // Per-node throughput, node_mops[k] = Mops executed by workers placed on
  // node k under the pin policy (empty when unpinned: placement unknown).
  std::vector<Summary> node_mops;
  // Role-split ring counters for the skewed workloads (p8to1/p1to8): F&As
  // and threshold RMWs per op *executed by that role's workers*. The
  // consumer split is the check_pipeline.py gate — an MPSC consumer path
  // must report exactly zero for both — and it is wall-clock-independent,
  // so it holds on the 1-core runner. Zero for symmetric workloads.
  Summary cons_faa, cons_thld, prod_faa, prod_thld;
};

namespace detail {

inline void tiny_random_delay(Xoshiro256& rng, unsigned max_spins) {
  const u64 spins = rng.bounded(max_spins + 1);
  for (u64 i = 0; i < spins; ++i) cpu_relax();
}

template <typename Adapter, typename = void>
struct AdapterHasBulk : std::false_type {};
template <typename Adapter>
struct AdapterHasBulk<
    Adapter,
    std::void_t<decltype(Adapter::enqueue_bulk(
                    std::declval<typename Adapter::Queue&>(),
                    static_cast<const u64*>(nullptr), std::size_t{0})),
                decltype(Adapter::dequeue_bulk(
                    std::declval<typename Adapter::Queue&>(),
                    static_cast<u64*>(nullptr), std::size_t{0}))>>
    : std::true_type {};

// Explicit-session adapters (DESIGN.md §10) expose `attach(Queue&)` and
// handle-taking operations; each worker attaches once, outside the measured
// loop, exactly as a thread-pool worker would hold a session.
template <typename Adapter, typename = void>
struct AdapterHasHandle : std::false_type {};
template <typename Adapter>
struct AdapterHasHandle<
    Adapter, std::void_t<decltype(Adapter::attach(
                 std::declval<typename Adapter::Queue&>()))>>
    : std::true_type {};

template <typename Adapter, typename = void>
struct AdapterHasHandleBulk : std::false_type {};
template <typename Adapter>
struct AdapterHasHandleBulk<
    Adapter,
    std::void_t<decltype(Adapter::enqueue_bulk(
                    std::declval<typename Adapter::Queue&>(),
                    std::declval<decltype(Adapter::attach(
                        std::declval<typename Adapter::Queue&>()))&>(),
                    static_cast<const u64*>(nullptr), std::size_t{0}))>>
    : std::true_type {};

// One worker's operation surface: the queue plus, for handle adapters, the
// session attached for this worker's lifetime. The workload loops are
// written against this so the same code measures both calling conventions.
template <typename Adapter, bool = AdapterHasHandle<Adapter>::value>
struct OpsCtx {
  typename Adapter::Queue& q;
  static constexpr bool kBulk = AdapterHasBulk<Adapter>::value;
  explicit OpsCtx(typename Adapter::Queue& queue) : q(queue) {}
  bool enqueue(u64 v) { return Adapter::enqueue(q, v); }
  bool dequeue(u64& out) { return Adapter::dequeue(q, out); }
  std::size_t enqueue_bulk(const u64* v, std::size_t n) {
    return Adapter::enqueue_bulk(q, v, n);
  }
  std::size_t dequeue_bulk(u64* out, std::size_t n) {
    return Adapter::dequeue_bulk(q, out, n);
  }
};

template <typename Adapter>
struct OpsCtx<Adapter, true> {
  typename Adapter::Queue& q;
  decltype(Adapter::attach(std::declval<typename Adapter::Queue&>())) h;
  static constexpr bool kBulk = AdapterHasHandleBulk<Adapter>::value;
  explicit OpsCtx(typename Adapter::Queue& queue)
      : q(queue), h(Adapter::attach(queue)) {}
  bool enqueue(u64 v) { return Adapter::enqueue(q, h, v); }
  bool dequeue(u64& out) { return Adapter::dequeue(q, h, out); }
  std::size_t enqueue_bulk(const u64* v, std::size_t n) {
    return Adapter::enqueue_bulk(q, h, v, n);
  }
  std::size_t dequeue_bulk(u64* out, std::size_t n) {
    return Adapter::dequeue_bulk(q, h, out, n);
  }
};

// Per-workload loops. Each returns the number of operations it executed;
// `my_ops` is the exact quota this worker was assigned (measure_point spreads
// the p.ops % threads remainder instead of dropping it).
template <typename Adapter>
u64 worker_body(OpsCtx<Adapter>& ops, const BenchParams& p, u64 my_ops,
                unsigned thread_index, unsigned threads, unsigned run) {
  // Mix the run index into the seed so repeated runs of one point do not
  // replay identical coin-flip/delay sequences (which made the run-to-run
  // spread a fiction for the random workloads).
  Xoshiro256 rng{0x1234567ULL * (thread_index + 1) +
                 0x9e3779b97f4a7c15ULL * run};
  const u64 payload = thread_index % 16;
  // Batch staging buffers. Enqueue payloads are constant; the dequeue buffer
  // is scratch. Sized by the parse()-enforced kMaxBatch clamp.
  const u64 batch = p.batch > 1 ? p.batch : 1;
  u64 enq_buf[BenchParams::kMaxBatch];
  u64 deq_buf[BenchParams::kMaxBatch];
  for (u64 i = 0; i < batch; ++i) enq_buf[i] = payload;
  constexpr bool kBulk = OpsCtx<Adapter>::kBulk;

  u64 executed = 0;
  switch (p.workload) {
    case Workload::kPairs: {
      u64 i = 0;
      if constexpr (kBulk) {
        // Per-thread ledger of enqueued-minus-dequeued. A bulk dequeue can
        // transiently return fewer than its span (contended ranks yield
        // nothing; the elements sit at later ranks), while ring bulk
        // enqueues insert everything — without compensation that shortfall
        // accumulates run-long and can push ring occupancy past the
        // "at most capacity() live indices" precondition. The ledger
        // credits actual insertions (value queues may accept fewer) and is
        // drained whenever it reaches 2*batch, capping this thread's
        // occupancy contribution; a zero-yield drain means other threads
        // consumed the elements (no occupancy risk), so it stops rather
        // than spin. Drain attempts are real dequeues and count as
        // executed ops.
        u64 outstanding = 0;
        for (; batch > 1 && i + 2 * batch <= my_ops; i += 2 * batch) {
          outstanding += ops.enqueue_bulk(enq_buf, batch);
          const u64 span = outstanding < batch ? outstanding : batch;
          const u64 got = span > 0 ? ops.dequeue_bulk(deq_buf, span) : 0;
          outstanding -= got < outstanding ? got : outstanding;
          executed += batch + span;
          while (outstanding >= 2 * batch) {
            const u64 g2 = ops.dequeue_bulk(deq_buf, batch);
            executed += batch;
            if (g2 == 0) break;
            outstanding -= g2 < outstanding ? g2 : outstanding;
          }
        }
      }
      for (; i + 1 < my_ops; i += 2) {
        while (!ops.enqueue(payload)) cpu_relax();
        u64 out;
        (void)ops.dequeue(out);
        executed += 2;
      }
      if (i < my_ops) {  // odd quota: the final op is a lone enqueue
        while (!ops.enqueue(payload)) cpu_relax();
        executed += 1;
      }
      break;
    }
    case Workload::kP5050: {
      for (u64 i = 0; i < my_ops;) {
        const u64 span = batch < my_ops - i ? batch : my_ops - i;
        if constexpr (kBulk) {
          if (span > 1) {
            if (rng.coin()) {
              (void)ops.enqueue_bulk(enq_buf, span);  // full = attempt
            } else {
              (void)ops.dequeue_bulk(deq_buf, span);
            }
            executed += span;
            i += span;
            continue;
          }
        }
        if (rng.coin()) {
          (void)ops.enqueue(payload);  // full counts as an attempt
        } else {
          u64 out;
          (void)ops.dequeue(out);
        }
        ++executed;
        ++i;
      }
      break;
    }
    case Workload::kEmptyDeq: {
      for (u64 i = 0; i < my_ops;) {
        const u64 span = batch < my_ops - i ? batch : my_ops - i;
        if constexpr (kBulk) {
          if (span > 1) {
            (void)ops.dequeue_bulk(deq_buf, span);
            executed += span;
            i += span;
            continue;
          }
        }
        u64 out;
        (void)ops.dequeue(out);
        ++executed;
        ++i;
      }
      break;
    }
    case Workload::kMemory: {
      // Deliberately single-op regardless of batch: the tiny delays between
      // individual operations are the point of the Fig 10 configuration.
      for (u64 i = 0; i < my_ops; ++i) {
        if (rng.coin()) {
          (void)ops.enqueue(payload);
        } else {
          u64 out;
          (void)ops.dequeue(out);
        }
        ++executed;
        tiny_random_delay(rng, p.max_delay_spins);
      }
      break;
    }
    case Workload::kBurst: {
      // Producer phase of `batch` enqueues, then a consumer phase draining
      // the same span: bursty occupancy with backpressure at the full/empty
      // edges. Attempts count whether or not the queue accepted them. The
      // bulk path keeps the same insertion ledger as kPairs — ring adapters
      // never report full, so a systematic dequeue shortfall would
      // otherwise ratchet occupancy up run-long.
      u64 outstanding = 0;
      for (u64 i = 0; i < my_ops;) {
        const u64 eb = batch < my_ops - i ? batch : my_ops - i;
        if constexpr (kBulk) {
          if (eb > 1) {
            outstanding += ops.enqueue_bulk(enq_buf, eb);
          } else if (ops.enqueue(payload)) {
            ++outstanding;
          }
        } else {
          for (u64 k = 0; k < eb; ++k) (void)ops.enqueue(payload);
        }
        executed += eb;
        i += eb;
        const u64 db = batch < my_ops - i ? batch : my_ops - i;
        if (db == 0) break;
        if constexpr (kBulk) {
          u64 got = 0;
          if (db > 1) {
            got = ops.dequeue_bulk(deq_buf, db);
          } else {
            u64 out;
            got = ops.dequeue(out) ? 1 : 0;
          }
          outstanding -= got < outstanding ? got : outstanding;
        } else {
          for (u64 k = 0; k < db; ++k) {
            u64 out;
            (void)ops.dequeue(out);
          }
        }
        executed += db;
        i += db;
        if constexpr (kBulk) {
          while (outstanding >= 4 * batch) {
            const u64 g2 = ops.dequeue_bulk(deq_buf, batch);
            executed += batch;
            if (g2 == 0) break;  // consumed elsewhere: no occupancy risk
            outstanding -= g2 < outstanding ? g2 : outstanding;
          }
        }
      }
      break;
    }
    case Workload::kP8to1:
    case Workload::kP1to8: {
      // Skewed roles (DESIGN.md §13): this worker is a pure producer or a
      // pure consumer for the whole run, by thread index. Attempt-counting
      // exactly as kP5050 (a full enqueue or empty dequeue still counts),
      // so the loop terminates with no cross-role coordination — which is
      // what keeps the smoke points deterministic on the 1-core runner.
      const bool consumer =
          skewed_consumer(p.workload, thread_index, threads);
      for (u64 i = 0; i < my_ops;) {
        const u64 span = batch < my_ops - i ? batch : my_ops - i;
        if constexpr (kBulk) {
          if (span > 1) {
            if (consumer) {
              (void)ops.dequeue_bulk(deq_buf, span);
            } else {
              (void)ops.enqueue_bulk(enq_buf, span);
            }
            executed += span;
            i += span;
            continue;
          }
        }
        if (consumer) {
          u64 out;
          (void)ops.dequeue(out);
        } else {
          (void)ops.enqueue(payload);
        }
        ++executed;
        ++i;
      }
      break;
    }
  }
  return executed;
}

}  // namespace detail

template <typename Adapter>
PointResult measure_point(const BenchParams& p, unsigned threads) {
  // The global hazard domain's (metered) tables are built on first use;
  // force that outside the measured window so the first hazard-using
  // series does not absorb a one-time charge into its run-0 samples.
  (void)HazardDomain::global();
  const Topology& topo = Topology::instance();
  const Topology::PinSpec pin_spec =
      Topology::parse_pin_spec(p.pin_policy).value_or(Topology::PinSpec{});
  // Per-node attribution needs a known placement; unpinned workers float.
  const unsigned node_buckets = p.pin ? topo.node_count() : 0;
  PointResult result;
  result.threads = threads;
  std::vector<double> mops_samples, live_samples, peak_samples, rss_samples,
      alloc_samples, faa_samples, thld_samples, reg_samples, steal_samples,
      cons_faa_samples, cons_thld_samples, prod_faa_samples,
      prod_thld_samples;
  std::vector<std::vector<double>> node_samples(node_buckets);
  mops_samples.reserve(p.runs);
  live_samples.reserve(p.runs);
  peak_samples.reserve(p.runs);
  rss_samples.reserve(p.runs);
  alloc_samples.reserve(p.runs);
  faa_samples.reserve(p.runs);
  thld_samples.reserve(p.runs);
  reg_samples.reserve(p.runs);
  steal_samples.reserve(p.runs);

  for (unsigned run = 0; run < p.runs; ++run) {
    alloc_meter::reset_peak();
    const std::int64_t live_before = alloc_meter::live_bytes();
    const std::int64_t allocs_before = alloc_meter::total_allocations();
    typename Adapter::Queue* q = Adapter::create();

    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    // Exact quota split: the first (p.ops % threads) workers take one extra
    // op, so requested and assigned totals match.
    const u64 per_thread = p.ops / threads;
    const u64 remainder = p.ops % threads;
    std::vector<u64> executed(threads, 0);
    std::vector<u64> faa_delta(threads, 0), thld_delta(threads, 0),
        reg_delta(threads, 0), steal_delta(threads, 0);
    std::vector<std::thread> ts;
    ts.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        if (p.pin) pin_thread(t, pin_spec, topo);
        const u64 my_ops = per_thread + (t < remainder ? 1 : 0);
        // Session attach (handle adapters) happens here, outside the
        // measured window and the counter snapshots: a pool worker pays it
        // once per worker lifetime, not per operation.
        detail::OpsCtx<Adapter> ops(*q);
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (!go.load(std::memory_order_acquire)) cpu_relax();
        const opcount::Counters before = opcount::snapshot();
        executed[t] =
            detail::worker_body<Adapter>(ops, p, my_ops, t, threads, run);
        const opcount::Counters after = opcount::snapshot();
        faa_delta[t] = after.faa - before.faa;
        thld_delta[t] = after.threshold - before.threshold;
        reg_delta[t] = after.registry - before.registry;
        steal_delta[t] = after.remote_steal - before.remote_steal;
      });
    }
    while (ready.load(std::memory_order_acquire) < threads) cpu_relax();
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : ts) t.join();
    const auto t1 = std::chrono::steady_clock::now();

    const double secs = std::chrono::duration<double>(t1 - t0).count();
    u64 total_ops = 0;
    for (const u64 e : executed) total_ops += e;
    mops_samples.push_back(static_cast<double>(total_ops) / secs / 1e6);

    u64 total_faa = 0, total_thld = 0, total_reg = 0, total_steal = 0;
    for (const u64 f : faa_delta) total_faa += f;
    for (const u64 d : thld_delta) total_thld += d;
    for (const u64 r : reg_delta) total_reg += r;
    for (const u64 s : steal_delta) total_steal += s;
    const double ops_norm = total_ops > 0 ? static_cast<double>(total_ops) : 1.0;
    faa_samples.push_back(static_cast<double>(total_faa) / ops_norm);
    thld_samples.push_back(static_cast<double>(total_thld) / ops_norm);
    reg_samples.push_back(static_cast<double>(total_reg) / ops_norm);
    steal_samples.push_back(static_cast<double>(total_steal) / ops_norm);

    // Role-split counters (p8to1/p1to8): per-worker deltas attributed to the
    // worker's fixed role, normalized by that role's executed ops. Counter
    // sums, not wall-clock, so the consumer-side zeros the pipeline gate
    // asserts are exact on any host.
    double cons_faa = 0.0, cons_thld = 0.0, prod_faa = 0.0, prod_thld = 0.0;
    if (workload_skewed(p.workload)) {
      u64 c_ops = 0, c_faa = 0, c_thld = 0, p_ops = 0, p_faa = 0, p_thld = 0;
      for (unsigned t = 0; t < threads; ++t) {
        if (skewed_consumer(p.workload, t, threads)) {
          c_ops += executed[t];
          c_faa += faa_delta[t];
          c_thld += thld_delta[t];
        } else {
          p_ops += executed[t];
          p_faa += faa_delta[t];
          p_thld += thld_delta[t];
        }
      }
      const double cn = c_ops > 0 ? static_cast<double>(c_ops) : 1.0;
      const double pn = p_ops > 0 ? static_cast<double>(p_ops) : 1.0;
      cons_faa = static_cast<double>(c_faa) / cn;
      cons_thld = static_cast<double>(c_thld) / cn;
      prod_faa = static_cast<double>(p_faa) / pn;
      prod_thld = static_cast<double>(p_thld) / pn;
    }
    cons_faa_samples.push_back(cons_faa);
    cons_thld_samples.push_back(cons_thld);
    prod_faa_samples.push_back(prod_faa);
    prod_thld_samples.push_back(prod_thld);

    // Per-node throughput: worker t's executed ops are attributed to the
    // node the pin policy placed it on (deterministic by construction).
    if (node_buckets > 0) {
      std::vector<u64> node_ops(node_buckets, 0);
      for (unsigned t = 0; t < threads; ++t) {
        node_ops[topo.node_for(pin_spec, t)] += executed[t];
      }
      for (unsigned k = 0; k < node_buckets; ++k) {
        node_samples[k].push_back(static_cast<double>(node_ops[k]) / secs /
                                  1e6);
      }
    }

    live_samples.push_back(
        static_cast<double>(alloc_meter::live_bytes() - live_before));
    peak_samples.push_back(
        static_cast<double>(alloc_meter::peak_bytes() - live_before));
    rss_samples.push_back(static_cast<double>(current_rss_bytes()));
    alloc_samples.push_back(
        static_cast<double>(alloc_meter::total_allocations() - allocs_before));
    Adapter::destroy(q);
  }
  result.mops = summarize(mops_samples);
  result.live_bytes = summarize(live_samples);
  result.peak_bytes = summarize(peak_samples);
  result.rss_bytes = summarize(rss_samples);
  result.allocs = summarize(alloc_samples);
  result.ring_faa = summarize(faa_samples);
  result.ring_thld = summarize(thld_samples);
  result.registry = summarize(reg_samples);
  result.remote_steal = summarize(steal_samples);
  result.cons_faa = summarize(cons_faa_samples);
  result.cons_thld = summarize(cons_thld_samples);
  result.prod_faa = summarize(prod_faa_samples);
  result.prod_thld = summarize(prod_thld_samples);
  result.node_mops.reserve(node_buckets);
  for (unsigned k = 0; k < node_buckets; ++k) {
    result.node_mops.push_back(summarize(node_samples[k]));
  }
  return result;
}

}  // namespace wcq::bench
