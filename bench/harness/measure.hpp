// Templated measurement core: runs one (queue, workload, thread-count) point
// and returns throughput plus memory counters.
//
// Queue concept (provided by harness/adapters.hpp wrappers):
//   struct Adapter {
//     static constexpr const char* kName;
//     using Queue = ...;
//     static Queue* create();            // fresh instance, paper parameters
//     static void destroy(Queue*);
//     static bool enqueue(Queue&, u64);  // false = full (retried by workload)
//     static bool dequeue(Queue&, u64&); // false = empty
//   };
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/alloc_meter.hpp"
#include "common/cpu.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "harness/workloads.hpp"

namespace wcq::bench {

using u64 = std::uint64_t;

struct PointResult {
  unsigned threads = 0;
  Summary mops;             // millions of operations per second across runs
  std::int64_t live_bytes = 0;  // allocator-live bytes after the run
  std::int64_t peak_bytes = 0;  // peak during the run
  std::uint64_t rss_bytes = 0;
};

namespace detail {

inline void tiny_random_delay(Xoshiro256& rng, unsigned max_spins) {
  const u64 spins = rng.bounded(max_spins + 1);
  for (u64 i = 0; i < spins; ++i) cpu_relax();
}

template <typename Adapter>
void worker_body(typename Adapter::Queue& q, Workload w, u64 my_ops,
                 unsigned thread_index, unsigned max_delay_spins) {
  Xoshiro256 rng{0x1234567ULL * (thread_index + 1)};
  const u64 payload = thread_index % 16;
  switch (w) {
    case Workload::kPairs:
      for (u64 i = 0; i + 1 < my_ops; i += 2) {
        while (!Adapter::enqueue(q, payload)) cpu_relax();
        u64 out;
        (void)Adapter::dequeue(q, out);
      }
      break;
    case Workload::kP5050:
      for (u64 i = 0; i < my_ops; ++i) {
        if (rng.coin()) {
          (void)Adapter::enqueue(q, payload);  // full counts as an attempt
        } else {
          u64 out;
          (void)Adapter::dequeue(q, out);
        }
      }
      break;
    case Workload::kEmptyDeq:
      for (u64 i = 0; i < my_ops; ++i) {
        u64 out;
        (void)Adapter::dequeue(q, out);
      }
      break;
    case Workload::kMemory:
      for (u64 i = 0; i < my_ops; ++i) {
        if (rng.coin()) {
          (void)Adapter::enqueue(q, payload);
        } else {
          u64 out;
          (void)Adapter::dequeue(q, out);
        }
        tiny_random_delay(rng, max_delay_spins);
      }
      break;
  }
}

}  // namespace detail

template <typename Adapter>
PointResult measure_point(const BenchParams& p, unsigned threads) {
  PointResult result;
  result.threads = threads;
  std::vector<double> samples;
  samples.reserve(p.runs);

  for (unsigned run = 0; run < p.runs; ++run) {
    alloc_meter::reset_peak();
    const std::int64_t live_before = alloc_meter::live_bytes();
    typename Adapter::Queue* q = Adapter::create();

    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    const u64 per_thread = p.ops / threads;
    std::vector<std::thread> ts;
    ts.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        if (p.pin) pin_thread(t);
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (!go.load(std::memory_order_acquire)) cpu_relax();
        detail::worker_body<Adapter>(*q, p.workload, per_thread, t,
                                     p.max_delay_spins);
      });
    }
    while (ready.load(std::memory_order_acquire) < threads) cpu_relax();
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : ts) t.join();
    const auto t1 = std::chrono::steady_clock::now();

    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double total_ops = static_cast<double>(per_thread) * threads;
    samples.push_back(total_ops / secs / 1e6);

    result.live_bytes = alloc_meter::live_bytes() - live_before;
    result.peak_bytes = alloc_meter::peak_bytes() - live_before;
    result.rss_bytes = current_rss_bytes();
    Adapter::destroy(q);
  }
  result.mops = summarize(samples);
  return result;
}

}  // namespace wcq::bench
