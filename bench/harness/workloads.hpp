// Benchmark workloads and parameters reproducing the paper's §6 methodology.
//
// Workloads (one per figure panel, plus the scaling additions):
//   pairs    — Enqueue immediately followed by Dequeue, in a tight loop
//              (Fig 11b / 12b "Pairwise Enqueue-Dequeue").
//   p5050    — every operation is Enqueue or Dequeue with probability 1/2
//              (Fig 11c / 12c "50%/50% Enqueue-Dequeue").
//   empty    — Dequeue in a tight loop on an empty queue
//              (Fig 11a / 12a "Empty Dequeue throughput").
//   memory   — p5050 with tiny random delays between operations; measures
//              allocator growth rather than only throughput (Fig 10).
//   burst    — alternating bursts of `batch` enqueues then `batch` dequeues
//              (producer/consumer phases): bursty occupancy plus
//              backpressure, the shape sharded front-ends are built for.
//   p8to1    — skewed roles, ~8 producers per consumer: the minority
//              (threads/9, at least 1) of workers only dequeue, the rest
//              only enqueue. The natural stressor for MPSC rings and the
//              sharded pipeline mode (DESIGN.md §13): with <= 17 threads
//              there is exactly one consumer, so the consumer-role counter
//              split below gates the zero-F&A/zero-threshold claim.
//   p1to8    — the dual, ~8 consumers per producer (the SPMC stressor):
//              the minority only enqueues, the rest only dequeue.
//
// `batch > 1` routes pairs/p5050/empty/burst through the adapters' batch
// path (enqueue_bulk/dequeue_bulk) when the adapter provides one; reported
// ops always count attempted operations, batched or not.
//
// Methodology knobs follow the paper: each point is measured `runs` times
// for `ops` operations; the mean and coefficient of variation are reported.
// Defaults are CI-sized; WCQ_BENCH_FULL=1 or --full selects the paper's
// 10 x 10,000,000 configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wcq::bench {

enum class Workload { kPairs, kP5050, kEmptyDeq, kMemory, kBurst, kP8to1,
                      kP1to8 };

const char* workload_name(Workload w);

// Role split for the skewed-ratio workloads. Both assign the first
// `skewed_minority(threads)` worker indices to the minority role, so every
// point has at least one worker of each role and the 8:1 ratio is exact at
// 9, 18, ... threads. Symmetric workloads have no roles (consumer == false
// for all, by convention).
inline bool workload_skewed(Workload w) {
  return w == Workload::kP8to1 || w == Workload::kP1to8;
}
inline unsigned skewed_minority(unsigned threads) {
  return threads > 9 ? threads / 9 : 1;
}
inline bool skewed_consumer(Workload w, unsigned thread_index,
                            unsigned threads) {
  const unsigned m = skewed_minority(threads);
  return w == Workload::kP8to1 ? thread_index < m : thread_index >= m;
}

struct BenchParams {
  // Batch spans are staged through fixed worker-local buffers; parse() clamps
  // --batch to this.
  static constexpr unsigned kMaxBatch = 256;

  std::vector<unsigned> thread_counts;
  std::uint64_t ops = 200000;  // total operations per measurement run
  unsigned runs = 3;
  bool pin = true;
  // Placement policy when pinning: "rr" (round-robin over all CPUs, the
  // legacy default), "compact" (fill a node, one hyperthread per core
  // first), "scatter" (round-robin across nodes), "node:<k>" (confine to
  // node k — the shape behind the remote_steal==0 gate). Resolved against
  // Topology::instance(), so WCQ_TOPOLOGY simulated shapes apply.
  std::string pin_policy = "rr";
  Workload workload = Workload::kPairs;
  // memory workload: delay up to this many spin iterations between ops
  unsigned max_delay_spins = 64;
  // span per bulk call (1 = single-op path); also the burst length
  unsigned batch = 1;
  // when non-empty, drivers append a machine-readable report here
  std::string json_path;
  // queue-name filter; empty = all queues in the binary
  std::vector<std::string> only;

  // Parse --threads=1,2,4 --ops=N --runs=N
  // --workload=pairs|p5050|empty|memory|burst|p8to1|p1to8 --batch=N
  // --json=PATH
  // --no-pin --pin-policy=rr|compact|scatter|node:<k> --full
  // --only=wCQ,SCQ  plus WCQ_BENCH_* env fallbacks.
  static BenchParams parse(int argc, char** argv);

  bool selected(const std::string& queue_name) const;
};

// Default thread sweep mirroring the paper's 1..144 progression, scaled to
// this machine: powers of two up to nproc, nproc itself, and 2x nproc (the
// paper's oversubscription tail).
std::vector<unsigned> default_thread_counts();

}  // namespace wcq::bench
