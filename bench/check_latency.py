#!/usr/bin/env python3
"""CI gate over bench_latency's JSON report (DESIGN.md §14).

Checks are accounting and schema properties, not wall-clock thresholds, so
they hold on a noisy 1-core runner:

  * both consumer series are present (``spin`` and ``park``);
  * zero lost elements: received == sent and lost == 0 in each series —
    close() drained every in-flight element, nothing vanished across the
    park/wake edges;
  * samples == received (every delivered element contributed a latency);
  * percentiles are sane: non-negative and monotone
    p50 <= p90 <= p99 <= p999 <= max, mean <= max;
  * stranded == 0: no consumer was ever parked past a wake it was owed
    (the analysis-tier lost-wakeup detector; always 0 in release builds);
  * the park series is the one that parks: recv_parks on the spin series
    is exactly 0 (its consumer never calls recv()).

Exit status 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import sys

REQUIRED_SERIES = ("spin", "park")
PCT_KEYS = ("p50", "p90", "p99", "p999")


def fail(msg):
    print(f"check_latency: FAIL: {msg}")
    return 1


def check_series(s):
    rc = 0
    name = s.get("name", "<unnamed>")
    sent = s.get("sent", -1)
    received = s.get("received", -1)
    lost = s.get("lost", -1)
    if sent <= 0:
        rc |= fail(f"[{name}] sent={sent}, expected > 0")
    if received != sent:
        rc |= fail(f"[{name}] received={received} != sent={sent}")
    if lost != 0:
        rc |= fail(f"[{name}] lost={lost}, expected 0")
    lat = s.get("latency_ns")
    if not isinstance(lat, dict):
        return rc | fail(f"[{name}] missing latency_ns object")
    if lat.get("samples", -1) != received:
        rc |= fail(
            f"[{name}] samples={lat.get('samples')} != received={received}")
    prev_key, prev = None, -1.0
    for key in PCT_KEYS:
        v = lat.get(key)
        if v is None or v < 0:
            rc |= fail(f"[{name}] latency_ns.{key}={v}, expected >= 0")
            continue
        if v < prev:
            rc |= fail(f"[{name}] {key}={v} < {prev_key}={prev}: "
                       "percentiles not monotone")
        prev_key, prev = key, v
    vmax = lat.get("max", -1)
    if vmax < prev:
        rc |= fail(f"[{name}] max={vmax} < {prev_key}={prev}")
    if not 0 <= lat.get("mean", -1) <= vmax:
        rc |= fail(f"[{name}] mean={lat.get('mean')} outside [0, max={vmax}]")
    chan = s.get("channel")
    if not isinstance(chan, dict):
        return rc | fail(f"[{name}] missing channel counters object")
    if chan.get("stranded", -1) != 0:
        rc |= fail(f"[{name}] stranded={chan.get('stranded')}: "
                   "a parked waiter missed its wake")
    if name == "spin" and chan.get("recv_parks", -1) != 0:
        rc |= fail(f"[spin] recv_parks={chan.get('recv_parks')}: "
                   "the spinning consumer must never park")
    return rc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path", help="bench_latency JSON report")
    args = ap.parse_args()

    with open(args.json_path) as f:
        report = json.load(f)

    if report.get("bench") != "latency":
        return fail(f"unexpected bench id {report.get('bench')!r}")

    series = {s.get("name"): s for s in report.get("series", [])}
    rc = 0
    for name in REQUIRED_SERIES:
        if name not in series:
            rc |= fail(f"series {name!r} missing from report")
            continue
        rc |= check_series(series[name])

    if rc == 0:
        for name in REQUIRED_SERIES:
            s = series[name]
            lat = s["latency_ns"]
            chan = s["channel"]
            print(f"check_latency: OK [{name}] sent={s['sent']} "
                  f"received={s['received']} lost=0 "
                  f"p50={lat['p50']:.0f}ns p99={lat['p99']:.0f}ns "
                  f"p999={lat['p999']:.0f}ns "
                  f"parks={chan['send_parks'] + chan['recv_parks']}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
