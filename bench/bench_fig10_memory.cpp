// Figure 10: memory usage (a) and throughput (b) under a 50%/50% random
// workload with tiny random delays between operations (the configuration
// the paper found amplifies memory-efficiency artifacts).
//
// Memory is reported from the deterministic allocation meter every queue in
// this repository allocates through (DESIGN.md §4 explains why this is used
// instead of RSS); RSS is printed alongside for context. Expected shape:
// LCRQ's allocation grows steeply with threads (closed rings pile up), YMC
// grows more slowly (segment churn + reclamation lag), wCQ/SCQ stay at
// their statically-allocated ring (~1 MB for wCQ at order 15, half that
// for SCQ) plus per-thread records.
#include <cstdio>

#include "harness/adapters.hpp"
#include "harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace wcq::bench;
  BenchParams p = BenchParams::parse(argc, argv);
  p.workload = Workload::kMemory;
  print_preamble("Figure 10", "memory test (p5050 + tiny random delays)", p);

  std::vector<Series> series;
  run_series<FaaAdapter>(p, series);
  run_series<WcqAdapter>(p, series);
  run_series<ScqAdapter>(p, series);
  run_series<LcrqAdapter>(p, series);
  run_series<YmcAdapter>(p, series);
  run_series<CcAdapter>(p, series);
  run_series<CrTurnAdapter>(p, series);
  run_series<MsAdapter>(p, series);
  // Segment-pool A/B (DESIGN.md §8): same queue, recycling on/off. Compare
  // them in the allocation-count table; WCQ_BENCH_SEGMENT_ORDER=4 amplifies
  // segment churn for short runs.
  run_series<UnboundedAdapter>(p, series);
  run_series<UnboundedNoPoolAdapter>(p, series);

  std::printf("## Figure 10a: memory usage\n");
  print_memory_table(series, p.thread_counts);
  std::printf("\n## Figure 10b: throughput during the memory test\n");
  print_throughput_table(series, p.thread_counts);
  std::printf("\n## Allocation churn (events per run; UwCQ vs UwCQ-nopool "
              "is the segment-pool A/B)\n");
  print_allocation_table(series, p.thread_counts);
  print_cv_note(series);
  if (!p.json_path.empty()) {
    JsonReport report;
    report.add_panel("Figure 10 memory test", p, series);
    report.write(p.json_path);
  }
  return 0;
}
