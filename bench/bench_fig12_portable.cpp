// Figure 12 (PowerPC): the same three panels as Figure 11, for the
// portable wCQ variant built on LL/SC (paper §4, Fig 9).
//
// Substitution (DESIGN.md §4): no PowerPC hardware is available, so this
// runs the LL/SC-decomposed wCQ (simulated reservation granules) on x86
// next to the CAS2 build and the rest of the paper's PowerPC comparison set
// (which excludes LCRQ — it requires true CAS2). Absolute numbers are
// x86's; the comparison of interest is wCQ-LLSC vs SCQ vs the slower
// queues, and wCQ-LLSC vs the CAS2 wCQ (the §4 decomposition overhead).
#include <cstdio>
#include <cstring>

#include "common/dwcas.hpp"
#include "harness/adapters.hpp"
#include "harness/runner.hpp"
#include "portability/llsc_native.hpp"

namespace wcq::bench {
namespace {

// PR 10 backend matrix (DESIGN.md §15): the panels now compare real
// backends, not just the simulation — which ones this binary actually
// selected is part of the result, so it goes in the preamble of every run.
void print_backends() {
  std::printf("# backends: wCQ/SCQ cas2=%s; wCQ-LLSC llsc=sim",
              dwcas_backend_name());
#if defined(WCQ_HAS_NATIVE_LLSC)
  std::printf("; wCQ-LLSC-native llsc=%s", llsc_backend_name());
#endif
  std::printf("\n");
}

void run_panel(BenchParams p, Workload w, const char* figure,
               const char* caption, JsonReport& report) {
  p.workload = w;
  print_preamble(figure, caption, p);
  print_backends();
  std::vector<Series> series;
  run_series<FaaAdapter>(p, series);
  run_series<WcqLlscAdapter>(p, series);
#if defined(WCQ_HAS_NATIVE_LLSC)
  run_series<WcqLlscNativeAdapter>(p, series);
#endif
  run_series<WcqAdapter>(p, series);
  run_series<ScqAdapter>(p, series);
  run_series<YmcAdapter>(p, series);
  run_series<CcAdapter>(p, series);
  run_series<CrTurnAdapter>(p, series);
  run_series<MsAdapter>(p, series);
  print_throughput_table(series, p.thread_counts);
  print_cv_note(series);
  report.add_panel(caption, p, series);
  std::printf("\n");
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  using namespace wcq::bench;
  BenchParams p = BenchParams::parse(argc, argv);
  JsonReport report;
  bool explicit_workload = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workload", 10) == 0) explicit_workload = true;
  }
  if (explicit_workload) {
    run_panel(p, p.workload, "Figure 12", "selected panel (portable wCQ)",
              report);
  } else {
    run_panel(p, Workload::kEmptyDeq, "Figure 12a",
              "empty Dequeue throughput, portable (LL/SC) build", report);
    run_panel(p, Workload::kPairs, "Figure 12b",
              "pairwise Enqueue-Dequeue, portable (LL/SC) build", report);
    run_panel(p, Workload::kP5050, "Figure 12c",
              "50%/50% Enqueue-Dequeue, portable (LL/SC) build", report);
  }
  if (!p.json_path.empty()) report.write(p.json_path);
  return 0;
}
